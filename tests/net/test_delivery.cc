// Event-driven packet forwarding: latency accrual, TTL, drop reasons.
#include "net/delivery.h"

#include <gtest/gtest.h>

#include "igp/link_state.h"
#include "net/topology_gen.h"

namespace evo::net {
namespace {

/// Line topology with a converged link-state IGP, so FIBs are populated.
struct Fixture {
  explicit Fixture(std::uint32_t routers, sim::Duration latency)
      : network(make_topo(routers, latency)),
        igp(simulator, network, DomainId{0}),
        engine(simulator, network) {
    igp.start();
    simulator.run();
  }

  static Topology make_topo(std::uint32_t routers, sim::Duration latency) {
    Topology topo;
    const auto d = topo.add_domain("line", /*stub=*/true);
    std::vector<NodeId> nodes;
    for (std::uint32_t i = 0; i < routers; ++i) nodes.push_back(topo.add_router(d));
    for (std::uint32_t i = 0; i + 1 < routers; ++i) {
      topo.add_link(nodes[i], nodes[i + 1], 1, latency);
    }
    return topo;
  }

  Packet packet_to(NodeId dst, std::uint8_t ttl = 64) {
    Packet p;
    Ipv4Header h;
    h.src = network.topology().router(NodeId{0}).loopback;
    h.dst = network.topology().router(dst).loopback;
    h.ttl = ttl;
    p.push(HeaderLayer::ipv4(h));
    return p;
  }

  sim::Simulator simulator;
  Network network;
  igp::LinkStateIgp igp;
  DeliveryEngine engine;
};

TEST(DeliveryEngine, DeliversWithAccruedLatency) {
  Fixture f(5, sim::Duration::millis(3));
  bool delivered = false;
  f.engine.inject(NodeId{0}, f.packet_to(NodeId{4}),
                  [&](NodeId at, const Packet&, sim::Duration elapsed) {
                    delivered = true;
                    EXPECT_EQ(at, NodeId{4});
                    EXPECT_EQ(elapsed, sim::Duration::millis(12));  // 4 hops x 3ms
                  });
  f.simulator.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.engine.packets_delivered(), 1u);
  EXPECT_EQ(f.engine.packets_forwarded(), 4u);
}

TEST(DeliveryEngine, LocalDeliveryIsImmediate) {
  Fixture f(3, sim::Duration::millis(1));
  bool delivered = false;
  f.engine.inject(NodeId{1}, f.packet_to(NodeId{1}),
                  [&](NodeId at, const Packet&, sim::Duration elapsed) {
                    delivered = true;
                    EXPECT_EQ(at, NodeId{1});
                    EXPECT_EQ(elapsed, sim::Duration::zero());
                  });
  EXPECT_TRUE(delivered);  // synchronous: no events needed
}

TEST(DeliveryEngine, TtlExpiryDrops) {
  Fixture f(6, sim::Duration::millis(1));
  bool dropped = false;
  f.engine.inject(
      NodeId{0}, f.packet_to(NodeId{5}, /*ttl=*/2),
      [&](NodeId, const Packet&, sim::Duration) { FAIL() << "delivered"; },
      [&](Network::TraceResult::Outcome reason, NodeId at, const Packet&) {
        dropped = true;
        EXPECT_EQ(reason, Network::TraceResult::Outcome::kTtlExpired);
        EXPECT_EQ(at, NodeId{2});  // two hops in
      });
  f.simulator.run();
  EXPECT_TRUE(dropped);
  EXPECT_EQ(f.engine.packets_dropped(), 1u);
}

TEST(DeliveryEngine, NoRouteDrops) {
  Fixture f(3, sim::Duration::millis(1));
  bool dropped = false;
  Packet p;
  Ipv4Header h;
  h.dst = Ipv4Addr{0, 99, 0, 1};  // unknown destination
  p.push(HeaderLayer::ipv4(h));
  f.engine.inject(
      NodeId{0}, std::move(p),
      [&](NodeId, const Packet&, sim::Duration) { FAIL(); },
      [&](Network::TraceResult::Outcome reason, NodeId, const Packet&) {
        dropped = true;
        EXPECT_EQ(reason, Network::TraceResult::Outcome::kNoRoute);
      });
  f.simulator.run();
  EXPECT_TRUE(dropped);
}

TEST(DeliveryEngine, LinkFailureMidFlightDrops) {
  Fixture f(4, sim::Duration::millis(5));
  bool dropped = false;
  bool delivered = false;
  f.engine.inject(
      NodeId{0}, f.packet_to(NodeId{3}),
      [&](NodeId, const Packet&, sim::Duration) { delivered = true; },
      [&](Network::TraceResult::Outcome reason, NodeId, const Packet&) {
        dropped = true;
        EXPECT_EQ(reason, Network::TraceResult::Outcome::kLinkDown);
      });
  // Fail the last link while the packet is in flight (before it arrives).
  f.simulator.schedule_after(sim::Duration::millis(7), [&] {
    f.network.topology().set_link_up(LinkId{2}, false);
  });
  f.simulator.run();
  EXPECT_TRUE(dropped);
  EXPECT_FALSE(delivered);
}

TEST(DeliveryEngine, ManyConcurrentPackets) {
  Fixture f(8, sim::Duration::millis(1));
  int received = 0;
  for (int i = 0; i < 100; ++i) {
    f.engine.inject(NodeId{0}, f.packet_to(NodeId{7}),
                    [&](NodeId, const Packet&, sim::Duration) { ++received; });
  }
  f.simulator.run();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(f.engine.packets_delivered(), 100u);
}

TEST(DeliveryEngine, PayloadIdSurvives) {
  Fixture f(3, sim::Duration::millis(1));
  auto p = f.packet_to(NodeId{2});
  p.payload_id = 424242;
  bool checked = false;
  f.engine.inject(NodeId{0}, std::move(p),
                  [&](NodeId, const Packet& arrived, sim::Duration) {
                    checked = true;
                    EXPECT_EQ(arrived.payload_id, 424242u);
                  });
  f.simulator.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace evo::net
