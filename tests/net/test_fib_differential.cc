// Differential property test: the binary-trie FIB against a brute-force
// longest-prefix-match reference, over randomized prefix sets and
// lookups, including inserts, replacements, and removals.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "net/fib.h"
#include "sim/random.h"

namespace evo::net {
namespace {

/// Brute-force reference: linear scan for the longest matching prefix.
class ReferenceFib {
 public:
  void insert(const FibEntry& entry) { entries_[entry.prefix] = entry; }
  bool remove(const Prefix& prefix) { return entries_.erase(prefix) > 0; }

  std::optional<FibEntry> lookup(Ipv4Addr addr) const {
    std::optional<FibEntry> best;
    for (const auto& [prefix, entry] : entries_) {
      if (!prefix.contains(addr)) continue;
      if (!best || prefix.length() > best->prefix.length()) best = entry;
    }
    return best;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<Prefix, FibEntry> entries_;
};

Prefix random_prefix(sim::Rng& rng) {
  // Cluster prefixes so nesting and sibling collisions actually happen.
  const auto base = static_cast<std::uint32_t>(rng.uniform_int(0, 15)) << 28;
  const auto bits = base | static_cast<std::uint32_t>(rng.next_u64() & 0x0FFFFFFF);
  const auto length = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
  return Prefix{Ipv4Addr{bits}, length};
}

TEST(FibDifferential, RandomOperationsMatchReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng{seed * 7919};
    Fib fib;
    ReferenceFib reference;
    std::vector<Prefix> inserted;

    for (int op = 0; op < 2000; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.55 || inserted.empty()) {
        FibEntry entry;
        entry.prefix = random_prefix(rng);
        entry.next_hop = NodeId{static_cast<std::uint32_t>(op)};
        entry.origin = RouteOrigin::kStatic;
        fib.insert(entry);
        reference.insert(entry);
        inserted.push_back(entry.prefix);
      } else if (dice < 0.75) {
        // Replace an existing prefix with a new next hop.
        const Prefix target = rng.pick(inserted);
        FibEntry entry;
        entry.prefix = target;
        entry.next_hop = NodeId{static_cast<std::uint32_t>(op + 100000)};
        fib.insert(entry);
        reference.insert(entry);
      } else {
        const Prefix target = rng.pick(inserted);
        EXPECT_EQ(fib.remove(target), reference.remove(target));
      }

      // Probe a few random addresses (biased into the clustered space).
      for (int probe = 0; probe < 4; ++probe) {
        const Ipv4Addr addr{static_cast<std::uint32_t>(rng.next_u64())};
        const auto* got = fib.lookup(addr);
        const auto expected = reference.lookup(addr);
        ASSERT_EQ(got != nullptr, expected.has_value())
            << "seed " << seed << " op " << op << " addr " << addr.to_string();
        if (got != nullptr) {
          EXPECT_EQ(got->prefix, expected->prefix);
          EXPECT_EQ(got->next_hop, expected->next_hop);
        }
      }
    }
    EXPECT_EQ(fib.size(), reference.size()) << "seed " << seed;
  }
}

TEST(FibDifferential, EntriesEnumerationMatchesReferenceSize) {
  sim::Rng rng{424242};
  Fib fib;
  ReferenceFib reference;
  for (int i = 0; i < 500; ++i) {
    FibEntry entry;
    entry.prefix = random_prefix(rng);
    entry.next_hop = NodeId{static_cast<std::uint32_t>(i)};
    fib.insert(entry);
    reference.insert(entry);
  }
  EXPECT_EQ(fib.entries().size(), reference.size());
}

}  // namespace
}  // namespace evo::net
