#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace evo::net {
namespace {

TEST(Waxman, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Topology topo;
    const auto d = topo.add_domain("wax", /*stub=*/true);
    sim::Rng rng{seed};
    WaxmanParams params;
    params.routers = 20;
    params.alpha = 0.3;  // sparse: stitching must engage
    params.beta = 0.15;
    populate_domain_waxman(topo, d, params, rng);
    EXPECT_EQ(topo.router_count(), 20u);
    EXPECT_EQ(connected_components(topo.physical_graph()).count, 1u) << seed;
  }
}

TEST(Waxman, DeterministicForSeed) {
  auto build = [] {
    Topology topo;
    const auto d = topo.add_domain("wax");
    sim::Rng rng{77};
    populate_domain_waxman(topo, d, {}, rng);
    return topo;
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].cost, b.links()[i].cost);
  }
}

TEST(Waxman, DensityFollowsAlpha) {
  auto count_links = [](double alpha) {
    Topology topo;
    const auto d = topo.add_domain("wax");
    sim::Rng rng{5};
    WaxmanParams params;
    params.routers = 24;
    params.alpha = alpha;
    populate_domain_waxman(topo, d, params, rng);
    return topo.link_count();
  };
  EXPECT_LT(count_links(0.2), count_links(0.9));
}

TEST(Waxman, CostsReflectDistance) {
  Topology topo;
  const auto d = topo.add_domain("wax");
  sim::Rng rng{9};
  WaxmanParams params;
  params.routers = 16;
  params.cost_scale = 10.0;
  populate_domain_waxman(topo, d, params, rng);
  // All costs in [1, ceil(sqrt(2)*10)].
  for (const auto& link : topo.links()) {
    EXPECT_GE(link.cost, 1u);
    EXPECT_LE(link.cost, 15u);
  }
}

TEST(Waxman, SingleRouterDegenerate) {
  Topology topo;
  const auto d = topo.add_domain("wax");
  sim::Rng rng{1};
  WaxmanParams params;
  params.routers = 1;
  populate_domain_waxman(topo, d, params, rng);
  EXPECT_EQ(topo.router_count(), 1u);
  EXPECT_EQ(topo.link_count(), 0u);
}

TEST(Waxman, TransitStubWithWaxmanInteriors) {
  const auto topo = generate_transit_stub({.transit_domains = 2,
                                           .stubs_per_transit = 2,
                                           .waxman_interiors = true,
                                           .seed = 77});
  EXPECT_EQ(connected_components(topo.physical_graph()).count, 1u);
  EXPECT_EQ(topo.domain_count(), 6u);
}

}  // namespace
}  // namespace evo::net
