#include "net/packet.h"

#include <gtest/gtest.h>

namespace evo::net {
namespace {

TEST(Packet, PushPopStack) {
  Packet p;
  EXPECT_TRUE(p.empty());
  Ipv4Header h;
  h.src = Ipv4Addr{1};
  h.dst = Ipv4Addr{2};
  p.push(HeaderLayer::ipv4(h));
  EXPECT_EQ(p.depth(), 1u);
  EXPECT_EQ(p.outer().kind, HeaderLayer::Kind::kIpv4);
  const auto popped = p.pop();
  EXPECT_EQ(popped.v4.dst, Ipv4Addr{2});
  EXPECT_TRUE(p.empty());
}

TEST(Packet, EncapsulationOrder) {
  IpvNHeader inner;
  inner.src = IpvNAddr::native(8, 1, 2, 3);
  inner.dst = IpvNAddr::self(8, Ipv4Addr{10, 0, 0, 1});
  Packet p = make_encapsulated(inner, Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2});
  ASSERT_EQ(p.depth(), 2u);
  // Outermost is the v4 header addressed to the anycast address.
  EXPECT_EQ(p.outer().kind, HeaderLayer::Kind::kIpv4);
  EXPECT_EQ(p.outer().v4.dst, (Ipv4Addr{2, 2, 2, 2}));
  EXPECT_EQ(p.outer().v4.proto, Ipv4Header::Proto::kIpvNEncap);
  // Decapsulating exposes the IPvN header.
  p.pop();
  EXPECT_EQ(p.outer().kind, HeaderLayer::Kind::kIpvN);
  EXPECT_EQ(p.outer().vn.dst.embedded_v4(), (Ipv4Addr{10, 0, 0, 1}));
}

TEST(Packet, NestedTunnels) {
  IpvNHeader inner;
  Packet p = make_encapsulated(inner, Ipv4Addr{1}, Ipv4Addr{2});
  // vN-Bone tunnel pushes another v4 header.
  Ipv4Header tunnel;
  tunnel.dst = Ipv4Addr{3};
  p.push(HeaderLayer::ipv4(tunnel));
  EXPECT_EQ(p.depth(), 3u);
  EXPECT_EQ(p.outer().v4.dst, Ipv4Addr{3});
  p.pop();
  EXPECT_EQ(p.outer().v4.dst, Ipv4Addr{2});
}

TEST(Packet, LegacyDstOption) {
  IpvNHeader h;
  EXPECT_FALSE(h.has_legacy_dst);
  h.legacy_dst = Ipv4Addr{10, 0, 0, 1};
  h.has_legacy_dst = true;
  Packet p;
  p.push(HeaderLayer::ipvn(h));
  EXPECT_TRUE(p.outer().vn.has_legacy_dst);
}

TEST(Packet, DescribeRendersStack) {
  IpvNHeader inner;
  inner.src = IpvNAddr::self(8, Ipv4Addr{10, 0, 0, 1});
  inner.dst = IpvNAddr::self(8, Ipv4Addr{10, 0, 0, 2});
  Packet p = make_encapsulated(inner, Ipv4Addr{1, 0, 0, 1}, Ipv4Addr{2, 0, 0, 1});
  const auto text = p.describe();
  EXPECT_NE(text.find("v4[1.0.0.1 -> 2.0.0.1]"), std::string::npos);
  EXPECT_NE(text.find("vN["), std::string::npos);
}

TEST(Packet, EmptyDescribe) {
  EXPECT_EQ(Packet{}.describe(), "<empty>");
}

TEST(Packet, PayloadIdPreserved) {
  IpvNHeader inner;
  Packet p = make_encapsulated(inner, Ipv4Addr{1}, Ipv4Addr{2});
  p.payload_id = 777;
  EXPECT_EQ(p.payload_id, 777u);
}

}  // namespace
}  // namespace evo::net
