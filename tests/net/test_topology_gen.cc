#include "net/topology_gen.h"

#include <gtest/gtest.h>

namespace evo::net {
namespace {

TEST(SingleDomainShapes, Line) {
  const auto topo = single_domain_line(4, 2);
  EXPECT_EQ(topo.router_count(), 4u);
  EXPECT_EQ(topo.link_count(), 3u);
  const auto g = topo.physical_graph();
  const auto paths = dijkstra(g, NodeId{0});
  EXPECT_EQ(paths.distance_to(NodeId{3}), 6u);
}

TEST(SingleDomainShapes, Ring) {
  const auto topo = single_domain_ring(6);
  EXPECT_EQ(topo.link_count(), 6u);
  const auto paths = dijkstra(topo.physical_graph(), NodeId{0});
  EXPECT_EQ(paths.distance_to(NodeId{3}), 3u);  // either way round
}

TEST(SingleDomainShapes, Star) {
  const auto topo = single_domain_star(5);
  EXPECT_EQ(topo.router_count(), 6u);
  EXPECT_EQ(topo.link_count(), 5u);
  const auto paths = dijkstra(topo.physical_graph(), NodeId{1});
  EXPECT_EQ(paths.distance_to(NodeId{2}), 2u);  // leaf-hub-leaf
}

TEST(SingleDomainShapes, Grid) {
  const auto topo = single_domain_grid(3, 3);
  EXPECT_EQ(topo.router_count(), 9u);
  EXPECT_EQ(topo.link_count(), 12u);
  const auto paths = dijkstra(topo.physical_graph(), NodeId{0});
  EXPECT_EQ(paths.distance_to(NodeId{8}), 4u);  // manhattan distance
}

TEST(TransitStub, ShapeAndConnectivity) {
  TransitStubParams params;
  params.transit_domains = 3;
  params.stubs_per_transit = 2;
  params.seed = 7;
  const auto topo = generate_transit_stub(params);
  EXPECT_EQ(topo.domain_count(), 3u + 6u);
  // Every router reachable from every other.
  const auto comps = connected_components(topo.physical_graph());
  EXPECT_EQ(comps.count, 1u);
  // Stubs are flagged.
  std::size_t stubs = 0;
  for (const auto& d : topo.domains()) {
    if (d.stub) ++stubs;
  }
  EXPECT_EQ(stubs, 6u);
}

TEST(TransitStub, DeterministicForSeed) {
  TransitStubParams params;
  params.seed = 42;
  const auto a = generate_transit_stub(params);
  const auto b = generate_transit_stub(params);
  EXPECT_EQ(a.router_count(), b.router_count());
  EXPECT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
    EXPECT_EQ(a.links()[i].cost, b.links()[i].cost);
  }
}

TEST(TransitStub, DifferentSeedsDiffer) {
  TransitStubParams params;
  params.seed = 1;
  const auto a = generate_transit_stub(params);
  params.seed = 2;
  const auto b = generate_transit_stub(params);
  // Same shape parameters but different wiring/costs somewhere.
  bool differs = a.link_count() != b.link_count();
  for (std::size_t i = 0; !differs && i < a.link_count(); ++i) {
    differs = a.links()[i].cost != b.links()[i].cost ||
              a.links()[i].a != b.links()[i].a;
  }
  EXPECT_TRUE(differs);
}

TEST(TransitStub, StubsAreCustomersOfTransits) {
  TransitStubParams params;
  params.transit_domains = 2;
  params.stubs_per_transit = 3;
  params.multihoming_probability = 0.0;
  params.seed = 5;
  const auto topo = generate_transit_stub(params);
  for (const auto& d : topo.domains()) {
    if (!d.stub) continue;
    ASSERT_EQ(d.peerings.size(), 1u);
    EXPECT_EQ(d.peerings[0].relationship, Relationship::kProvider);
    EXPECT_FALSE(topo.domain(d.peerings[0].neighbor).stub);
  }
}

TEST(TransitStub, SingleTransitWorks) {
  TransitStubParams params;
  params.transit_domains = 1;
  params.stubs_per_transit = 3;
  params.seed = 3;
  const auto topo = generate_transit_stub(params);
  EXPECT_EQ(topo.domain_count(), 4u);
  EXPECT_EQ(connected_components(topo.physical_graph()).count, 1u);
}

TEST(BarabasiAlbert, ConnectedAndScaleFreeIsh) {
  BarabasiAlbertParams params;
  params.domains = 40;
  params.edges_per_new_domain = 2;
  params.seed = 11;
  const auto topo = generate_barabasi_albert(params);
  EXPECT_EQ(topo.domain_count(), 40u);
  EXPECT_EQ(connected_components(topo.physical_graph()).count, 1u);
  // Preferential attachment: max domain degree well above the minimum.
  std::size_t max_degree = 0;
  for (const auto& d : topo.domains()) {
    max_degree = std::max(max_degree, d.peerings.size());
  }
  EXPECT_GE(max_degree, 6u);
}

TEST(PopulateDomain, ConnectedRing) {
  Topology topo;
  const auto d = topo.add_domain("a");
  sim::Rng rng{3};
  IntraDomainParams params;
  params.routers = 8;
  params.chord_probability = 0.0;
  populate_domain(topo, d, params, rng);
  EXPECT_EQ(topo.router_count(), 8u);
  EXPECT_EQ(topo.link_count(), 8u);  // pure ring
  EXPECT_EQ(connected_components(topo.physical_graph()).count, 1u);
}

TEST(PopulateDomain, SingleRouterNoLinks) {
  Topology topo;
  const auto d = topo.add_domain("a");
  sim::Rng rng{3};
  IntraDomainParams params;
  params.routers = 1;
  populate_domain(topo, d, params, rng);
  EXPECT_EQ(topo.link_count(), 0u);
}

TEST(PopulateDomain, TwoRoutersSingleLink) {
  Topology topo;
  const auto d = topo.add_domain("a");
  sim::Rng rng{3};
  IntraDomainParams params;
  params.routers = 2;
  populate_domain(topo, d, params, rng);
  EXPECT_EQ(topo.link_count(), 1u);
}

TEST(AttachHosts, PrefersStubs) {
  TransitStubParams params;
  params.transit_domains = 2;
  params.stubs_per_transit = 2;
  params.seed = 9;
  auto topo = generate_transit_stub(params);
  sim::Rng rng{1};
  attach_hosts(topo, 2, rng);
  EXPECT_EQ(topo.host_count(), 8u);  // 4 stubs x 2 hosts
  for (const auto& h : topo.hosts()) {
    EXPECT_TRUE(topo.domain(topo.router(h.access_router).domain).stub);
  }
}

TEST(AttachHosts, FallsBackWithoutStubs) {
  BarabasiAlbertParams params;
  params.domains = 5;
  params.seed = 2;
  auto topo = generate_barabasi_albert(params);
  sim::Rng rng{1};
  attach_hosts(topo, 1, rng);
  EXPECT_EQ(topo.host_count(), 5u);  // every domain
}

}  // namespace
}  // namespace evo::net
