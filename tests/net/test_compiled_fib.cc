// Differential property tests: CompiledFib (flat range LPM) against the
// authoritative binary trie, over randomized prefix sets — inserts,
// removals, origin flushes, overlapping prefixes, default routes — and
// across epoch-invalidated recompiles. The trie itself is differentially
// tested against a brute-force reference in test_fib_differential.cc, so
// agreement here closes the chain back to first principles.
#include <gtest/gtest.h>

#include <vector>

#include "net/compiled_fib.h"
#include "net/fib.h"
#include "sim/random.h"

namespace evo::net {
namespace {

FibEntry entry(const char* prefix, std::uint32_t next_hop,
               RouteOrigin origin = RouteOrigin::kStatic) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.next_hop = NodeId{next_hop};
  e.origin = origin;
  return e;
}

Prefix random_prefix(sim::Rng& rng) {
  // Cluster prefixes so nesting and sibling collisions actually happen.
  const auto base = static_cast<std::uint32_t>(rng.uniform_int(0, 15)) << 28;
  const auto bits = base | static_cast<std::uint32_t>(rng.next_u64() & 0x0FFFFFFF);
  const auto length = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
  return Prefix{Ipv4Addr{bits}, length};
}

/// The compiled table must agree with the trie on every probe: same
/// hit/miss, and the identical winning entry.
void expect_agreement(const Fib& fib, const CompiledFib& compiled,
                      sim::Rng& rng, int probes) {
  for (int i = 0; i < probes; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng.next_u64())};
    const FibEntry* from_trie = fib.lookup(addr);
    const FibEntry* from_flat = compiled.lookup(addr);
    ASSERT_EQ(from_trie != nullptr, from_flat != nullptr)
        << "addr " << addr.to_string();
    if (from_trie != nullptr) {
      EXPECT_EQ(*from_trie, *from_flat) << "addr " << addr.to_string();
    }
  }
  // Boundary probes: the first/last address of every compiled entry's
  // prefix, where off-by-one range errors would hide.
  fib.for_each([&](const FibEntry& e) {
    const std::uint32_t lo = e.prefix.address().bits();
    const std::uint32_t span =
        e.prefix.length() == 0
            ? 0xFFFFFFFFu
            : static_cast<std::uint32_t>(
                  (std::uint64_t{1} << (32 - e.prefix.length())) - 1);
    for (const Ipv4Addr addr : {Ipv4Addr{lo}, Ipv4Addr{lo + span}}) {
      const FibEntry* from_trie = fib.lookup(addr);
      const FibEntry* from_flat = compiled.lookup(addr);
      ASSERT_EQ(from_trie != nullptr, from_flat != nullptr)
          << "boundary " << addr.to_string();
      if (from_trie != nullptr) {
        EXPECT_EQ(*from_trie, *from_flat);
      }
    }
  });
}

TEST(CompiledFib, EmptyTableMissesEverything) {
  Fib fib;
  CompiledFib compiled;
  compiled.compile(fib);
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 0, 0, 1}), nullptr);
  EXPECT_EQ(compiled.entry_count(), 0u);
  EXPECT_EQ(compiled.epoch(), fib.epoch());
}

TEST(CompiledFib, UncompiledLookupIsNull) {
  CompiledFib compiled;
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 0, 0, 1}), nullptr);
  EXPECT_EQ(compiled.epoch(), 0u);
}

TEST(CompiledFib, NestedOverlappingAndDefaultRoutes) {
  Fib fib;
  fib.insert(entry("0.0.0.0/0", 1));
  fib.insert(entry("10.0.0.0/8", 2));
  fib.insert(entry("10.1.0.0/16", 3));
  fib.insert(entry("10.1.2.0/24", 4));
  fib.insert(entry("10.1.2.3/32", 5));
  fib.insert(entry("255.255.255.255/32", 6));
  CompiledFib compiled;
  compiled.compile(fib);
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 1, 2, 3})->next_hop, NodeId{5});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 1, 2, 9})->next_hop, NodeId{4});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 1, 9, 9})->next_hop, NodeId{3});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 9, 9, 9})->next_hop, NodeId{2});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{99, 9, 9, 9})->next_hop, NodeId{1});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{255, 255, 255, 255})->next_hop, NodeId{6});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{0, 0, 0, 0})->next_hop, NodeId{1});
}

TEST(CompiledFib, StaleEpochDetectedAndRecompileCatchesUp) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  CompiledFib compiled;
  compiled.compile(fib);
  EXPECT_EQ(compiled.epoch(), fib.epoch());

  // Mutate: epochs diverge; the stale table still answers from the old
  // snapshot until recompiled (Network recompiles on epoch mismatch).
  fib.insert(entry("10.1.0.0/16", 2));
  EXPECT_NE(compiled.epoch(), fib.epoch());
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 1, 0, 1})->next_hop, NodeId{1});

  compiled.compile(fib);
  EXPECT_EQ(compiled.epoch(), fib.epoch());
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 1, 0, 1})->next_hop, NodeId{2});
}

class CompiledFibDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledFibDifferential, RandomizedChurnMatchesTrie) {
  sim::Rng rng{GetParam() * 6271};
  Fib fib;
  CompiledFib compiled;
  std::vector<Prefix> inserted;

  for (int op = 0; op < 600; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.50 || inserted.empty()) {
      FibEntry e;
      e.prefix = random_prefix(rng);
      e.next_hop = NodeId{static_cast<std::uint32_t>(op)};
      // Mix origins so origin flushes below have bite.
      e.origin = rng.uniform() < 0.5 ? RouteOrigin::kIgp : RouteOrigin::kBgp;
      fib.insert(e);
      inserted.push_back(e.prefix);
    } else if (dice < 0.70) {
      // Replace an existing prefix with a different next hop.
      FibEntry e;
      e.prefix = rng.pick(inserted);
      e.next_hop = NodeId{static_cast<std::uint32_t>(op + 100000)};
      fib.insert(e);
    } else if (dice < 0.90) {
      fib.remove(rng.pick(inserted));
    } else {
      // Origin flush, the control-plane reinstall pattern.
      fib.remove_origin(rng.uniform() < 0.5 ? RouteOrigin::kIgp
                                            : RouteOrigin::kBgp);
    }

    // Recompile only when the epoch says so — exercising exactly the
    // staleness protocol Network relies on — then demand agreement.
    if (compiled.epoch() != fib.epoch()) compiled.compile(fib);
    expect_agreement(fib, compiled, rng, 8);
  }

  fib.clear();
  if (compiled.epoch() != fib.epoch()) compiled.compile(fib);
  EXPECT_EQ(compiled.lookup(Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())}),
            nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledFibDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CompiledFib, NoOpReinstallKeepsEpochAndCompiledTable) {
  // The control-plane pattern: replace_origins with an identical table must
  // not move the epoch, so the compiled table stays valid (no recompile).
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1, RouteOrigin::kIgp));
  fib.insert(entry("10.1.0.0/16", 2, RouteOrigin::kAnycast));
  fib.insert(entry("192.168.0.0/16", 3, RouteOrigin::kConnected));
  CompiledFib compiled;
  compiled.compile(fib);
  const std::uint64_t before = fib.epoch();

  const std::vector<FibEntry> same = {
      entry("10.0.0.0/8", 1, RouteOrigin::kIgp),
      entry("10.1.0.0/16", 2, RouteOrigin::kAnycast),
  };
  fib.replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast}, same);
  EXPECT_EQ(fib.epoch(), before);
  EXPECT_EQ(compiled.epoch(), fib.epoch());

  // A genuinely different table must invalidate.
  const std::vector<FibEntry> different = {
      entry("10.0.0.0/8", 9, RouteOrigin::kIgp),
  };
  fib.replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast}, different);
  EXPECT_NE(fib.epoch(), before);
  EXPECT_NE(compiled.epoch(), fib.epoch());
  compiled.compile(fib);
  EXPECT_EQ(compiled.lookup(Ipv4Addr{10, 1, 0, 1})->next_hop, NodeId{9});
  EXPECT_EQ(compiled.lookup(Ipv4Addr{192, 168, 0, 1})->next_hop, NodeId{3});
}

}  // namespace
}  // namespace evo::net
