#include "net/address.h"

#include <gtest/gtest.h>

namespace evo::net {
namespace {

TEST(Ipv4Addr, OctetConstruction) {
  const Ipv4Addr a{10, 1, 2, 3};
  EXPECT_EQ(a.bits(), 0x0A010203u);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
}

TEST(Ipv4Addr, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "10.0.0.1", "192.168.1.42"}) {
    const auto parsed = Ipv4Addr::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->to_string(), text);
  }
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                           "1..2.3", "1.2.3.4 ", "1.2.3.-4", "0001.2.3.4"}) {
    EXPECT_FALSE(Ipv4Addr::parse(text).has_value()) << text;
  }
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr{0}, Ipv4Addr{1});
  EXPECT_LT((Ipv4Addr{10, 0, 0, 1}), (Ipv4Addr{10, 0, 0, 2}));
}

TEST(Prefix, Canonicalization) {
  const Prefix p{Ipv4Addr{10, 1, 2, 3}, 16};
  EXPECT_EQ(p.address(), (Ipv4Addr{10, 1, 0, 0}));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ContainsAddress) {
  const Prefix p{Ipv4Addr{10, 1, 0, 0}, 16};
  EXPECT_TRUE(p.contains(Ipv4Addr{10, 1, 200, 9}));
  EXPECT_FALSE(p.contains(Ipv4Addr{10, 2, 0, 0}));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix wide{Ipv4Addr{10, 0, 0, 0}, 8};
  const Prefix narrow{Ipv4Addr{10, 1, 0, 0}, 16};
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(wide));
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  const Prefix all{Ipv4Addr{0}, 0};
  EXPECT_TRUE(all.contains(Ipv4Addr{255, 255, 255, 255}));
  EXPECT_TRUE(all.contains(Ipv4Addr{0}));
}

TEST(Prefix, HostRoute) {
  const auto p = Prefix::host(Ipv4Addr{1, 2, 3, 4});
  EXPECT_EQ(p.length(), 32);
  EXPECT_TRUE(p.contains(Ipv4Addr{1, 2, 3, 4}));
  EXPECT_FALSE(p.contains(Ipv4Addr{1, 2, 3, 5}));
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
  EXPECT_FALSE(Prefix::parse("10.1.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.1.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.1.0.0/ab").has_value());
}

TEST(IpvNAddr, NativeFields) {
  const auto a = IpvNAddr::native(8, /*domain=*/42, /*node=*/7, /*host=*/3);
  EXPECT_FALSE(a.is_self_address());
  EXPECT_EQ(a.version(), 8);
  EXPECT_EQ(a.native_domain(), 42u);
  EXPECT_EQ(a.native_node(), 7u);
  EXPECT_EQ(a.native_host(), 3u);
}

TEST(IpvNAddr, SelfAddressEmbedsV4) {
  const Ipv4Addr v4{10, 1, 0, 2};
  const auto a = IpvNAddr::self(8, v4);
  EXPECT_TRUE(a.is_self_address());
  EXPECT_EQ(a.version(), 8);
  EXPECT_EQ(a.embedded_v4(), v4);
}

TEST(IpvNAddr, SelfAndNativeNeverCollide) {
  // The flag bit separates the two allocation families.
  const auto self = IpvNAddr::self(8, Ipv4Addr{1});
  const auto native = IpvNAddr::native(8, 0, 0, 1);
  EXPECT_NE(self, native);
}

TEST(IpvNAddr, ToStringShapes) {
  const auto self = IpvNAddr::self(8, Ipv4Addr{10, 0, 0, 1});
  EXPECT_EQ(self.to_string(), "v8:self:10.0.0.1");
  const auto native = IpvNAddr::native(9, 1, 2, 3);
  EXPECT_EQ(native.to_string().substr(0, 3), "v9:");
}

TEST(IpvNAddr, Unspecified) {
  EXPECT_TRUE(IpvNAddr{}.is_unspecified());
  EXPECT_FALSE(IpvNAddr::native(8, 0, 0, 1).is_unspecified());
}

TEST(IpvNPrefix, ContainsNativeBlock) {
  // /40 covers flag+version+domain: all addresses of one domain.
  const IpvNPrefix block{IpvNAddr::native(8, 42, 0, 0), 40};
  EXPECT_TRUE(block.contains(IpvNAddr::native(8, 42, 9, 17)));
  EXPECT_FALSE(block.contains(IpvNAddr::native(8, 43, 0, 0)));
  EXPECT_FALSE(block.contains(IpvNAddr::native(9, 42, 0, 0)));
  EXPECT_FALSE(block.contains(IpvNAddr::self(8, Ipv4Addr{1})));
}

TEST(IpvNPrefix, HostRouteExactMatch) {
  const auto a = IpvNAddr::native(8, 1, 2, 3);
  const auto p = IpvNPrefix::host(a);
  EXPECT_TRUE(p.contains(a));
  EXPECT_FALSE(p.contains(IpvNAddr::native(8, 1, 2, 4)));
}

TEST(IpvNPrefix, CanonicalizesLowBits) {
  const IpvNPrefix p{IpvNAddr::native(8, 42, 9, 17), 40};
  EXPECT_EQ(p.address().native_node(), 0u);
  EXPECT_EQ(p.address().native_host(), 0u);
}

TEST(IpvNPrefix, LengthsAcrossWordBoundary) {
  const IpvNAddr a{0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL};
  for (std::uint8_t len : {0, 1, 63, 64, 65, 127, 128}) {
    const IpvNPrefix p{a, len};
    EXPECT_TRUE(p.contains(a)) << static_cast<int>(len);
  }
  const IpvNPrefix p64{a, 64};
  EXPECT_TRUE(p64.contains(IpvNAddr{0xFFFFFFFFFFFFFFFFULL, 0}));
  const IpvNPrefix p65{a, 65};
  EXPECT_FALSE(p65.contains(IpvNAddr{0xFFFFFFFFFFFFFFFFULL, 0}));
}

}  // namespace
}  // namespace evo::net
