#include "net/ids.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

namespace evo::net {
namespace {

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  const NodeId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_GT(NodeId::invalid(), NodeId{0});  // sentinel sorts last
}

TEST(Ids, DistinctTagTypesDontMix) {
  // NodeId and DomainId must be different types (compile-time property).
  static_assert(!std::is_same_v<NodeId, DomainId>);
  static_assert(!std::is_same_v<LinkId, GroupId>);
  static_assert(!std::is_convertible_v<NodeId, DomainId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId{1}));
  EXPECT_FALSE(set.contains(NodeId{3}));
}

}  // namespace
}  // namespace evo::net
