#include "net/fib.h"

#include <gtest/gtest.h>

#include <vector>

namespace evo::net {
namespace {

FibEntry entry(const char* prefix, std::uint32_t next_hop,
               RouteOrigin origin = RouteOrigin::kStatic, Cost metric = 1) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.next_hop = NodeId{next_hop};
  e.out_link = LinkId::invalid();
  e.origin = origin;
  e.metric = metric;
  return e;
}

TEST(Fib, EmptyLookupFails) {
  Fib fib;
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 0, 0, 1}), nullptr);
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, ExactHostRoute) {
  Fib fib;
  fib.insert(entry("10.0.0.1/32", 5));
  const auto* hit = fib.lookup(Ipv4Addr{10, 0, 0, 1});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->next_hop, NodeId{5});
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 0, 0, 2}), nullptr);
}

TEST(Fib, LongestPrefixWins) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  fib.insert(entry("10.1.0.0/16", 2));
  fib.insert(entry("10.1.2.0/24", 3));
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 1, 2, 3})->next_hop, NodeId{3});
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 1, 9, 9})->next_hop, NodeId{2});
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 9, 9, 9})->next_hop, NodeId{1});
}

TEST(Fib, DefaultRouteCatchesAll) {
  Fib fib;
  fib.insert(entry("0.0.0.0/0", 9));
  EXPECT_EQ(fib.lookup(Ipv4Addr{200, 1, 2, 3})->next_hop, NodeId{9});
}

TEST(Fib, InsertReplacesSamePrefix) {
  Fib fib;
  fib.insert(entry("10.0.0.0/16", 1));
  fib.insert(entry("10.0.0.0/16", 2));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 0, 1, 1})->next_hop, NodeId{2});
}

TEST(Fib, RemoveSpecificPrefix) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  fib.insert(entry("10.1.0.0/16", 2));
  EXPECT_TRUE(fib.remove(*Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 1, 0, 1})->next_hop, NodeId{1});
  EXPECT_FALSE(fib.remove(*Prefix::parse("10.1.0.0/16")));
}

TEST(Fib, RemoveOrigin) {
  Fib fib;
  fib.insert(entry("10.0.0.0/16", 1, RouteOrigin::kIgp));
  fib.insert(entry("10.1.0.0/16", 2, RouteOrigin::kIgp));
  fib.insert(entry("10.2.0.0/16", 3, RouteOrigin::kBgp));
  EXPECT_EQ(fib.remove_origin(RouteOrigin::kIgp), 2u);
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.size_with_origin(RouteOrigin::kBgp), 1u);
  EXPECT_EQ(fib.size_with_origin(RouteOrigin::kIgp), 0u);
}

TEST(Fib, FindExactDoesNotLpm) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  EXPECT_EQ(fib.find(*Prefix::parse("10.1.0.0/16")), nullptr);
  EXPECT_NE(fib.find(*Prefix::parse("10.0.0.0/8")), nullptr);
}

TEST(Fib, EntriesEnumeration) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  fib.insert(entry("10.1.0.0/16", 2));
  fib.insert(entry("192.168.0.0/16", 3));
  const auto all = fib.entries();
  EXPECT_EQ(all.size(), 3u);
}

TEST(Fib, ClearEmptiesTrie) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  fib.clear();
  EXPECT_EQ(fib.size(), 0u);
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 0, 0, 1}), nullptr);
}

TEST(Fib, SiblingPrefixesIndependent) {
  Fib fib;
  fib.insert(entry("10.0.0.0/9", 1));    // 10.0-127
  fib.insert(entry("10.128.0.0/9", 2));  // 10.128-255
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 5, 0, 0})->next_hop, NodeId{1});
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 200, 0, 0})->next_hop, NodeId{2});
}

TEST(Fib, DumpMentionsOriginAndPrefix) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1, RouteOrigin::kAnycast));
  const auto dump = fib.dump();
  EXPECT_NE(dump.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(dump.find("anycast"), std::string::npos);
}

TEST(Fib, ManyEntriesStress) {
  Fib fib;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    FibEntry e;
    e.prefix = Prefix{Ipv4Addr{(i + 1) << 16}, 16};
    e.next_hop = NodeId{i};
    fib.insert(e);
  }
  EXPECT_EQ(fib.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const auto* hit = fib.lookup(Ipv4Addr{((i + 1) << 16) | 7});
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->next_hop, NodeId{i});
  }
}

TEST(Fib, ForEachVisitsEveryEntryOnce) {
  Fib fib;
  fib.insert(entry("10.0.0.0/8", 1));
  fib.insert(entry("10.1.0.0/16", 2));
  fib.insert(entry("192.168.0.0/16", 3));
  std::size_t seen = 0;
  std::uint32_t hop_sum = 0;
  fib.for_each([&](const FibEntry& e) {
    ++seen;
    hop_sum += e.next_hop.value();
  });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(hop_sum, 6u);
}

TEST(Fib, EpochBumpsOnlyOnContentChange) {
  Fib fib;
  const auto e0 = fib.epoch();
  fib.insert(entry("10.0.0.0/8", 1));
  const auto e1 = fib.epoch();
  EXPECT_GT(e1, e0);

  // Re-inserting the identical entry is a no-op: epoch must not move.
  fib.insert(entry("10.0.0.0/8", 1));
  EXPECT_EQ(fib.epoch(), e1);

  // Same prefix, different next hop: content change.
  fib.insert(entry("10.0.0.0/8", 2));
  const auto e2 = fib.epoch();
  EXPECT_GT(e2, e1);

  // Failed remove is a no-op.
  fib.remove(*Prefix::parse("10.9.0.0/16"));
  EXPECT_EQ(fib.epoch(), e2);
  fib.remove(*Prefix::parse("10.0.0.0/8"));
  const auto e3 = fib.epoch();
  EXPECT_GT(e3, e2);

  // remove_origin and clear on an empty table are no-ops.
  fib.remove_origin(RouteOrigin::kIgp);
  fib.clear();
  EXPECT_EQ(fib.epoch(), e3);
}

TEST(Fib, ReplaceOriginsSwapsAtomically) {
  Fib fib;
  fib.insert(entry("10.0.0.0/16", 1, RouteOrigin::kIgp));
  fib.insert(entry("10.1.0.0/16", 2, RouteOrigin::kIgp));
  fib.insert(entry("192.168.0.0/16", 3, RouteOrigin::kConnected));

  const std::vector<FibEntry> table = {
      entry("10.2.0.0/16", 4, RouteOrigin::kIgp),
      entry("10.3.0.0/16", 5, RouteOrigin::kAnycast),
  };
  fib.replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast}, table);
  EXPECT_EQ(fib.size(), 3u);
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 0, 0, 1}), nullptr);
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 2, 0, 1})->next_hop, NodeId{4});
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 3, 0, 1})->next_hop, NodeId{5});
  // Origins outside the replaced set survive untouched.
  EXPECT_EQ(fib.lookup(Ipv4Addr{192, 168, 0, 1})->next_hop, NodeId{3});
}

TEST(Fib, ReplaceOriginsIdenticalTableKeepsEpoch) {
  Fib fib;
  fib.insert(entry("10.0.0.0/16", 1, RouteOrigin::kIgp));
  fib.insert(entry("10.1.0.0/16", 2, RouteOrigin::kAnycast));
  const auto before = fib.epoch();

  fib.replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast},
                      std::vector<FibEntry>{
                          entry("10.0.0.0/16", 1, RouteOrigin::kIgp),
                          entry("10.1.0.0/16", 2, RouteOrigin::kAnycast),
                      });
  EXPECT_EQ(fib.epoch(), before);

  // Dropping one entry is a real change even though the rest match.
  fib.replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast},
                      std::vector<FibEntry>{
                          entry("10.0.0.0/16", 1, RouteOrigin::kIgp),
                      });
  EXPECT_GT(fib.epoch(), before);
  EXPECT_EQ(fib.lookup(Ipv4Addr{10, 1, 0, 1}), nullptr);
}

TEST(Fib, MoveSemantics) {
  Fib a;
  a.insert(entry("10.0.0.0/8", 1));
  Fib b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_NE(b.lookup(Ipv4Addr{10, 0, 0, 1}), nullptr);
}

TEST(RouteOrigin, Names) {
  EXPECT_STREQ(to_string(RouteOrigin::kConnected), "connected");
  EXPECT_STREQ(to_string(RouteOrigin::kIgp), "igp");
  EXPECT_STREQ(to_string(RouteOrigin::kBgp), "bgp");
  EXPECT_STREQ(to_string(RouteOrigin::kAnycast), "anycast");
  EXPECT_STREQ(to_string(RouteOrigin::kStatic), "static");
}

}  // namespace
}  // namespace evo::net
