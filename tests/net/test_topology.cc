#include "net/topology.h"

#include <gtest/gtest.h>

namespace evo::net {
namespace {

TEST(Topology, DomainAllocation) {
  Topology topo;
  const auto d0 = topo.add_domain("alpha");
  const auto d1 = topo.add_domain("beta", /*stub=*/true);
  EXPECT_EQ(topo.domain_count(), 2u);
  EXPECT_EQ(topo.domain(d0).name, "alpha");
  EXPECT_FALSE(topo.domain(d0).stub);
  EXPECT_TRUE(topo.domain(d1).stub);
  EXPECT_EQ(topo.domain(d0).prefix.to_string(), "0.1.0.0/16");
  EXPECT_EQ(topo.domain(d1).prefix.to_string(), "0.2.0.0/16");
}

TEST(Topology, RouterLoopbacks) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r0 = topo.add_router(d);
  const auto r1 = topo.add_router(d);
  EXPECT_EQ(topo.router(r0).loopback.to_string(), "0.1.0.1");
  EXPECT_EQ(topo.router(r1).loopback.to_string(), "0.1.1.1");
  EXPECT_EQ(topo.router(r1).index_in_domain, 1u);
  EXPECT_EQ(topo.domain(d).routers.size(), 2u);
}

TEST(Topology, IntraDomainLink) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r0 = topo.add_router(d);
  const auto r1 = topo.add_router(d);
  const auto l = topo.add_link(r0, r1, 5);
  EXPECT_FALSE(topo.link(l).interdomain);
  EXPECT_EQ(topo.link(l).cost, 5u);
  EXPECT_TRUE(topo.link(l).up);
  EXPECT_EQ(topo.link(l).other_end(r0), r1);
  EXPECT_FALSE(topo.router(r0).border);
}

TEST(Topology, InterdomainLinkSetsBorderAndPeering) {
  Topology topo;
  const auto da = topo.add_domain("a");
  const auto db = topo.add_domain("b");
  const auto ra = topo.add_router(da);
  const auto rb = topo.add_router(db);
  topo.add_interdomain_link(ra, rb, Relationship::kCustomer);
  EXPECT_TRUE(topo.router(ra).border);
  EXPECT_TRUE(topo.router(rb).border);
  // From a's view b is a customer; from b's view a is a provider.
  EXPECT_EQ(topo.relationship(da, db), Relationship::kCustomer);
  EXPECT_EQ(topo.relationship(db, da), Relationship::kProvider);
  EXPECT_FALSE(topo.relationship(da, DomainId{99}).has_value());
}

TEST(Topology, ReverseRelationships) {
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kProvider), Relationship::kCustomer);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(Topology, HostAddressing) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r = topo.add_router(d);
  const auto h0 = topo.add_host(r);
  const auto h1 = topo.add_host(r);
  EXPECT_EQ(topo.host(h0).address.to_string(), "0.1.0.2");
  EXPECT_EQ(topo.host(h1).address.to_string(), "0.1.0.3");
  EXPECT_EQ(topo.host(h0).access_router, r);
}

TEST(Topology, DomainOfAddress) {
  Topology topo;
  const auto d0 = topo.add_domain("a");
  const auto d1 = topo.add_domain("b");
  EXPECT_EQ(topo.domain_of_address(Ipv4Addr{0, 1, 50, 1}), d0);
  EXPECT_EQ(topo.domain_of_address(Ipv4Addr{0, 2, 0, 1}), d1);
  EXPECT_FALSE(topo.domain_of_address(Ipv4Addr{0, 0, 0, 1}).has_value());
  EXPECT_FALSE(topo.domain_of_address(Ipv4Addr{0, 3, 0, 1}).has_value());
}

TEST(Topology, RouterByLoopback) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r0 = topo.add_router(d);
  const auto r1 = topo.add_router(d);
  EXPECT_EQ(topo.router_by_loopback(topo.router(r1).loopback), r1);
  EXPECT_EQ(topo.router_by_loopback(topo.router(r0).loopback), r0);
  // Host addresses are not loopbacks.
  const auto h = topo.add_host(r0);
  EXPECT_FALSE(topo.router_by_loopback(topo.host(h).address).has_value());
}

TEST(Topology, HostByAddress) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r = topo.add_router(d);
  const auto h = topo.add_host(r);
  EXPECT_EQ(topo.host_by_address(topo.host(h).address), h);
  EXPECT_FALSE(topo.host_by_address(Ipv4Addr{9, 9, 9, 9}).has_value());
}

TEST(Topology, PhysicalGraphHonorsLinkState) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r0 = topo.add_router(d);
  const auto r1 = topo.add_router(d);
  const auto l = topo.add_link(r0, r1, 3);
  auto g = topo.physical_graph();
  EXPECT_EQ(g.neighbors(r0).size(), 1u);
  topo.set_link_up(l, false);
  g = topo.physical_graph();
  EXPECT_EQ(g.neighbors(r0).size(), 0u);
}

TEST(Topology, DomainGraphExcludesOtherDomains) {
  Topology topo;
  const auto da = topo.add_domain("a");
  const auto db = topo.add_domain("b");
  const auto a0 = topo.add_router(da);
  const auto a1 = topo.add_router(da);
  const auto b0 = topo.add_router(db);
  topo.add_link(a0, a1, 1);
  topo.add_interdomain_link(a1, b0, Relationship::kPeer);
  const auto g = topo.domain_graph(da);
  EXPECT_EQ(g.neighbors(a0).size(), 1u);
  EXPECT_EQ(g.neighbors(a1).size(), 1u);  // interdomain link excluded
  EXPECT_EQ(g.neighbors(b0).size(), 0u);
}

TEST(Topology, DomainLevelGraph) {
  Topology topo;
  const auto da = topo.add_domain("a");
  const auto db = topo.add_domain("b");
  const auto dc = topo.add_domain("c");
  const auto ra = topo.add_router(da);
  const auto rb = topo.add_router(db);
  const auto rc = topo.add_router(dc);
  topo.add_interdomain_link(ra, rb, Relationship::kPeer);
  topo.add_interdomain_link(rb, rc, Relationship::kCustomer);
  const auto g = topo.domain_level_graph();
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.neighbors(NodeId{db.value()}).size(), 2u);
}

TEST(Topology, RouterSubnetContainsItsHosts) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r = topo.add_router(d);
  const auto h = topo.add_host(r);
  const auto subnet = Topology::router_subnet(d, 0);
  EXPECT_TRUE(subnet.contains(topo.host(h).address));
  EXPECT_TRUE(subnet.contains(topo.router(r).loopback));
}

}  // namespace
}  // namespace evo::net
