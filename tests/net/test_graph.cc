#include "net/graph.h"

#include <gtest/gtest.h>

namespace evo::net {
namespace {

Graph line(std::size_t n, Cost cost = 1) {
  Graph g(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    g.add_undirected_edge(NodeId{i}, NodeId{i + 1}, cost);
  }
  return g;
}

TEST(Graph, SizeAndEdges) {
  Graph g = line(4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edge_count(), 6u);  // 3 undirected = 6 directed
  EXPECT_EQ(g.neighbors(NodeId{1}).size(), 2u);
}

TEST(Dijkstra, LineDistances) {
  Graph g = line(5, 2);
  const auto paths = dijkstra(g, NodeId{0});
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(paths.distance_to(NodeId{i}), 2u * i);
  }
}

TEST(Dijkstra, PathExtraction) {
  Graph g = line(4);
  const auto paths = dijkstra(g, NodeId{0});
  const auto path = paths.path_to(NodeId{3});
  ASSERT_EQ(path.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(path[i], NodeId{i});
}

TEST(Dijkstra, UnreachableNode) {
  Graph g(3);
  g.add_undirected_edge(NodeId{0}, NodeId{1}, 1);
  const auto paths = dijkstra(g, NodeId{0});
  EXPECT_FALSE(paths.reachable(NodeId{2}));
  EXPECT_EQ(paths.distance_to(NodeId{2}), kInfiniteCost);
  EXPECT_TRUE(paths.path_to(NodeId{2}).empty());
}

TEST(Dijkstra, PrefersCheaperLongerPath) {
  Graph g(4);
  g.add_undirected_edge(NodeId{0}, NodeId{3}, 10);  // direct but expensive
  g.add_undirected_edge(NodeId{0}, NodeId{1}, 2);
  g.add_undirected_edge(NodeId{1}, NodeId{2}, 2);
  g.add_undirected_edge(NodeId{2}, NodeId{3}, 2);
  const auto paths = dijkstra(g, NodeId{0});
  EXPECT_EQ(paths.distance_to(NodeId{3}), 6u);
  EXPECT_EQ(paths.path_to(NodeId{3}).size(), 4u);
}

TEST(Dijkstra, MultiSourceClosest) {
  Graph g = line(7);
  const NodeId sources[] = {NodeId{0}, NodeId{6}};
  const auto paths = dijkstra(g, std::span<const NodeId>(sources));
  EXPECT_EQ(paths.distance_to(NodeId{2}), 2u);
  EXPECT_EQ(paths.source_of[2].value(), 0u);
  EXPECT_EQ(paths.distance_to(NodeId{5}), 1u);
  EXPECT_EQ(paths.source_of[5].value(), 6u);
}

TEST(Dijkstra, MultiSourceTieGoesToEitherConsistently) {
  Graph g = line(5);
  const NodeId sources[] = {NodeId{0}, NodeId{4}};
  const auto a = dijkstra(g, std::span<const NodeId>(sources));
  const auto b = dijkstra(g, std::span<const NodeId>(sources));
  EXPECT_EQ(a.source_of[2], b.source_of[2]);  // deterministic
  EXPECT_EQ(a.distance_to(NodeId{2}), 2u);
}

TEST(Dijkstra, DuplicateSourcesHandled) {
  Graph g = line(3);
  const NodeId sources[] = {NodeId{0}, NodeId{0}};
  const auto paths = dijkstra(g, std::span<const NodeId>(sources));
  EXPECT_EQ(paths.distance_to(NodeId{2}), 2u);
}

TEST(Dijkstra, SourcePathIsItself) {
  Graph g = line(3);
  const auto paths = dijkstra(g, NodeId{1});
  const auto path = paths.path_to(NodeId{1});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], NodeId{1});
}

TEST(Dijkstra, DirectedEdgesRespected) {
  Graph g(2);
  g.add_edge(NodeId{0}, NodeId{1}, 1);
  EXPECT_TRUE(dijkstra(g, NodeId{0}).reachable(NodeId{1}));
  EXPECT_FALSE(dijkstra(g, NodeId{1}).reachable(NodeId{0}));
}

TEST(ConnectedComponents, SingleComponent) {
  Graph g = line(5);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 1u);
}

TEST(ConnectedComponents, MultipleComponents) {
  Graph g(6);
  g.add_undirected_edge(NodeId{0}, NodeId{1}, 1);
  g.add_undirected_edge(NodeId{2}, NodeId{3}, 1);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 4u);  // {0,1} {2,3} {4} {5}
  EXPECT_EQ(comps.label[0], comps.label[1]);
  EXPECT_EQ(comps.label[2], comps.label[3]);
  EXPECT_NE(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[4], comps.label[5]);
}

TEST(BfsHops, CountsHopsNotCosts) {
  Graph g(3);
  g.add_undirected_edge(NodeId{0}, NodeId{1}, 100);
  g.add_undirected_edge(NodeId{1}, NodeId{2}, 100);
  const auto hops = bfs_hops(g, NodeId{0});
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
}

TEST(Graph, EnsureSizeGrows) {
  Graph g(2);
  g.ensure_size(5);
  EXPECT_EQ(g.size(), 5u);
  g.ensure_size(3);  // no shrink
  EXPECT_EQ(g.size(), 5u);
}

}  // namespace
}  // namespace evo::net
