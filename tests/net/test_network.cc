#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology_gen.h"

namespace evo::net {
namespace {

/// Manually wire static routes along a line so tracing works without any
/// routing protocol.
void wire_line(Network& net) {
  const auto& topo = net.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  for (std::size_t i = 0; i < routers.size(); ++i) {
    auto& fib = net.fib(routers[i]);
    for (std::size_t j = 0; j < routers.size(); ++j) {
      if (i == j) continue;
      const NodeId hop = routers[j > i ? i + 1 : i - 1];
      const LinkId link = [&] {
        for (const LinkId l : topo.router(routers[i]).links) {
          if (topo.link(l).other_end(routers[i]) == hop) return l;
        }
        return LinkId::invalid();
      }();
      const auto& r = topo.router(routers[j]);
      fib.insert(FibEntry{Topology::router_subnet(r.domain, r.index_in_domain), hop,
                          link, RouteOrigin::kStatic, 1});
    }
  }
}

TEST(Network, ConnectedRoutesInstalled) {
  Network net(single_domain_line(3));
  const auto& topo = net.topology();
  const NodeId r0 = topo.domain(DomainId{0}).routers[0];
  // Each router has its loopback /32 and subnet /24.
  EXPECT_EQ(net.fib(r0).size(), 2u);
  EXPECT_TRUE(net.delivers_locally(r0, topo.router(r0).loopback));
}

TEST(Network, SelfDelivery) {
  Network net(single_domain_line(2));
  const NodeId r0 = net.topology().domain(DomainId{0}).routers[0];
  const auto result = net.trace(r0, net.topology().router(r0).loopback);
  EXPECT_TRUE(result.delivered());
  EXPECT_EQ(result.delivered_at, r0);
  EXPECT_EQ(result.cost, 0u);
  EXPECT_EQ(result.hop_count(), 0u);
}

TEST(Network, TraceAlongStaticRoutes) {
  Network net(single_domain_line(4, 2));
  wire_line(net);
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const auto result =
      net.trace(routers[0], net.topology().router(routers[3]).loopback);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.delivered_at, routers[3]);
  EXPECT_EQ(result.cost, 6u);
  EXPECT_EQ(result.hop_count(), 3u);
}

TEST(Network, NoRouteOutcome) {
  Network net(single_domain_line(3));
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const auto result =
      net.trace(routers[0], net.topology().router(routers[2]).loopback);
  EXPECT_FALSE(result.delivered());
  EXPECT_EQ(result.outcome, Network::TraceResult::Outcome::kNoRoute);
}

TEST(Network, LinkDownOutcome) {
  Network net(single_domain_line(3));
  wire_line(net);
  net.topology().set_link_up(LinkId{0}, false);
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const auto result =
      net.trace(routers[0], net.topology().router(routers[2]).loopback);
  EXPECT_EQ(result.outcome, Network::TraceResult::Outcome::kLinkDown);
}

TEST(Network, ForwardingLoopDetected) {
  Network net(single_domain_line(2));
  const auto& topo = net.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  // Both routers point a foreign prefix at each other.
  const Prefix foreign{Ipv4Addr{0, 99, 0, 0}, 16};
  net.fib(routers[0]).insert(
      FibEntry{foreign, routers[1], LinkId{0}, RouteOrigin::kStatic, 1});
  net.fib(routers[1]).insert(
      FibEntry{foreign, routers[0], LinkId{0}, RouteOrigin::kStatic, 1});
  const auto result = net.trace(routers[0], Ipv4Addr{0, 99, 0, 1});
  EXPECT_EQ(result.outcome, Network::TraceResult::Outcome::kForwardingLoop);
}

TEST(Network, LocalAddressCapture) {
  Network net(single_domain_line(4));
  wire_line(net);
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const Ipv4Addr anycast{0, 1, 255, 1};  // reserved subnet 255 slot
  // Install a static /32 on router 0 pointing down the line; router 2
  // accepts it locally.
  net.add_local_address(routers[2], anycast);
  for (int i = 0; i < 2; ++i) {
    const NodeId hop = routers[i + 1];
    const LinkId link = [&]() {
      for (const LinkId l : net.topology().router(routers[i]).links) {
        if (net.topology().link(l).other_end(routers[i]) == hop) return l;
      }
      return LinkId::invalid();
    }();
    net.fib(routers[i]).insert(FibEntry{Prefix::host(anycast), hop, link,
                                        RouteOrigin::kAnycast, 1});
  }
  const auto result = net.trace(routers[0], anycast);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.delivered_at, routers[2]);
  // Removing the local address breaks delivery (packet continues past).
  net.remove_local_address(routers[2], anycast);
  const auto result2 = net.trace(routers[0], anycast);
  EXPECT_FALSE(result2.delivered());
}

TEST(Network, HostSubnetDelivery) {
  Topology topo = single_domain_line(2);
  const auto r0 = topo.domain(DomainId{0}).routers[0];
  const auto h = topo.add_host(r0);
  const auto host_addr = topo.host(h).address;
  Network net(std::move(topo));
  // The access router delivers host addresses in its subnet.
  EXPECT_TRUE(net.delivers_locally(r0, host_addr));
  const auto result = net.trace(r0, host_addr);
  EXPECT_TRUE(result.delivered());
}

TEST(Network, TtlExpiry) {
  Network net(single_domain_line(10));
  wire_line(net);
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const auto result = net.trace(
      routers[0], net.topology().router(routers[9]).loopback, /*max_hops=*/3);
  EXPECT_EQ(result.outcome, Network::TraceResult::Outcome::kTtlExpired);
}

TEST(Network, LatencyAccumulates) {
  Topology topo;
  const auto d = topo.add_domain("a");
  const auto r0 = topo.add_router(d);
  const auto r1 = topo.add_router(d);
  topo.add_link(r0, r1, 1, sim::Duration::millis(7));
  Network net(std::move(topo));
  net.fib(r0).insert(FibEntry{Prefix::host(net.topology().router(r1).loopback), r1,
                              LinkId{0}, RouteOrigin::kStatic, 1});
  const auto result = net.trace(r0, net.topology().router(r1).loopback);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.latency, sim::Duration::millis(7));
}

TEST(Network, TraceBatchMatchesSingleTraces) {
  Network net(single_domain_line(4, 2));
  wire_line(net);
  const auto& topo = net.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  std::vector<Network::ProbeSpec> probes;
  for (const NodeId from : routers) {
    for (const NodeId to : routers) {
      probes.push_back({.from = from, .dst = topo.router(to).loopback});
    }
  }
  const auto batch = net.trace_batch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto single = net.trace(probes[i].from, probes[i].dst);
    EXPECT_EQ(batch[i].outcome, single.outcome);
    EXPECT_EQ(batch[i].delivered_at, single.delivered_at);
    EXPECT_EQ(batch[i].cost, single.cost);
    EXPECT_EQ(batch[i].hops, single.hops);
    EXPECT_EQ(batch[i].latency, single.latency);
  }
}

TEST(Network, CompiledFibRecompilesOnlyWhenEpochMoves) {
  Network net(single_domain_line(3, 2));
  wire_line(net);
  const auto& topo = net.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  const auto dst = topo.router(routers[2]).loopback;

  net.trace(routers[0], dst);
  const auto after_first = net.forwarding_stats();
  EXPECT_GT(after_first.traces, 0u);
  EXPECT_GT(after_first.lookups, 0u);
  EXPECT_GT(after_first.fib_compiles, 0u);

  // Same trace again: every FIB on the path is fresh, no recompiles.
  net.trace(routers[0], dst);
  const auto after_second = net.forwarding_stats();
  EXPECT_EQ(after_second.fib_compiles, after_first.fib_compiles);
  EXPECT_GT(after_second.cache_hits, after_first.cache_hits);

  // Mutating one router's FIB invalidates exactly that router.
  net.fib(routers[1]).insert(FibEntry{Prefix{Ipv4Addr{9, 0, 0, 0}, 8},
                                      routers[0], LinkId{0},
                                      RouteOrigin::kStatic, 1});
  net.trace(routers[0], dst);
  const auto after_third = net.forwarding_stats();
  EXPECT_EQ(after_third.fib_compiles, after_second.fib_compiles + 1);
}

TEST(Network, ExportForwardingMetrics) {
  Network net(single_domain_line(2, 2));
  wire_line(net);
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.trace(routers[0], net.topology().router(routers[1]).loopback);
  sim::MetricRegistry metrics;
  net.export_forwarding_metrics(metrics);
  EXPECT_GT(metrics.counter("net.forwarding.traces"), 0);
  EXPECT_GT(metrics.counter("net.forwarding.lookups"), 0);
  EXPECT_GT(metrics.counter("net.forwarding.fib_compiles"), 0);
}

TEST(Network, DescribeIsHumanReadable) {
  Network net(single_domain_line(2));
  wire_line(net);
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const auto result =
      net.trace(routers[0], net.topology().router(routers[1]).loopback);
  const auto text = net.describe(result);
  EXPECT_NE(text.find("delivered"), std::string::npos);
  EXPECT_NE(text.find("line/r0"), std::string::npos);
}

}  // namespace
}  // namespace evo::net
