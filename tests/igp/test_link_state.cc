#include "igp/link_state.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace evo::igp {
namespace {

using net::DomainId;
using net::LinkId;
using net::NodeId;

struct Fixture {
  explicit Fixture(net::Topology topo)
      : network(std::move(topo)),
        igp(simulator, network, DomainId{0}) {}

  void converge() {
    igp.start();
    simulator.run();
  }

  sim::Simulator simulator;
  net::Network network;
  LinkStateIgp igp;
};

TEST(LinkStateIgp, ConvergesOnLine) {
  Fixture f(net::single_domain_line(4, 2));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  // Distances match the oracle.
  EXPECT_EQ(f.igp.distance(routers[0], routers[3]), 6u);
  EXPECT_EQ(f.igp.distance(routers[3], routers[0]), 6u);
  EXPECT_EQ(f.igp.distance(routers[1], routers[1]), 0u);
  // Next hops walk the line.
  EXPECT_EQ(f.igp.next_hop(routers[0], routers[3]), routers[1]);
  EXPECT_EQ(f.igp.next_hop(routers[3], routers[0]), routers[2]);
}

TEST(LinkStateIgp, FibRoutesInstalledEverywhere) {
  Fixture f(net::single_domain_line(4));
  f.converge();
  const auto& topo = f.network.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  for (const NodeId src : routers) {
    for (const NodeId dst : routers) {
      const auto result = f.network.trace(src, topo.router(dst).loopback);
      EXPECT_TRUE(result.delivered()) << src.value() << "->" << dst.value();
      EXPECT_EQ(result.delivered_at, dst);
    }
  }
}

TEST(LinkStateIgp, TracesFollowShortestPaths) {
  Fixture f(net::single_domain_grid(4, 4));
  f.converge();
  const auto& topo = f.network.topology();
  const auto oracle = net::dijkstra(topo.physical_graph(),
                                    topo.domain(DomainId{0}).routers[0]);
  for (const NodeId dst : topo.domain(DomainId{0}).routers) {
    const auto result = f.network.trace(topo.domain(DomainId{0}).routers[0],
                                        topo.router(dst).loopback);
    ASSERT_TRUE(result.delivered());
    EXPECT_EQ(result.cost, oracle.distance_to(dst));
  }
}

TEST(LinkStateIgp, LinkFailureReconverges) {
  Fixture f(net::single_domain_ring(5));
  f.converge();
  const auto& topo = f.network.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  // Break the direct 0-1 edge; traffic must go the long way.
  ASSERT_EQ(f.igp.distance(routers[0], routers[1]), 1u);
  f.network.topology().set_link_up(LinkId{0}, false);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  EXPECT_EQ(f.igp.distance(routers[0], routers[1]), 4u);
  const auto result = f.network.trace(routers[0], topo.router(routers[1]).loopback);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.cost, 4u);
}

TEST(LinkStateIgp, LinkRecoveryRestoresShortPath) {
  Fixture f(net::single_domain_ring(5));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.network.topology().set_link_up(LinkId{0}, false);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  f.network.topology().set_link_up(LinkId{0}, true);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  EXPECT_EQ(f.igp.distance(routers[0], routers[1]), 1u);
}

TEST(LinkStateIgp, MemberDiscoverySupported) {
  Fixture f(net::single_domain_line(4));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.igp.add_anycast_member(routers[1], anycast);
  f.igp.add_anycast_member(routers[3], anycast);
  f.converge();
  EXPECT_TRUE(f.igp.supports_member_discovery());
  const auto members = f.igp.discovered_members(routers[0], anycast);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], routers[1]);
  EXPECT_EQ(members[1], routers[3]);
}

TEST(LinkStateIgp, MembershipChangeAfterStartPropagates) {
  Fixture f(net::single_domain_line(3));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.igp.add_anycast_member(routers[2], anycast);
  f.simulator.run();
  EXPECT_EQ(f.igp.discovered_members(routers[0], anycast).size(), 1u);
  f.igp.remove_anycast_member(routers[2], anycast);
  f.simulator.run();
  EXPECT_TRUE(f.igp.discovered_members(routers[0], anycast).empty());
}

TEST(LinkStateIgp, AnycastRoutesToClosestMember) {
  Fixture f(net::single_domain_line(5));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.network.add_local_address(routers[0], anycast);
  f.network.add_local_address(routers[4], anycast);
  f.igp.add_anycast_member(routers[0], anycast);
  f.igp.add_anycast_member(routers[4], anycast);
  f.converge();
  // Router 1 is closer to member 0; router 3 closer to member 4.
  const auto r1 = f.network.trace(routers[1], anycast);
  ASSERT_TRUE(r1.delivered());
  EXPECT_EQ(r1.delivered_at, routers[0]);
  const auto r3 = f.network.trace(routers[3], anycast);
  ASSERT_TRUE(r3.delivered());
  EXPECT_EQ(r3.delivered_at, routers[4]);
}

TEST(LinkStateIgp, AnycastEquidistantTieIsDeterministic) {
  Fixture f(net::single_domain_line(5));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.network.add_local_address(routers[0], anycast);
  f.network.add_local_address(routers[4], anycast);
  f.igp.add_anycast_member(routers[0], anycast);
  f.igp.add_anycast_member(routers[4], anycast);
  f.converge();
  // Router 2 is equidistant; the lower NodeId member must win.
  const auto r2 = f.network.trace(routers[2], anycast);
  ASSERT_TRUE(r2.delivered());
  EXPECT_EQ(r2.delivered_at, routers[0]);
}

TEST(LinkStateIgp, MemberRemovalFailsOverToOther) {
  Fixture f(net::single_domain_line(5));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.network.add_local_address(routers[0], anycast);
  f.network.add_local_address(routers[4], anycast);
  f.igp.add_anycast_member(routers[0], anycast);
  f.igp.add_anycast_member(routers[4], anycast);
  f.converge();
  f.igp.remove_anycast_member(routers[0], anycast);
  f.network.remove_local_address(routers[0], anycast);
  f.simulator.run();
  const auto r1 = f.network.trace(routers[1], anycast);
  ASSERT_TRUE(r1.delivered());
  EXPECT_EQ(r1.delivered_at, routers[4]);
}

TEST(LinkStateIgp, HighCostStubDoesNotChangeWinner) {
  // Two configs with different stub costs must pick the same member.
  for (const net::Cost stub : {net::Cost{10}, net::Cost{100000}}) {
    sim::Simulator simulator;
    net::Network network(net::single_domain_line(5));
    LinkStateConfig config;
    config.anycast_stub_cost = stub;
    LinkStateIgp igp(simulator, network, DomainId{0}, config);
    const auto& routers = network.topology().domain(DomainId{0}).routers;
    const net::Ipv4Addr anycast{0, 1, 255, 1};
    network.add_local_address(routers[0], anycast);
    network.add_local_address(routers[3], anycast);
    igp.add_anycast_member(routers[0], anycast);
    igp.add_anycast_member(routers[3], anycast);
    igp.start();
    simulator.run();
    const auto result = network.trace(routers[2], anycast);
    ASSERT_TRUE(result.delivered());
    EXPECT_EQ(result.delivered_at, routers[3]) << "stub=" << stub;
  }
}

TEST(LinkStateIgp, MessageAndSpfCountsAdvance) {
  Fixture f(net::single_domain_ring(4));
  f.converge();
  EXPECT_GT(f.igp.messages_sent(), 0u);
  EXPECT_GT(f.igp.spf_runs(), 0u);
  const auto before = f.igp.messages_sent();
  f.network.topology().set_link_up(LinkId{0}, false);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  EXPECT_GT(f.igp.messages_sent(), before);
}

TEST(LinkStateIgp, PartitionedDomainUnreachable) {
  net::Topology topo;
  const auto d = topo.add_domain("split");
  const auto r0 = topo.add_router(d);
  const auto r1 = topo.add_router(d);
  const auto r2 = topo.add_router(d);
  const auto r3 = topo.add_router(d);
  topo.add_link(r0, r1, 1);
  topo.add_link(r2, r3, 1);  // r0,r1 | r2,r3 disconnected
  Fixture f(std::move(topo));
  f.converge();
  EXPECT_EQ(f.igp.distance(r0, r1), 1u);
  EXPECT_EQ(f.igp.distance(r0, r2), net::kInfiniteCost);
  EXPECT_EQ(f.igp.next_hop(r0, r3), NodeId::invalid());
}

}  // namespace
}  // namespace evo::igp
