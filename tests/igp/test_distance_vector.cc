#include "igp/distance_vector.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace evo::igp {
namespace {

using net::DomainId;
using net::LinkId;
using net::NodeId;

struct Fixture {
  explicit Fixture(net::Topology topo, DistanceVectorConfig config = {})
      : network(std::move(topo)),
        igp(simulator, network, DomainId{0}, config) {}

  void converge() {
    igp.start();
    simulator.run();
  }

  sim::Simulator simulator;
  net::Network network;
  DistanceVectorIgp igp;
};

TEST(DistanceVectorIgp, ConvergesOnLine) {
  Fixture f(net::single_domain_line(4, 2));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  EXPECT_EQ(f.igp.distance(routers[0], routers[3]), 6u);
  EXPECT_EQ(f.igp.distance(routers[3], routers[0]), 6u);
  EXPECT_EQ(f.igp.next_hop(routers[0], routers[3]), routers[1]);
}

TEST(DistanceVectorIgp, MatchesOracleOnGrid) {
  Fixture f(net::single_domain_grid(4, 3));
  f.converge();
  const auto& topo = f.network.topology();
  const auto& routers = topo.domain(DomainId{0}).routers;
  const auto oracle = net::dijkstra(topo.physical_graph(), routers[0]);
  for (const NodeId dst : routers) {
    EXPECT_EQ(f.igp.distance(routers[0], dst), oracle.distance_to(dst))
        << "to " << dst.value();
  }
}

TEST(DistanceVectorIgp, FibDeliversEverywhere) {
  Fixture f(net::single_domain_ring(6));
  f.converge();
  const auto& topo = f.network.topology();
  for (const NodeId src : topo.domain(DomainId{0}).routers) {
    for (const NodeId dst : topo.domain(DomainId{0}).routers) {
      const auto result = f.network.trace(src, topo.router(dst).loopback);
      EXPECT_TRUE(result.delivered()) << src.value() << "->" << dst.value();
    }
  }
}

TEST(DistanceVectorIgp, LinkFailureTriggersReconvergence) {
  Fixture f(net::single_domain_ring(5));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  ASSERT_EQ(f.igp.distance(routers[0], routers[1]), 1u);
  f.network.topology().set_link_up(LinkId{0}, false);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  EXPECT_EQ(f.igp.distance(routers[0], routers[1]), 4u);
}

TEST(DistanceVectorIgp, LinkRecoveryRestores) {
  Fixture f(net::single_domain_ring(5));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.network.topology().set_link_up(LinkId{0}, false);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  f.network.topology().set_link_up(LinkId{0}, true);
  f.igp.on_link_change(LinkId{0});
  f.simulator.run();
  EXPECT_EQ(f.igp.distance(routers[0], routers[1]), 1u);
}

TEST(DistanceVectorIgp, UnreachableAfterPartition) {
  Fixture f(net::single_domain_line(3));
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.network.topology().set_link_up(LinkId{1}, false);
  f.igp.on_link_change(LinkId{1});
  f.simulator.run();
  EXPECT_EQ(f.igp.distance(routers[0], routers[2]), net::kInfiniteCost);
  EXPECT_EQ(f.igp.next_hop(routers[0], routers[2]), NodeId::invalid());
}

TEST(DistanceVectorIgp, PlainModeCannotDiscoverMembers) {
  Fixture f(net::single_domain_line(3));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.igp.add_anycast_member(routers[2], anycast);
  f.converge();
  // "unlike link-state routing, an IPvN router cannot easily identify
  // other IPvN routers" — plain DV has no discovery.
  EXPECT_FALSE(f.igp.supports_member_discovery());
  EXPECT_TRUE(f.igp.discovered_members(routers[0], anycast).empty());
  // But anycast *routing* still works (zero-distance advertisement).
  f.network.add_local_address(routers[2], anycast);
  const auto result = f.network.trace(routers[0], anycast);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.delivered_at, routers[2]);
}

TEST(DistanceVectorIgp, TaggedModeDiscoversMembers) {
  DistanceVectorConfig config;
  config.tagged_advertisements = true;
  Fixture f(net::single_domain_line(4), config);
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.igp.add_anycast_member(routers[1], anycast);
  f.igp.add_anycast_member(routers[3], anycast);
  f.converge();
  EXPECT_TRUE(f.igp.supports_member_discovery());
  const auto members = f.igp.discovered_members(routers[0], anycast);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], routers[1]);
  EXPECT_EQ(members[1], routers[3]);
}

TEST(DistanceVectorIgp, TaggedMembershipRemovalPropagates) {
  DistanceVectorConfig config;
  config.tagged_advertisements = true;
  Fixture f(net::single_domain_line(3), config);
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.igp.add_anycast_member(routers[2], anycast);
  f.converge();
  ASSERT_EQ(f.igp.discovered_members(routers[0], anycast).size(), 1u);
  f.igp.remove_anycast_member(routers[2], anycast);
  f.simulator.run();
  EXPECT_TRUE(f.igp.discovered_members(routers[0], anycast).empty());
}

TEST(DistanceVectorIgp, AnycastClosestMemberWins) {
  Fixture f(net::single_domain_line(5));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.network.add_local_address(routers[0], anycast);
  f.network.add_local_address(routers[4], anycast);
  f.igp.add_anycast_member(routers[0], anycast);
  f.igp.add_anycast_member(routers[4], anycast);
  f.converge();
  EXPECT_EQ(f.network.trace(routers[1], anycast).delivered_at, routers[0]);
  EXPECT_EQ(f.network.trace(routers[3], anycast).delivered_at, routers[4]);
}

TEST(DistanceVectorIgp, MemberRemovalFailsOver) {
  Fixture f(net::single_domain_line(5));
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  f.network.add_local_address(routers[0], anycast);
  f.network.add_local_address(routers[4], anycast);
  f.igp.add_anycast_member(routers[0], anycast);
  f.igp.add_anycast_member(routers[4], anycast);
  f.converge();
  f.igp.remove_anycast_member(routers[0], anycast);
  f.network.remove_local_address(routers[0], anycast);
  f.simulator.run();
  const auto result = f.network.trace(routers[1], anycast);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.delivered_at, routers[4]);
}

TEST(DistanceVectorIgp, PeriodicModeKeepsRefreshing) {
  DistanceVectorConfig config;
  config.periodic_interval = sim::Duration::seconds(30);
  Fixture f(net::single_domain_line(3), config);
  f.igp.start();
  f.simulator.run_until(sim::TimePoint::origin() + sim::Duration::seconds(95));
  // Three periodic rounds must have fired on top of the initial triggered
  // exchange.
  EXPECT_GT(f.igp.messages_sent(), 20u);
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  EXPECT_EQ(f.igp.distance(routers[0], routers[2]), 2u);
}

TEST(DistanceVectorIgp, InfinityBoundsCountToInfinity) {
  DistanceVectorConfig config;
  config.infinity = 16;
  Fixture f(net::single_domain_line(3), config);
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  // Cut r2 off; r0/r1 must converge to "unreachable" within finite events.
  f.network.topology().set_link_up(LinkId{1}, false);
  f.igp.on_link_change(LinkId{1});
  const auto events = f.simulator.run();
  EXPECT_LT(events, 10000u);  // bounded, no endless counting
  EXPECT_EQ(f.igp.distance(routers[0], routers[2]), net::kInfiniteCost);
}

TEST(DistanceVectorIgp, MessagesCounted) {
  Fixture f(net::single_domain_line(3));
  f.converge();
  EXPECT_GT(f.igp.messages_sent(), 0u);
}

}  // namespace
}  // namespace evo::igp
