// Protocol-internals coverage: LSA sequencing and flood suppression,
// SPF debouncing, DV split-horizon/poisoned-reverse behavior, and
// concurrent-failure convergence.
#include <gtest/gtest.h>

#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/topology_gen.h"

namespace evo::igp {
namespace {

using net::DomainId;
using net::LinkId;
using net::NodeId;

TEST(LinkStateDetails, FloodingSuppressesStaleDuplicates) {
  // In a cycle, every LSA arrives at some router twice; the stale-sequence
  // check must stop re-flooding (message count far below the no-dedup
  // exponential blowup, and the run terminates at all).
  sim::Simulator simulator;
  net::Network network(net::single_domain_ring(6));
  LinkStateIgp igp(simulator, network, DomainId{0});
  igp.start();
  simulator.run();
  // 6 LSAs, each crossing each of the 12 directed ring edges at most once
  // plus the initial floods: comfortably bounded.
  EXPECT_LE(igp.messages_sent(), 6u * 12u + 12u);
  EXPECT_GT(igp.messages_sent(), 0u);
}

TEST(LinkStateDetails, SpfDebounceCoalesces) {
  // All initial LSAs arrive within the debounce window: each router runs
  // SPF only a handful of times, not once per LSA.
  sim::Simulator simulator;
  net::Network network(net::single_domain_grid(4, 4));
  LinkStateConfig config;
  config.spf_delay = sim::Duration::millis(50);  // wide window
  LinkStateIgp igp(simulator, network, DomainId{0}, config);
  igp.start();
  simulator.run();
  // 16 routers; without debouncing this would be ~16 LSAs x 16 routers.
  EXPECT_LE(igp.spf_runs(), 16u * 4u);
}

TEST(LinkStateDetails, ReOriginationBumpsSequence) {
  // Membership changes re-originate; peers must accept each newer LSA
  // (observable through discovery flapping on->off->on).
  sim::Simulator simulator;
  net::Network network(net::single_domain_line(3));
  LinkStateIgp igp(simulator, network, DomainId{0});
  const auto& routers = network.topology().domain(DomainId{0}).routers;
  igp.start();
  simulator.run();
  const net::Ipv4Addr anycast{0, 1, 255, 7};
  for (int round = 0; round < 3; ++round) {
    igp.add_anycast_member(routers[2], anycast);
    simulator.run();
    EXPECT_EQ(igp.discovered_members(routers[0], anycast).size(), 1u) << round;
    igp.remove_anycast_member(routers[2], anycast);
    simulator.run();
    EXPECT_TRUE(igp.discovered_members(routers[0], anycast).empty()) << round;
  }
}

TEST(DistanceVectorDetails, PoisonedReverseStopsTwoNodeLoop) {
  // Classic: line a-b-c, c dies. Without poisoned reverse, a and b bounce
  // the route up to infinity; with it, convergence is immediate.
  sim::Simulator simulator;
  net::Network network(net::single_domain_line(3));
  DistanceVectorConfig config;
  config.infinity = 64;
  DistanceVectorIgp igp(simulator, network, DomainId{0}, config);
  const auto& routers = network.topology().domain(DomainId{0}).routers;
  igp.start();
  simulator.run();
  const auto baseline = igp.messages_sent();
  network.topology().set_link_up(LinkId{1}, false);
  igp.on_link_change(LinkId{1});
  simulator.run();
  EXPECT_EQ(igp.distance(routers[0], routers[2]), net::kInfiniteCost);
  // Convergence cost is a handful of messages, nowhere near
  // count-to-infinity's ~infinity rounds.
  EXPECT_LT(igp.messages_sent() - baseline, 40u);
}

TEST(DistanceVectorDetails, ConcurrentFailuresConverge) {
  sim::Simulator simulator;
  net::Network network(net::single_domain_grid(4, 4));
  DistanceVectorIgp igp(simulator, network, DomainId{0});
  igp.start();
  simulator.run();
  // Fail three links at once.
  for (const auto id : {LinkId{0}, LinkId{5}, LinkId{11}}) {
    network.topology().set_link_up(id, false);
    igp.on_link_change(id);
  }
  const auto events = simulator.run();
  EXPECT_LT(events, 100000u);  // converges, no runaway
  // Whatever is physically reachable must be routable, at exact cost.
  const auto& routers = network.topology().domain(DomainId{0}).routers;
  const auto oracle = net::dijkstra(network.topology().physical_graph(), routers[0]);
  for (const NodeId dst : routers) {
    if (oracle.reachable(dst)) {
      EXPECT_EQ(igp.distance(routers[0], dst), oracle.distance_to(dst));
    } else {
      EXPECT_EQ(igp.distance(routers[0], dst), net::kInfiniteCost);
    }
  }
}

TEST(DistanceVectorDetails, TagsFollowBestPathChanges) {
  // Tagged mode: when the best path to a member's loopback moves, the
  // tags travel with the new advertisement.
  sim::Simulator simulator;
  net::Network network(net::single_domain_ring(5));
  DistanceVectorConfig config;
  config.tagged_advertisements = true;
  DistanceVectorIgp igp(simulator, network, DomainId{0}, config);
  const auto& routers = network.topology().domain(DomainId{0}).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 9};
  igp.add_anycast_member(routers[2], anycast);
  igp.start();
  simulator.run();
  ASSERT_EQ(igp.discovered_members(routers[0], anycast).size(), 1u);
  // Cut the short side toward the member; discovery must survive the
  // path change to the long way round.
  network.topology().set_link_up(LinkId{1}, false);
  igp.on_link_change(LinkId{1});
  simulator.run();
  EXPECT_EQ(igp.discovered_members(routers[0], anycast).size(), 1u);
  EXPECT_EQ(igp.distance(routers[0], routers[2]), 3u);  // 0-4-3-2
}

TEST(DistanceVectorDetails, LinkRecoveryExchangesFullTables) {
  sim::Simulator simulator;
  net::Network network(net::single_domain_line(4));
  DistanceVectorIgp igp(simulator, network, DomainId{0});
  const auto& routers = network.topology().domain(DomainId{0}).routers;
  igp.start();
  simulator.run();
  network.topology().set_link_up(LinkId{0}, false);
  igp.on_link_change(LinkId{0});
  simulator.run();
  ASSERT_EQ(igp.distance(routers[0], routers[3]), net::kInfiniteCost);
  network.topology().set_link_up(LinkId{0}, true);
  igp.on_link_change(LinkId{0});
  simulator.run();
  EXPECT_EQ(igp.distance(routers[0], routers[3]), 3u);
}

}  // namespace
}  // namespace evo::igp
