// Property-based cross-protocol suite: for every IGP variant and several
// topology shapes, the anycast extension must deliver every router's
// packet to the *closest* member ("a datagram will be delivered to the
// server closest to the client host", RFC 1546 via the paper), with
// delivery cost exactly the oracle distance.
#include <gtest/gtest.h>

#include <memory>

#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/topology_gen.h"
#include "sim/random.h"

namespace evo::igp {
namespace {

using net::DomainId;
using net::NodeId;

enum class Proto { kLinkState, kDistanceVector, kDistanceVectorTagged };
enum class Shape { kLine, kRing, kGrid, kRandom };

struct Param {
  Proto proto;
  Shape shape;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string name;
  switch (info.param.proto) {
    case Proto::kLinkState: name = "LinkState"; break;
    case Proto::kDistanceVector: name = "DistVec"; break;
    case Proto::kDistanceVectorTagged: name = "DistVecTagged"; break;
  }
  switch (info.param.shape) {
    case Shape::kLine: name += "Line"; break;
    case Shape::kRing: name += "Ring"; break;
    case Shape::kGrid: name += "Grid"; break;
    case Shape::kRandom: name += "Random"; break;
  }
  return name;
}

net::Topology make_shape(Shape shape) {
  switch (shape) {
    case Shape::kLine: return net::single_domain_line(8);
    case Shape::kRing: return net::single_domain_ring(9);
    case Shape::kGrid: return net::single_domain_grid(4, 3);
    case Shape::kRandom: {
      net::Topology topo;
      const auto d = topo.add_domain("rand", /*stub=*/true);
      sim::Rng rng{1234};
      net::IntraDomainParams params;
      params.routers = 10;
      params.chord_probability = 0.35;
      params.min_cost = 1;
      params.max_cost = 9;
      populate_domain(topo, d, params, rng);
      return topo;
    }
  }
  return net::single_domain_line(2);
}

class AnycastExtensionTest : public testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(make_shape(GetParam().shape));
    switch (GetParam().proto) {
      case Proto::kLinkState:
        igp_ = std::make_unique<LinkStateIgp>(simulator_, *network_, DomainId{0});
        break;
      case Proto::kDistanceVector:
        igp_ = std::make_unique<DistanceVectorIgp>(simulator_, *network_,
                                                   DomainId{0});
        break;
      case Proto::kDistanceVectorTagged: {
        DistanceVectorConfig config;
        config.tagged_advertisements = true;
        igp_ = std::make_unique<DistanceVectorIgp>(simulator_, *network_, DomainId{0},
                                                   config);
        break;
      }
    }
  }

  void add_member(NodeId node) {
    network_->add_local_address(node, anycast_);
    igp_->add_anycast_member(node, anycast_);
    members_.push_back(node);
  }

  void converge() {
    if (!started_) {
      igp_->start();
      started_ = true;
    }
    simulator_.run();
  }

  /// The oracle distance from `src` to the closest member.
  net::Cost oracle(NodeId src) const {
    const auto paths = net::dijkstra(network_->topology().physical_graph(),
                                     std::span<const NodeId>(members_));
    return paths.distance_to(src);
  }

  sim::Simulator simulator_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Igp> igp_;
  const net::Ipv4Addr anycast_{0, 1, 255, 1};
  std::vector<NodeId> members_;
  bool started_ = false;
};

TEST_P(AnycastExtensionTest, SingleMemberAllRoutersReach) {
  const auto& routers = network_->topology().domain(DomainId{0}).routers;
  add_member(routers[routers.size() / 2]);
  converge();
  for (const NodeId src : routers) {
    const auto result = network_->trace(src, anycast_);
    ASSERT_TRUE(result.delivered()) << "from " << src.value();
    EXPECT_EQ(result.cost, oracle(src));
  }
}

TEST_P(AnycastExtensionTest, TwoMembersClosestWins) {
  const auto& routers = network_->topology().domain(DomainId{0}).routers;
  add_member(routers.front());
  add_member(routers.back());
  converge();
  for (const NodeId src : routers) {
    const auto result = network_->trace(src, anycast_);
    ASSERT_TRUE(result.delivered()) << "from " << src.value();
    // Delivery cost must equal the closest-member oracle distance (the
    // member identity may differ only under exact ties).
    EXPECT_EQ(result.cost, oracle(src)) << "from " << src.value();
  }
}

TEST_P(AnycastExtensionTest, ThreeMembersStillOptimal) {
  const auto& routers = network_->topology().domain(DomainId{0}).routers;
  add_member(routers[0]);
  add_member(routers[routers.size() / 2]);
  add_member(routers[routers.size() - 1]);
  converge();
  for (const NodeId src : routers) {
    const auto result = network_->trace(src, anycast_);
    ASSERT_TRUE(result.delivered());
    EXPECT_EQ(result.cost, oracle(src));
  }
}

TEST_P(AnycastExtensionTest, MemberIsItsOwnClosest) {
  const auto& routers = network_->topology().domain(DomainId{0}).routers;
  add_member(routers[1]);
  converge();
  const auto result = network_->trace(routers[1], anycast_);
  ASSERT_TRUE(result.delivered());
  EXPECT_EQ(result.delivered_at, routers[1]);
  EXPECT_EQ(result.cost, 0u);
}

TEST_P(AnycastExtensionTest, LateJoinRedirectsTraffic) {
  const auto& routers = network_->topology().domain(DomainId{0}).routers;
  add_member(routers.front());
  converge();
  const auto before = network_->trace(routers.back(), anycast_);
  ASSERT_TRUE(before.delivered());
  // A member joins right next to the probe source.
  add_member(routers.back());
  converge();
  const auto after = network_->trace(routers.back(), anycast_);
  ASSERT_TRUE(after.delivered());
  EXPECT_EQ(after.cost, 0u);
  EXPECT_EQ(after.delivered_at, routers.back());
}

TEST_P(AnycastExtensionTest, DiscoveryMatchesCapability) {
  const auto& routers = network_->topology().domain(DomainId{0}).routers;
  add_member(routers.front());
  add_member(routers.back());
  converge();
  const auto members = igp_->discovered_members(routers[1], anycast_);
  if (igp_->supports_member_discovery()) {
    EXPECT_EQ(members.size(), 2u);
  } else {
    EXPECT_TRUE(members.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndShapes, AnycastExtensionTest,
    testing::Values(Param{Proto::kLinkState, Shape::kLine},
                    Param{Proto::kLinkState, Shape::kRing},
                    Param{Proto::kLinkState, Shape::kGrid},
                    Param{Proto::kLinkState, Shape::kRandom},
                    Param{Proto::kDistanceVector, Shape::kLine},
                    Param{Proto::kDistanceVector, Shape::kRing},
                    Param{Proto::kDistanceVector, Shape::kGrid},
                    Param{Proto::kDistanceVector, Shape::kRandom},
                    Param{Proto::kDistanceVectorTagged, Shape::kLine},
                    Param{Proto::kDistanceVectorTagged, Shape::kRing},
                    Param{Proto::kDistanceVectorTagged, Shape::kGrid},
                    Param{Proto::kDistanceVectorTagged, Shape::kRandom}),
    param_name);

}  // namespace
}  // namespace evo::igp
