// Differential test: link-state and distance-vector must converge to the
// SAME distances (both equal the Dijkstra oracle) on randomized domains,
// before and after random link failures.
#include <gtest/gtest.h>

#include <memory>

#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/topology_gen.h"

namespace evo::igp {
namespace {

using net::DomainId;
using net::LinkId;
using net::NodeId;

net::Topology random_domain(std::uint64_t seed, std::uint32_t routers) {
  net::Topology topo;
  const auto d = topo.add_domain("rand", /*stub=*/true);
  sim::Rng rng{seed};
  net::IntraDomainParams params;
  params.routers = routers;
  params.chord_probability = 0.3;
  params.max_cost = 9;
  net::populate_domain(topo, d, params, rng);
  return topo;
}

class IgpDifferentialTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(IgpDifferentialTest, DistancesAgreeOnRandomDomains) {
  const std::uint64_t seed = GetParam();
  // Two networks over the same topology, one protocol each.
  sim::Simulator sim_ls;
  net::Network net_ls(random_domain(seed, 12));
  LinkStateIgp ls(sim_ls, net_ls, DomainId{0});
  ls.start();
  sim_ls.run();

  sim::Simulator sim_dv;
  net::Network net_dv(random_domain(seed, 12));
  DistanceVectorIgp dv(sim_dv, net_dv, DomainId{0});
  dv.start();
  sim_dv.run();

  const auto& routers = net_ls.topology().domain(DomainId{0}).routers;
  const auto oracle0 = net::dijkstra(net_ls.topology().physical_graph(), routers[0]);
  for (const NodeId a : routers) {
    for (const NodeId b : routers) {
      EXPECT_EQ(ls.distance(a, b), dv.distance(a, b))
          << "seed " << seed << ": " << a.value() << "->" << b.value();
    }
    EXPECT_EQ(ls.distance(routers[0], a), oracle0.distance_to(a));
  }
}

TEST_P(IgpDifferentialTest, AgreementSurvivesRandomFailures) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim_ls;
  net::Network net_ls(random_domain(seed, 10));
  LinkStateIgp ls(sim_ls, net_ls, DomainId{0});
  ls.start();
  sim_ls.run();

  sim::Simulator sim_dv;
  net::Network net_dv(random_domain(seed, 10));
  DistanceVectorIgp dv(sim_dv, net_dv, DomainId{0});
  dv.start();
  sim_dv.run();

  // Fail the same ~20% of links in both.
  sim::Rng rng{seed ^ 0xDEAD};
  for (std::uint32_t i = 0; i < net_ls.topology().link_count(); ++i) {
    if (rng.bernoulli(0.2)) {
      net_ls.topology().set_link_up(LinkId{i}, false);
      ls.on_link_change(LinkId{i});
      net_dv.topology().set_link_up(LinkId{i}, false);
      dv.on_link_change(LinkId{i});
    }
  }
  sim_ls.run();
  sim_dv.run();

  const auto& routers = net_ls.topology().domain(DomainId{0}).routers;
  const auto oracle0 = net::dijkstra(net_ls.topology().physical_graph(), routers[0]);
  for (const NodeId a : routers) {
    for (const NodeId b : routers) {
      EXPECT_EQ(ls.distance(a, b), dv.distance(a, b))
          << "seed " << seed << ": " << a.value() << "->" << b.value();
    }
    EXPECT_EQ(ls.distance(routers[0], a), oracle0.distance_to(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IgpDifferentialTest,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace evo::igp
