// Cross-mode property suite: invariants that must hold for EVERY
// inter-domain anycast mode on every topology seed —
//   * correctness: every router's probe delivers to *some* member
//     whenever a member exists and the default/home domain has one;
//   * member-only delivery: packets never terminate at a non-member;
//   * monotone coverage: adding a member never breaks delivery.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo::anycast {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::GroupId;
using net::NodeId;

struct Param {
  InterDomainMode mode;
  std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string name = to_string(info.param.mode);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

class AnycastModeTest : public testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto topo = net::generate_transit_stub({.transit_domains = 3,
                                            .stubs_per_transit = 2,
                                            .seed = GetParam().seed});
    internet_ = std::make_unique<EvolvableInternet>(std::move(topo));
    internet_->start();
    GroupConfig config;
    config.mode = GetParam().mode;
    config.default_domain = DomainId{0};
    config.gia_search_radius = 2;
    group_ = internet_->anycast().create_group(config);
    // Home/default member first (required by GIA, sensible everywhere).
    add_member(internet_->topology().domain(DomainId{0}).routers.front());
  }

  void add_member(NodeId router) {
    internet_->anycast().add_member(group_, router);
    internet_->converge();
  }

  const Group& group() const { return internet_->anycast().group(group_); }

  void expect_full_correct_delivery(const char* when) {
    for (const auto& router : internet_->topology().routers()) {
      const auto result = probe(internet_->network(), group(), router.id);
      ASSERT_TRUE(result.delivered())
          << when << ": undelivered from router " << router.id.value();
      // Delivered at an actual member, never elsewhere.
      EXPECT_TRUE(group().members.contains(result.member))
          << when << ": non-member delivery at " << result.member.value();
    }
  }

  std::unique_ptr<EvolvableInternet> internet_;
  GroupId group_;
};

TEST_P(AnycastModeTest, SingleMemberUniversalDelivery) {
  expect_full_correct_delivery("single member");
}

TEST_P(AnycastModeTest, CoverageSurvivesMemberAdditions) {
  sim::Rng rng{GetParam().seed ^ 0xFEED};
  const auto& routers = internet_->topology().routers();
  for (int additions = 0; additions < 4; ++additions) {
    const NodeId candidate{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(routers.size()) - 1))};
    if (group().members.contains(candidate)) continue;
    add_member(candidate);
    expect_full_correct_delivery("after addition");
  }
}

TEST_P(AnycastModeTest, RemovalToSoleHomeMemberStillDelivers) {
  // Add two extra members, then remove them; the surviving home/default
  // member keeps universal delivery in every mode.
  const auto& topo = internet_->topology();
  const NodeId extra1 = topo.domain(DomainId{1}).routers.front();
  const NodeId extra2 = topo.domain(DomainId{2}).routers.front();
  add_member(extra1);
  add_member(extra2);
  expect_full_correct_delivery("three members");
  internet_->anycast().remove_member(group_, extra1);
  internet_->converge();
  internet_->anycast().remove_member(group_, extra2);
  internet_->converge();
  expect_full_correct_delivery("back to sole home member");
}

TEST_P(AnycastModeTest, DeliveryCostNeverBelowOracle) {
  const auto& topo = internet_->topology();
  add_member(topo.domain(DomainId{2}).routers.front());
  const ClosestMemberOracle oracle(topo, group());
  for (const auto& router : topo.routers()) {
    const auto result = probe(internet_->network(), group(), router.id, oracle);
    ASSERT_TRUE(result.delivered());
    // No mode can beat the physical closest-member distance.
    EXPECT_GE(result.trace.cost, oracle.distance_from(router.id));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AnycastModeTest,
    testing::Values(Param{InterDomainMode::kGlobalRoutes, 301},
                    Param{InterDomainMode::kGlobalRoutes, 302},
                    Param{InterDomainMode::kDefaultRoute, 301},
                    Param{InterDomainMode::kDefaultRoute, 302},
                    Param{InterDomainMode::kGia, 301},
                    Param{InterDomainMode::kGia, 302}),
    param_name);

}  // namespace
}  // namespace evo::anycast
