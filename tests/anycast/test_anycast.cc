#include "anycast/anycast.h"

#include <gtest/gtest.h>

#include <memory>

#include "igp/link_state.h"
#include "net/topology_gen.h"

namespace evo::anycast {
namespace {

using net::DomainId;
using net::GroupId;
using net::Ipv4Addr;
using net::NodeId;
using net::Relationship;
using net::Topology;

struct Fixture {
  explicit Fixture(Topology topo) : network(std::move(topo)) {
    for (const auto& domain : network.topology().domains()) {
      igps.push_back(
          std::make_unique<igp::LinkStateIgp>(simulator, network, domain.id));
    }
    bgp = std::make_unique<bgp::BgpSystem>(
        simulator, network,
        [this](DomainId d) -> const igp::Igp* { return igps[d.value()].get(); });
    service = std::make_unique<AnycastService>(
        network, bgp.get(),
        [this](DomainId d) -> igp::Igp* { return igps[d.value()].get(); });
  }

  void start() {
    for (auto& igp : igps) igp->start();
    bgp->start();
    converge();
  }

  void converge() {
    simulator.run();
    bgp->install_routes();
  }

  sim::Simulator simulator;
  net::Network network;
  std::vector<std::unique_ptr<igp::LinkStateIgp>> igps;
  std::unique_ptr<bgp::BgpSystem> bgp;
  std::unique_ptr<AnycastService> service;
};

/// Line of three domains a - b - c (providers left to right), 2 routers
/// each.
Topology domain_line3() {
  Topology topo;
  std::vector<std::vector<NodeId>> r;
  for (const char* name : {"a", "b", "c"}) {
    const auto d = topo.add_domain(name);
    r.push_back({topo.add_router(d), topo.add_router(d)});
    topo.add_link(r.back()[0], r.back()[1], 1);
  }
  topo.add_interdomain_link(r[0][1], r[1][0], Relationship::kProvider);
  topo.add_interdomain_link(r[1][1], r[2][0], Relationship::kProvider);
  return topo;
}

TEST(AnycastService, GlobalModeAddressFromDedicatedBlock) {
  Fixture f(domain_line3());
  GroupConfig config;
  config.mode = InterDomainMode::kGlobalRoutes;
  const auto g = f.service->create_group(config);
  EXPECT_TRUE(AnycastService::global_anycast_block().contains(
      f.service->group(g).address));
}

TEST(AnycastService, DefaultModeAddressFromDefaultDomain) {
  Fixture f(domain_line3());
  GroupConfig config;
  config.mode = InterDomainMode::kDefaultRoute;
  config.default_domain = DomainId{1};
  const auto g = f.service->create_group(config);
  EXPECT_TRUE(f.network.topology().domain(DomainId{1}).prefix.contains(
      f.service->group(g).address));
}

TEST(AnycastService, DistinctAddressesPerGroup) {
  Fixture f(domain_line3());
  GroupConfig global;
  global.mode = InterDomainMode::kGlobalRoutes;
  GroupConfig dflt;
  dflt.mode = InterDomainMode::kDefaultRoute;
  dflt.default_domain = DomainId{0};
  const auto g1 = f.service->create_group(global);
  const auto g2 = f.service->create_group(global);
  const auto g3 = f.service->create_group(dflt);
  const auto g4 = f.service->create_group(dflt);
  EXPECT_NE(f.service->group(g1).address, f.service->group(g2).address);
  EXPECT_NE(f.service->group(g3).address, f.service->group(g4).address);
}

TEST(AnycastService, MemberLocalDeliveryRegistered) {
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kGlobalRoutes;
  const auto g = f.service->create_group(config);
  const NodeId member = f.network.topology().domain(DomainId{0}).routers[0];
  f.service->add_member(g, member);
  EXPECT_TRUE(f.network.has_local_address(member, f.service->group(g).address));
  f.service->remove_member(g, member);
  EXPECT_FALSE(f.network.has_local_address(member, f.service->group(g).address));
}

TEST(AnycastService, GlobalModeOriginatesIntoBgp) {
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kGlobalRoutes;
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  f.service->add_member(g, topo.domain(DomainId{0}).routers[0]);
  f.converge();
  // Distant domain c sees the /32 in BGP.
  const NodeId c_border = topo.domain(DomainId{2}).routers[0];
  const auto* route =
      f.bgp->best_route(c_border, net::Prefix::host(f.service->group(g).address));
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->anycast);
}

TEST(AnycastService, GlobalModeWithdrawsWhenLastMemberLeaves) {
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kGlobalRoutes;
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  const NodeId m0 = topo.domain(DomainId{0}).routers[0];
  const NodeId m1 = topo.domain(DomainId{0}).routers[1];
  f.service->add_member(g, m0);
  f.service->add_member(g, m1);
  f.converge();
  const auto host_route = net::Prefix::host(f.service->group(g).address);
  const NodeId c_border = topo.domain(DomainId{2}).routers[0];
  ASSERT_NE(f.bgp->best_route(c_border, host_route), nullptr);
  // One member leaves: still originated (m1 remains).
  f.service->remove_member(g, m0);
  f.converge();
  ASSERT_NE(f.bgp->best_route(c_border, host_route), nullptr);
  // Last member leaves: withdrawn.
  f.service->remove_member(g, m1);
  f.converge();
  EXPECT_EQ(f.bgp->best_route(c_border, host_route), nullptr);
}

TEST(AnycastService, DefaultModeNoGlobalOrigination) {
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kDefaultRoute;
  config.default_domain = DomainId{0};
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  f.service->add_member(g, topo.domain(DomainId{0}).routers[0]);
  f.converge();
  // No /32 anywhere in BGP: the default domain's aggregate covers it.
  const NodeId c_border = topo.domain(DomainId{2}).routers[0];
  EXPECT_EQ(
      f.bgp->best_route(c_border, net::Prefix::host(f.service->group(g).address)),
      nullptr);
  // Yet packets still reach the member by following the aggregate.
  const auto trace = f.network.trace(c_border, f.service->group(g).address);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.delivered_at, topo.domain(DomainId{0}).routers[0]);
}

TEST(AnycastService, TransitMemberDomainCapturesEnRoute) {
  // Default domain a; member also in transit domain b. Packets from c
  // toward a's space pass through b and must be captured there.
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kDefaultRoute;
  config.default_domain = DomainId{0};
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  f.service->add_member(g, topo.domain(DomainId{0}).routers[0]);
  f.service->add_member(g, topo.domain(DomainId{1}).routers[0]);
  f.converge();
  const NodeId c_border = topo.domain(DomainId{2}).routers[0];
  const auto trace = f.network.trace(c_border, f.service->group(g).address);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(topo.router(trace.delivered_at).domain, DomainId{1});
}

TEST(AnycastService, PeerAdvertisementWidensCatchment) {
  // Default a; member domain c (far side). Without peering, b's packets
  // flow to a. With c peer-advertising to b, b's packets reach c.
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kDefaultRoute;
  config.default_domain = DomainId{0};
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  f.service->add_member(g, topo.domain(DomainId{0}).routers[0]);
  f.service->add_member(g, topo.domain(DomainId{2}).routers[1]);
  f.converge();
  const NodeId b_probe = topo.domain(DomainId{1}).routers[1];
  const auto before = f.network.trace(b_probe, f.service->group(g).address);
  ASSERT_TRUE(before.delivered());
  EXPECT_EQ(topo.router(before.delivered_at).domain, DomainId{0});

  f.service->advertise_via_peering(g, DomainId{2}, DomainId{1});
  f.converge();
  const auto after = f.network.trace(b_probe, f.service->group(g).address);
  ASSERT_TRUE(after.delivered());
  EXPECT_EQ(topo.router(after.delivered_at).domain, DomainId{2});

  // Withdrawing the peering restores the default flow.
  f.service->stop_peering_advertisement(g, DomainId{2}, DomainId{1});
  f.converge();
  const auto restored = f.network.trace(b_probe, f.service->group(g).address);
  ASSERT_TRUE(restored.delivered());
  EXPECT_EQ(topo.router(restored.delivered_at).domain, DomainId{0});
}

TEST(AnycastService, PeerAdvertisementDoesNotLeakBeyondNeighbor) {
  // c peer-advertises to b only; a (and the default's own space) must not
  // see the /32 route.
  Fixture f(domain_line3());
  f.start();
  GroupConfig config;
  config.mode = InterDomainMode::kDefaultRoute;
  config.default_domain = DomainId{0};
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  f.service->add_member(g, topo.domain(DomainId{0}).routers[0]);
  f.service->add_member(g, topo.domain(DomainId{2}).routers[1]);
  f.service->advertise_via_peering(g, DomainId{2}, DomainId{1});
  f.converge();
  const NodeId a_border = topo.domain(DomainId{0}).routers[1];
  EXPECT_EQ(
      f.bgp->best_route(a_border, net::Prefix::host(f.service->group(g).address)),
      nullptr);
}

TEST(Group, MemberDomainsDeduplicated) {
  Fixture f(domain_line3());
  GroupConfig config;
  config.mode = InterDomainMode::kGlobalRoutes;
  const auto g = f.service->create_group(config);
  const auto& topo = f.network.topology();
  f.service->add_member(g, topo.domain(DomainId{0}).routers[0]);
  f.service->add_member(g, topo.domain(DomainId{0}).routers[1]);
  f.service->add_member(g, topo.domain(DomainId{2}).routers[0]);
  const auto domains = f.service->group(g).member_domains(topo);
  EXPECT_EQ(domains.size(), 2u);
  EXPECT_TRUE(f.service->group(g).has_member_in(topo, DomainId{0}));
  EXPECT_FALSE(f.service->group(g).has_member_in(topo, DomainId{1}));
}

}  // namespace
}  // namespace evo::anycast
