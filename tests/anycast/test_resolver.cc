#include "anycast/resolver.h"

#include <gtest/gtest.h>

#include <memory>

#include "igp/link_state.h"
#include "net/topology_gen.h"

namespace evo::anycast {
namespace {

using net::DomainId;
using net::NodeId;

/// Single-domain fixture: link-state IGP only, no BGP.
struct Fixture {
  explicit Fixture(net::Topology topo) : network(std::move(topo)) {
    igp = std::make_unique<igp::LinkStateIgp>(simulator, network, DomainId{0});
    service = std::make_unique<AnycastService>(
        network, nullptr, [this](DomainId) -> igp::Igp* { return igp.get(); });
  }

  net::GroupId make_group() {
    GroupConfig config;
    config.mode = InterDomainMode::kDefaultRoute;
    config.default_domain = DomainId{0};
    return service->create_group(config);
  }

  void converge() {
    if (!started_) {
      igp->start();
      started_ = true;
    }
    simulator.run();
  }

  sim::Simulator simulator;
  net::Network network;
  std::unique_ptr<igp::LinkStateIgp> igp;
  std::unique_ptr<AnycastService> service;
  bool started_ = false;
};

TEST(Resolver, ProbeOptimalDelivery) {
  Fixture f(net::single_domain_line(6));
  const auto g = f.make_group();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.service->add_member(g, routers[0]);
  f.converge();
  const auto result = probe(f.network, f.service->group(g), routers[4]);
  EXPECT_TRUE(result.delivered());
  EXPECT_EQ(result.member, routers[0]);
  EXPECT_EQ(result.optimal_member, routers[0]);
  EXPECT_EQ(result.optimal_cost, 4u);
  EXPECT_DOUBLE_EQ(result.stretch, 1.0);
}

TEST(Resolver, ProbeFromMemberItself) {
  Fixture f(net::single_domain_line(4));
  const auto g = f.make_group();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.service->add_member(g, routers[2]);
  f.converge();
  const auto result = probe(f.network, f.service->group(g), routers[2]);
  EXPECT_TRUE(result.delivered());
  EXPECT_EQ(result.optimal_cost, 0u);
  EXPECT_DOUBLE_EQ(result.stretch, 1.0);
}

TEST(Resolver, UndeliveredWhenNoMembers) {
  Fixture f(net::single_domain_line(3));
  const auto g = f.make_group();
  f.converge();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  const auto result = probe(f.network, f.service->group(g), routers[0]);
  EXPECT_FALSE(result.delivered());
  EXPECT_EQ(result.optimal_cost, net::kInfiniteCost);
}

TEST(Resolver, OracleReusableAcrossProbes) {
  Fixture f(net::single_domain_ring(8));
  const auto g = f.make_group();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.service->add_member(g, routers[0]);
  f.service->add_member(g, routers[4]);
  f.converge();
  const ClosestMemberOracle oracle(f.network.topology(), f.service->group(g));
  for (const NodeId src : routers) {
    const auto result = probe(f.network, f.service->group(g), src, oracle);
    EXPECT_TRUE(result.delivered());
    EXPECT_LE(result.trace.cost, 2u);  // ring of 8 with opposite members
    EXPECT_DOUBLE_EQ(result.stretch, 1.0);
  }
}

TEST(Resolver, CatchmentFullCoverage) {
  Fixture f(net::single_domain_grid(4, 4));
  const auto g = f.make_group();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.service->add_member(g, routers[0]);
  f.service->add_member(g, routers[15]);
  f.converge();
  const auto catchment = compute_catchment(f.network, f.service->group(g));
  EXPECT_DOUBLE_EQ(catchment.delivered_fraction, 1.0);
  EXPECT_DOUBLE_EQ(catchment.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(catchment.optimal_fraction, 1.0);
  // Every router is mapped to some member.
  for (const NodeId src : routers) {
    EXPECT_TRUE(catchment.member[src.value()].valid());
  }
}

TEST(Resolver, CatchmentSplitsBetweenMembers) {
  Fixture f(net::single_domain_line(10));
  const auto g = f.make_group();
  const auto& routers = f.network.topology().domain(DomainId{0}).routers;
  f.service->add_member(g, routers[0]);
  f.service->add_member(g, routers[9]);
  f.converge();
  const auto catchment = compute_catchment(f.network, f.service->group(g));
  std::size_t to_left = 0;
  std::size_t to_right = 0;
  for (const NodeId src : routers) {
    if (catchment.member[src.value()] == routers[0]) ++to_left;
    if (catchment.member[src.value()] == routers[9]) ++to_right;
  }
  EXPECT_EQ(to_left, 5u);
  EXPECT_EQ(to_right, 5u);
}

TEST(Resolver, EmptyGroupCatchment) {
  Fixture f(net::single_domain_line(3));
  const auto g = f.make_group();
  f.converge();
  const auto catchment = compute_catchment(f.network, f.service->group(g));
  EXPECT_DOUBLE_EQ(catchment.delivered_fraction, 0.0);
}

}  // namespace
}  // namespace evo::anycast
