// GIA mode (§3.2's scalable-anycast design point): member routes visible
// within a bounded AS radius, home-domain default routes beyond it.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo::anycast {
namespace {

using net::DomainId;
using net::NodeId;
using net::Prefix;

/// A chain of five domains: d0 - d1 - d2 - d3 - d4 (providers to the
/// right), one router each.
std::unique_ptr<core::EvolvableInternet> chain5() {
  net::Topology topo;
  std::vector<NodeId> routers;
  for (int i = 0; i < 5; ++i) {
    const auto d = topo.add_domain("d" + std::to_string(i));
    routers.push_back(topo.add_router(d));
  }
  for (int i = 0; i < 4; ++i) {
    topo.add_interdomain_link(routers[i], routers[i + 1],
                              net::Relationship::kProvider);
  }
  auto net = std::make_unique<core::EvolvableInternet>(std::move(topo));
  net->start();
  return net;
}

TEST(Gia, AddressRootedInHomeDomain) {
  auto net = chain5();
  GroupConfig config;
  config.mode = InterDomainMode::kGia;
  config.default_domain = DomainId{0};
  const auto g = net->anycast().create_group(config);
  EXPECT_TRUE(net->topology().domain(DomainId{0}).prefix.contains(
      net->anycast().group(g).address));
}

TEST(Gia, MemberRouteVisibleWithinRadiusOnly) {
  auto net = chain5();
  GroupConfig config;
  config.mode = InterDomainMode::kGia;
  config.default_domain = DomainId{0};
  config.gia_search_radius = 2;
  const auto g = net->anycast().create_group(config);
  // Home member at d0, plus a member at d4 (far end).
  net->anycast().add_member(g, net->topology().domain(DomainId{0}).routers[0]);
  net->anycast().add_member(g, net->topology().domain(DomainId{4}).routers[0]);
  net->converge();
  const Prefix host_route = Prefix::host(net->anycast().group(g).address);
  // d3 is 1 hop from d4: sees the member route.
  const NodeId r3 = net->topology().domain(DomainId{3}).routers[0];
  const auto* at_r3 = net->bgp().best_route(r3, host_route);
  ASSERT_NE(at_r3, nullptr);
  EXPECT_EQ(at_r3->origin_domain(), DomainId{4});
  // d2 is 2 hops: still inside the radius.
  const NodeId r2 = net->topology().domain(DomainId{2}).routers[0];
  const auto* at_r2 = net->bgp().best_route(r2, host_route);
  ASSERT_NE(at_r2, nullptr);
  // d1 is 3 hops from d4 and 1 from d0: the only member-specific offer it
  // can see is d0's (d4's stopped at the radius).
  const NodeId r1 = net->topology().domain(DomainId{1}).routers[0];
  const auto* at_r1 = net->bgp().best_route(r1, host_route);
  ASSERT_NE(at_r1, nullptr);
  EXPECT_EQ(at_r1->origin_domain(), DomainId{0});
}

TEST(Gia, BeyondRadiusFallsBackToHomeDomain) {
  auto net = chain5();
  GroupConfig config;
  config.mode = InterDomainMode::kGia;
  config.default_domain = DomainId{0};
  config.gia_search_radius = 1;  // members visible to direct neighbors only
  const auto g = net->anycast().create_group(config);
  net->anycast().add_member(g, net->topology().domain(DomainId{0}).routers[0]);
  net->anycast().add_member(g, net->topology().domain(DomainId{3}).routers[0]);
  net->converge();
  // A probe from d1 (2 hops from the d3 member, beyond radius 1): follows
  // the home aggregate and lands at d0 — "the packet will reach a group
  // member although not necessarily the closest."
  const auto probe1 = probe(net->network(), net->anycast().group(g),
                            net->topology().domain(DomainId{1}).routers[0]);
  ASSERT_TRUE(probe1.delivered());
  EXPECT_EQ(net->topology().router(probe1.member).domain, DomainId{0});
  // A probe from d2 (direct neighbor of d3): the search finds d3's member.
  const auto probe2 = probe(net->network(), net->anycast().group(g),
                            net->topology().domain(DomainId{2}).routers[0]);
  ASSERT_TRUE(probe2.delivered());
  EXPECT_EQ(net->topology().router(probe2.member).domain, DomainId{3});
}

TEST(Gia, RadiusControlsStateFootprint) {
  // Larger radius => more routers carry the member's /32.
  for (const std::uint8_t radius : {1, 3}) {
    auto net = chain5();
    GroupConfig config;
    config.mode = InterDomainMode::kGia;
    config.default_domain = DomainId{0};
    config.gia_search_radius = radius;
    const auto g = net->anycast().create_group(config);
    net->anycast().add_member(g, net->topology().domain(DomainId{0}).routers[0]);
    net->anycast().add_member(g, net->topology().domain(DomainId{4}).routers[0]);
    net->converge();
    const Prefix host_route = Prefix::host(net->anycast().group(g).address);
    std::size_t carriers = 0;
    for (const auto& router : net->topology().routers()) {
      if (net->bgp().best_route(router.id, host_route) != nullptr) ++carriers;
    }
    // Origin domains always carry their own /32 (self routes), so
    // radius 1 gives the two origins + their direct neighbors.
    if (radius == 1) {
      EXPECT_LE(carriers, 4u);
    } else {
      EXPECT_EQ(carriers, 5u);  // radius 3 blankets the whole chain
    }
  }
}

TEST(Gia, HomeMemberGuaranteesDelivery) {
  // "GIA requires that the home domain include at least one member":
  // with one, every probe delivers; without one, distant probes die in
  // the empty home domain.
  auto net = chain5();
  GroupConfig config;
  config.mode = InterDomainMode::kGia;
  config.default_domain = DomainId{0};
  config.gia_search_radius = 1;
  const auto g = net->anycast().create_group(config);
  net->anycast().add_member(g, net->topology().domain(DomainId{3}).routers[0]);
  net->converge();
  // No home member: d1's probe (beyond the radius) fails.
  const auto orphan = probe(net->network(), net->anycast().group(g),
                            net->topology().domain(DomainId{1}).routers[0]);
  EXPECT_FALSE(orphan.delivered());
  // Add the home member: everyone delivers.
  net->anycast().add_member(g, net->topology().domain(DomainId{0}).routers[0]);
  net->converge();
  for (const auto& router : net->topology().routers()) {
    EXPECT_TRUE(
        probe(net->network(), net->anycast().group(g), router.id).delivered())
        << "from router " << router.id.value();
  }
}

}  // namespace
}  // namespace evo::anycast
