// Traffic accounting for the A4 incentive argument.
#include "core/economics.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace evo::core {
namespace {

using net::DomainId;
using net::HostId;

struct Fixture {
  Fixture() {
    auto topo = net::generate_transit_stub({.transit_domains = 2,
                                            .stubs_per_transit = 2,
                                            .multihoming_probability = 0.0,
                                            .seed = 101});
    sim::Rng rng{101};
    net::attach_hosts(topo, 1, rng);
    internet = std::make_unique<EvolvableInternet>(std::move(topo));
    internet->start();
  }

  std::unique_ptr<EvolvableInternet> internet;
};

TEST(Economics, FlowConservation) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto account = account_ipvn_traffic(*f.internet);
  EXPECT_EQ(account.flows_attempted, 12u);  // 4 hosts, ordered pairs
  EXPECT_EQ(account.flows_delivered, 12u);
  std::uint64_t originated = 0;
  std::uint64_t terminated = 0;
  std::uint64_t ingress = 0;
  std::uint64_t egress = 0;
  for (const auto& t : account.per_domain) {
    originated += t.originated;
    terminated += t.terminated;
    ingress += t.vn_ingress;
    egress += t.vn_egress;
  }
  EXPECT_EQ(originated, account.flows_delivered);
  EXPECT_EQ(terminated, account.flows_delivered);
  EXPECT_EQ(ingress, account.flows_delivered);
  EXPECT_EQ(egress, account.flows_delivered);
}

TEST(Economics, SoleDeployerCapturesAllIngress) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto account = account_ipvn_traffic(*f.internet);
  EXPECT_EQ(account.domain(DomainId{0}).vn_ingress, account.flows_delivered);
  EXPECT_EQ(account.domain(DomainId{1}).vn_ingress, 0u);
}

TEST(Economics, DeploymentAttractsIngress) {
  // A4: once domain 1 deploys, it captures ingress for its own catchment.
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->deploy_domain(DomainId{1});
  f.internet->converge();
  const auto account = account_ipvn_traffic(*f.internet);
  EXPECT_GT(account.domain(DomainId{1}).vn_ingress, 0u);
  EXPECT_LT(account.domain(DomainId{0}).vn_ingress, account.flows_delivered);
}

TEST(Economics, TransitHopsExcludeEndpoints) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto account = account_ipvn_traffic(*f.internet);
  // Stub domains host all endpoints; their transit-hop counts must only
  // reflect flows between *other* stubs — for a stub that's zero (no one
  // transits a stub).
  for (const auto& d : f.internet->topology().domains()) {
    if (d.stub) {
      EXPECT_EQ(account.domain(d.id).transit_hops, 0u) << d.name;
    }
  }
  // The transit domains carry everything.
  EXPECT_GT(account.domain(DomainId{0}).transit_hops +
                account.domain(DomainId{1}).transit_hops,
            0u);
}

TEST(Economics, SampledWorkloadBounded) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto account = account_ipvn_traffic(*f.internet, /*max_pairs=*/5);
  EXPECT_EQ(account.flows_attempted, 5u);
}

TEST(Economics, ReportListsActiveDomains) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto account = account_ipvn_traffic(*f.internet);
  const auto report = account.report(f.internet->topology());
  EXPECT_NE(report.find("transit-0"), std::string::npos);
  EXPECT_NE(report.find("vn-in"), std::string::npos);
}

TEST(Economics, NoDeploymentNoDelivery) {
  Fixture f;
  const auto account = account_ipvn_traffic(*f.internet);
  EXPECT_EQ(account.flows_delivered, 0u);
  EXPECT_GT(account.flows_attempted, 0u);
}

}  // namespace
}  // namespace evo::core
