// Multiple concurrent IP generations (§3.2): IPv8 and IPv9 deployments
// coexisting over the same substrate, each with its own anycast address,
// vN-Bone, and host addressing.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "net/topology_gen.h"

namespace evo::core {
namespace {

using net::DomainId;
using net::HostId;

struct Fixture {
  Fixture() {
    auto topo = net::generate_transit_stub({.transit_domains = 2,
                                            .stubs_per_transit = 2,
                                            .seed = 91});
    sim::Rng rng{91};
    net::attach_hosts(topo, 1, rng);
    internet = std::make_unique<EvolvableInternet>(std::move(topo));
    internet->start();
    vnbone::VnBoneConfig v9;
    v9.version = 9;
    gen9 = internet->add_generation(v9);
  }

  std::unique_ptr<EvolvableInternet> internet;
  std::size_t gen9 = 0;
};

TEST(Generations, IndependentDeployments) {
  Fixture f;
  EXPECT_EQ(f.internet->generation_count(), 2u);
  // IPv8 deploys in domain 0; IPv9 in domain 1.
  f.internet->deploy_domain(DomainId{0});
  f.internet->generation(f.gen9).deploy_domain(DomainId{1});
  f.internet->converge();
  EXPECT_TRUE(f.internet->vnbone().domain_deployed(DomainId{0}));
  EXPECT_FALSE(f.internet->vnbone().domain_deployed(DomainId{1}));
  EXPECT_TRUE(f.internet->generation(f.gen9).domain_deployed(DomainId{1}));
  EXPECT_FALSE(f.internet->generation(f.gen9).domain_deployed(DomainId{0}));
}

TEST(Generations, DistinctAnycastAddresses) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->generation(f.gen9).deploy_domain(DomainId{0});
  f.internet->converge();
  EXPECT_NE(f.internet->vnbone().anycast_address(),
            f.internet->generation(f.gen9).anycast_address());
}

TEST(Generations, BothDeliverConcurrently) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->generation(f.gen9).deploy_domain(DomainId{1});
  f.internet->converge();
  const auto v8 = send_ipvn(*f.internet, HostId{0}, HostId{3});
  const auto v9 = send_ipvn_generation(*f.internet, f.gen9, HostId{0}, HostId{3});
  ASSERT_TRUE(v8.delivered) << v8.describe();
  ASSERT_TRUE(v9.delivered) << v9.describe();
  // Different generations entered through different ingress domains.
  EXPECT_EQ(f.internet->topology().router(v8.ingress).domain, DomainId{0});
  EXPECT_EQ(f.internet->topology().router(v9.ingress).domain, DomainId{1});
}

TEST(Generations, HostAddressVersionsDiffer) {
  Fixture f;
  const auto& topo = f.internet->topology();
  const DomainId host_domain =
      topo.router(topo.host(HostId{0}).access_router).domain;
  f.internet->deploy_domain(host_domain);
  f.internet->generation(f.gen9).deploy_domain(host_domain);
  f.internet->converge();
  const auto a8 = f.internet->hosts().ipvn_address(HostId{0});
  const auto a9 = f.internet->generation_hosts(f.gen9).ipvn_address(HostId{0});
  EXPECT_EQ(a8.version(), 8);
  EXPECT_EQ(a9.version(), 9);
  EXPECT_FALSE(a8.is_self_address());
  EXPECT_FALSE(a9.is_self_address());
}

TEST(Generations, StateCostIsAdditive) {
  // Each concurrent generation costs one anycast group (option 1: one
  // global route per member domain) — the paper's argument that the
  // count stays small keeps this affordable.
  auto topo = net::generate_transit_stub({.transit_domains = 2,
                                          .stubs_per_transit = 2,
                                          .seed = 92});
  Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  EvolvableInternet internet(std::move(topo), options);
  internet.start();
  internet.deploy_domain(DomainId{0});
  internet.converge();
  const auto& borders = internet.bgp().speakers_of(DomainId{1});
  ASSERT_FALSE(borders.empty());
  const auto one_gen = internet.bgp().loc_rib_size(borders[0], true);
  vnbone::VnBoneConfig v9;
  v9.version = 9;
  v9.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  const auto gen9 = internet.add_generation(v9);
  internet.generation(gen9).deploy_domain(DomainId{0});
  internet.converge();
  EXPECT_EQ(internet.bgp().loc_rib_size(borders[0], true), one_gen + 1);
}

TEST(Generations, UndeployOneLeavesOtherIntact) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->generation(f.gen9).deploy_domain(DomainId{0});
  f.internet->converge();
  for (const auto r : f.internet->vnbone().deployed_routers()) {
    f.internet->undeploy_router(r);
  }
  f.internet->converge();
  EXPECT_TRUE(f.internet->vnbone().deployed_routers().empty());
  EXPECT_FALSE(f.internet->generation(f.gen9).deployed_routers().empty());
  const auto v9 = send_ipvn_generation(*f.internet, f.gen9, HostId{0}, HostId{3});
  EXPECT_TRUE(v9.delivered);
}

}  // namespace
}  // namespace evo::core
