#include "core/evolvable_internet.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/trace.h"
#include "net/topology_gen.h"

namespace evo::core {
namespace {

using net::DomainId;
using net::NodeId;

TEST(EvolvableInternet, StartConvergesBaseInternet) {
  auto topo = net::generate_transit_stub({.transit_domains = 2,
                                          .stubs_per_transit = 2,
                                          .seed = 3});
  EvolvableInternet net(std::move(topo));
  net.start();
  EXPECT_TRUE(net.simulator().idle());
  // Full unicast reachability across all domains.
  const auto& t = net.topology();
  for (const auto& src : t.routers()) {
    for (const auto& dst : t.routers()) {
      const auto result = net.network().trace(src.id, dst.loopback);
      ASSERT_TRUE(result.delivered())
          << src.id.value() << " -> " << dst.id.value();
    }
  }
}

TEST(EvolvableInternet, IgpKindSelectable) {
  for (const IgpKind kind : {IgpKind::kLinkState, IgpKind::kDistanceVector,
                             IgpKind::kDistanceVectorTagged}) {
    Options options;
    options.igp = kind;
    EvolvableInternet net(net::single_domain_ring(5), options);
    net.start();
    const auto& routers = net.topology().domain(DomainId{0}).routers;
    EXPECT_EQ(net.igp(DomainId{0})->distance(routers[0], routers[2]), 2u)
        << to_string(kind);
  }
}

TEST(EvolvableInternet, IgpKindNames) {
  EXPECT_STREQ(to_string(IgpKind::kLinkState), "link-state");
  EXPECT_STREQ(to_string(IgpKind::kDistanceVector), "distance-vector");
  EXPECT_STREQ(to_string(IgpKind::kDistanceVectorTagged),
               "distance-vector-tagged");
}

TEST(EvolvableInternet, LinkFailurePropagatesToProtocols) {
  auto fig = make_figure1();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  const auto& topo = net.topology();
  // Fail W's internal w0-w1 link; intra-domain rerouting is impossible on
  // a line, so X becomes unreachable from Z.
  const net::LinkId internal{0};
  ASSERT_FALSE(topo.link(internal).interdomain);
  net.set_link_up(internal, false);
  net.converge();
  const NodeId z_router = topo.domain(fig.z).routers[0];
  const NodeId x_router = topo.domain(fig.x).routers[0];
  const auto result = net.network().trace(z_router, topo.router(x_router).loopback);
  EXPECT_FALSE(result.delivered());
  // Restore.
  net.set_link_up(internal, true);
  net.converge();
  EXPECT_TRUE(
      net.network().trace(z_router, topo.router(x_router).loopback).delivered());
}

TEST(EvolvableInternet, InterdomainLinkFailureHandledByBgp) {
  auto fig = make_figure2();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  const auto& topo = net.topology();
  // Find the Q-Y peering link and cut it; Y must still reach Q's prefix
  // through D-P (longer policy path).
  net::LinkId qy = net::LinkId::invalid();
  for (const auto& link : topo.links()) {
    if (!link.interdomain) continue;
    const auto da = topo.router(link.a).domain;
    const auto db = topo.router(link.b).domain;
    if ((da == fig.q && db == fig.y) || (da == fig.y && db == fig.q)) qy = link.id;
  }
  ASSERT_TRUE(qy.valid());
  const NodeId y_router = topo.domain(fig.y).routers[0];
  ASSERT_TRUE(net.network()
                  .trace(y_router, topo.domain(fig.q).prefix.address())
                  .delivered());
  net.set_link_up(qy, false);
  net.converge();
  const auto rerouted = net.network().trace(y_router, topo.domain(fig.q).prefix.address());
  ASSERT_TRUE(rerouted.delivered());
  // The path now crosses D and P.
  bool crossed_p = false;
  for (const NodeId hop : rerouted.hops) {
    if (topo.router(hop).domain == fig.p) crossed_p = true;
  }
  EXPECT_TRUE(crossed_p);
}

TEST(EndToEndTrace, CostAndDescribe) {
  net::Topology topo = net::single_domain_line(4);
  const auto h0 = topo.add_host(topo.domain(DomainId{0}).routers[0]);
  const auto h1 = topo.add_host(topo.domain(DomainId{0}).routers[3]);
  EvolvableInternet net(std::move(topo));
  net.start();
  net.deploy_domain(DomainId{0});
  net.converge();
  const auto trace = send_ipvn(net, h0, h1);
  ASSERT_TRUE(trace.delivered);
  EXPECT_EQ(trace.failure, EndToEndTrace::Failure::kNone);
  EXPECT_GT(trace.total_cost(), 0u);
  EXPECT_GT(trace.total_hops(), 0u);
  const auto text = trace.describe();
  EXPECT_NE(text.find("delivered"), std::string::npos);
}

TEST(EndToEndTrace, FailsCleanlyWithoutDeployment) {
  net::Topology topo = net::single_domain_line(3);
  const auto h0 = topo.add_host(topo.domain(DomainId{0}).routers[0]);
  const auto h1 = topo.add_host(topo.domain(DomainId{0}).routers[2]);
  EvolvableInternet net(std::move(topo));
  net.start();
  const auto trace = send_ipvn(net, h0, h1);
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.failure, EndToEndTrace::Failure::kNoDeployment);
  EXPECT_NE(std::string(trace.describe()).find("no-deployment"), std::string::npos);
}

TEST(EndToEndTrace, OracleHostDistance) {
  net::Topology topo = net::single_domain_line(4, /*cost=*/2);
  const auto h0 = topo.add_host(topo.domain(DomainId{0}).routers[0]);
  const auto h1 = topo.add_host(topo.domain(DomainId{0}).routers[3]);
  EvolvableInternet net(std::move(topo));
  net.start();
  EXPECT_EQ(oracle_host_distance(net, h0, h1), 6u);
  EXPECT_EQ(oracle_host_distance(net, h0, h0), 0u);
}

TEST(EndToEndTrace, SegmentKindsLabelled) {
  EXPECT_STREQ(to_string(Segment::Kind::kAnycastIngress), "anycast-ingress");
  EXPECT_STREQ(to_string(Segment::Kind::kTunnel), "tunnel");
  EXPECT_STREQ(to_string(Segment::Kind::kLegacyEgress), "legacy-egress");
  EXPECT_STREQ(to_string(EndToEndTrace::Failure::kIngressFailed), "ingress-failed");
}

}  // namespace
}  // namespace evo::core
