// Universal Access (§2.1): every client can use IPvN from the moment a
// single ISP deploys it, regardless of what its own ISP does.
#include "core/universal_access.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "net/topology_gen.h"

namespace evo::core {
namespace {

using net::DomainId;

std::unique_ptr<EvolvableInternet> transit_stub_internet(std::uint64_t seed,
                                                         Options options = {}) {
  auto topo = net::generate_transit_stub({.transit_domains = 2,
                                          .stubs_per_transit = 3,
                                          .seed = seed});
  sim::Rng rng{seed};
  net::attach_hosts(topo, 2, rng);
  auto net = std::make_unique<EvolvableInternet>(std::move(topo), options);
  net->start();
  return net;
}

TEST(UniversalAccess, HoldsWithSingleDeployingDomain) {
  auto net = transit_stub_internet(21);
  // Exactly one (stub!) domain deploys; every host pair must still work.
  DomainId deployer = DomainId::invalid();
  for (const auto& d : net->topology().domains()) {
    if (d.stub) {
      deployer = d.id;
      break;
    }
  }
  net->deploy_domain(deployer);
  net->converge();
  const auto report = verify_universal_access(*net);
  EXPECT_TRUE(report.universal())
      << report.failures.size() << " failures of " << report.pairs_checked;
  EXPECT_GT(report.mean_cost, 0.0);
  EXPECT_GE(report.mean_stretch, 1.0);
}

TEST(UniversalAccess, HoldsWithSingleDeployedRouter) {
  // Even one router in one domain suffices (extreme partial deployment).
  auto net = transit_stub_internet(22);
  net->deploy_router(net->topology().domains()[0].routers.front());
  net->converge();
  const auto report = verify_universal_access(*net);
  EXPECT_TRUE(report.universal())
      << report.failures.size() << " failures of " << report.pairs_checked;
}

TEST(UniversalAccess, HoldsAtEveryDeploymentStage) {
  auto net = transit_stub_internet(23);
  const auto& domains = net->topology().domains();
  for (const auto& domain : domains) {
    net->deploy_domain(domain.id);
    net->converge();
    const auto report = verify_universal_access(*net, /*max_pairs=*/60);
    EXPECT_TRUE(report.universal())
        << "after deploying " << domain.name << ": " << report.failures.size()
        << " failures";
  }
}

TEST(UniversalAccess, StretchShrinksAsDeploymentSpreads) {
  auto net = transit_stub_internet(24);
  const auto& domains = net->topology().domains();
  net->deploy_domain(domains[0].id);
  net->converge();
  const auto early = verify_universal_access(*net);
  for (const auto& domain : domains) net->deploy_domain(domain.id);
  net->converge();
  const auto full = verify_universal_access(*net);
  ASSERT_TRUE(early.universal());
  ASSERT_TRUE(full.universal());
  // With universal deployment, detours through remote IPvN routers vanish.
  EXPECT_LT(full.mean_stretch, early.mean_stretch);
}

TEST(UniversalAccess, NoPairsWithoutHosts) {
  EvolvableInternet net(net::single_domain_line(3));
  net.start();
  const auto report = verify_universal_access(net);
  EXPECT_EQ(report.pairs_checked, 0u);
  EXPECT_FALSE(report.universal());
}

TEST(UniversalAccess, SamplingBoundsPairCount) {
  auto net = transit_stub_internet(25);
  net->deploy_domain(net->topology().domains()[0].id);
  net->converge();
  const auto report = verify_universal_access(*net, /*max_pairs=*/10);
  EXPECT_EQ(report.pairs_checked, 10u);
}

TEST(UniversalAccess, SamplingDeterministicForSeed) {
  auto net = transit_stub_internet(26);
  net->deploy_domain(net->topology().domains()[0].id);
  net->converge();
  const auto a = verify_universal_access(*net, 20, /*seed=*/5);
  const auto b = verify_universal_access(*net, 20, /*seed=*/5);
  EXPECT_EQ(a.pairs_delivered, b.pairs_delivered);
  EXPECT_DOUBLE_EQ(a.mean_cost, b.mean_cost);
}

TEST(UniversalAccess, FailureListedWhenIngressImpossible) {
  // Degenerate: no deployment at all => every pair fails with
  // kNoDeployment and the report says so.
  net::Topology topo = net::single_domain_line(3);
  topo.add_host(topo.domain(DomainId{0}).routers[0]);
  topo.add_host(topo.domain(DomainId{0}).routers[2]);
  EvolvableInternet net(std::move(topo));
  net.start();
  const auto report = verify_universal_access(net);
  EXPECT_FALSE(report.universal());
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].failure, EndToEndTrace::Failure::kNoDeployment);
}

}  // namespace
}  // namespace evo::core
