// The paper's four figures, verified end to end. Each test replays the
// figure's exact scenario and asserts the behavior the figure depicts.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "core/trace.h"

namespace evo::core {
namespace {

using net::DomainId;
using net::NodeId;

/// Domain serving an anycast probe from `source`.
DomainId serving_domain(const EvolvableInternet& net, NodeId source) {
  const auto group = net.vnbone().anycast_group();
  const auto probe =
      anycast::probe(net.network(), net.anycast().group(group), source);
  if (!probe.delivered()) return DomainId::invalid();
  return net.topology().router(probe.member).domain;
}

TEST(Figure1, SeamlessSpreadOfDeployment) {
  // "IPv8 is deployed successively in ISPs X, then Y and finally Z.
  // Throughout, client C is seamlessly redirected to the closest IPv8
  // provider." Option-1 anycast (global routes) models the figure's
  // assumed global anycast service.
  auto fig = make_figure1();
  Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  EvolvableInternet net(std::move(fig.topology), options);
  net.start();
  const NodeId client_access = net.topology().host(fig.client).access_router;

  net.deploy_domain(fig.x);
  net.converge();
  EXPECT_EQ(serving_domain(net, client_access), fig.x);

  net.deploy_domain(fig.y);
  net.converge();
  EXPECT_EQ(serving_domain(net, client_access), fig.y);

  net.deploy_domain(fig.z);
  net.converge();
  EXPECT_EQ(serving_domain(net, client_access), fig.z);
}

TEST(Figure1, ClientNeedsNoReconfiguration) {
  // The client-visible configuration (the anycast address it encapsulates
  // to) must never change across deployment stages.
  auto fig = make_figure1();
  Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  EvolvableInternet net(std::move(fig.topology), options);
  net.start();
  net.deploy_domain(fig.x);
  net.converge();
  const auto address_stage1 = net.vnbone().anycast_address();
  net.deploy_domain(fig.y);
  net.converge();
  const auto address_stage2 = net.vnbone().anycast_address();
  net.deploy_domain(fig.z);
  net.converge();
  const auto address_stage3 = net.vnbone().anycast_address();
  EXPECT_EQ(address_stage1, address_stage2);
  EXPECT_EQ(address_stage2, address_stage3);
}

TEST(Figure2, DefaultRoutesAndOptionalPeering) {
  // D is the default domain; Q also deploys. "Anycast packets from
  // domains X and Y terminate in domain D while those from Z reach Q."
  auto fig = make_figure2();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.d);  // first deployer => default, owns the address
  net.deploy_domain(fig.q);
  net.converge();
  ASSERT_EQ(net.vnbone().default_domain(), fig.d);

  const auto& topo = net.topology();
  EXPECT_EQ(serving_domain(net, topo.host(fig.host_x).access_router), fig.d);
  EXPECT_EQ(serving_domain(net, topo.host(fig.host_y).access_router), fig.d);
  EXPECT_EQ(serving_domain(net, topo.host(fig.host_z).access_router), fig.q);

  // "Q can peer with Y to advertise its path for the anycast address in
  // question; Y's packets will then be delivered to Q rather than D."
  net.anycast().advertise_via_peering(net.vnbone().anycast_group(), fig.q, fig.y);
  net.converge();
  EXPECT_EQ(serving_domain(net, topo.host(fig.host_y).access_router), fig.q);
  // X's flow is unaffected.
  EXPECT_EQ(serving_domain(net, topo.host(fig.host_x).access_router), fig.d);
}

TEST(Figure3, BgpImportShortensLegacyTail) {
  // "Path to C w/ only BGPvN: last IPvN hop is X. Path with
  // BGPv(N-1)+BGPvN: last IPvN hop is Y."
  auto fig = make_figure3();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.m);
  net.deploy_domain(fig.o);
  net.converge();

  const auto naive = send_ipvn(net, fig.a, fig.c, vnbone::EgressMode::kExitAtIngress);
  ASSERT_TRUE(naive.delivered);
  // Without BGPv(N-1) the packet exits in M (at the ingress).
  EXPECT_EQ(net.topology().router(naive.egress).domain, fig.m);

  const auto informed =
      send_ipvn(net, fig.a, fig.c, vnbone::EgressMode::kOwnPathKnowledge);
  ASSERT_TRUE(informed.delivered);
  // With it, the last IPvN hop is in O — and the legacy tail shrinks.
  EXPECT_EQ(net.topology().router(informed.egress).domain, fig.o);
  EXPECT_LT(informed.legacy_tail_cost(), naive.legacy_tail_cost());
}

TEST(Figure4, AdvertisingByProxyImprovesPath) {
  // "B and C advertise their distance to Z into the BGPvN routing
  // protocol" — A's traffic to legacy Z rides the cheap deployed chain to
  // C instead of exiting onto the expensive legacy chain.
  auto fig = make_figure4();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.deploy_domain(fig.b);
  net.deploy_domain(fig.c);
  net.converge();

  const auto without =
      send_ipvn(net, fig.src, fig.dst, vnbone::EgressMode::kOwnPathKnowledge);
  ASSERT_TRUE(without.delivered);
  EXPECT_EQ(net.topology().router(without.egress).domain, fig.a);

  const auto with =
      send_ipvn(net, fig.src, fig.dst, vnbone::EgressMode::kProxyAdvertising);
  ASSERT_TRUE(with.delivered);
  EXPECT_EQ(net.topology().router(with.egress).domain, fig.c);
  // The proxy-advertised path is strictly cheaper end to end.
  EXPECT_LT(with.total_cost(), without.total_cost());
}

TEST(Figure4, ProxyPathRidesTheVnBone) {
  auto fig = make_figure4();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.deploy_domain(fig.b);
  net.deploy_domain(fig.c);
  net.converge();
  const auto trace =
      send_ipvn(net, fig.src, fig.dst, vnbone::EgressMode::kProxyAdvertising);
  ASSERT_TRUE(trace.delivered);
  // A -> B -> C over the bone: at least 2 virtual hops.
  EXPECT_GE(trace.vn_route.vn_hop_count(), 2u);
  // And the only legacy stretch is the C-Z customer link tail.
  EXPECT_LE(trace.legacy_tail_cost(), 3u);
}

}  // namespace
}  // namespace evo::core
