// Structural checks on the figure scenario factories — the topologies
// must match the figures' wiring, or every figure test upstream is
// testing the wrong picture.
#include "core/scenario.h"

#include <gtest/gtest.h>

namespace evo::core {
namespace {

using net::DomainId;
using net::Relationship;

TEST(Scenario, Figure1Wiring) {
  const auto fig = make_figure1();
  EXPECT_EQ(fig.topology.domain_count(), 4u);
  // X, Y, Z are customers of transit W.
  for (const DomainId leaf : {fig.x, fig.y, fig.z}) {
    EXPECT_EQ(fig.topology.relationship(fig.w, leaf), Relationship::kCustomer);
    EXPECT_EQ(fig.topology.relationship(leaf, fig.w), Relationship::kProvider);
  }
  // Z hosts client C.
  EXPECT_EQ(fig.topology.router(fig.topology.host(fig.client).access_router).domain,
            fig.z);
  // Z must be strictly closer to Y than to X (the figure's geometry).
  const auto graph = fig.topology.physical_graph();
  const auto from_z = net::dijkstra(graph, fig.topology.domain(fig.z).routers[0]);
  const auto dist = [&](DomainId d) {
    net::Cost best = net::kInfiniteCost;
    for (const auto r : fig.topology.domain(d).routers) {
      best = std::min(best, from_z.distance_to(r));
    }
    return best;
  };
  EXPECT_LT(dist(fig.y), dist(fig.x));
}

TEST(Scenario, Figure2Wiring) {
  const auto fig = make_figure2();
  EXPECT_EQ(fig.topology.domain_count(), 6u);
  // The figure's peerings: D-P peer, X/Y customers of D, Q customer of P,
  // Z customer of Q, Q-Y peer.
  EXPECT_EQ(fig.topology.relationship(fig.d, fig.p), Relationship::kPeer);
  EXPECT_EQ(fig.topology.relationship(fig.d, fig.x), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.d, fig.y), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.p, fig.q), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.q, fig.z), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.q, fig.y), Relationship::kPeer);
  // Q and D are NOT adjacent (Z's packets must transit Q on the way to D).
  EXPECT_FALSE(fig.topology.relationship(fig.q, fig.d).has_value());
}

TEST(Scenario, Figure3Wiring) {
  const auto fig = make_figure3();
  // O provides both M and C's domain; M and C's domain are not adjacent.
  EXPECT_EQ(fig.topology.relationship(fig.o, fig.m), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.o, fig.c_domain), Relationship::kCustomer);
  EXPECT_FALSE(fig.topology.relationship(fig.m, fig.c_domain).has_value());
  // The named routers are where the figure puts them.
  EXPECT_EQ(fig.topology.router(fig.x).domain, fig.m);
  EXPECT_EQ(fig.topology.router(fig.z).domain, fig.o);
  EXPECT_EQ(fig.topology.router(fig.y).domain, fig.o);
  EXPECT_EQ(fig.topology.router(fig.topology.host(fig.a).access_router).domain,
            fig.m);
  EXPECT_EQ(fig.topology.router(fig.topology.host(fig.c).access_router).domain,
            fig.c_domain);
}

TEST(Scenario, Figure4Wiring) {
  const auto fig = make_figure4();
  // Deployed chain A-B-C is peers; legacy chain A-M-N-Z mixes peer +
  // customer links; Z is multihomed to N and C.
  EXPECT_EQ(fig.topology.relationship(fig.a, fig.b), Relationship::kPeer);
  EXPECT_EQ(fig.topology.relationship(fig.b, fig.c), Relationship::kPeer);
  EXPECT_EQ(fig.topology.relationship(fig.a, fig.m), Relationship::kPeer);
  EXPECT_EQ(fig.topology.relationship(fig.m, fig.n), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.n, fig.z), Relationship::kCustomer);
  EXPECT_EQ(fig.topology.relationship(fig.c, fig.z), Relationship::kCustomer);
  // The legacy chain is decisively more expensive than the deployed one.
  const auto graph = fig.topology.physical_graph();
  const auto from_a = net::dijkstra(graph, fig.topology.domain(fig.a).routers[0]);
  const auto z_router = fig.topology.domain(fig.z).routers[0];
  EXPECT_LT(from_a.distance_to(z_router), 20u);  // the cheap A-B-C-Z route exists
}

TEST(Scenario, AllFiguresConnected) {
  EXPECT_EQ(net::connected_components(make_figure1().topology.physical_graph()).count,
            1u);
  EXPECT_EQ(net::connected_components(make_figure2().topology.physical_graph()).count,
            1u);
  EXPECT_EQ(net::connected_components(make_figure3().topology.physical_graph()).count,
            1u);
  EXPECT_EQ(net::connected_components(make_figure4().topology.physical_graph()).count,
            1u);
}

}  // namespace
}  // namespace evo::core
