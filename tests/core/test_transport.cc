// Event-driven IPvN transport: datagrams as simulator events with real
// latency accrual across all three legs of the data path.
#include "core/transport.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace evo::core {
namespace {

using net::DomainId;
using net::HostId;

struct Fixture {
  Fixture() {
    auto topo = net::generate_transit_stub({.transit_domains = 2,
                                            .stubs_per_transit = 2,
                                            .seed = 55});
    sim::Rng rng{55};
    net::attach_hosts(topo, 2, rng);
    internet = std::make_unique<EvolvableInternet>(std::move(topo));
    internet->start();
  }

  std::unique_ptr<EvolvableInternet> internet;
};

TEST(IpvnTransport, DeliversWithPositiveLatency) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  IpvnTransport transport(*f.internet);
  sim::Duration latency;
  bool received = false;
  transport.listen(HostId{5}, [&](HostId from, HostId to, std::uint64_t id,
                                  sim::Duration elapsed) {
    received = true;
    EXPECT_EQ(from, HostId{0});
    EXPECT_EQ(to, HostId{5});
    EXPECT_EQ(id, 7u);
    latency = elapsed;
  });
  transport.send(HostId{0}, HostId{5}, 7);
  f.internet->simulator().run();
  ASSERT_TRUE(received);
  EXPECT_GT(latency, sim::Duration::zero());
  EXPECT_EQ(transport.datagrams_sent(), 1u);
  EXPECT_EQ(transport.datagrams_received(), 1u);
  EXPECT_EQ(transport.datagrams_failed(), 0u);
}

TEST(IpvnTransport, FailsWithoutDeployment) {
  Fixture f;
  IpvnTransport transport(*f.internet);
  bool failed = false;
  transport.send(HostId{0}, HostId{5}, 1,
                 [&](EndToEndTrace::Failure failure, std::uint64_t id) {
                   failed = true;
                   EXPECT_EQ(failure, EndToEndTrace::Failure::kNoDeployment);
                   EXPECT_EQ(id, 1u);
                 });
  f.internet->simulator().run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(transport.datagrams_failed(), 1u);
}

TEST(IpvnTransport, LatencyMatchesTraceTopology) {
  // The event-driven latency must equal the sum of per-link latencies
  // along the synchronous trace's segments.
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto trace = send_ipvn(*f.internet, HostId{0}, HostId{5});
  ASSERT_TRUE(trace.delivered);
  sim::Duration expected = sim::Duration::zero();
  for (const auto& segment : trace.segments) expected += segment.trace.latency;

  IpvnTransport transport(*f.internet);
  sim::Duration measured;
  transport.listen(HostId{5},
                   [&](HostId, HostId, std::uint64_t, sim::Duration elapsed) {
                     measured = elapsed;
                   });
  transport.send(HostId{0}, HostId{5});
  f.internet->simulator().run();
  EXPECT_EQ(measured, expected);
}

TEST(IpvnTransport, ManyDatagramsAllPairs) {
  Fixture f;
  f.internet->deploy_domain(DomainId{1});
  f.internet->converge();
  IpvnTransport transport(*f.internet);
  std::size_t received = 0;
  const auto& hosts = f.internet->topology().hosts();
  for (const auto& h : hosts) {
    transport.listen(h.id, [&](HostId, HostId, std::uint64_t, sim::Duration) {
      ++received;
    });
  }
  std::size_t sent = 0;
  for (const auto& src : hosts) {
    for (const auto& dst : hosts) {
      if (src.id == dst.id) continue;
      transport.send(src.id, dst.id, ++sent);
    }
  }
  f.internet->simulator().run();
  EXPECT_EQ(received, sent);
  EXPECT_EQ(transport.datagrams_received(), sent);
  EXPECT_EQ(transport.datagrams_failed(), 0u);
}

TEST(IpvnTransport, UnlistenedDeliveryStillCounts) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  IpvnTransport transport(*f.internet);
  transport.send(HostId{0}, HostId{5});
  f.internet->simulator().run();
  EXPECT_EQ(transport.datagrams_received(), 1u);
}

}  // namespace
}  // namespace evo::core
