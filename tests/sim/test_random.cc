#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace evo::sim {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng{11};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{13};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{19};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng{23};
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleAllIndices) {
  Rng rng{29};
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Rng, ForkIndependence) {
  Rng parent{31};
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2{31};
  parent2.fork();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(Rng, PickFromVector) {
  Rng rng{37};
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  // Regression pin: splitmix64(0) first output is the published constant.
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace evo::sim
