#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace evo::sim {
namespace {

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Summary, BasicStats) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, StdDevSample) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Summary, PercentileAfterInterleavedAdds) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1.0);  // forces re-sort
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Summary, BriefIncludesP99) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const auto brief = s.brief();
  EXPECT_NE(brief.find("p95=95.000"), std::string::npos) << brief;
  EXPECT_NE(brief.find("p99=99.000"), std::string::npos) << brief;
  EXPECT_NE(brief.find("p99.9=100.000"), std::string::npos) << brief;
}

TEST(Summary, PercentileRejectsNaN) {
  Summary s;
  EXPECT_TRUE(std::isnan(s.percentile(std::nan(""))));  // even when empty
  for (double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_TRUE(std::isnan(s.percentile(std::nan(""))));
  // ...and a NaN query must not poison the sorted cache for real queries.
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(Summary, TailPercentileDistinguishesP999) {
  // 1000 samples: p99 and p99.9 land on different ranks under nearest-rank.
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(99), 990.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 999.0);
}

TEST(Summary, BriefResortsAfterLaterAdds) {
  // Regression guard for the sorted_ cache: brief() sorts internally; an
  // add() afterwards must invalidate the cache so the next brief()/
  // percentile() sees the new sample in its correct rank.
  Summary s;
  s.add(10.0);
  s.add(20.0);
  (void)s.brief();  // sorts
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_NE(s.brief().find("p50=10.000"), std::string::npos);
}

TEST(Summary, AppendConcatenatesSamplesInOrder) {
  Summary a, b;
  a.add(3.0);
  a.add(1.0);
  (void)a.percentile(50);  // sorts a's samples in place: {1, 3}
  b.add(2.0);
  a.append(b);  // must invalidate the sorted cache
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.samples(), (std::vector<double>{1.0, 3.0, 2.0}));
  EXPECT_DOUBLE_EQ(a.percentile(100), 3.0);
  EXPECT_DOUBLE_EQ(a.percentile(50), 2.0);
}

TEST(MetricRegistry, MergeFromSumsCountersAndAppendsSummaries) {
  MetricRegistry a, b;
  a.increment("hits", 2);
  a.observe("lat", 1.0);
  b.increment("hits", 3);
  b.increment("only_b", 1);
  b.observe("lat", 5.0);
  b.observe("only_b_lat", 9.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("hits"), 5);
  EXPECT_EQ(a.counter("only_b"), 1);
  EXPECT_EQ(a.summary("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("lat").mean(), 3.0);
  ASSERT_NE(a.find_summary("only_b_lat"), nullptr);
}

TEST(Summary, ClearResets) {
  Summary s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Summary, BriefFormatting) {
  Summary s;
  s.add(2.0);
  const auto brief = s.brief();
  EXPECT_NE(brief.find("n=1"), std::string::npos);
  EXPECT_NE(brief.find("mean=2.000"), std::string::npos);
}

TEST(MetricRegistry, Counters) {
  MetricRegistry reg;
  EXPECT_EQ(reg.counter("x"), 0);
  reg.increment("x");
  reg.increment("x", 4);
  EXPECT_EQ(reg.counter("x"), 5);
}

TEST(MetricRegistry, Summaries) {
  MetricRegistry reg;
  reg.observe("lat", 1.0);
  reg.observe("lat", 3.0);
  EXPECT_DOUBLE_EQ(reg.summary("lat").mean(), 2.0);
  EXPECT_NE(reg.find_summary("lat"), nullptr);
  EXPECT_EQ(reg.find_summary("missing"), nullptr);
}

TEST(MetricRegistry, ReportContainsAllNames) {
  MetricRegistry reg;
  reg.increment("packets", 7);
  reg.observe("stretch", 1.5);
  const auto report = reg.report();
  EXPECT_NE(report.find("packets"), std::string::npos);
  EXPECT_NE(report.find("stretch"), std::string::npos);
}

TEST(MetricRegistry, ClearResetsEverything) {
  MetricRegistry reg;
  reg.increment("a");
  reg.observe("b", 1.0);
  reg.clear();
  EXPECT_EQ(reg.counter("a"), 0);
  EXPECT_EQ(reg.find_summary("b"), nullptr);
}

}  // namespace
}  // namespace evo::sim
