#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace evo::sim {
namespace {

TimePoint at(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(at(10), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(at(10), [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelMiddleEventSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(10), [&] { order.push_back(1); });
  auto mid = q.schedule(at(20), [&] { order.push_back(2); });
  q.schedule(at(30), [&] { order.push_back(3); });
  mid.cancel();
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto handle = q.schedule(at(10), [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FiredEventNoLongerPending) {
  EventQueue q;
  auto handle = q.schedule(at(10), [] {});
  q.pop().fn();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto early = q.schedule(at(5), [] {});
  q.schedule(at(50), [] {});
  early.cancel();
  EXPECT_EQ(q.next_time(), at(50));
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearCancelsOutstandingHandles) {
  // Regression: clear() used to discard the heap without marking entries
  // cancelled, so handles kept reporting pending() == true forever.
  EventQueue q;
  auto first = q.schedule(at(1), [] {});
  auto second = q.schedule(at(2), [] {});
  ASSERT_TRUE(first.pending());
  ASSERT_TRUE(second.pending());
  q.clear();
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(second.pending());
  first.cancel();  // still idempotent after clear()
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueue, DefaultHandleNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  for (int i = 999; i >= 0; --i) {
    q.schedule(at(i), [] {});
  }
  while (!q.empty()) popped.push_back(q.pop().when.count_micros());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 1000u);
}

}  // namespace
}  // namespace evo::sim
