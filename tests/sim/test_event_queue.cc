#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace evo::sim {
namespace {

TimePoint at(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(at(10), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(at(10), [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelMiddleEventSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(10), [&] { order.push_back(1); });
  auto mid = q.schedule(at(20), [&] { order.push_back(2); });
  q.schedule(at(30), [&] { order.push_back(3); });
  mid.cancel();
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto handle = q.schedule(at(10), [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FiredEventNoLongerPending) {
  EventQueue q;
  auto handle = q.schedule(at(10), [] {});
  q.pop().fn();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto early = q.schedule(at(5), [] {});
  q.schedule(at(50), [] {});
  early.cancel();
  EXPECT_EQ(q.next_time(), at(50));
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearCancelsOutstandingHandles) {
  // Regression: clear() used to discard the heap without marking entries
  // cancelled, so handles kept reporting pending() == true forever.
  EventQueue q;
  auto first = q.schedule(at(1), [] {});
  auto second = q.schedule(at(2), [] {});
  ASSERT_TRUE(first.pending());
  ASSERT_TRUE(second.pending());
  q.clear();
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(second.pending());
  first.cancel();  // still idempotent after clear()
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueue, DefaultHandleNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(EventQueue, SizeIsExactUnderCancellation) {
  // size() must report the live count immediately — cancellation may not be
  // deferred to pop-time skimming (idle heuristics read this).
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(q.schedule(at(i), [] {}));
  }
  EXPECT_EQ(q.size(), 10u);
  handles[3].cancel();
  handles[7].cancel();
  EXPECT_EQ(q.size(), 8u);
  handles[3].cancel();  // idempotent: no double-decrement
  EXPECT_EQ(q.size(), 8u);
  q.pop();
  EXPECT_EQ(q.size(), 7u);
  q.clear();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SlotReuseDoesNotResurrectOldHandle) {
  // After an event fires, its slot may be recycled for a new event. The
  // generation counter must keep the old handle dead: cancelling it must
  // not touch the new occupant.
  EventQueue q;
  auto old_handle = q.schedule(at(1), [] {});
  q.pop().fn();
  bool ran = false;
  auto fresh = q.schedule(at(2), [&] { ran = true; });
  EXPECT_FALSE(old_handle.pending());
  old_handle.cancel();  // stale generation: must be a no-op
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, HandleOutlivesQueue) {
  EventHandle handle;
  {
    EventQueue q;
    handle = q.schedule(at(1), [] {});
    EXPECT_TRUE(handle.pending());
  }
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash after the queue is gone
}

TEST(EventQueue, FarFutureEventsPopInOrderAcrossHorizon) {
  // Events beyond the calendar's bucket horizon take the overflow path and
  // are redistributed as the queue advances; order must be unaffected.
  EventQueue q;
  std::vector<std::int64_t> order;
  q.schedule(at(90'000), [&] { order.push_back(90'000); });  // far overflow
  q.schedule(at(5), [&] { order.push_back(5); });
  q.schedule(at(400), [&] { order.push_back(400); });  // beyond 256ms horizon
  q.schedule(at(80'000), [&] { order.push_back(80'000); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<std::int64_t>{5, 400, 80'000, 90'000}));
}

TEST(EventQueue, OverflowEventInsideAdvancedHorizonNotBypassed) {
  // Regression: an event can land in overflow (beyond the horizon at
  // schedule time) yet fall inside the horizon once the cursor advances.
  // The ring scan must stop at the overflow minimum, or a later ring event
  // would fire first.
  EventQueue q;
  std::vector<int> order;
  // Horizon starts at [0ms, 262ms). 300ms goes to overflow.
  q.schedule(at(300), [&] { order.push_back(300); });
  // Advance the cursor well past 300ms's bucket by draining a nearer event.
  q.schedule(at(250), [&] { order.push_back(250); });
  q.pop().fn();  // now at 250ms; horizon covers [250ms, 512ms)
  // This lands directly in the ring, in a bucket after 300ms's.
  q.schedule(at(310), [&] { order.push_back(310); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{250, 300, 310}));
}

TEST(EventQueue, ClearThenReuse) {
  EventQueue q;
  q.schedule(at(1'000), [] {});
  q.schedule(at(500'000), [] {});  // populate overflow too
  q.clear();
  std::vector<int> order;
  q.schedule(at(2), [&] { order.push_back(2); });
  q.schedule(at(1), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  for (int i = 999; i >= 0; --i) {
    q.schedule(at(i), [] {});
  }
  while (!q.empty()) popped.push_back(q.pop().when.count_micros());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 1000u);
}

}  // namespace
}  // namespace evo::sim
