// Differential test: the calendar EventQueue against a straightforward
// reference heap, over randomized schedule/cancel/clear/pop traces. The
// reference implements the queue's contract directly — (when, seq) FIFO
// order, lazy cancellation — so any divergence is a calendar bug (bucket
// rotation, overflow redistribution, generation handling, ...).
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <queue>
#include <vector>

#include "sim/random.h"

namespace evo::sim {
namespace {

/// Reference model: binary heap of (when, seq, id) with a cancelled set.
class ReferenceQueue {
 public:
  void schedule(TimePoint when, int id) {
    heap_.push(Entry{when, next_seq_++, id});
    cancelled_.push_back(false);
  }
  void cancel(std::size_t schedule_index) {
    cancelled_[schedule_index] = true;
  }
  void clear() {
    while (!heap_.empty()) {
      cancelled_[heap_.top().seq] = true;
      heap_.pop();
    }
  }
  bool empty() const {
    skim();
    return heap_.empty();
  }
  std::size_t size() const {
    std::size_t live = 0;
    for (auto held : held_seqs()) live += !cancelled_[held];
    return live;
  }
  TimePoint next_time() const {
    skim();
    return heap_.empty() ? TimePoint::max() : heap_.top().when;
  }
  struct Popped {
    TimePoint when;
    int id;
  };
  Popped pop() {
    skim();
    const Entry top = heap_.top();
    heap_.pop();
    cancelled_[top.seq] = true;
    return Popped{top.when, top.id};
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    int id = 0;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::vector<std::uint64_t> held_seqs() const {
    // Only used by size(): copy the heap and drain it.
    std::vector<std::uint64_t> seqs;
    auto copy = heap_;
    while (!copy.empty()) {
      seqs.push_back(copy.top().seq);
      copy.pop();
    }
    return seqs;
  }
  void skim() const {
    while (!heap_.empty() && cancelled_[heap_.top().seq]) heap_.pop();
  }
  mutable std::priority_queue<Entry> heap_;
  std::vector<bool> cancelled_;
  std::uint64_t next_seq_ = 0;
};

/// Draw an event time: clustered near `now` (same-bucket and near-future),
/// with tails into far buckets and the overflow horizon, plus exact
/// duplicates to exercise FIFO ties.
TimePoint draw_when(Rng& rng, TimePoint now, std::optional<TimePoint> previous) {
  const double roll = rng.uniform();
  if (roll < 0.15 && previous) return *previous;  // equal-time FIFO tie
  if (roll < 0.55) return now + Duration::micros(rng.uniform_int(0, 2'000));
  if (roll < 0.85) return now + Duration::micros(rng.uniform_int(0, 200'000));
  // Beyond the 256-bucket x 1024us horizon: the overflow path.
  return now + Duration::micros(rng.uniform_int(260'000, 30'000'000));
}

TEST(EventQueueDifferential, RandomTracesMatchReferenceHeap) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99999ull}) {
    Rng rng{seed};
    EventQueue queue;
    ReferenceQueue reference;
    std::vector<EventHandle> handles;
    std::vector<int> fired;  // ids in calendar pop order
    TimePoint now = TimePoint::origin();
    std::optional<TimePoint> previous;
    int next_id = 0;

    for (int op = 0; op < 4000; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.45) {
        const TimePoint when = draw_when(rng, now, previous);
        previous = when;
        const int id = next_id++;
        handles.push_back(queue.schedule(when, [id, &fired] { fired.push_back(id); }));
        reference.schedule(when, id);
      } else if (roll < 0.60 && !handles.empty()) {
        // Cancel a random earlier schedule (idempotent on repeats and on
        // already-fired events in both implementations).
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
        handles[pick].cancel();
        reference.cancel(pick);
      } else if (roll < 0.61) {
        queue.clear();
        reference.clear();
        for (const auto& handle : handles) {
          EXPECT_FALSE(handle.pending());  // clear() observes every handle
        }
      } else if (!queue.empty()) {
        ASSERT_FALSE(reference.empty());
        ASSERT_EQ(queue.next_time(), reference.next_time());
        auto popped = queue.pop();
        const auto expected = reference.pop();
        ASSERT_EQ(popped.when, expected.when);
        const auto before = fired.size();
        popped.fn();
        ASSERT_EQ(fired.size(), before + 1);
        ASSERT_EQ(fired.back(), expected.id) << "seed " << seed << " op " << op;
        // The tie path may schedule into the past (both queues accept it),
        // so pop times are not monotone here; advance `now` monotonically.
        now = std::max(now, popped.when);
      }
      ASSERT_EQ(queue.size(), reference.size()) << "seed " << seed << " op " << op;
      ASSERT_EQ(queue.empty(), reference.empty());
    }

    // Drain: the full remaining order must match.
    while (!reference.empty()) {
      ASSERT_FALSE(queue.empty());
      ASSERT_EQ(queue.next_time(), reference.next_time());
      auto popped = queue.pop();
      const auto expected = reference.pop();
      ASSERT_EQ(popped.when, expected.when);
      popped.fn();
      ASSERT_EQ(fired.back(), expected.id);
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
  }
}

TEST(EventQueueDifferential, HealthCountersStaySane) {
  // The sim.queue.* counters must agree with a hand-tracked model of the
  // same trace: high-water equals the max simultaneous live count, every
  // far-horizon schedule lands in overflow, and draining past the 256 x
  // 1024us ring horizon forces at least one rebase that pulls overflow
  // events back (never more than were put in).
  Rng rng{7};
  EventQueue queue;
  std::size_t live = 0, high_water = 0;
  std::uint64_t past_horizon = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto us = rng.uniform_int(0, 3'000'000);
    if (us >= 256 * 1024) ++past_horizon;
    queue.schedule(TimePoint{us}, [] {});
    high_water = std::max(high_water, ++live);
  }
  const auto& stats = queue.stats();
  EXPECT_EQ(stats.live_high_water, high_water);
  EXPECT_EQ(stats.overflow_scheduled, past_horizon);
  ASSERT_GT(past_horizon, 0u);  // the draw range guarantees overflow traffic
  while (!queue.empty()) queue.pop();
  EXPECT_GE(stats.rebases, 1u);
  EXPECT_LE(stats.overflow_redistributed, stats.overflow_scheduled);
  EXPECT_GT(stats.overflow_redistributed, 0u);
}

TEST(EventQueueDifferential, HealthCountersSurviveRandomTraces) {
  // Same randomized trace shape as the reference-heap test: whatever the
  // mix of schedules, cancels, clears, and pops, the counters stay
  // internally consistent (they count schedules, not surviving events).
  Rng rng{4242};
  EventQueue queue;
  std::vector<EventHandle> handles;
  std::size_t scheduled = 0;
  TimePoint now = TimePoint::origin();
  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.5) {
      handles.push_back(queue.schedule(draw_when(rng, now, {}), [] {}));
      ++scheduled;
    } else if (roll < 0.6 && !handles.empty()) {
      handles[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(handles.size()) - 1))]
          .cancel();
    } else if (roll < 0.61) {
      queue.clear();
    } else if (!queue.empty()) {
      now = std::max(now, queue.pop().when);
    }
  }
  const auto& stats = queue.stats();
  EXPECT_LE(stats.live_high_water, scheduled);
  EXPECT_GE(stats.live_high_water, 1u);
  EXPECT_LE(stats.overflow_scheduled, scheduled);
  EXPECT_LE(stats.overflow_redistributed, stats.overflow_scheduled);
}

TEST(EventQueueDifferential, PopNeverGoesBackwardsAcrossEpochs) {
  // Long-horizon stress: periodic timers at many scales force repeated
  // ring wraps and overflow redistributions.
  Rng rng{2024};
  EventQueue queue;
  for (int i = 0; i < 2000; ++i) {
    queue.schedule(TimePoint{rng.uniform_int(0, 120'000'000)}, [] {});
  }
  TimePoint last = TimePoint::origin();
  std::size_t popped = 0;
  while (!queue.empty()) {
    const auto p = queue.pop();
    ASSERT_GE(p.when, last);
    last = p.when;
    ++popped;
  }
  EXPECT_EQ(popped, 2000u);
}

}  // namespace
}  // namespace evo::sim
