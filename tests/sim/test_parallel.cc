#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"

namespace evo::sim {
namespace {

/// A miniature "experiment": each cell runs its own Simulator with a few
/// randomized timers, records metrics, and renders one text row. Any
/// scheduling nondeterminism or cross-cell state leak shows up as a diff
/// between thread counts.
CellResult demo_cell(std::size_t cell, Rng& rng) {
  Simulator simulator;
  CellResult result;
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    const auto delay = Duration::micros(rng.uniform_int(1, 10'000));
    simulator.schedule_after(delay, [&, delay] {
      ++fired;
      result.metrics.observe("cell.delay_us", static_cast<double>(delay.count_micros()));
    });
  }
  simulator.run();
  result.metrics.increment("cell.fired", fired);
  result.metrics.observe("cell.draw", rng.uniform());
  result.text = "cell " + std::to_string(cell) + " fired=" + std::to_string(fired) +
                " end=" + std::to_string(simulator.now().count_micros()) + "\n";
  return result;
}

std::string render(const std::vector<CellResult>& cells) {
  std::string out;
  for (const auto& cell : cells) out += cell.text;
  return out;
}

TEST(ParallelSweep, OneThreadAndManyThreadsProduceIdenticalResults) {
  constexpr std::size_t kCells = 12;
  constexpr std::uint64_t kSeed = 4242;
  const auto serial = ParallelSweep(1).run(kCells, kSeed, demo_cell);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = ParallelSweep(threads).run(kCells, kSeed, demo_cell);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(render(parallel), render(serial)) << threads << " threads";
    // Merged metrics must match to the byte: identical counters AND
    // identical sample order inside every summary.
    EXPECT_EQ(merge_metrics(parallel).report(), merge_metrics(serial).report())
        << threads << " threads";
  }
}

TEST(ParallelSweep, CellSeedsAreStableAndDistinct) {
  // Stable: a cell's seed depends only on (sweep seed, cell index).
  EXPECT_EQ(ParallelSweep::cell_seed(11011, 3), ParallelSweep::cell_seed(11011, 3));
  // Distinct across cells and across sweep seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t sweep : {0ull, 1ull, 11011ull}) {
    for (std::size_t cell = 0; cell < 64; ++cell) {
      seeds.insert(ParallelSweep::cell_seed(sweep, cell));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);
}

TEST(ParallelSweep, ResultsComeBackInCellOrder) {
  const auto results = ParallelSweep(4).run(8, 7, [](std::size_t cell, Rng&) {
    CellResult r;
    r.text = std::to_string(cell);
    return r;
  });
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].text, std::to_string(i));
  }
}

TEST(ParallelSweep, FirstExceptionInCellOrderIsRethrown) {
  const auto faulty = [](std::size_t cell, Rng&) -> CellResult {
    if (cell == 2 || cell == 5) {
      throw std::runtime_error("cell " + std::to_string(cell) + " failed");
    }
    return CellResult{};
  };
  for (unsigned threads : {1u, 4u}) {
    EXPECT_THROW(
        {
          try {
            ParallelSweep(threads).run(8, 1, faulty);
          } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "cell 2 failed");
            throw;
          }
        },
        std::runtime_error);
  }
}

TEST(ParallelSweep, ZeroThreadsSelectsHardwareConcurrency) {
  EXPECT_GE(ParallelSweep(0).threads(), 1u);
  EXPECT_EQ(ParallelSweep(3).threads(), 3u);
}

TEST(ParallelSweep, MergeMetricsSumsCountersAndAppendsSamplesInCellOrder) {
  std::vector<CellResult> cells(3);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].metrics.increment("hits", static_cast<std::int64_t>(i + 1));
    cells[i].metrics.observe("latency", static_cast<double>(i * 10));
  }
  const auto merged = merge_metrics(cells);
  EXPECT_EQ(merged.counter("hits"), 6);
  const auto* latency = merged.find_summary("latency");
  ASSERT_NE(latency, nullptr);
  ASSERT_EQ(latency->count(), 3u);
  EXPECT_EQ(latency->samples(), (std::vector<double>{0.0, 10.0, 20.0}));
}

}  // namespace
}  // namespace evo::sim
