#include "sim/logging.h"

#include <gtest/gtest.h>

namespace evo::sim {
namespace {

TEST(Logger, OffByDefault) {
  // Benchmarks depend on silence-by-default.
  Logger& logger = Logger::instance();
  EXPECT_EQ(logger.level(), LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(Logger, LevelGating) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(Logger, MacroDoesNotEvaluateArgsWhenDisabled) {
  Logger::instance().set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  EVO_LOG_DEBUG("test", "value=%d", expensive());
  EXPECT_EQ(evaluations, 0);
}

TEST(Logger, EmitsWhenEnabled) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kInfo);
  // Writes to stderr; assert only that the call is safe with and without
  // an attached clock.
  logger.log(LogLevel::kInfo, "test", "hello %s", "world");
  const TimePoint now = TimePoint::origin() + Duration::millis(1500);
  logger.attach_clock(&now);
  logger.log(LogLevel::kInfo, "test", "with clock");
  logger.attach_clock(nullptr);
  logger.set_level(LogLevel::kOff);
}

}  // namespace
}  // namespace evo::sim
