#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace evo::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_after(Duration::millis(5), [&] { times.push_back(sim.now().count_micros()); });
  sim.schedule_after(Duration::millis(2), [&] { times.push_back(sim.now().count_micros()); });
  const auto fired = sim.run();
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(times, (std::vector<std::int64_t>{2000, 5000}));
  EXPECT_EQ(sim.now().count_micros(), 5000);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(Duration::millis(1), chain);
  };
  sim.schedule_after(Duration::millis(1), chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(10));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(Duration::millis(i), [&] { ++count; });
  }
  const auto fired = sim.run_until(TimePoint::origin() + Duration::millis(4));
  EXPECT_EQ(fired, 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(4));
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilIdleAdvancesClock) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + Duration::seconds(3));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(3));
}

TEST(Simulator, RunUntilAdvancesPastPendingFutureEvents) {
  // "Run until T" leaves the clock at T even when events remain beyond T,
  // so repeated short slices always make progress toward them.
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::millis(10), [&] { ran = true; });
  sim.run_until(TimePoint::origin() + Duration::millis(4));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(4));
  EXPECT_FALSE(ran);
  sim.run_until(TimePoint::origin() + Duration::millis(8));
  EXPECT_FALSE(ran);
  sim.run_until(TimePoint::origin() + Duration::millis(12));
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunEventsBudget) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(Duration::millis(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, CancelledEventsDontRun) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.schedule_after(Duration::millis(1), [&] { ran = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ProcessedCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(Duration::millis(1), [] {});
  sim.run();
  for (int i = 0; i < 3; ++i) sim.schedule_after(Duration::millis(1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 8u);
}

TEST(Simulator, ResetRestoresOrigin) {
  Simulator sim;
  sim.schedule_after(Duration::millis(5), [] {});
  sim.run();
  sim.schedule_after(Duration::millis(5), [] {});
  sim.reset();
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(TimePoint::origin() + Duration::millis(42), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(42));
}

TEST(Simulator, ExportsQueueHealthMetrics) {
  Simulator sim;
  // One near event and one past the 256 x 1024us calendar horizon, so both
  // the live high-water mark and the overflow path have something to show.
  sim.schedule_after(Duration::millis(1), [] {});
  sim.schedule_after(Duration::millis(300'000), [] {});
  sim.run();
  MetricRegistry metrics;
  sim.export_queue_metrics(metrics);
  EXPECT_EQ(metrics.counter("sim.queue.live_high_water"), 2);
  EXPECT_EQ(metrics.counter("sim.queue.overflow_scheduled"), 1);
  EXPECT_GE(metrics.counter("sim.queue.rebases"), 1);
  EXPECT_EQ(metrics.counter("sim.queue.overflow_redistributed"), 1);
}

TEST(Simulator, RecorderSeesQueueRebases) {
  Simulator sim;
  obs::Recorder recorder;
  sim.set_recorder(&recorder);
  sim.schedule_after(Duration::millis(300'000), [] {});
  sim.run();
  ASSERT_GE(recorder.recorded(), 1u);
  const auto tail = recorder.tail(16);
  bool saw_rebase = false;
  for (const auto& event : tail) {
    if (std::string_view{event.name} == "sim.queue.rebase") saw_rebase = true;
  }
  EXPECT_TRUE(saw_rebase);
}

}  // namespace
}  // namespace evo::sim
