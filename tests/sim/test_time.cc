#include "sim/time.h"

#include <gtest/gtest.h>

namespace evo::sim {
namespace {

TEST(Duration, Construction) {
  EXPECT_EQ(Duration::zero().count_micros(), 0);
  EXPECT_EQ(Duration::micros(5).count_micros(), 5);
  EXPECT_EQ(Duration::millis(3).count_micros(), 3000);
  EXPECT_EQ(Duration::seconds(2).count_micros(), 2'000'000);
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).count_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).count_millis(), 2.5);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(Duration::millis(1) + Duration::micros(5), Duration::micros(1005));
  EXPECT_EQ(Duration::millis(3) - Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::millis(2) * 3, Duration::millis(6));
  EXPECT_EQ(3 * Duration::millis(2), Duration::millis(6));
  EXPECT_EQ(Duration::millis(6) / 2, Duration::millis(3));
  Duration d = Duration::millis(1);
  d += Duration::millis(2);
  EXPECT_EQ(d, Duration::millis(3));
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::micros(1), Duration::millis(1));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
}

TEST(TimePoint, OriginAndAdvance) {
  EXPECT_EQ(TimePoint::origin().count_micros(), 0);
  const TimePoint t = TimePoint::origin() + Duration::millis(7);
  EXPECT_EQ(t.count_micros(), 7000);
  EXPECT_EQ(t - TimePoint::origin(), Duration::millis(7));
}

TEST(TimePoint, MaxIsSentinel) {
  EXPECT_GT(TimePoint::max(), TimePoint::origin() + Duration::seconds(1'000'000));
}

TEST(TimeFormatting, HumanReadable) {
  EXPECT_EQ(to_string(Duration::seconds(2)), "2s");
  EXPECT_EQ(to_string(Duration::millis(3)), "3ms");
  EXPECT_EQ(to_string(Duration::micros(7)), "7us");
  EXPECT_EQ(to_string(TimePoint::origin() + Duration::millis(1500)), "1500ms");
}

}  // namespace
}  // namespace evo::sim
