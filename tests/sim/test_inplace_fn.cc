#include "sim/inplace_fn.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.h"

namespace evo::sim {
namespace {

using SmallFn = InplaceFn<48>;

TEST(InplaceFn, EmptyByDefault) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.uses_inline_storage());
}

TEST(InplaceFn, CallsCapturedLambda) {
  int hits = 0;
  SmallFn fn{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFn, SmallCaptureUsesInlineStorage) {
  int a = 0, b = 0, c = 0;
  SmallFn fn{[&a, &b, &c] { a = b = c = 1; }};  // 24 bytes of capture
  EXPECT_TRUE(fn.uses_inline_storage());
}

TEST(InplaceFn, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char bytes[96];
  } big{};
  big.bytes[95] = 7;
  char observed = 0;
  SmallFn fn{[big, &observed] { observed = big.bytes[95]; }};
  EXPECT_FALSE(fn.uses_inline_storage());
  fn();
  EXPECT_EQ(observed, 7);  // heap path still calls correctly
}

TEST(InplaceFn, MoveTransfersCallable) {
  int hits = 0;
  SmallFn a{[&hits] { ++hits; }};
  SmallFn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);

  SmallFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFn, MoveAssignDestroysPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  SmallFn fn{[token] { (void)token; }};
  token.reset();
  EXPECT_FALSE(alive.expired());
  fn = SmallFn{[] {}};
  EXPECT_TRUE(alive.expired());  // old capture destroyed on assignment
}

TEST(InplaceFn, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  {
    SmallFn fn{[token] { (void)token; }};
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InplaceFn, ResetReleasesCaptureAndEmpties) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  SmallFn fn{[token] { (void)token; }};
  token.reset();
  fn.reset();
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InplaceFn, MoveOnlyCapturesWork) {
  auto value = std::make_unique<int>(41);
  SmallFn fn{[v = std::move(value)] { ++*v; }};
  fn();
  SmallFn moved{std::move(fn)};
  moved();
}

TEST(InplaceFn, SurvivesVectorGrowth) {
  // Entries relocate when a bucket vector grows; captures must follow.
  std::vector<SmallFn> fns;
  int hits = 0;
  for (int i = 0; i < 100; ++i) fns.emplace_back([&hits] { ++hits; });
  for (auto& fn : fns) fn();
  EXPECT_EQ(hits, 100);
}

TEST(InplaceFn, EventFnHoldsTypicalProtocolCaptures) {
  // The captures the control plane schedules (this + a few ids) must be
  // inline; a heap fallback here would put allocations back on the
  // schedule path that the calendar queue removed.
  struct {
    void* self;
    std::uint32_t node, neighbor, link;
    std::uint64_t seq;
  } capture{nullptr, 1, 2, 3, 4};
  EventFn fn{[capture] { (void)capture; }};
  EXPECT_TRUE(fn.uses_inline_storage());
}

}  // namespace
}  // namespace evo::sim
