#include "bgp/bgp.h"

#include <gtest/gtest.h>

#include <memory>

#include "igp/link_state.h"

namespace evo::bgp {
namespace {

using net::DomainId;
using net::Ipv4Addr;
using net::LinkId;
using net::NodeId;
using net::Prefix;
using net::Relationship;
using net::Topology;

/// Simulator + network + one link-state IGP per domain + BGP.
struct Fixture {
  explicit Fixture(Topology topo) : network(std::move(topo)) {
    for (const auto& domain : network.topology().domains()) {
      igps.push_back(std::make_unique<igp::LinkStateIgp>(simulator, network,
                                                         domain.id));
    }
    bgp = std::make_unique<BgpSystem>(
        simulator, network,
        [this](DomainId d) -> const igp::Igp* { return igps[d.value()].get(); });
  }

  void start_and_converge() {
    for (auto& igp : igps) igp->start();
    bgp->start();
    simulator.run();
    bgp->install_routes();
  }

  void converge() {
    simulator.run();
    bgp->install_routes();
  }

  sim::Simulator simulator;
  net::Network network;
  std::vector<std::unique_ptr<igp::LinkStateIgp>> igps;
  std::unique_ptr<BgpSystem> bgp;
};

/// Three domains in a customer chain: a <- b <- c (b provider of a, c
/// provider of b). Two routers per domain.
Topology chain3() {
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto c = topo.add_domain("c");
  std::vector<std::vector<NodeId>> r;
  for (const auto d : {a, b, c}) {
    r.push_back({topo.add_router(d), topo.add_router(d)});
    topo.add_link(r.back()[0], r.back()[1], 1);
  }
  topo.add_interdomain_link(r[0][1], r[1][0], Relationship::kProvider);  // b provides a
  topo.add_interdomain_link(r[1][1], r[2][0], Relationship::kProvider);  // c provides b
  return topo;
}

TEST(BgpSystem, ChainReachability) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  // Every router can reach every other domain's routers.
  for (const auto& src : topo.routers()) {
    for (const auto& dst : topo.routers()) {
      const auto result = f.network.trace(src.id, dst.loopback);
      EXPECT_TRUE(result.delivered())
          << src.id.value() << " -> " << dst.id.value();
    }
  }
}

TEST(BgpSystem, AsPathRecorded) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  // a's border router sees c's prefix with path [b, c].
  const NodeId a_border = topo.domain(DomainId{0}).routers[1];
  const auto* route = f.bgp->best_route(a_border, topo.domain(DomainId{2}).prefix);
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->as_path.size(), 2u);
  EXPECT_EQ(route->as_path[0], DomainId{1});
  EXPECT_EQ(route->as_path[1], DomainId{2});
  EXPECT_EQ(route->learned, LearnedFrom::kProvider);
}

TEST(BgpSystem, LocRibSizes) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  const NodeId b_border = topo.domain(DomainId{1}).routers[0];
  // b sees its own prefix + a's + c's.
  EXPECT_EQ(f.bgp->loc_rib_size(b_border), 3u);
  EXPECT_EQ(f.bgp->loc_rib_size(b_border, /*anycast_only=*/true), 0u);
}

TEST(BgpSystem, NonSpeakerHasNoRib) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  const NodeId a_internal = topo.domain(DomainId{0}).routers[0];
  EXPECT_EQ(f.bgp->loc_rib_size(a_internal), 0u);
  EXPECT_EQ(f.bgp->best_route(a_internal, topo.domain(DomainId{2}).prefix), nullptr);
  // But its FIB still carries the routes (hot-potato install).
  EXPECT_GT(f.network.fib(a_internal).size_with_origin(net::RouteOrigin::kBgp), 0u);
}

TEST(BgpSystem, WithdrawPropagates) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  const Prefix extra{Ipv4Addr{0, 77, 0, 0}, 16};
  OriginationPolicy policy;
  f.bgp->originate(DomainId{2}, extra, policy);
  f.converge();
  const NodeId a_border = topo.domain(DomainId{0}).routers[1];
  ASSERT_NE(f.bgp->best_route(a_border, extra), nullptr);
  f.bgp->withdraw(DomainId{2}, extra);
  f.converge();
  EXPECT_EQ(f.bgp->best_route(a_border, extra), nullptr);
}

TEST(BgpSystem, SessionDownDropsRoutes) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  const NodeId a_border = topo.domain(DomainId{0}).routers[1];
  ASSERT_NE(f.bgp->best_route(a_border, topo.domain(DomainId{2}).prefix), nullptr);
  // Cut the a-b interdomain link.
  const LinkId cut = [&] {
    for (const auto& link : topo.links()) {
      if (link.interdomain &&
          topo.router(link.a).domain.value() + topo.router(link.b).domain.value() == 1) {
        return link.id;
      }
    }
    return LinkId::invalid();
  }();
  ASSERT_TRUE(cut.valid());
  f.network.topology().set_link_up(cut, false);
  f.bgp->on_link_change(cut);
  f.converge();
  EXPECT_EQ(f.bgp->best_route(a_border, topo.domain(DomainId{2}).prefix), nullptr);
}

TEST(BgpSystem, SessionRecoveryRestoresRoutes) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  const NodeId a_border = topo.domain(DomainId{0}).routers[1];
  const LinkId cut = [&] {
    for (const auto& link : topo.links()) {
      if (link.interdomain &&
          topo.router(link.a).domain.value() + topo.router(link.b).domain.value() == 1) {
        return link.id;
      }
    }
    return LinkId::invalid();
  }();
  f.network.topology().set_link_up(cut, false);
  f.bgp->on_link_change(cut);
  f.converge();
  f.network.topology().set_link_up(cut, true);
  f.bgp->on_link_change(cut);
  f.converge();
  EXPECT_NE(f.bgp->best_route(a_border, topo.domain(DomainId{2}).prefix), nullptr);
}

TEST(BgpSystem, MultiOriginAnycastFollowsPolicy) {
  // a - b - c chain (a is b's customer, c is b's provider); a and c both
  // originate the same anycast /32. Policy, not proximity, decides: every
  // b border prefers the *customer*-learned origin (a), exactly the
  // paper's point that ISPs control redirection through routing policy.
  Fixture f(chain3());
  f.start_and_converge();
  const Prefix anycast = Prefix::host(Ipv4Addr{0, 0, 0, 5});
  OriginationPolicy policy;
  policy.anycast = true;
  f.bgp->originate(DomainId{0}, anycast, policy);
  f.bgp->originate(DomainId{2}, anycast, policy);
  f.converge();
  const auto& topo = f.network.topology();
  const NodeId b0 = topo.domain(DomainId{1}).routers[0];
  const NodeId b1 = topo.domain(DomainId{1}).routers[1];
  const auto* at_b0 = f.bgp->best_route(b0, anycast);
  const auto* at_b1 = f.bgp->best_route(b1, anycast);
  ASSERT_NE(at_b0, nullptr);
  ASSERT_NE(at_b1, nullptr);
  EXPECT_EQ(at_b0->origin_domain(), DomainId{0});
  EXPECT_EQ(at_b0->learned, LearnedFrom::kCustomer);
  // b1 also picks the customer origin via iBGP despite having a direct
  // eBGP offer from its provider c: local-pref dominates.
  EXPECT_EQ(at_b1->origin_domain(), DomainId{0});
  EXPECT_TRUE(at_b1->via_ibgp);
  EXPECT_EQ(f.bgp->loc_rib_size(b0, /*anycast_only=*/true), 1u);
}

TEST(BgpSystem, ScopedExportOnlyReachesScope) {
  Fixture f(chain3());
  f.start_and_converge();
  const auto& topo = f.network.topology();
  const Prefix scoped = Prefix::host(Ipv4Addr{0, 0, 0, 9});
  OriginationPolicy policy;
  policy.export_scope = std::set<DomainId>{DomainId{1}};  // only to b
  policy.no_export = true;
  f.bgp->originate(DomainId{2}, scoped, policy);
  f.converge();
  const NodeId b_border = topo.domain(DomainId{1}).routers[1];
  EXPECT_NE(f.bgp->best_route(b_border, scoped), nullptr);
  // a must never see it: scope keeps c from exporting to anyone else and
  // no-export keeps b from re-advertising.
  const NodeId a_border = topo.domain(DomainId{0}).routers[1];
  EXPECT_EQ(f.bgp->best_route(a_border, scoped), nullptr);
}

TEST(BgpSystem, MessagesCounted) {
  Fixture f(chain3());
  f.start_and_converge();
  EXPECT_GT(f.bgp->messages_sent(), 0u);
}

TEST(BgpSystem, SpeakersOfListsBorders) {
  Fixture f(chain3());
  const auto speakers = f.bgp->speakers_of(DomainId{1});
  ASSERT_EQ(speakers.size(), 2u);  // both b routers have interdomain links
  const auto a_speakers = f.bgp->speakers_of(DomainId{0});
  ASSERT_EQ(a_speakers.size(), 1u);
}

TEST(BgpSystem, HotPotatoPrefersCloserEgress) {
  // Diamond: domain m has two borders, each linked to a different provider
  // that both reach a common origin. Internal routers exit via the closer
  // border.
  Topology topo;
  const auto m = topo.add_domain("m");
  const auto p1 = topo.add_domain("p1");
  const auto p2 = topo.add_domain("p2");
  const auto origin = topo.add_domain("origin");
  // m: b1 - i (cost 1) - far - b2 so b1 is closer to i.
  const auto b1 = topo.add_router(m);
  const auto i = topo.add_router(m);
  const auto far = topo.add_router(m);
  const auto b2 = topo.add_router(m);
  topo.add_link(b1, i, 1);
  topo.add_link(i, far, 5);
  topo.add_link(far, b2, 5);
  const auto p1r = topo.add_router(p1);
  const auto p2r = topo.add_router(p2);
  const auto o = topo.add_router(origin);
  topo.add_interdomain_link(b1, p1r, Relationship::kProvider);
  topo.add_interdomain_link(b2, p2r, Relationship::kProvider);
  topo.add_interdomain_link(p1r, o, Relationship::kCustomer);
  topo.add_interdomain_link(p2r, o, Relationship::kCustomer);

  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto& t = f.network.topology();
  const auto result = f.network.trace(i, t.domain(origin).prefix.address());
  // i's first hop must be b1 (cost 1), not the far b2 (cost 10).
  ASSERT_GE(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[1], b1);
}

}  // namespace
}  // namespace evo::bgp
