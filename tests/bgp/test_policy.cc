// Gao-Rexford policy behavior: export rules, local preference, and
// valley-freeness — the policy realism the paper's anycast catchment
// claims depend on ("ISPs can, to some extent, control the process of
// redirection through policy choices in their inter-domain routing").
#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp.h"
#include "igp/link_state.h"

namespace evo::bgp {
namespace {

using net::DomainId;
using net::Ipv4Addr;
using net::NodeId;
using net::Prefix;
using net::Relationship;
using net::Topology;

struct Fixture {
  explicit Fixture(Topology topo) : network(std::move(topo)) {
    for (const auto& domain : network.topology().domains()) {
      igps.push_back(
          std::make_unique<igp::LinkStateIgp>(simulator, network, domain.id));
    }
    bgp = std::make_unique<BgpSystem>(
        simulator, network,
        [this](DomainId d) -> const igp::Igp* { return igps[d.value()].get(); });
  }

  void start_and_converge() {
    for (auto& igp : igps) igp->start();
    bgp->start();
    simulator.run();
    bgp->install_routes();
  }

  sim::Simulator simulator;
  net::Network network;
  std::vector<std::unique_ptr<igp::LinkStateIgp>> igps;
  std::unique_ptr<BgpSystem> bgp;
};


TEST(GaoRexford, PeerRouteNotExportedToOtherPeer) {
  // x -peer- m -peer- y : m must not provide transit between its peers.
  Topology topo;
  const auto x = topo.add_domain("x");
  const auto m = topo.add_domain("m");
  const auto y = topo.add_domain("y");
  const auto rx = topo.add_router(x);
  const auto rm = topo.add_router(m);
  const auto ry = topo.add_router(y);
  topo.add_interdomain_link(rx, rm, Relationship::kPeer);
  topo.add_interdomain_link(rm, ry, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  // m reaches both; x cannot reach y through m.
  EXPECT_NE(f.bgp->best_route(rm, f.network.topology().domain(x).prefix), nullptr);
  EXPECT_NE(f.bgp->best_route(rm, f.network.topology().domain(y).prefix), nullptr);
  EXPECT_EQ(f.bgp->best_route(rx, f.network.topology().domain(y).prefix), nullptr);
}

TEST(GaoRexford, ProviderRouteNotExportedToPeer) {
  // up -provider-> m -peer- y : m must not give y a route through its
  // provider.
  Topology topo;
  const auto up = topo.add_domain("up");
  const auto m = topo.add_domain("m");
  const auto y = topo.add_domain("y");
  const auto r_up = topo.add_router(up);
  const auto rm = topo.add_router(m);
  const auto ry = topo.add_router(y);
  topo.add_interdomain_link(r_up, rm, Relationship::kCustomer);  // m is up's customer
  topo.add_interdomain_link(rm, ry, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  EXPECT_NE(f.bgp->best_route(rm, f.network.topology().domain(up).prefix), nullptr);
  EXPECT_EQ(f.bgp->best_route(ry, f.network.topology().domain(up).prefix), nullptr);
}

TEST(GaoRexford, CustomerRouteExportedEverywhere) {
  // c is m's customer; m tells its peer y and its provider up about c.
  Topology topo;
  const auto up = topo.add_domain("up");
  const auto m = topo.add_domain("m");
  const auto y = topo.add_domain("y");
  const auto c = topo.add_domain("c");
  const auto r_up = topo.add_router(up);
  const auto rm = topo.add_router(m);
  const auto ry = topo.add_router(y);
  const auto rc = topo.add_router(c);
  topo.add_interdomain_link(r_up, rm, Relationship::kCustomer);
  topo.add_interdomain_link(rm, ry, Relationship::kPeer);
  topo.add_interdomain_link(rm, rc, Relationship::kCustomer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto c_prefix = f.network.topology().domain(c).prefix;
  EXPECT_NE(f.bgp->best_route(r_up, c_prefix), nullptr);
  EXPECT_NE(f.bgp->best_route(ry, c_prefix), nullptr);
}

TEST(GaoRexford, CustomerPreferredOverPeerDespiteLongerPath) {
  // dest reachable from m via peer (1 hop) and via customer chain (2
  // hops). Revenue beats length: m must pick the customer route.
  Topology topo;
  const auto m = topo.add_domain("m");
  const auto peer = topo.add_domain("peer");
  const auto cust = topo.add_domain("cust");
  const auto mid = topo.add_domain("mid");
  const auto dest = topo.add_domain("dest");
  const auto rm = topo.add_router(m);
  const auto rp = topo.add_router(peer);
  const auto rc = topo.add_router(cust);
  const auto rmid = topo.add_router(mid);
  const auto rd = topo.add_router(dest);
  topo.add_interdomain_link(rm, rp, Relationship::kPeer);
  topo.add_interdomain_link(rp, rd, Relationship::kCustomer);  // peer -> dest
  topo.add_interdomain_link(rm, rc, Relationship::kCustomer);  // m -> cust
  topo.add_interdomain_link(rc, rmid, Relationship::kCustomer);
  topo.add_interdomain_link(rmid, rd, Relationship::kCustomer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto* route = f.bgp->best_route(rm, f.network.topology().domain(dest).prefix);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->learned, LearnedFrom::kCustomer);
  EXPECT_EQ(route->as_path.size(), 3u);  // longer but customer
}

TEST(GaoRexford, PeerPreferredOverProvider) {
  Topology topo;
  const auto m = topo.add_domain("m");
  const auto peer = topo.add_domain("peer");
  const auto prov = topo.add_domain("prov");
  const auto dest = topo.add_domain("dest");
  const auto rm = topo.add_router(m);
  const auto rp = topo.add_router(peer);
  const auto rpr = topo.add_router(prov);
  const auto rd = topo.add_router(dest);
  topo.add_interdomain_link(rm, rp, Relationship::kPeer);
  topo.add_interdomain_link(rpr, rm, Relationship::kCustomer);  // prov provides m
  topo.add_interdomain_link(rp, rd, Relationship::kCustomer);
  topo.add_interdomain_link(rpr, rd, Relationship::kCustomer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto* route = f.bgp->best_route(rm, f.network.topology().domain(dest).prefix);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->learned, LearnedFrom::kPeer);
}

TEST(GaoRexford, ShorterPathWinsAtEqualPreference) {
  // Two customer paths of different length to the same prefix.
  Topology topo;
  const auto m = topo.add_domain("m");
  const auto c1 = topo.add_domain("c1");
  const auto c2 = topo.add_domain("c2");
  const auto mid = topo.add_domain("mid");
  const auto dest = topo.add_domain("dest", /*stub=*/true);
  const auto rm = topo.add_router(m);
  const auto rc1 = topo.add_router(c1);
  const auto rc2 = topo.add_router(c2);
  const auto rmid = topo.add_router(mid);
  const auto rd0 = topo.add_router(dest);
  const auto rd1 = topo.add_router(dest);
  topo.add_link(rd0, rd1, 1);
  topo.add_interdomain_link(rm, rc1, Relationship::kCustomer);
  topo.add_interdomain_link(rm, rc2, Relationship::kCustomer);
  topo.add_interdomain_link(rc1, rd0, Relationship::kCustomer);  // short: 2 hops
  topo.add_interdomain_link(rc2, rmid, Relationship::kCustomer);
  topo.add_interdomain_link(rmid, rd1, Relationship::kCustomer);  // long: 3 hops
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto* route = f.bgp->best_route(rm, f.network.topology().domain(dest).prefix);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->as_path.size(), 2u);
  EXPECT_EQ(route->as_path[0], c1);
}

TEST(GaoRexford, LoopPreventionRejectsOwnDomain) {
  // Triangle of providers-of-each-other would loop without AS-path checks;
  // convergence itself (finite events) plus correct paths proves the
  // check.
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto c = topo.add_domain("c");
  const auto ra = topo.add_router(a);
  const auto rb = topo.add_router(b);
  const auto rc = topo.add_router(c);
  topo.add_interdomain_link(ra, rb, Relationship::kCustomer);
  topo.add_interdomain_link(rb, rc, Relationship::kCustomer);
  topo.add_interdomain_link(rc, ra, Relationship::kCustomer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto* route = f.bgp->best_route(ra, f.network.topology().domain(b).prefix);
  ASSERT_NE(route, nullptr);
  EXPECT_FALSE(route->contains_domain(a));
}

TEST(GaoRexford, ValleyFreeEvenWhenValleyIsShorter) {
  // Classic: two stubs under different providers that peer only at a
  // distant top. x - p1 -peer- p2 - y with x,y stubs. x's path to y must
  // go p1, p2 (valley-free) — and if p1/p2 did not peer, no path at all.
  Topology topo;
  const auto p1 = topo.add_domain("p1");
  const auto p2 = topo.add_domain("p2");
  const auto x = topo.add_domain("x", /*stub=*/true);
  const auto y = topo.add_domain("y", /*stub=*/true);
  const auto rp1 = topo.add_router(p1);
  const auto rp2 = topo.add_router(p2);
  const auto rx = topo.add_router(x);
  const auto ry = topo.add_router(y);
  topo.add_interdomain_link(rp1, rx, Relationship::kCustomer);
  topo.add_interdomain_link(rp2, ry, Relationship::kCustomer);
  // x and y also peer directly with each other's *stubs*? No: to prove
  // valley-freeness, link the stubs as mutual peers — still no transit
  // through them for their providers.
  topo.add_interdomain_link(rx, ry, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  // x reaches y directly over the peering.
  const auto* route_xy = f.bgp->best_route(rx, f.network.topology().domain(y).prefix);
  ASSERT_NE(route_xy, nullptr);
  EXPECT_EQ(route_xy->as_path.size(), 1u);
  // But p1 must NOT reach p2's prefix through the x-y stub peering
  // (x learned y via peer => exports only to customers; p1 is x's
  // provider).
  EXPECT_EQ(f.bgp->best_route(rp1, f.network.topology().domain(p2).prefix), nullptr);
}

TEST(GaoRexford, InstallSkipsOwnAggregate) {
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto ra = topo.add_router(a);
  const auto rb = topo.add_router(b);
  topo.add_interdomain_link(ra, rb, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  // a's FIB has a BGP route for b's prefix but not for its own.
  const auto& fib = f.network.fib(ra);
  EXPECT_NE(fib.find(f.network.topology().domain(b).prefix), nullptr);
  EXPECT_EQ(fib.find(f.network.topology().domain(a).prefix), nullptr);
}

}  // namespace
}  // namespace evo::bgp
