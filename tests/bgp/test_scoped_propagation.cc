// Propagation-TTL (GIA-style scoped dissemination) at the BGP layer.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp.h"
#include "igp/link_state.h"

namespace evo::bgp {
namespace {

using net::DomainId;
using net::Ipv4Addr;
using net::NodeId;
using net::Prefix;
using net::Relationship;
using net::Topology;

/// Customer chain d0 <- d1 <- ... <- d(n-1), one router each.
struct Chain {
  explicit Chain(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      domains.push_back(topology.add_domain("d" + std::to_string(i)));
      routers.push_back(topology.add_router(domains.back()));
    }
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      topology.add_interdomain_link(routers[i], routers[i + 1],
                                    Relationship::kProvider);
    }
    network = std::make_unique<net::Network>(std::move(topology));
    for (const auto& d : network->topology().domains()) {
      igps.push_back(
          std::make_unique<igp::LinkStateIgp>(simulator, *network, d.id));
    }
    bgp = std::make_unique<BgpSystem>(
        simulator, *network,
        [this](DomainId d) -> const igp::Igp* { return igps[d.value()].get(); });
    for (auto& i : igps) i->start();
    bgp->start();
    simulator.run();
  }

  void converge() {
    simulator.run();
    bgp->install_routes();
  }

  Topology topology;
  std::vector<DomainId> domains;
  std::vector<NodeId> routers;
  sim::Simulator simulator;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<igp::LinkStateIgp>> igps;
  std::unique_ptr<BgpSystem> bgp;
};

TEST(ScopedPropagation, TtlBoundsVisibility) {
  Chain chain(6);
  const Prefix p = Prefix::host(Ipv4Addr{0, 0, 0, 42});
  OriginationPolicy policy;
  policy.propagation_ttl = 3;
  chain.bgp->originate(chain.domains[0], p, policy);
  chain.converge();
  // Visible where the AS path fits in 3 hops (d1, d2, d3)...
  EXPECT_NE(chain.bgp->best_route(chain.routers[1], p), nullptr);
  EXPECT_NE(chain.bgp->best_route(chain.routers[2], p), nullptr);
  EXPECT_NE(chain.bgp->best_route(chain.routers[3], p), nullptr);
  // ...and nowhere beyond.
  EXPECT_EQ(chain.bgp->best_route(chain.routers[4], p), nullptr);
  EXPECT_EQ(chain.bgp->best_route(chain.routers[5], p), nullptr);
}

TEST(ScopedPropagation, TtlOneReachesNeighborsOnly) {
  Chain chain(4);
  const Prefix p = Prefix::host(Ipv4Addr{0, 0, 0, 43});
  OriginationPolicy policy;
  policy.propagation_ttl = 1;
  chain.bgp->originate(chain.domains[1], p, policy);
  chain.converge();
  EXPECT_NE(chain.bgp->best_route(chain.routers[0], p), nullptr);
  EXPECT_NE(chain.bgp->best_route(chain.routers[2], p), nullptr);
  EXPECT_EQ(chain.bgp->best_route(chain.routers[3], p), nullptr);
}

TEST(ScopedPropagation, ZeroTtlMeansUnlimited) {
  Chain chain(6);
  const Prefix p = Prefix::host(Ipv4Addr{0, 0, 0, 44});
  chain.bgp->originate(chain.domains[0], p, {});
  chain.converge();
  EXPECT_NE(chain.bgp->best_route(chain.routers[5], p), nullptr);
}

TEST(ScopedPropagation, TtlRidesWithdrawals) {
  Chain chain(4);
  const Prefix p = Prefix::host(Ipv4Addr{0, 0, 0, 45});
  OriginationPolicy policy;
  policy.propagation_ttl = 2;
  chain.bgp->originate(chain.domains[0], p, policy);
  chain.converge();
  ASSERT_NE(chain.bgp->best_route(chain.routers[2], p), nullptr);
  chain.bgp->withdraw(chain.domains[0], p);
  chain.converge();
  EXPECT_EQ(chain.bgp->best_route(chain.routers[2], p), nullptr);
}

TEST(ScopedPropagation, SurvivesIbgpDistribution) {
  // TTL must bind at domain granularity even when the route crosses a
  // multi-border domain over iBGP.
  Topology topo;
  const auto d0 = topo.add_domain("origin");
  const auto d1 = topo.add_domain("middle");
  const auto d2 = topo.add_domain("far");
  const auto r0 = topo.add_router(d0);
  const auto m0 = topo.add_router(d1);
  const auto m1 = topo.add_router(d1);
  const auto r2 = topo.add_router(d2);
  topo.add_link(m0, m1, 1);
  topo.add_interdomain_link(r0, m0, Relationship::kProvider);
  topo.add_interdomain_link(m1, r2, Relationship::kProvider);

  sim::Simulator simulator;
  net::Network network(std::move(topo));
  std::vector<std::unique_ptr<igp::LinkStateIgp>> igps;
  for (const auto& d : network.topology().domains()) {
    igps.push_back(std::make_unique<igp::LinkStateIgp>(simulator, network, d.id));
  }
  BgpSystem bgp(simulator, network, [&](DomainId d) -> const igp::Igp* {
    return igps[d.value()].get();
  });
  for (auto& i : igps) i->start();
  bgp.start();
  simulator.run();

  const Prefix p = Prefix::host(Ipv4Addr{0, 0, 0, 46});
  OriginationPolicy policy;
  policy.propagation_ttl = 1;
  bgp.originate(d0, p, policy);
  simulator.run();
  // m0 (1 AS hop) sees it; m1 gets the iBGP copy; r2 (2 AS hops) must not.
  EXPECT_NE(bgp.best_route(m0, p), nullptr);
  EXPECT_NE(bgp.best_route(m1, p), nullptr);
  EXPECT_EQ(bgp.best_route(r2, p), nullptr);
}

}  // namespace
}  // namespace evo::bgp
