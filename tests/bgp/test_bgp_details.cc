// BGP internals: parallel links, iBGP preference rules, update batching,
// and install-time interactions.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp.h"
#include "igp/link_state.h"

namespace evo::bgp {
namespace {

using net::DomainId;
using net::Ipv4Addr;
using net::LinkId;
using net::NodeId;
using net::Prefix;
using net::Relationship;
using net::Topology;

struct Fixture {
  explicit Fixture(Topology topo) : network(std::move(topo)) {
    for (const auto& domain : network.topology().domains()) {
      igps.push_back(
          std::make_unique<igp::LinkStateIgp>(simulator, network, domain.id));
    }
    bgp = std::make_unique<BgpSystem>(
        simulator, network,
        [this](DomainId d) -> const igp::Igp* { return igps[d.value()].get(); });
  }

  void start_and_converge() {
    for (auto& igp : igps) igp->start();
    bgp->start();
    simulator.run();
    bgp->install_routes();
  }

  void converge() {
    simulator.run();
    bgp->install_routes();
  }

  sim::Simulator simulator;
  net::Network network;
  std::vector<std::unique_ptr<igp::LinkStateIgp>> igps;
  std::unique_ptr<BgpSystem> bgp;
};

TEST(BgpDetails, ParallelLinksBothCarrySessions) {
  // Two physical links between the same pair of routers: two eBGP
  // sessions; killing one keeps reachability through the other.
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto ra = topo.add_router(a);
  const auto rb = topo.add_router(b);
  const auto l1 = topo.add_interdomain_link(ra, rb, Relationship::kPeer);
  topo.add_interdomain_link(ra, rb, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  ASSERT_NE(f.bgp->best_route(ra, f.network.topology().domain(b).prefix), nullptr);
  f.network.topology().set_link_up(l1, false);
  f.bgp->on_link_change(l1);
  f.converge();
  EXPECT_NE(f.bgp->best_route(ra, f.network.topology().domain(b).prefix), nullptr);
  const auto trace =
      f.network.trace(ra, f.network.topology().domain(b).prefix.address());
  EXPECT_TRUE(trace.delivered());
}

TEST(BgpDetails, EbgpPreferredOverIbgpCopy) {
  // A domain with two borders, both reaching the same prefix over eBGP:
  // each keeps its own eBGP route rather than the other's iBGP copy.
  Topology topo;
  const auto m = topo.add_domain("m");
  const auto left = topo.add_domain("left");
  const auto right = topo.add_domain("right");
  const auto dest = topo.add_domain("dest", /*stub=*/true);
  const auto m0 = topo.add_router(m);
  const auto m1 = topo.add_router(m);
  topo.add_link(m0, m1, 1);
  const auto rl = topo.add_router(left);
  const auto rr = topo.add_router(right);
  const auto rd = topo.add_router(dest);
  topo.add_interdomain_link(m0, rl, Relationship::kCustomer);
  topo.add_interdomain_link(m1, rr, Relationship::kCustomer);
  topo.add_interdomain_link(rl, rd, Relationship::kCustomer);
  topo.add_interdomain_link(rr, rd, Relationship::kCustomer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto prefix = f.network.topology().domain(dest).prefix;
  const auto* at_m0 = f.bgp->best_route(m0, prefix);
  const auto* at_m1 = f.bgp->best_route(m1, prefix);
  ASSERT_NE(at_m0, nullptr);
  ASSERT_NE(at_m1, nullptr);
  EXPECT_FALSE(at_m0->via_ibgp);
  EXPECT_FALSE(at_m1->via_ibgp);
  EXPECT_EQ(at_m0->as_path.front(), left);
  EXPECT_EQ(at_m1->as_path.front(), right);
}

TEST(BgpDetails, OriginateIsIdempotentReplace) {
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto ra = topo.add_router(a);
  const auto rb = topo.add_router(b);
  topo.add_interdomain_link(ra, rb, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const Prefix p = Prefix::host(Ipv4Addr{0, 0, 0, 50});
  OriginationPolicy open;
  f.bgp->originate(a, p, open);
  f.converge();
  ASSERT_NE(f.bgp->best_route(rb, p), nullptr);
  // Re-originate with a scope that excludes b: the old advertisement must
  // be superseded (withdrawn at b).
  OriginationPolicy scoped;
  scoped.export_scope = std::set<DomainId>{};  // export to nobody
  f.bgp->originate(a, p, scoped);
  f.converge();
  EXPECT_EQ(f.bgp->best_route(rb, p), nullptr);
  EXPECT_NE(f.bgp->best_route(ra, p), nullptr);  // still has its own
}

TEST(BgpDetails, InstallRespectsIgpOverBgpForSamePrefix) {
  // If the IGP already owns a /32 (anycast member route), install_routes
  // must not clobber it with a BGP route for the identical prefix.
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto a0 = topo.add_router(a);
  const auto a1 = topo.add_router(a);
  topo.add_link(a0, a1, 1);
  const auto rb = topo.add_router(b);
  topo.add_interdomain_link(a1, rb, Relationship::kPeer);
  Fixture f(std::move(topo));
  // a0 is an anycast member for some /32 out of b's space (adversarial).
  const Ipv4Addr addr{0, 2, 255, 1};
  f.network.add_local_address(a0, addr);
  f.igps[0]->add_anycast_member(a0, addr);
  f.start_and_converge();
  // b also originates the exact /32 into BGP.
  OriginationPolicy policy;
  policy.anycast = true;
  f.bgp->originate(b, Prefix::host(addr), policy);
  f.converge();
  // a1 (border) must keep its IGP anycast route toward a0.
  const auto* entry = f.network.fib(a1).find(Prefix::host(addr));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->origin, net::RouteOrigin::kAnycast);
  const auto trace = f.network.trace(a1, addr);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.delivered_at, a0);
}

TEST(BgpDetails, UpdateBatchingBoundsMessages) {
  // Many prefixes originated in one burst are flushed in one batch per
  // session, not one message per prefix per decision round.
  Topology topo;
  const auto a = topo.add_domain("a");
  const auto b = topo.add_domain("b");
  const auto ra = topo.add_router(a);
  const auto rb = topo.add_router(b);
  topo.add_interdomain_link(ra, rb, Relationship::kPeer);
  Fixture f(std::move(topo));
  f.start_and_converge();
  const auto before = f.bgp->messages_sent();
  for (std::uint32_t i = 0; i < 32; ++i) {
    f.bgp->originate(a, Prefix::host(Ipv4Addr{i + 1}), {});
  }
  f.converge();
  // 32 prefixes, one session: 32 updates flow, but no quadratic blowup
  // (each prefix advertised to b exactly once; nothing bounces back).
  EXPECT_LE(f.bgp->messages_sent() - before, 40u);
  EXPECT_NE(f.bgp->best_route(rb, Prefix::host(Ipv4Addr{32})), nullptr);
}

}  // namespace
}  // namespace evo::bgp
