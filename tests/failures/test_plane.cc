// The fault-injection plane: schedule building, metric emission, automatic
// control-plane notification fan-out (no manual converge()/rebuild()
// choreography), and run-to-run determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/failure_plane.h"
#include "net/topology_gen.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using core::FailureKind;
using core::FailurePlane;
using core::FailureSchedule;
using net::DomainId;
using net::LinkId;
using net::NodeId;

TEST(FailureSchedule, EventsSortStablyByNominalTime) {
  FailureSchedule s;
  const auto t = [](std::int64_t ms) {
    return sim::TimePoint{} + sim::Duration::millis(ms);
  };
  // Added out of order, with a tie at 5ms.
  s.node_down(t(9), NodeId{7});
  s.link_down(t(5), LinkId{1});
  s.link_up(t(5), LinkId{2});
  s.member_loss(t(1), NodeId{3});
  const auto& events = s.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FailureKind::kMemberLoss);
  EXPECT_EQ(events[1].kind, FailureKind::kLinkDown);  // tie: insertion order
  EXPECT_EQ(events[2].kind, FailureKind::kLinkUp);
  EXPECT_EQ(events[3].kind, FailureKind::kNodeDown);
}

TEST(FailureSchedule, FlapAndCrashExpandToPairedEvents) {
  FailureSchedule s;
  const sim::TimePoint t0;
  s.link_flap(t0 + sim::Duration::millis(10), sim::Duration::millis(40),
              LinkId{2});
  s.node_crash(t0 + sim::Duration::millis(100), sim::Duration::millis(50),
               NodeId{4});
  ASSERT_EQ(s.size(), 4u);
  const auto& events = s.events();
  EXPECT_EQ(events[0].kind, FailureKind::kLinkDown);
  EXPECT_EQ(events[1].kind, FailureKind::kLinkUp);
  EXPECT_EQ(events[1].at - events[0].at, sim::Duration::millis(40));
  EXPECT_EQ(events[2].kind, FailureKind::kNodeDown);
  EXPECT_EQ(events[3].kind, FailureKind::kNodeUp);
}

std::unique_ptr<EvolvableInternet> ring_internet() {
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 1,
                                          .extra_transit_peering_probability = 1.0,
                                          .seed = 41});
  auto net = std::make_unique<EvolvableInternet>(std::move(topo));
  net->start();
  return net;
}

TEST(FailurePlaneTest, FlapEmitsMetricsAndRecoversDelivery) {
  auto net = ring_internet();
  net->deploy_domain(DomainId{0});
  net->converge();
  const auto group_id = net->vnbone().anycast_group();
  const auto addr = net->anycast().group(group_id).address;

  sim::MetricRegistry metrics;
  FailurePlane plane(*net, metrics);
  for (const auto& d : net->topology().domains()) {
    if (d.stub) plane.add_probe(d.routers.front(), addr);
  }

  // Flap the first member's first physical link, twice.
  const NodeId member = net->topology().domain(DomainId{0}).routers.front();
  const LinkId victim = net->topology().router(member).links.front();
  const sim::TimePoint t0 = net->simulator().now();
  FailureSchedule schedule;
  schedule
      .link_flap(t0 + sim::Duration::millis(100), sim::Duration::millis(300),
                 victim)
      .link_flap(t0 + sim::Duration::millis(1500), sim::Duration::millis(300),
                 victim);
  plane.arm(schedule);
  net->converge();

  EXPECT_EQ(plane.events_applied(), 4u);
  EXPECT_EQ(metrics.counter("net.failure.events"), 4);
  EXPECT_EQ(metrics.counter("net.failure.events.link-down"), 2);
  EXPECT_EQ(metrics.counter("net.failure.events.link-up"), 2);
  const auto* reconverge = metrics.find_summary("net.failure.reconverge_ms");
  ASSERT_NE(reconverge, nullptr);
  EXPECT_EQ(reconverge->count(), 4u);
  // After every reconvergence the ring has healed: all probes deliver.
  const auto* after = metrics.find_summary("net.failure.after.delivery_rate");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->count(), 4u);
  EXPECT_DOUBLE_EQ(after->mean(), 100.0);
}

// Satellite of the notification tentpole: a tunnel over a failed link is
// repaired by the automatic fan-out alone. No converge(), no rebuild() —
// just letting the simulator drain must leave the vN-Bone consistent.
TEST(FailurePlaneTest, TunnelRepairsWithoutExplicitRebuild) {
  EvolvableInternet net(net::single_domain_ring(6));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[2]);
  net.converge();
  ASSERT_EQ(net.vnbone().virtual_links().size(), 1u);
  ASSERT_EQ(net.vnbone().virtual_links()[0].underlay_cost, 2u);  // 0-1-2

  net.set_link_up(LinkId{1}, false);
  net.simulator().run();  // drain only; sync is event-driven
  ASSERT_EQ(net.vnbone().virtual_links().size(), 1u);
  EXPECT_EQ(net.vnbone().virtual_links()[0].underlay_cost, 4u);  // 0-5-4-3-2

  net.set_link_up(LinkId{1}, true);
  net.simulator().run();
  EXPECT_EQ(net.vnbone().virtual_links()[0].underlay_cost, 2u);
}

TEST(FailurePlaneTest, CrashNotifiesIgpBgpAndBoneWithoutConverge) {
  // Router crash fan-out, end to end: IGP routes around the dead member,
  // BGP drops its sessions, the bone drops the member — all from one
  // set_node_up call followed by an undirected simulator drain.
  auto net = ring_internet();
  net->deploy_domain(DomainId{0});
  net->converge();
  const auto group_id = net->vnbone().anycast_group();
  const NodeId probe_src = net->topology().domains().back().routers.front();
  const auto before = anycast::probe(net->network(),
                                     net->anycast().group(group_id), probe_src);
  ASSERT_TRUE(before.delivered());
  const NodeId victim = before.trace.delivered_at;

  net->set_node_up(victim, false);
  net->simulator().run();
  const auto during = anycast::probe(net->network(),
                                     net->anycast().group(group_id), probe_src);
  ASSERT_TRUE(during.delivered());
  EXPECT_NE(during.trace.delivered_at, victim);

  net->set_node_up(victim, true);
  net->simulator().run();
  const auto after = anycast::probe(net->network(),
                                    net->anycast().group(group_id), probe_src);
  EXPECT_TRUE(after.delivered());
}

TEST(FailurePlaneTest, IdenticalSchedulesProduceIdenticalMetrics) {
  // The whole plane is deterministic: same topology seed, same schedule,
  // same metric report — byte for byte.
  std::string reports[2];
  for (auto& report : reports) {
    auto net = ring_internet();
    net->deploy_domain(DomainId{0});
    net->converge();
    sim::MetricRegistry metrics;
    FailurePlane plane(*net, metrics);
    const auto addr = net->anycast().group(net->vnbone().anycast_group()).address;
    for (const auto& d : net->topology().domains()) {
      if (d.stub) plane.add_probe(d.routers.front(), addr);
    }
    const NodeId member = net->topology().domain(DomainId{0}).routers.front();
    const sim::TimePoint t0 = net->simulator().now();
    FailureSchedule schedule;
    schedule.node_crash(t0 + sim::Duration::millis(100),
                        sim::Duration::millis(500), member);
    schedule.link_flap(t0 + sim::Duration::millis(2000),
                       sim::Duration::millis(200),
                       net->topology().router(member).links.front());
    plane.arm(schedule);
    net->converge();
    EXPECT_EQ(plane.events_applied(), 4u);
    report = metrics.report();
  }
  EXPECT_EQ(reports[0], reports[1]);
}

}  // namespace
}  // namespace evo
