// Failure round-trips through the control plane: BGP session flaps
// (withdraw on down, re-advertise on restore), distance-vector
// count-to-infinity bounds when a restored link races poisoned routes, and
// router crash/recovery with anycast failover under both IGP families.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using core::IgpKind;
using net::DomainId;
using net::LinkId;
using net::NodeId;

/// Provider `up` over customer transits t0/t1 (each with a stub), plus a
/// direct t0-t1 peer link: the only topology shape where losing the peer
/// link leaves a policy-legal (valley-free) detour.
struct DiamondTopo {
  net::Topology topo;
  DomainId up, t0, t1, s0, s1;
  LinkId direct;

  DiamondTopo() {
    up = topo.add_domain("up");
    t0 = topo.add_domain("t0");
    t1 = topo.add_domain("t1");
    s0 = topo.add_domain("s0", /*stub=*/true);
    s1 = topo.add_domain("s1", /*stub=*/true);
    sim::Rng rng{44};
    net::IntraDomainParams internal{.routers = 2, .chord_probability = 0.0};
    for (const auto d : {up, t0, t1, s0, s1}) {
      net::populate_domain(topo, d, internal, rng);
    }
    auto first = [&](DomainId d) { return topo.domain(d).routers[0]; };
    auto second = [&](DomainId d) { return topo.domain(d).routers[1]; };
    topo.add_interdomain_link(first(up), first(t0), net::Relationship::kCustomer);
    topo.add_interdomain_link(second(up), first(t1), net::Relationship::kCustomer);
    direct =
        topo.add_interdomain_link(second(t0), second(t1), net::Relationship::kPeer);
    topo.add_interdomain_link(second(t0), first(s0), net::Relationship::kCustomer);
    topo.add_interdomain_link(second(t1), first(s1), net::Relationship::kCustomer);
  }
};

TEST(BgpSessionFlap, WithdrawOnDownReadvertiseOnRestore) {
  DiamondTopo d;
  EvolvableInternet net(std::move(d.topo));
  net.start();

  const net::Prefix t0_prefix = net.topology().domain(d.t0).prefix;
  const NodeId t1_speaker = net.topology().domain(d.t1).routers[1];  // peer end
  const bgp::Route* before = net.bgp().best_route(t1_speaker, t0_prefix);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->as_path.size(), 1u);  // direct peer path [t0]

  // Session down: the peer route is withdrawn; the provider detour
  // ([up, t0]) takes over. No manual converge-scheduling: set_link_up
  // notifies BGP, converge just drains the simulator.
  net.set_link_up(d.direct, false);
  net.converge();
  const bgp::Route* during = net.bgp().best_route(t1_speaker, t0_prefix);
  ASSERT_NE(during, nullptr);
  EXPECT_EQ(during->as_path.size(), 2u);
  EXPECT_EQ(during->as_path.back(), d.t0);
  EXPECT_NE(during->via_link, d.direct);
  // Data plane agrees: traffic still reaches t0.
  const auto trace = net.network().trace(
      t1_speaker, net.topology().router(net.topology().domain(d.t0).routers[0])
                      .loopback);
  EXPECT_TRUE(trace.delivered());

  // Session restore: both ends re-advertise their full Loc-RIBs; the
  // shorter peer path wins again.
  net.set_link_up(d.direct, true);
  net.converge();
  const bgp::Route* after = net.bgp().best_route(t1_speaker, t0_prefix);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->as_path.size(), 1u);
  EXPECT_EQ(after->via_link, d.direct);
}

TEST(BgpSessionFlap, BorderRouterCrashTearsDownAndRestoresSessions) {
  DiamondTopo d;
  EvolvableInternet net(std::move(d.topo));
  net.start();

  const net::Prefix t0_prefix = net.topology().domain(d.t0).prefix;
  const NodeId victim = net.topology().domain(d.t0).routers[1];  // t0's peer end
  const NodeId t1_speaker = net.topology().domain(d.t1).routers[1];

  net.set_node_up(victim, false);
  net.converge();
  const bgp::Route* during = net.bgp().best_route(t1_speaker, t0_prefix);
  ASSERT_NE(during, nullptr) << "provider path must survive the crash";
  EXPECT_EQ(during->as_path.size(), 2u);

  net.set_node_up(victim, true);
  net.converge();
  const bgp::Route* after = net.bgp().best_route(t1_speaker, t0_prefix);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->as_path.size(), 1u) << "peer session must re-establish";
}

TEST(DistanceVector, CountToInfinityIsBoundedOnPartition) {
  // Cutting the only link to a destination must terminate (metrics are
  // capped at config.infinity), leaving the destination unreachable —
  // not an endless mutual-increment loop.
  core::Options options;
  options.igp = IgpKind::kDistanceVector;
  EvolvableInternet net(net::single_domain_line(4), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  ASSERT_EQ(net.igp(DomainId{0})->distance(routers[0], routers[3]), 3u);

  net.set_link_up(LinkId{2}, false);  // 2-3: router 3 is cut off
  const std::uint64_t events = net.converge();
  EXPECT_LT(events, 10000u) << "count-to-infinity must be bounded";
  EXPECT_EQ(net.igp(DomainId{0})->distance(routers[0], routers[3]),
            net::kInfiniteCost);
  EXPECT_FALSE(net.network()
                   .trace(routers[0], net.topology().router(routers[3]).loopback)
                   .delivered());
}

TEST(DistanceVector, RestoredLinkRacesPoisonAndReconverges) {
  // Fail a link, let the poison start propagating, then restore the link
  // *before* the domain has reconverged: the full-table exchange on the
  // restored adjacency must beat the in-flight poison and the domain must
  // settle back to the original metrics (no lingering infinity, no loop).
  core::Options options;
  options.igp = IgpKind::kDistanceVector;
  EvolvableInternet net(net::single_domain_ring(6), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  const auto base_02 = net.igp(DomainId{0})->distance(routers[0], routers[2]);
  ASSERT_EQ(base_02, 2u);

  net.set_link_up(LinkId{1}, false);  // 1-2
  // Run just a few milliseconds: poisons and triggered updates are now in
  // flight, but convergence is incomplete.
  net.simulator().run_until(net.simulator().now() + sim::Duration::millis(3));
  net.set_link_up(LinkId{1}, true);
  const std::uint64_t events = net.converge();
  EXPECT_LT(events, 10000u);

  // Back to the pre-failure state: metrics restored, traces loop-free.
  EXPECT_EQ(net.igp(DomainId{0})->distance(routers[0], routers[2]), base_02);
  for (const NodeId from : routers) {
    for (const NodeId to : routers) {
      const auto trace =
          net.network().trace(from, net.topology().router(to).loopback);
      EXPECT_TRUE(trace.delivered())
          << from.value() << "->" << to.value() << ": "
          << net.network().describe(trace);
    }
  }
}

class NodeCrashAnycastFailover : public ::testing::TestWithParam<IgpKind> {};

TEST_P(NodeCrashAnycastFailover, CrashRedirectsRecoveryRestores) {
  core::Options options;
  options.igp = GetParam();
  auto topo = net::generate_transit_stub(
      {.transit_domains = 3, .stubs_per_transit = 1, .seed = 41});
  EvolvableInternet net(std::move(topo), options);
  net.start();
  net.deploy_domain(DomainId{0});
  net.deploy_domain(DomainId{1});
  net.converge();
  const auto& group = net.anycast().group(net.vnbone().anycast_group());
  const NodeId probe_src = net.topology().domains().back().routers.front();

  const auto before = anycast::probe(net.network(), group, probe_src);
  ASSERT_TRUE(before.delivered());
  const NodeId victim = before.trace.delivered_at;

  // Crash the member currently capturing the probe: the IGP routes around
  // the dead router AND anycast redirects to a surviving member.
  net.set_node_up(victim, false);
  net.converge();
  const auto during = anycast::probe(net.network(), group, probe_src);
  ASSERT_TRUE(during.delivered()) << "anycast must fail over past the crash";
  EXPECT_NE(during.trace.delivered_at, victim);

  // Recovery: the router comes back, rejoins the group via the control
  // plane, and (being closest again) recaptures the probe.
  net.set_node_up(victim, true);
  net.converge();
  const auto after = anycast::probe(net.network(), group, probe_src);
  ASSERT_TRUE(after.delivered());
  EXPECT_EQ(after.trace.delivered_at, victim);
}

INSTANTIATE_TEST_SUITE_P(BothIgps, NodeCrashAnycastFailover,
                         ::testing::Values(IgpKind::kLinkState,
                                           IgpKind::kDistanceVectorTagged),
                         [](const auto& info) {
                           return info.param == IgpKind::kLinkState
                                      ? "LinkState"
                                      : "DistanceVectorTagged";
                         });

}  // namespace
}  // namespace evo
