// In-flight failure semantics and the topology failure primitives.
//
// The regression of record: DeliveryEngine used to check link state only
// at *send* time, so a packet already on the wire would cross a link that
// died before it arrived. The fix re-checks at the arrival callback, the
// way LSA flooding always has.
#include <gtest/gtest.h>

#include <stdexcept>

#include "igp/link_state.h"
#include "net/delivery.h"
#include "net/topology_gen.h"

namespace evo::net {
namespace {

/// Line topology with a converged link-state IGP, so FIBs are populated.
struct Fixture {
  explicit Fixture(std::uint32_t routers, sim::Duration latency)
      : network(make_topo(routers, latency)),
        igp(simulator, network, DomainId{0}),
        engine(simulator, network) {
    igp.start();
    simulator.run();
  }

  static Topology make_topo(std::uint32_t routers, sim::Duration latency) {
    Topology topo;
    const auto d = topo.add_domain("line", /*stub=*/true);
    std::vector<NodeId> nodes;
    for (std::uint32_t i = 0; i < routers; ++i) nodes.push_back(topo.add_router(d));
    for (std::uint32_t i = 0; i + 1 < routers; ++i) {
      topo.add_link(nodes[i], nodes[i + 1], 1, latency);
    }
    return topo;
  }

  Packet packet_to(NodeId dst, std::uint8_t ttl = 64) {
    Packet p;
    Ipv4Header h;
    h.src = network.topology().router(NodeId{0}).loopback;
    h.dst = network.topology().router(dst).loopback;
    h.ttl = ttl;
    p.push(HeaderLayer::ipv4(h));
    return p;
  }

  sim::Simulator simulator;
  Network network;
  igp::LinkStateIgp igp;
  DeliveryEngine engine;
};

// The regression window proper: with 5ms links on a 4-router line, the
// last hop is *sent* at t=10ms and *arrives* at t=15ms. Killing the link
// at t=12ms is after the send-time check has already passed — only the
// arrival-time re-check can catch it.
TEST(InFlightSemantics, LinkDeathAfterSendBeforeArrivalDrops) {
  Fixture f(4, sim::Duration::millis(5));
  bool dropped = false;
  bool delivered = false;
  f.engine.inject(
      NodeId{0}, f.packet_to(NodeId{3}),
      [&](NodeId, const Packet&, sim::Duration) { delivered = true; },
      [&](Network::TraceResult::Outcome reason, NodeId at, const Packet&) {
        dropped = true;
        EXPECT_EQ(reason, Network::TraceResult::Outcome::kLinkDown);
        EXPECT_EQ(at, NodeId{2});  // reported at the sender of the dead hop
      });
  f.simulator.schedule_after(sim::Duration::millis(12), [&] {
    f.network.topology().set_link_up(LinkId{2}, false);
  });
  f.simulator.run();
  EXPECT_TRUE(dropped);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(f.engine.packets_dropped(), 1u);
}

// Same window, but the *receiving router* crashes instead of the link: a
// usable link needs both endpoints alive, so the packet is lost too.
TEST(InFlightSemantics, NodeCrashAfterSendBeforeArrivalDrops) {
  Fixture f(4, sim::Duration::millis(5));
  bool dropped = false;
  bool delivered = false;
  f.engine.inject(
      NodeId{0}, f.packet_to(NodeId{3}),
      [&](NodeId, const Packet&, sim::Duration) { delivered = true; },
      [&](Network::TraceResult::Outcome reason, NodeId, const Packet&) {
        dropped = true;
        EXPECT_EQ(reason, Network::TraceResult::Outcome::kLinkDown);
      });
  f.simulator.schedule_after(sim::Duration::millis(12), [&] {
    f.network.topology().set_node_up(NodeId{3}, false);
  });
  f.simulator.run();
  EXPECT_TRUE(dropped);
  EXPECT_FALSE(delivered);
}

// A flap that heals before the packet arrives must NOT drop it: the
// arrival-time check sees a usable link again.
TEST(InFlightSemantics, FlapHealedBeforeArrivalStillDelivers) {
  Fixture f(4, sim::Duration::millis(5));
  bool delivered = false;
  f.engine.inject(
      NodeId{0}, f.packet_to(NodeId{3}),
      [&](NodeId, const Packet&, sim::Duration) { delivered = true; },
      [&](Network::TraceResult::Outcome, NodeId, const Packet&) {
        FAIL() << "dropped despite healed link";
      });
  f.simulator.schedule_after(sim::Duration::millis(11), [&] {
    f.network.topology().set_link_up(LinkId{2}, false);
  });
  f.simulator.schedule_after(sim::Duration::millis(13), [&] {
    f.network.topology().set_link_up(LinkId{2}, true);
  });
  f.simulator.run();
  EXPECT_TRUE(delivered);
}

TEST(FailurePrimitives, SetLinkUpReportsStateChanges) {
  Topology topo = single_domain_line(3);
  EXPECT_FALSE(topo.set_link_up(LinkId{0}, true));   // already up: no-op
  EXPECT_TRUE(topo.set_link_up(LinkId{0}, false));   // changed
  EXPECT_FALSE(topo.set_link_up(LinkId{0}, false));  // no-op again
  EXPECT_TRUE(topo.set_link_up(LinkId{0}, true));
}

TEST(FailurePrimitives, SetLinkUpBoundsCheckedInAllBuilds) {
  Topology topo = single_domain_line(3);
  EXPECT_THROW(topo.set_link_up(LinkId{99}, false), std::out_of_range);
  EXPECT_THROW(topo.set_link_up(LinkId::invalid(), false), std::out_of_range);
}

TEST(FailurePrimitives, SetNodeUpReportsAndBoundsChecks) {
  Topology topo = single_domain_line(3);
  EXPECT_FALSE(topo.set_node_up(NodeId{1}, true));
  EXPECT_TRUE(topo.set_node_up(NodeId{1}, false));
  EXPECT_FALSE(topo.router(NodeId{1}).up);
  EXPECT_TRUE(topo.set_node_up(NodeId{1}, true));
  EXPECT_THROW(topo.set_node_up(NodeId{99}, false), std::out_of_range);
  EXPECT_THROW(topo.set_node_up(NodeId::invalid(), true), std::out_of_range);
}

TEST(FailurePrimitives, LinkUsableRequiresLinkAndBothEndpoints) {
  Topology topo = single_domain_line(3);
  EXPECT_TRUE(topo.link_usable(LinkId{0}));
  topo.set_node_up(NodeId{1}, false);
  EXPECT_FALSE(topo.link_usable(LinkId{0}));  // far end down
  EXPECT_FALSE(topo.link_usable(LinkId{1}));  // near end down
  EXPECT_TRUE(topo.link(LinkId{0}).up);       // administratively still up
  topo.set_node_up(NodeId{1}, true);
  EXPECT_TRUE(topo.link_usable(LinkId{0}));
  topo.set_link_up(LinkId{0}, false);
  EXPECT_FALSE(topo.link_usable(LinkId{0}));
}

TEST(FailurePrimitives, CrashedNodeDropsOutOfDerivedGraphsAndTraces) {
  Fixture f(4, sim::Duration::millis(1));
  auto& topo = f.network.topology();
  topo.set_node_up(NodeId{2}, false);
  // Derived graph: no edges touch the crashed router.
  const Graph g = topo.physical_graph();
  EXPECT_TRUE(g.neighbors(NodeId{2}).empty());
  // Forwarding: the (stale) FIB still points through node 2; the trace
  // reports the dead first link rather than crossing it.
  const auto trace =
      f.network.trace(NodeId{0}, topo.router(NodeId{3}).loopback);
  EXPECT_EQ(trace.outcome, Network::TraceResult::Outcome::kLinkDown);
  // A crashed router delivers nothing, even its own loopback.
  EXPECT_FALSE(f.network.delivers_locally(NodeId{2},
                                          topo.router(NodeId{2}).loopback));
}

}  // namespace
}  // namespace evo::net
