// Endhost stack: self-addressing, native addressing, relabeling on
// provider adoption, reverse lookup, and datagram construction.
#include "host/endhost.h"

#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "net/topology_gen.h"

namespace evo::host {
namespace {

using net::DomainId;
using net::HostId;
using net::IpvNAddr;

struct Fixture {
  Fixture() {
    net::Topology topo = net::single_domain_line(3);
    const auto& routers = topo.domain(DomainId{0}).routers;
    h0 = topo.add_host(routers[0]);
    h1 = topo.add_host(routers[2]);
    internet = std::make_unique<core::EvolvableInternet>(std::move(topo));
    internet->start();
  }

  HostId h0, h1;
  std::unique_ptr<core::EvolvableInternet> internet;
};

TEST(HostStack, SelfAddressBeforeDeployment) {
  Fixture f;
  const auto addr = f.internet->hosts().ipvn_address(f.h0);
  EXPECT_TRUE(addr.is_self_address());
  EXPECT_EQ(addr.embedded_v4(), f.internet->topology().host(f.h0).address);
  EXPECT_FALSE(f.internet->hosts().has_native_address(f.h0));
}

TEST(HostStack, NativeAddressAfterProviderDeploys) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto addr = f.internet->hosts().ipvn_address(f.h0);
  EXPECT_FALSE(addr.is_self_address());
  EXPECT_EQ(addr.native_domain(), 0u);
  EXPECT_EQ(addr.native_node(),
            f.internet->topology().host(f.h0).access_router.value());
  EXPECT_TRUE(f.internet->hosts().has_native_address(f.h0));
}

TEST(HostStack, RelabelingIsAutomatic) {
  // "these self-addresses are very likely temporary and such endhosts will
  // have to relabel if and when their access providers do adopt IPvN."
  Fixture f;
  const auto before = f.internet->hosts().ipvn_address(f.h0);
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto after = f.internet->hosts().ipvn_address(f.h0);
  EXPECT_NE(before, after);
  EXPECT_TRUE(before.is_self_address());
  EXPECT_FALSE(after.is_self_address());
}

TEST(HostStack, ReverseLookupSelfAddress) {
  Fixture f;
  const auto addr = f.internet->hosts().ipvn_address(f.h1);
  const auto found = f.internet->hosts().host_by_ipvn(addr);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, f.h1);
}

TEST(HostStack, ReverseLookupNativeAddress) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto addr = f.internet->hosts().ipvn_address(f.h1);
  ASSERT_FALSE(addr.is_self_address());
  const auto found = f.internet->hosts().host_by_ipvn(addr);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, f.h1);
}

TEST(HostStack, ReverseLookupUnknownFails) {
  Fixture f;
  EXPECT_FALSE(f.internet->hosts()
                   .host_by_ipvn(IpvNAddr::self(8, net::Ipv4Addr{9, 9, 9, 9}))
                   .has_value());
  EXPECT_FALSE(f.internet->hosts()
                   .host_by_ipvn(IpvNAddr::native(8, 0, 9999, 0))
                   .has_value());
}

TEST(HostStack, DatagramEncapsulatedTowardAnycast) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  const auto packet = f.internet->hosts().make_datagram(f.h0, f.h1, 42);
  ASSERT_EQ(packet.depth(), 2u);
  EXPECT_EQ(packet.payload_id, 42u);
  // Outer v4 header targets the deployment's anycast address with the
  // encapsulation protocol.
  EXPECT_EQ(packet.outer().v4.dst, f.internet->vnbone().anycast_address());
  EXPECT_EQ(packet.outer().v4.proto, net::Ipv4Header::Proto::kIpvNEncap);
  EXPECT_EQ(packet.outer().v4.src, f.internet->topology().host(f.h0).address);
  // Inner IPvN header carries src/dst and the legacy-destination option.
  const auto& inner = packet.layers().front().vn;
  EXPECT_EQ(inner.src, f.internet->hosts().ipvn_address(f.h0));
  EXPECT_EQ(inner.dst, f.internet->hosts().ipvn_address(f.h1));
  EXPECT_TRUE(inner.has_legacy_dst);
  EXPECT_EQ(inner.legacy_dst, f.internet->topology().host(f.h1).address);
}

TEST(HostStack, VersionPropagatedFromConfig) {
  net::Topology topo = net::single_domain_line(2);
  const auto h = topo.add_host(topo.domain(DomainId{0}).routers[0]);
  core::Options options;
  options.vnbone.version = 11;
  core::EvolvableInternet internet(std::move(topo), options);
  internet.start();
  EXPECT_EQ(internet.hosts().ipvn_address(h).version(), 11);
}

TEST(HostStack, HostsOnSameRouterDistinctAddresses) {
  net::Topology topo = net::single_domain_line(2);
  const auto r = topo.domain(DomainId{0}).routers[0];
  const auto a = topo.add_host(r);
  const auto b = topo.add_host(r);
  core::EvolvableInternet internet(std::move(topo));
  internet.start();
  internet.deploy_domain(DomainId{0});
  internet.converge();
  const auto addr_a = internet.hosts().ipvn_address(a);
  const auto addr_b = internet.hosts().ipvn_address(b);
  EXPECT_NE(addr_a, addr_b);
  EXPECT_EQ(internet.hosts().host_by_ipvn(addr_a), a);
  EXPECT_EQ(internet.hosts().host_by_ipvn(addr_b), b);
}

}  // namespace
}  // namespace evo::host
