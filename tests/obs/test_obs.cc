// The telemetry substrate: Recorder semantics (spans, instants, flight
// ring, merge), the Perfetto/flight exporters, and the determinism
// contract — a scripted scenario swept in parallel must export
// byte-identical trace JSON at any thread count, and those bytes are
// pinned by a committed golden file (tests/obs/golden_trace.json;
// regenerate with EVO_OBS_REGEN_GOLDEN=1 after intentional
// instrumentation changes).
#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "check/fuzzer.h"
#include "core/evolvable_internet.h"
#include "net/topology_gen.h"
#include "obs/export.h"
#include "sim/parallel.h"
#include "sim/time.h"

namespace evo::obs {
namespace {

// --- Recorder ---------------------------------------------------------------

TEST(Recorder, SpanOpenCloseRoundTrip) {
  Recorder recorder;
  recorder.set_capture_all(true);
  const SpanId span = recorder.open_span(Domain::kIgp, "igp.reconvergence", 7);
  EXPECT_TRUE(span.valid());
  EXPECT_EQ(recorder.open_span_count(), 1u);
  recorder.close_span(span, /*a=*/42, /*b=*/3);
  EXPECT_EQ(recorder.open_span_count(), 0u);

  ASSERT_EQ(recorder.log().size(), 2u);
  const Event& open = recorder.log()[0];
  const Event& close = recorder.log()[1];
  EXPECT_EQ(open.phase, Phase::kSpanOpen);
  EXPECT_EQ(open.a, 7u);
  EXPECT_EQ(open.span, span.value);
  EXPECT_EQ(close.phase, Phase::kSpanClose);
  EXPECT_EQ(close.a, 42u);
  EXPECT_EQ(close.b, 3u);
  EXPECT_EQ(close.span, span.value);
  EXPECT_STREQ(close.name, "igp.reconvergence");
}

TEST(Recorder, SpanIdsAreMonotonicFromOne) {
  Recorder recorder;
  const SpanId first = recorder.open_span(Domain::kBgp, "bgp.update_wave");
  const SpanId second = recorder.open_span(Domain::kBgp, "bgp.update_wave");
  EXPECT_EQ(first.value, 1u);
  EXPECT_EQ(second.value, 2u);
  EXPECT_FALSE(SpanId{}.valid());
}

TEST(Recorder, ClosingInvalidOrUnknownSpanIsNoOp) {
  Recorder recorder;
  recorder.close_span(SpanId{});     // default sentinel
  recorder.close_span(SpanId{99});   // never opened
  EXPECT_EQ(recorder.recorded(), 0u);
  const SpanId span = recorder.open_span(Domain::kSim, "sim.window");
  recorder.close_span(span);
  recorder.close_span(span);  // double close
  EXPECT_EQ(recorder.recorded(), 2u);
}

TEST(Recorder, InstantRecordsPointEvent) {
  Recorder recorder;
  recorder.instant(Domain::kNet, "net.fib.recompile", 5, 17);
  const auto tail = recorder.tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].phase, Phase::kInstant);
  EXPECT_EQ(tail[0].span, 0u);
  EXPECT_EQ(tail[0].a, 5u);
  EXPECT_EQ(tail[0].b, 17u);
  EXPECT_EQ(tail[0].domain, Domain::kNet);
}

TEST(Recorder, FlightRingKeepsNewestTail) {
  Recorder recorder(/*ring_capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.instant(Domain::kSim, "tick", i);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.overwritten(), 12u);
  const auto tail = recorder.tail();
  ASSERT_EQ(tail.size(), 8u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].a, 12u + i);  // chronological, newest last
  }
  const auto last3 = recorder.tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].a, 17u);
  EXPECT_EQ(last3[2].a, 19u);
}

TEST(Recorder, CaptureAllLogOutlivesRingWrap) {
  Recorder recorder(/*ring_capacity=*/4);
  recorder.set_capture_all(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.instant(Domain::kSim, "tick", i);
  }
  EXPECT_EQ(recorder.log().size(), 10u);
  EXPECT_EQ(recorder.tail().size(), 4u);
  // Off by default: a fresh recorder keeps no unbounded state.
  Recorder fresh;
  fresh.instant(Domain::kSim, "tick");
  EXPECT_FALSE(fresh.capture_all());
  EXPECT_TRUE(fresh.log().empty());
}

TEST(Recorder, AttachedClockStampsSimTime) {
  sim::TimePoint now = sim::TimePoint::origin() + sim::Duration::millis(5);
  Recorder recorder;
  recorder.instant(Domain::kSim, "before-attach");
  recorder.attach_clock(&now);
  recorder.instant(Domain::kSim, "at-5ms");
  now = now + sim::Duration::millis(2);
  recorder.instant(Domain::kSim, "at-7ms");
  const auto tail = recorder.tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].at_us, 0);
  EXPECT_EQ(tail[1].at_us, 5000);
  EXPECT_EQ(tail[2].at_us, 7000);
}

TEST(Recorder, MergeFromStampsTrackAndAccumulates) {
  Recorder cell0, cell1;
  cell0.set_capture_all(true);
  cell1.set_capture_all(true);
  const SpanId span = cell0.open_span(Domain::kIgp, "igp.reconvergence");
  cell0.close_span(span);
  cell1.instant(Domain::kBgp, "bgp.flush", 9);

  Recorder merged;
  merged.merge_from(cell0, 0);
  merged.merge_from(cell1, 1);
  ASSERT_EQ(merged.log().size(), 3u);
  EXPECT_EQ(merged.log()[0].track, 0u);
  EXPECT_EQ(merged.log()[1].track, 0u);
  EXPECT_EQ(merged.log()[2].track, 1u);
  EXPECT_STREQ(merged.log()[2].name, "bgp.flush");
  EXPECT_EQ(merged.recorded(), cell0.recorded() + cell1.recorded());
}

TEST(Recorder, ClearResetsEverything) {
  Recorder recorder;
  recorder.set_capture_all(true);
  recorder.open_span(Domain::kSim, "window");
  recorder.instant(Domain::kSim, "tick");
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.open_span_count(), 0u);
  EXPECT_TRUE(recorder.log().empty());
  EXPECT_TRUE(recorder.tail().empty());
  // Span ids restart, preserving the golden-trace determinism contract.
  EXPECT_EQ(recorder.open_span(Domain::kSim, "window").value, 1u);
}

TEST(Recorder, DomainAndPhaseNames) {
  EXPECT_STREQ(to_string(Domain::kVnBone), "vnbone");
  EXPECT_STREQ(to_string(Domain::kCheck), "check");
  EXPECT_STREQ(to_string(Phase::kSpanOpen), "open");
  EXPECT_STREQ(to_string(Phase::kInstant), "instant");
}

// --- Exporters --------------------------------------------------------------

TEST(Export, PerfettoJsonShapesSpansAndInstants) {
  sim::TimePoint now = sim::TimePoint::origin() + sim::Duration::millis(1);
  Recorder recorder;
  recorder.set_capture_all(true);
  recorder.attach_clock(&now);
  const SpanId span = recorder.open_span(Domain::kIgp, "igp.reconvergence", 2);
  now = now + sim::Duration::millis(3);
  recorder.instant(Domain::kNet, "net.fib.recompile", 4, 1);
  recorder.close_span(span, 10);

  const std::string json = perfetto_json(recorder);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"igp\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":4000"), std::string::npos);
  // Async-span id encodes (track << 32) | span; track 0, span 1 -> 0x1.
  EXPECT_NE(json.find("\"id\":\"0x1\""), std::string::npos);
}

TEST(Export, PerfettoJsonIdSeparatesTracks) {
  Recorder cell;
  cell.set_capture_all(true);
  cell.close_span(cell.open_span(Domain::kIgp, "igp.reconvergence"));
  Recorder merged;
  merged.merge_from(cell, /*track=*/3);
  const std::string json = perfetto_json(merged);
  // Same span id on track 3 must not collide with track 0's 0x1.
  EXPECT_NE(json.find("\"id\":\"0x300000001\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

TEST(Export, FlightTextListsTailAndOpenSpans) {
  sim::TimePoint now = sim::TimePoint::origin() + sim::Duration::millis(12);
  Recorder recorder;
  recorder.attach_clock(&now);
  recorder.open_span(Domain::kCheck, "check.episode", 1);
  recorder.instant(Domain::kCheck, "check.inject.silent_link_down", 19);

  const std::string text = flight_text(recorder);
  EXPECT_NE(text.find("# flight recorder: 2 of 2 events retained"),
            std::string::npos);
  EXPECT_NE(text.find("check.inject.silent_link_down"), std::string::npos);
  EXPECT_NE(text.find("a=19"), std::string::npos);
  // The unconverged episode shows up in the open-span listing.
  EXPECT_NE(text.find("# spans still open at dump time"), std::string::npos);
  EXPECT_NE(text.find("span 1 check check.episode"), std::string::npos);
}

TEST(Export, FlightTextHonorsMaxEvents) {
  Recorder recorder;
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.instant(Domain::kSim, "tick", i);
  }
  const std::string text = flight_text(recorder, /*max_events=*/2);
  EXPECT_NE(text.find("# flight recorder: 2 of 10 events retained"),
            std::string::npos);
  EXPECT_EQ(text.find("a=7 "), std::string::npos);
  EXPECT_NE(text.find("a=8 "), std::string::npos);
  EXPECT_NE(text.find("a=9 "), std::string::npos);
}

TEST(Export, WriteTextFileRoundTrips) {
  const std::string path = testing::TempDir() + "/obs_write_test.txt";
  EXPECT_EQ(write_text_file(path, "hello\n"), "");
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "hello\n");
  std::remove(path.c_str());
  EXPECT_NE(write_text_file("/nonexistent-dir/x/y.txt", "x"), "");
}

// --- Live instrumentation --------------------------------------------------

TEST(Instrumentation, LinkFlapOpensAndClosesEpisodeSpans) {
  core::EvolvableInternet net(net::generate_transit_stub(
      {.transit_domains = 2, .stubs_per_transit = 1, .seed = 21}));
  net.start();
  Recorder recorder;
  recorder.set_capture_all(true);
  net.set_recorder(&recorder);
  net.set_link_up(net::LinkId{0}, false);
  net.converge();
  net.set_link_up(net::LinkId{0}, true);
  net.converge();
  net.set_recorder(nullptr);

  bool saw_igp_open = false, saw_igp_close = false;
  for (const Event& e : recorder.log()) {
    if (std::string_view(e.name) == "igp.reconvergence") {
      saw_igp_open |= e.phase == Phase::kSpanOpen;
      saw_igp_close |= e.phase == Phase::kSpanClose;
    }
  }
  EXPECT_TRUE(saw_igp_open);
  EXPECT_TRUE(saw_igp_close);
  EXPECT_EQ(recorder.open_span_count(), 0u)
      << "converged network must leave no episode open";
}

TEST(Instrumentation, FuzzerRunEmitsCheckEpisodes) {
  const auto plan = check::generate_plan(7);
  Recorder recorder;
  recorder.set_capture_all(true);
  const auto report = check::run_plan(plan, {}, &recorder);
  ASSERT_TRUE(report.invalid.empty());
  std::size_t episodes = 0;
  for (const Event& e : recorder.log()) {
    episodes += e.domain == Domain::kCheck && e.phase == Phase::kSpanOpen;
  }
  EXPECT_EQ(episodes, plan.events.size());

  // The same seed with a recorder attached stays observationally identical
  // to a bare run: instrumentation must not perturb the simulation.
  const auto bare = check::run_plan(plan);
  EXPECT_EQ(report.digest, bare.digest);
  EXPECT_EQ(report.episodes, bare.episodes);
}

// --- Determinism under ParallelSweep (the S4 golden contract) ---------------

constexpr std::size_t kGoldenCells = 3;

// One scripted sweep cell: a small two-tier Internet, recorded only
// through a down/up flap of link `cell` so the trace stays compact.
void run_golden_cell(std::size_t cell, Recorder& recorder) {
  core::EvolvableInternet net(net::generate_transit_stub(
      {.transit_domains = 2,
       .stubs_per_transit = 1,
       .seed = 40 + static_cast<std::uint64_t>(cell)}));
  net.start();
  recorder.set_capture_all(true);
  net.set_recorder(&recorder);
  const net::LinkId victim{static_cast<std::uint32_t>(cell)};
  net.set_link_up(victim, false);
  net.converge();
  net.set_link_up(victim, true);
  net.converge();
  net.set_recorder(nullptr);
}

std::string golden_trace(unsigned threads) {
  // Recorders live outside the sweep, pre-sized and indexed by cell, then
  // fold in cell order — the MetricRegistry::merge_from discipline.
  std::vector<Recorder> recorders(kGoldenCells);
  const sim::ParallelSweep pool(threads);
  pool.run(kGoldenCells, /*sweep_seed=*/40,
           [&recorders](std::size_t cell, sim::Rng&) {
             run_golden_cell(cell, recorders[cell]);
             return sim::CellResult{};
           });
  Recorder merged;
  for (std::size_t cell = 0; cell < kGoldenCells; ++cell) {
    merged.merge_from(recorders[cell], static_cast<std::uint32_t>(cell));
  }
  return perfetto_json(merged);
}

TEST(GoldenTrace, ByteIdenticalAcrossThreadCounts) {
  const std::string serial = golden_trace(1);
  const std::string parallel = golden_trace(4);
  EXPECT_EQ(serial, parallel);
  // The trace is non-trivial and multi-track.
  EXPECT_NE(serial.find("igp.reconvergence"), std::string::npos);
  EXPECT_NE(serial.find("\"pid\":2"), std::string::npos);
}

TEST(GoldenTrace, MatchesCommittedGoldenFile) {
  const std::string trace = golden_trace(2);
  const std::string path = EVO_OBS_GOLDEN_TRACE;
  if (std::getenv("EVO_OBS_REGEN_GOLDEN") != nullptr) {
    ASSERT_EQ(write_text_file(path, trace), "");
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with EVO_OBS_REGEN_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(trace, buf.str())
      << "trace bytes drifted from tests/obs/golden_trace.json; if the "
         "instrumentation change is intentional, rerun with "
         "EVO_OBS_REGEN_GOLDEN=1 and commit the refreshed golden file";
}

}  // namespace
}  // namespace evo::obs
