// Invariant oracles: a healthy converged internet is clean, and direct
// state corruption (the faults oracles exist to catch) is reported.
#include "check/oracles.h"

#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo::check {
namespace {

net::TransitStubParams small_params() {
  net::TransitStubParams params;
  params.transit_domains = 2;
  params.stubs_per_transit = 2;
  params.transit_internal.routers = 2;
  params.stub_internal.routers = 3;
  params.extra_transit_peering_probability = 1.0;
  params.seed = 0xC0FFEE;
  return params;
}

std::unique_ptr<core::EvolvableInternet> healthy_internet(
    core::Options options = {}) {
  auto internet = std::make_unique<core::EvolvableInternet>(
      net::generate_transit_stub(small_params()), options);
  internet->start();
  internet->deploy_router(net::NodeId{0});
  internet->deploy_router(net::NodeId{5});
  internet->converge();
  return internet;
}

TEST(Oracles, HealthyInternetIsClean) {
  auto internet = healthy_internet();
  const auto violations = check_invariants(*internet);
  for (const auto& v : violations) ADD_FAILURE() << v.describe();
  EXPECT_TRUE(violations.empty());
}

TEST(Oracles, HealthyDistanceVectorInternetIsClean) {
  core::Options options;
  options.igp = core::IgpKind::kDistanceVectorTagged;
  auto internet = healthy_internet(options);
  const auto violations = check_invariants(*internet);
  for (const auto& v : violations) ADD_FAILURE() << v.describe();
  EXPECT_TRUE(violations.empty());
}

TEST(Oracles, DroppedIgpRoutesAreCaught) {
  auto internet = healthy_internet();
  // Delete router 0's intra-domain routes out from under the control
  // plane — the lost-installation-write fault class. (Dropping a single
  // loopback /32 can be harmless while the covering subnet /24 still
  // routes the same way; losing the whole IGP table never is.)
  auto& fib = internet->network().fib(net::NodeId{0});
  std::vector<net::Prefix> victims;
  fib.for_each([&](const net::FibEntry& entry) {
    if (entry.origin == net::RouteOrigin::kIgp) victims.push_back(entry.prefix);
  });
  ASSERT_FALSE(victims.empty());
  for (const net::Prefix victim : victims) fib.remove(victim);
  EXPECT_FALSE(check_invariants(*internet).empty());
}

TEST(Oracles, SilentLinkDownIsCaught) {
  auto internet = healthy_internet();
  // Kill every link of router 1 behind the control plane's back: no
  // notification, so every FIB still forwards through the dead links.
  const auto links = internet->topology().router(net::NodeId{1}).links;
  for (const net::LinkId link : links) {
    internet->network().topology().set_link_up(link, false);
  }
  const auto violations = check_invariants(*internet);
  ASSERT_FALSE(violations.empty());
  bool found_forwarding_violation = false;
  for (const auto& v : violations) {
    if (v.oracle == OracleKind::kNoBlackhole ||
        v.oracle == OracleKind::kIgpGroundTruth ||
        v.oracle == OracleKind::kLoopFreedom) {
      found_forwarding_violation = true;
    }
  }
  EXPECT_TRUE(found_forwarding_violation);
}

TEST(Oracles, ViolationDescribesItself) {
  Violation violation{OracleKind::kNoBlackhole, 3, "unit-test detail"};
  const std::string text = violation.describe();
  EXPECT_NE(text.find("no-blackhole"), std::string::npos);
  EXPECT_NE(text.find("unit-test detail"), std::string::npos);
}

}  // namespace
}  // namespace evo::check
