// The scenario fuzzer: same seed => same plan, same digest, same verdict;
// a window of seeds runs clean (these are the regression seeds the CI
// smoke job replays daily).
#include "check/fuzzer.h"

#include <gtest/gtest.h>

#include "check/replay.h"

namespace evo::check {
namespace {

TEST(Fuzzer, PlanGenerationIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(format_replay(generate_plan(seed)), format_replay(generate_plan(seed)))
        << "seed " << seed;
  }
}

TEST(Fuzzer, RunsAreObservationallyIdentical) {
  for (std::uint64_t seed : {1ULL, 7ULL, 13ULL}) {
    const ScenarioPlan plan = generate_plan(seed);
    const RunReport first = run_plan(plan);
    const RunReport second = run_plan(plan);
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed;
    EXPECT_EQ(first.episodes, second.episodes) << "seed " << seed;
    EXPECT_EQ(first.events_processed, second.events_processed) << "seed " << seed;
    EXPECT_EQ(first.violations.size(), second.violations.size()) << "seed " << seed;
  }
}

TEST(Fuzzer, SeedWindowRunsClean) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RunReport report = run_plan(generate_plan(seed));
    EXPECT_TRUE(report.invalid.empty()) << "seed " << seed << ": " << report.invalid;
    for (const auto& violation : report.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation.describe();
    }
  }
}

TEST(Fuzzer, PlansVaryAcrossSeeds) {
  // The generator must actually explore the space: across a seed window we
  // expect more than one IGP kind, anycast mode, and event schedule.
  std::set<core::IgpKind> igps;
  std::set<anycast::InterDomainMode> modes;
  std::set<std::size_t> event_counts;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ScenarioPlan plan = generate_plan(seed);
    igps.insert(plan.igp);
    modes.insert(plan.anycast_mode);
    event_counts.insert(plan.events.size());
  }
  EXPECT_GT(igps.size(), 1u);
  EXPECT_GT(modes.size(), 1u);
  EXPECT_GT(event_counts.size(), 2u);
}

TEST(Fuzzer, InvalidPlanIsRejectedNotRun) {
  ScenarioPlan plan = generate_plan(1);
  plan.events.push_back(
      {sim::TimePoint::origin(), core::FailureKind::kNodeDown, 100000});
  const RunReport report = run_plan(plan);
  EXPECT_FALSE(report.invalid.empty());
  EXPECT_EQ(report.episodes, 0u);
}

}  // namespace
}  // namespace evo::check
