// Corpus regression tests: every committed replay in corpus/ must load,
// run clean, and produce the same digest on a second run. The corpus is
// the fuzzer's long-term memory — scenarios that once found bugs (or
// cover a distinctive configuration) stay pinned here forever.
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/replay.h"

#ifndef EVO_CORPUS_DIR
#error "build must define EVO_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace evo::check {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(EVO_CORPUS_DIR)) {
    if (entry.path().extension() == ".replay") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, HasReplays) { EXPECT_FALSE(corpus_files().empty()); }

TEST(Corpus, EveryReplayRunsCleanAndDeterministically) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const ParsedReplay parsed = load_replay_file(path.string());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.plan.breakage, Breakage::kNone)
        << "committed corpus must be healthy scenarios";

    const RunReport report = run_plan(parsed.plan);
    EXPECT_TRUE(report.invalid.empty()) << report.invalid;
    for (const auto& violation : report.violations) {
      ADD_FAILURE() << violation.describe();
    }
    EXPECT_EQ(report.digest, run_plan(parsed.plan).digest)
        << "corpus replay is not deterministic";
  }
}

}  // namespace
}  // namespace evo::check
