// The shrinker: injected faults are found within a bounded seed window and
// minimize to small reproducers that still trip the SAME oracle; replay
// files round-trip plans exactly.
#include "check/shrink.h"

#include <gtest/gtest.h>

#include "check/replay.h"

namespace evo::check {
namespace {

/// Scan seeds until `breakage` produces a violation (bounded; these are
/// the same windows the CLI self-test uses, so exhaustion is a regression
/// in the breakage itself, not flakiness).
std::pair<ScenarioPlan, RunReport> first_violation(Breakage breakage,
                                                   std::uint64_t budget) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ScenarioPlan plan = generate_plan(seed);
    plan.breakage = breakage;
    plan.convergence_budget = budget;
    RunReport report = run_plan(plan);
    if (!report.invalid.empty()) continue;
    if (!report.violations.empty()) return {std::move(plan), std::move(report)};
  }
  ADD_FAILURE() << "breakage " << to_string(breakage)
                << " produced no violation in 40 seeds";
  return {};
}

void expect_shrunk(Breakage breakage, std::uint64_t budget,
                   std::size_t max_events) {
  const auto [plan, report] = first_violation(breakage, budget);
  ASSERT_FALSE(report.violations.empty());
  const OracleKind kind = report.violations.front().oracle;

  const ShrinkResult result = shrink(plan, report);
  ASSERT_FALSE(result.report.violations.empty());
  EXPECT_EQ(result.report.violations.front().oracle, kind)
      << "shrink traded " << to_string(kind) << " for "
      << to_string(result.report.violations.front().oracle);
  EXPECT_LE(result.plan.events.size(), plan.events.size());
  EXPECT_LE(result.plan.events.size(), max_events)
      << "reproducer for " << to_string(breakage) << " did not get small";
  EXPECT_LE(result.plan.initial_deployment.size(),
            plan.initial_deployment.size());

  // The minimized plan is itself a deterministic reproducer.
  const RunReport replayed = run_plan(result.plan);
  ASSERT_FALSE(replayed.violations.empty());
  EXPECT_EQ(replayed.violations.front().oracle, kind);
  EXPECT_EQ(replayed.digest, result.report.digest);
}

TEST(Shrink, SilentLinkDownShrinksSmall) {
  expect_shrunk(Breakage::kSilentLinkDown, 250'000, 10);
}

TEST(Shrink, DropRouteShrinksSmall) {
  expect_shrunk(Breakage::kDropRoute, 250'000, 10);
}

TEST(Shrink, SplitHorizonShrinksSmall) {
  expect_shrunk(Breakage::kSplitHorizon, 20'000, 10);
}

TEST(Replay, RoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ScenarioPlan plan = generate_plan(seed);
    plan.breakage = static_cast<Breakage>(seed % 4);
    const std::string text = format_replay(plan);
    const ParsedReplay parsed = parse_replay(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(format_replay(parsed.plan), text) << "seed " << seed;
  }
}

TEST(Replay, RejectsCorruptedInput) {
  const std::string text = format_replay(generate_plan(1));
  EXPECT_FALSE(parse_replay(text + "unknown-key 42\n").ok());
  EXPECT_FALSE(parse_replay("").ok());
  EXPECT_FALSE(parse_replay("seed zzz\n").ok());
}

}  // namespace
}  // namespace evo::check
