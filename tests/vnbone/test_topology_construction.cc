// vN-Bone construction (§3.3.1): k-closest intra-domain neighbors,
// partition detection/repair, peering tunnels, anycast bootstrap, and the
// connected-to-default invariant.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "net/topology_gen.h"

namespace evo::vnbone {
namespace {

using net::DomainId;
using net::NodeId;

TEST(VnBoneConstruction, EmptyBeforeDeployment) {
  core::EvolvableInternet net(net::single_domain_line(4));
  net.start();
  EXPECT_TRUE(net.vnbone().virtual_links().empty());
  EXPECT_FALSE(net.vnbone().anycast_group().valid());
  EXPECT_TRUE(net.vnbone().deployed_domains().empty());
}

TEST(VnBoneConstruction, FirstDeployerBecomesDefault) {
  auto fig = core::make_figure1();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.y);
  net.converge();
  EXPECT_EQ(net.vnbone().default_domain(), fig.y);
  EXPECT_TRUE(net.vnbone().anycast_group().valid());
  // Option 2 default: the anycast address comes from Y's block.
  EXPECT_TRUE(net.topology().domain(fig.y).prefix.contains(
      net.vnbone().anycast_address()));
}

TEST(VnBoneConstruction, KClosestNeighborsWithinDomain) {
  core::Options options;
  options.vnbone.k_neighbors = 1;
  core::EvolvableInternet net(net::single_domain_line(5), options);
  net.start();
  for (const NodeId r : net.topology().domain(DomainId{0}).routers) {
    net.deploy_router(r);
  }
  net.converge();
  // With k=1 on a line, each router links to its nearest neighbor; repair
  // then stitches any leftover partitions. The result must be connected.
  const auto comps = net::connected_components(net.vnbone().virtual_graph());
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  for (const NodeId r : routers) {
    EXPECT_EQ(comps.label[r.value()], comps.label[routers[0].value()]);
  }
}

TEST(VnBoneConstruction, PartitionRepairCounted) {
  // A long line with k=1 and members only at the two ends: the two
  // singleton "components" must be repaired together.
  core::Options options;
  options.vnbone.k_neighbors = 1;
  core::EvolvableInternet net(net::single_domain_line(6), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[1]);
  net.deploy_router(routers[4]);
  net.deploy_router(routers[5]);
  net.converge();
  // k=1 links (0,1) and (4,5); repair must bridge the 1-4 gap.
  EXPECT_GE(net.vnbone().partition_repairs(), 1u);
  const auto comps = net::connected_components(net.vnbone().virtual_graph());
  EXPECT_EQ(comps.label[routers[0].value()], comps.label[routers[5].value()]);
}

TEST(VnBoneConstruction, VirtualLinkCostsMatchIgpDistance) {
  core::EvolvableInternet net(net::single_domain_line(4, /*cost=*/3));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[2]);
  net.converge();
  ASSERT_EQ(net.vnbone().virtual_links().size(), 1u);
  EXPECT_EQ(net.vnbone().virtual_links()[0].underlay_cost, 6u);  // 2 hops * 3
}

TEST(VnBoneConstruction, PeeringTunnelBetweenAdjacentDeployedDomains) {
  auto fig = core::make_figure2();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.d);
  net.deploy_domain(fig.q);
  net.converge();
  // D and Q are not adjacent; they connect via bootstrap (no peering).
  std::size_t peering = 0;
  std::size_t bootstrap = 0;
  for (const auto& l : net.vnbone().virtual_links()) {
    if (l.source == VirtualLink::Source::kPeeringTunnel) ++peering;
    if (l.source == VirtualLink::Source::kAnycastBootstrap) ++bootstrap;
  }
  EXPECT_EQ(peering, 0u);
  EXPECT_GE(bootstrap, 1u);
  // Deploy P (adjacent to both): now policy tunnels appear.
  net.deploy_domain(fig.p);
  net.converge();
  peering = 0;
  for (const auto& l : net.vnbone().virtual_links()) {
    if (l.source == VirtualLink::Source::kPeeringTunnel) ++peering;
  }
  EXPECT_GE(peering, 2u);  // P-D and P-Q
}

TEST(VnBoneConstruction, ConnectedToDefaultInvariant) {
  // Whatever the deployment pattern, every deployed router must reach the
  // default provider's component (the §3.3.1 partition rule).
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 3,
                                          .seed = 17});
  core::EvolvableInternet net(std::move(topo));
  net.start();
  // Deploy a scattered subset: one router in every third domain.
  const auto& domains = net.topology().domains();
  for (std::size_t i = 0; i < domains.size(); i += 3) {
    net.deploy_router(domains[i].routers.front());
  }
  net.converge();
  const auto deployed = net.vnbone().deployed_routers();
  ASSERT_GE(deployed.size(), 2u);
  const auto comps = net::connected_components(net.vnbone().virtual_graph());
  for (const NodeId r : deployed) {
    EXPECT_EQ(comps.label[r.value()], comps.label[deployed.front().value()])
        << "router " << r.value() << " stranded from the vN-Bone";
  }
}

TEST(VnBoneConstruction, UndeployShrinksBone) {
  core::EvolvableInternet net(net::single_domain_line(4));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  for (const NodeId r : routers) net.deploy_router(r);
  net.converge();
  const auto links_before = net.vnbone().virtual_links().size();
  net.undeploy_router(routers[3]);
  net.converge();
  EXPECT_LT(net.vnbone().virtual_links().size(), links_before);
  EXPECT_FALSE(net.vnbone().deployed(routers[3]));
}

TEST(VnBoneConstruction, DeployIsIdempotent) {
  core::EvolvableInternet net(net::single_domain_line(3));
  net.start();
  const auto r = net.topology().domain(DomainId{0}).routers[0];
  net.deploy_router(r);
  net.deploy_router(r);
  net.converge();
  EXPECT_EQ(net.vnbone().deployed_routers().size(), 1u);
}

TEST(VnBoneConstruction, DeployedDomainsSorted) {
  auto fig = core::make_figure1();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.z);
  net.deploy_domain(fig.x);
  net.converge();
  const auto domains = net.vnbone().deployed_domains();
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(domains[0], fig.x);
  EXPECT_EQ(domains[1], fig.z);
  EXPECT_TRUE(net.vnbone().domain_deployed(fig.x));
  EXPECT_FALSE(net.vnbone().domain_deployed(fig.y));
}

TEST(VnBoneConstruction, RebuildIsDeterministic) {
  auto topo = net::generate_transit_stub({.transit_domains = 2,
                                          .stubs_per_transit = 2,
                                          .seed = 5});
  core::EvolvableInternet net(std::move(topo));
  net.start();
  for (const auto& d : net.topology().domains()) {
    net.deploy_router(net.topology().domain(d.id).routers.front());
  }
  net.converge();
  const auto first = net.vnbone().virtual_links();
  net.vnbone().rebuild();
  const auto second = net.vnbone().virtual_links();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].a, second[i].a);
    EXPECT_EQ(first[i].b, second[i].b);
    EXPECT_EQ(first[i].underlay_cost, second[i].underlay_cost);
  }
}

}  // namespace
}  // namespace evo::vnbone
