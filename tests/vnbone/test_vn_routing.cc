// Routing over the vN-Bone (§3.3.2): native destinations, self-addressed
// destinations under the three egress-selection modes, and BGPv(N-1)
// knowledge import.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "net/topology_gen.h"

namespace evo::vnbone {
namespace {

using net::DomainId;
using net::IpvNAddr;
using net::NodeId;

TEST(VnRouting, NativeDestinationRoutedToAccessRouter) {
  auto fig = core::make_figure3();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.m);
  net.deploy_domain(fig.o);
  net.converge();
  const auto& topo = net.topology();
  // Destination: native address homed at O's router Y.
  const auto dst = IpvNAddr::native(8, fig.o.value(), fig.y.value(), 0);
  const NodeId ingress = topo.domain(fig.m).routers[0];
  const auto route = net.vnbone().route(ingress, dst);
  ASSERT_TRUE(route.ok);
  EXPECT_EQ(route.egress, fig.y);
  EXPECT_FALSE(route.exits_to_legacy);
  EXPECT_GE(route.vn_hop_count(), 1u);
}

TEST(VnRouting, NativeDestinationPartialDomainUsesNearestMember) {
  // Home domain deployed only partially: the egress is the deployed router
  // closest to the (legacy) access router, and the tail is legacy.
  core::Options options;
  core::EvolvableInternet net(net::single_domain_line(5), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[2]);
  net.converge();
  // Destination homed at router 4 (not deployed); nearest member is 2.
  const auto dst = IpvNAddr::native(8, 0, routers[4].value(), 0);
  const auto route = net.vnbone().route(routers[0], dst);
  ASSERT_TRUE(route.ok);
  EXPECT_EQ(route.egress, routers[2]);
  EXPECT_TRUE(route.exits_to_legacy);
}

TEST(VnRouting, SelfAddressExitAtIngress) {
  auto fig = core::make_figure3();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.m);
  net.deploy_domain(fig.o);
  net.converge();
  const auto& topo = net.topology();
  const auto dst = IpvNAddr::self(8, topo.host(fig.c).address);
  const NodeId ingress = topo.domain(fig.m).routers[0];
  const auto route = net.vnbone().route(ingress, dst, EgressMode::kExitAtIngress);
  ASSERT_TRUE(route.ok);
  EXPECT_EQ(route.egress, ingress);
  EXPECT_EQ(route.vn_hop_count(), 0u);
  EXPECT_TRUE(route.exits_to_legacy);
}

TEST(VnRouting, Figure3OwnPathKnowledgeExitsCloserToDestination) {
  auto fig = core::make_figure3();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.m);
  net.deploy_domain(fig.o);
  net.converge();
  const auto& topo = net.topology();
  const auto dst = IpvNAddr::self(8, topo.host(fig.c).address);
  const NodeId ingress = topo.host(fig.a).access_router;  // in M

  // With BGPv(N-1) import, the egress must be in O (the deployed domain
  // furthest along M's path to C's domain) — the figure's "last IPvN hop
  // is Y".
  const auto informed =
      net.vnbone().route(ingress, dst, EgressMode::kOwnPathKnowledge);
  ASSERT_TRUE(informed.ok);
  EXPECT_EQ(topo.router(informed.egress).domain, fig.o);
  EXPECT_GE(informed.vn_hop_count(), 1u);
}

TEST(VnRouting, ProxyAdvertisingFindsOffPathEgress) {
  auto fig = core::make_figure4();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.deploy_domain(fig.b);
  net.deploy_domain(fig.c);
  net.converge();
  const auto& topo = net.topology();
  const auto dst = IpvNAddr::self(8, topo.host(fig.dst).address);
  const NodeId ingress = topo.host(fig.src).access_router;  // in A

  // A's own BGPv(N-1) path to Z runs through legacy M and N only, so
  // own-path knowledge finds no deployed domain and exits at the ingress.
  const auto own = net.vnbone().route(ingress, dst, EgressMode::kOwnPathKnowledge);
  ASSERT_TRUE(own.ok);
  EXPECT_EQ(own.egress, ingress);

  // With advertising-by-proxy, C's short distance to Z is visible in
  // BGPvN: the route rides the bone to C.
  const auto proxy = net.vnbone().route(ingress, dst, EgressMode::kProxyAdvertising);
  ASSERT_TRUE(proxy.ok);
  EXPECT_EQ(topo.router(proxy.egress).domain, fig.c);
}

TEST(VnRouting, LegacyPathLengthMatchesBgp) {
  auto fig = core::make_figure4();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.converge();
  // A's AS-path to Z: [M, N, Z] => 3; C's would be 1 (direct customer).
  EXPECT_EQ(net.vnbone().legacy_path_length(fig.a, fig.z), 3u);
  EXPECT_EQ(net.vnbone().legacy_path_length(fig.c, fig.z), 1u);
  EXPECT_EQ(net.vnbone().legacy_path_length(fig.z, fig.z), 0u);
  const auto path = net.vnbone().legacy_path(fig.a, fig.z);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.back(), fig.z);
}

TEST(VnRouting, UnreachableWithoutIngressDeployment) {
  core::EvolvableInternet net(net::single_domain_line(3));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.converge();
  // Routing from a non-deployed router fails.
  const auto dst = IpvNAddr::self(8, net::Ipv4Addr{0, 1, 0, 2});
  const auto route = net.vnbone().route(routers[2], dst);
  EXPECT_FALSE(route.ok);
}

TEST(VnRouting, BogusNativeDestinationRejected) {
  core::EvolvableInternet net(net::single_domain_line(3));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.converge();
  const auto dst = IpvNAddr::native(8, /*domain=*/77, /*node=*/9999, 0);
  const auto route = net.vnbone().route(routers[0], dst);
  EXPECT_FALSE(route.ok);
}

TEST(VnRouting, VnRibSizeGrowsWithProxyEntries) {
  auto fig = core::make_figure4();
  core::Options options;
  options.vnbone.egress_mode = EgressMode::kProxyAdvertising;
  core::EvolvableInternet net(std::move(fig.topology), options);
  net.start();
  net.deploy_domain(fig.a);
  net.converge();
  const NodeId a0 = net.topology().domain(fig.a).routers[0];
  const auto with_one_domain = net.vnbone().vn_rib_size(a0);
  net.deploy_domain(fig.c);
  net.converge();
  const auto with_two_domains = net.vnbone().vn_rib_size(a0);
  EXPECT_GT(with_two_domains, with_one_domain);
  EXPECT_EQ(net.vnbone().vn_rib_size(NodeId{9999u}), 0u);
}

TEST(VnRouting, ModeNamesRender) {
  EXPECT_STREQ(to_string(EgressMode::kExitAtIngress), "exit-at-ingress");
  EXPECT_STREQ(to_string(EgressMode::kOwnPathKnowledge), "own-path-knowledge");
  EXPECT_STREQ(to_string(EgressMode::kProxyAdvertising), "proxy-advertising");
  EXPECT_STREQ(to_string(VirtualLink::Source::kIntraK), "intra-k");
  EXPECT_STREQ(to_string(VirtualLink::Source::kAnycastBootstrap),
               "anycast-bootstrap");
}

}  // namespace
}  // namespace evo::vnbone
