// Footnotes 2-3: vN-Bone construction when the IGP cannot enumerate
// members (plain distance-vector) — anycast-bootstrap trees instead of
// k-closest neighbor selection.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

namespace evo::vnbone {
namespace {

using net::DomainId;
using net::NodeId;

std::size_t count_source(const VnBone& bone, VirtualLink::Source source,
                         bool interdomain) {
  std::size_t n = 0;
  for (const auto& l : bone.virtual_links()) {
    if (l.source == source && l.interdomain == interdomain) ++n;
  }
  return n;
}

TEST(DiscoveryLimits, PlainDvBuildsBootstrapTree) {
  core::Options options;
  options.igp = core::IgpKind::kDistanceVector;  // no member discovery
  options.vnbone.congruent_evolution = false;    // isolate the tree rule
  core::EvolvableInternet net(net::single_domain_ring(6), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  for (const NodeId r : {routers[0], routers[2], routers[4]}) {
    net.deploy_router(r);
  }
  net.converge();
  // Tree: exactly members-1 intra links, all from the anycast bootstrap.
  EXPECT_EQ(net.vnbone().virtual_links().size(), 2u);
  EXPECT_EQ(count_source(net.vnbone(), VirtualLink::Source::kAnycastBootstrap,
                         /*interdomain=*/false),
            2u);
  EXPECT_EQ(count_source(net.vnbone(), VirtualLink::Source::kIntraK, false), 0u);
  // Connected regardless.
  const auto comps = net::connected_components(net.vnbone().virtual_graph());
  EXPECT_EQ(comps.label[routers[0].value()], comps.label[routers[4].value()]);
}

TEST(DiscoveryLimits, TaggedDvUsesKClosest) {
  core::Options options;
  options.igp = core::IgpKind::kDistanceVectorTagged;  // discovery restored
  options.vnbone.congruent_evolution = false;
  core::EvolvableInternet net(net::single_domain_ring(6), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  for (const NodeId r : {routers[0], routers[2], routers[4]}) {
    net.deploy_router(r);
  }
  net.converge();
  EXPECT_GT(count_source(net.vnbone(), VirtualLink::Source::kIntraK, false), 0u);
  EXPECT_EQ(count_source(net.vnbone(), VirtualLink::Source::kAnycastBootstrap,
                         false),
            0u);
}

TEST(DiscoveryLimits, OverrideGrantsDiscovery) {
  core::Options options;
  options.igp = core::IgpKind::kDistanceVector;
  options.vnbone.respect_discovery_limits = false;  // simplification mode
  options.vnbone.congruent_evolution = false;
  core::EvolvableInternet net(net::single_domain_ring(6), options);
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  for (const NodeId r : {routers[0], routers[2], routers[4]}) {
    net.deploy_router(r);
  }
  net.converge();
  EXPECT_GT(count_source(net.vnbone(), VirtualLink::Source::kIntraK, false), 0u);
}

TEST(DiscoveryLimits, UniversalAccessUnaffected) {
  // The degraded tree still carries full end-to-end service.
  auto topo = net::generate_transit_stub({.transit_domains = 2,
                                          .stubs_per_transit = 2,
                                          .seed = 333});
  sim::Rng rng{333};
  net::attach_hosts(topo, 2, rng);
  core::Options options;
  options.igp = core::IgpKind::kDistanceVector;
  core::EvolvableInternet net(std::move(topo), options);
  net.start();
  net.deploy_domain(DomainId{0});
  net.converge();
  const auto report = core::verify_universal_access(net);
  EXPECT_TRUE(report.universal()) << report.failures.size() << " failures";
}

}  // namespace
}  // namespace evo::vnbone
