// BGPvN, the event-driven vN inter-domain protocol: convergence,
// reachability, proxy routes, and agreement with the converged-state
// oracle (VnBone::route / vn_rib_size).
#include "vnbone/bgpvn.h"

#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "net/topology_gen.h"

namespace evo::vnbone {
namespace {

using net::DomainId;
using net::NodeId;

struct Fixture {
  explicit Fixture(std::uint64_t seed = 201) {
    auto topo = net::generate_transit_stub({.transit_domains = 3,
                                            .stubs_per_transit = 2,
                                            .seed = seed});
    internet = std::make_unique<core::EvolvableInternet>(std::move(topo));
    internet->start();
  }

  void deploy_transits() {
    for (const auto& d : internet->topology().domains()) {
      if (!d.stub) internet->deploy_domain(d.id);
    }
    internet->converge();
  }

  std::unique_ptr<core::EvolvableInternet> internet;
};

TEST(BgpVn, NativeReachabilityAmongDeployedDomains) {
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  const auto domains = f.internet->vnbone().deployed_domains();
  for (const DomainId a : domains) {
    for (const DomainId b : domains) {
      const auto* route = bgpvn.best_native(a, b);
      ASSERT_NE(route, nullptr) << a.value() << " -> " << b.value();
      EXPECT_EQ(route->target, b);
      EXPECT_TRUE(route->native);
      EXPECT_EQ(route->vn_path.back(), b);
      // Paths exclude the local domain (standard path-vector semantics):
      // a direct neighbor's route is just {b}.
      if (a != b) {
        EXPECT_FALSE(std::find(route->vn_path.begin(), route->vn_path.end(), a) !=
                     route->vn_path.end());
      }
    }
  }
  EXPECT_GT(bgpvn.messages_sent(), 0u);
}

TEST(BgpVn, PathsTraverseOnlyDeployedDomains) {
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  const auto domains = f.internet->vnbone().deployed_domains();
  for (const DomainId a : domains) {
    for (const DomainId b : domains) {
      const auto* route = bgpvn.best_native(a, b);
      ASSERT_NE(route, nullptr);
      for (const DomainId hop : route->vn_path) {
        EXPECT_TRUE(f.internet->vnbone().domain_deployed(hop));
      }
      // No loops.
      auto path = route->vn_path;
      std::sort(path.begin(), path.end());
      EXPECT_EQ(std::adjacent_find(path.begin(), path.end()), path.end());
    }
  }
}

TEST(BgpVn, ProxyRoutesCoverReachableLegacyDomains) {
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  const auto deployed = f.internet->vnbone().deployed_domains();
  for (const auto& legacy : f.internet->topology().domains()) {
    if (f.internet->vnbone().domain_deployed(legacy.id)) continue;
    for (const DomainId at : deployed) {
      const auto* route = bgpvn.best_proxy(at, legacy.id);
      ASSERT_NE(route, nullptr)
          << "no proxy route at " << at.value() << " for " << legacy.name;
      EXPECT_FALSE(route->native);
      EXPECT_GT(route->legacy_distance, 0u);
    }
  }
}

TEST(BgpVn, ProxySelectionMatchesOracle) {
  // The protocol's chosen proxy origin must advertise the same minimal
  // legacy distance the converged-state oracle computes.
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  const auto deployed = f.internet->vnbone().deployed_domains();
  for (const auto& legacy : f.internet->topology().domains()) {
    if (f.internet->vnbone().domain_deployed(legacy.id)) continue;
    net::Cost oracle_best = net::kInfiniteCost;
    for (const DomainId d : deployed) {
      oracle_best =
          std::min(oracle_best, f.internet->vnbone().legacy_path_length(d, legacy.id));
    }
    for (const DomainId at : deployed) {
      const auto* route = bgpvn.best_proxy(at, legacy.id);
      ASSERT_NE(route, nullptr);
      EXPECT_EQ(route->legacy_distance, oracle_best) << legacy.name;
    }
  }
}

TEST(BgpVn, RibSizeMatchesAnalyticModel) {
  // vn_rib_size() models: #deployed domains + proxy entries. The real
  // protocol's best-route RIB per domain must be exactly #deployed +
  // #reachable-legacy — the analytic count divided across... verified
  // directly per domain here.
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  const auto deployed = f.internet->vnbone().deployed_domains();
  std::size_t legacy_count = 0;
  for (const auto& d : f.internet->topology().domains()) {
    if (!f.internet->vnbone().domain_deployed(d.id)) ++legacy_count;
  }
  for (const DomainId at : deployed) {
    EXPECT_EQ(bgpvn.rib_size(at), deployed.size() + legacy_count);
  }
}

TEST(BgpVn, ConvergenceTimeIsFiniteAndMeasured) {
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  EXPECT_GT(bgpvn.convergence_time(), sim::Duration::zero());
  EXPECT_LT(bgpvn.convergence_time(), sim::Duration::seconds(10));
}

TEST(BgpVn, RestartAfterDeploymentChange) {
  Fixture f;
  f.deploy_transits();
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone());
  bgpvn.restart();
  f.internet->simulator().run();
  const auto before = f.internet->vnbone().deployed_domains().size();
  // A stub joins.
  for (const auto& d : f.internet->topology().domains()) {
    if (d.stub) {
      f.internet->deploy_domain(d.id);
      break;
    }
  }
  f.internet->converge();
  bgpvn.restart();
  f.internet->simulator().run();
  const auto domains = f.internet->vnbone().deployed_domains();
  EXPECT_EQ(domains.size(), before + 1);
  for (const DomainId a : domains) {
    for (const DomainId b : domains) {
      EXPECT_NE(bgpvn.best_native(a, b), nullptr);
    }
  }
}

TEST(BgpVn, NoProxyWhenDisabled) {
  Fixture f;
  f.deploy_transits();
  BgpVnConfig config;
  config.proxy_advertising = false;
  BgpVn bgpvn(f.internet->simulator(), f.internet->network(), f.internet->vnbone(),
              config);
  bgpvn.restart();
  f.internet->simulator().run();
  const auto deployed = f.internet->vnbone().deployed_domains();
  for (const auto& legacy : f.internet->topology().domains()) {
    if (!f.internet->vnbone().domain_deployed(legacy.id)) {
      EXPECT_EQ(bgpvn.best_proxy(deployed.front(), legacy.id), nullptr);
    }
  }
  EXPECT_EQ(bgpvn.rib_size(deployed.front()), deployed.size());
}

TEST(BgpVn, Figure4ProxyOriginIsC) {
  auto fig = core::make_figure4();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.deploy_domain(fig.b);
  net.deploy_domain(fig.c);
  net.converge();
  BgpVn bgpvn(net.simulator(), net.network(), net.vnbone());
  bgpvn.restart();
  net.simulator().run();
  // A's proxy route for Z must have C's short distance (1), learned over
  // the bone via B.
  const auto* route = bgpvn.best_proxy(fig.a, fig.z);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->legacy_distance, 1u);
  EXPECT_EQ(route->vn_path.back(), fig.c);
}

}  // namespace
}  // namespace evo::vnbone
