// §3.3.2's endhost route advertisement alternative: best-case egress,
// per-host state, and fate-sharing fragility.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "core/trace.h"

namespace evo::vnbone {
namespace {

using net::DomainId;
using net::HostId;
using net::NodeId;

struct Fixture {
  Fixture() : fig(core::make_figure3()) {
    internet = std::make_unique<core::EvolvableInternet>(std::move(fig.topology));
    internet->start();
    internet->deploy_domain(fig.m);
    internet->deploy_domain(fig.o);
    internet->converge();
  }

  core::Figure3 fig;
  std::unique_ptr<core::EvolvableInternet> internet;
};

TEST(EndhostRoutes, RegistrationFindsNearbyRouter) {
  Fixture f;
  const NodeId advertiser = core::register_endhost_route(*f.internet, f.fig.c);
  ASSERT_TRUE(advertiser.valid());
  // C's domain is legacy and hangs off O: the anycast-nearest IPvN router
  // is in O.
  EXPECT_EQ(f.internet->topology().router(advertiser).domain, f.fig.o);
  EXPECT_EQ(f.internet->vnbone().endhost_route_count(), 1u);
}

TEST(EndhostRoutes, NativeHostsNeedNoRegistration) {
  Fixture f;
  // A is in deployed M: native address, nothing to register.
  EXPECT_FALSE(core::register_endhost_route(*f.internet, f.fig.a).valid());
  EXPECT_EQ(f.internet->vnbone().endhost_route_count(), 0u);
}

TEST(EndhostRoutes, GivesBestEgress) {
  Fixture f;
  core::register_endhost_route(*f.internet, f.fig.c);
  const auto trace =
      core::send_ipvn(*f.internet, f.fig.a, f.fig.c, EgressMode::kEndhostAdvertised);
  ASSERT_TRUE(trace.delivered) << trace.describe();
  // The egress is the router C registered with — at least as close to C
  // as any egress the other modes could find.
  const auto informed =
      core::send_ipvn(*f.internet, f.fig.a, f.fig.c, EgressMode::kOwnPathKnowledge);
  ASSERT_TRUE(informed.delivered);
  EXPECT_LE(trace.legacy_tail_cost(), informed.legacy_tail_cost());
}

TEST(EndhostRoutes, UnregisteredDestinationUnroutable) {
  Fixture f;
  const auto trace =
      core::send_ipvn(*f.internet, f.fig.a, f.fig.c, EgressMode::kEndhostAdvertised);
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.failure, core::EndToEndTrace::Failure::kVnRoutingFailed);
}

TEST(EndhostRoutes, FateSharingWithAdvertiser) {
  // "this introduces a form of fate-sharing between an endhost and its
  // route advertisement."
  Fixture f;
  const NodeId advertiser = core::register_endhost_route(*f.internet, f.fig.c);
  ASSERT_TRUE(advertiser.valid());
  ASSERT_TRUE(core::send_ipvn(*f.internet, f.fig.a, f.fig.c,
                              EgressMode::kEndhostAdvertised)
                  .delivered);
  // The advertising router undeploys: the stale registration is dead even
  // though other IPvN routers could serve.
  f.internet->undeploy_router(advertiser);
  f.internet->converge();
  const auto stale = core::send_ipvn(*f.internet, f.fig.a, f.fig.c,
                                     EgressMode::kEndhostAdvertised);
  EXPECT_FALSE(stale.delivered);
  // Other modes are unaffected (the design the paper adopts instead).
  EXPECT_TRUE(core::send_ipvn(*f.internet, f.fig.a, f.fig.c,
                              EgressMode::kOwnPathKnowledge)
                  .delivered);
  // Periodic re-registration recovers ("an endhost would periodically
  // repeat this process").
  const NodeId again = core::register_endhost_route(*f.internet, f.fig.c);
  ASSERT_TRUE(again.valid());
  EXPECT_NE(again, advertiser);
  EXPECT_TRUE(core::send_ipvn(*f.internet, f.fig.a, f.fig.c,
                              EgressMode::kEndhostAdvertised)
                  .delivered);
}

TEST(EndhostRoutes, PerHostStateGrows) {
  // The scheme's cost: one BGPvN entry per self-addressed host — exactly
  // the state explosion the paper worries about ("it isn't clear how this
  // would constrain the design space for routing and addressing").
  net::Topology topo;
  const auto deployer = topo.add_domain("deployer");
  const auto stub = topo.add_domain("stub", /*stub=*/true);
  const auto r0 = topo.add_router(deployer);
  const auto r1 = topo.add_router(stub);
  topo.add_interdomain_link(r0, r1, net::Relationship::kCustomer);
  std::vector<HostId> hosts;
  for (int i = 0; i < 10; ++i) hosts.push_back(topo.add_host(r1));
  core::EvolvableInternet net(std::move(topo));
  net.start();
  net.deploy_domain(deployer);
  net.converge();
  for (const HostId h : hosts) {
    EXPECT_TRUE(core::register_endhost_route(net, h).valid());
  }
  EXPECT_EQ(net.vnbone().endhost_route_count(), 10u);
  net.vnbone().unregister_endhost_route(net.hosts().ipvn_address(hosts[0]));
  EXPECT_EQ(net.vnbone().endhost_route_count(), 9u);
}

}  // namespace
}  // namespace evo::vnbone
