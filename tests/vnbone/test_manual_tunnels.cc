// MBone-style manual tunnel configuration (§3.3: "many ISPs might, as in
// the past, simply choose to configure their networks by hand").
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo::vnbone {
namespace {

using net::DomainId;
using net::NodeId;

TEST(ManualTunnels, PersistAcrossRebuilds) {
  core::EvolvableInternet net(net::single_domain_line(6));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[5]);
  net.vnbone().add_manual_tunnel(routers[0], routers[5]);
  net.converge();
  EXPECT_EQ(net.vnbone().manual_tunnel_count(), 1u);
  auto manual_links = [&] {
    std::size_t count = 0;
    for (const auto& l : net.vnbone().virtual_links()) {
      if (l.source == VirtualLink::Source::kManual) ++count;
    }
    return count;
  };
  EXPECT_EQ(manual_links(), 1u);
  net.vnbone().rebuild();
  EXPECT_EQ(manual_links(), 1u);
}

TEST(ManualTunnels, DormantUntilBothEndsDeploy) {
  core::EvolvableInternet net(net::single_domain_line(4));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.vnbone().add_manual_tunnel(routers[0], routers[3]);
  net.deploy_router(routers[0]);
  net.converge();
  // Only one end deployed: no manual link materializes.
  for (const auto& l : net.vnbone().virtual_links()) {
    EXPECT_NE(l.source, VirtualLink::Source::kManual);
  }
  net.deploy_router(routers[3]);
  net.converge();
  bool found = false;
  for (const auto& l : net.vnbone().virtual_links()) {
    found = found || l.source == VirtualLink::Source::kManual;
  }
  EXPECT_TRUE(found);
}

TEST(ManualTunnels, CostFollowsPhysicalTopology) {
  core::EvolvableInternet net(net::single_domain_ring(6));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[2]);
  net.vnbone().add_manual_tunnel(routers[0], routers[2]);
  net.converge();
  const auto find_manual = [&]() -> const VirtualLink* {
    for (const auto& l : net.vnbone().virtual_links()) {
      if (l.source == VirtualLink::Source::kManual) return &l;
    }
    return nullptr;
  };
  // Dedup: the k-closest rule already links 0-2, so the manual tunnel is
  // absorbed; force distinct endpoints instead.
  net.deploy_router(routers[4]);
  net.vnbone().add_manual_tunnel(routers[0], routers[4]);
  net.converge();
  const auto* manual = find_manual();
  if (manual != nullptr) {
    EXPECT_EQ(manual->underlay_cost, 2u);
  }
  // Cut the short side: cost re-follows physics at the next rebuild.
  net.set_link_up(net::LinkId{0}, false);
  net.converge();
  // All tunnels (manual or not) now price the long way around.
  for (const auto& l : net.vnbone().virtual_links()) {
    EXPECT_GT(l.underlay_cost, 0u);
  }
}

TEST(ManualTunnels, RemovalTakesEffectOnRebuild) {
  core::EvolvableInternet net(net::single_domain_line(6));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[5]);
  net.vnbone().add_manual_tunnel(routers[0], routers[5]);
  net.converge();
  net.vnbone().remove_manual_tunnel(routers[0], routers[5]);
  EXPECT_EQ(net.vnbone().manual_tunnel_count(), 0u);
  net.vnbone().rebuild();
  for (const auto& l : net.vnbone().virtual_links()) {
    EXPECT_NE(l.source, VirtualLink::Source::kManual);
  }
}

TEST(ManualTunnels, OrderInsensitiveEndpoints) {
  core::EvolvableInternet net(net::single_domain_line(4));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.vnbone().add_manual_tunnel(routers[3], routers[0]);  // reversed
  net.vnbone().add_manual_tunnel(routers[0], routers[3]);  // same tunnel
  EXPECT_EQ(net.vnbone().manual_tunnel_count(), 1u);
  net.vnbone().remove_manual_tunnel(routers[3], routers[0]);
  EXPECT_EQ(net.vnbone().manual_tunnel_count(), 0u);
}

TEST(ManualTunnels, CanBridgeDomainsWithoutPeering) {
  // Two deployed domains with NO shared peering: normally connected via
  // anycast bootstrap; a manual tunnel does the job by explicit
  // configuration instead (the MBone way).
  auto fig_topo = net::generate_transit_stub({.transit_domains = 3,
                                              .stubs_per_transit = 1,
                                              .seed = 81});
  core::EvolvableInternet net(std::move(fig_topo));
  net.start();
  // Deploy two stubs (customers of different transits; not adjacent).
  const auto& domains = net.topology().domains();
  DomainId s1 = DomainId::invalid(), s2 = DomainId::invalid();
  for (const auto& d : domains) {
    if (!d.stub) continue;
    if (!s1.valid()) {
      s1 = d.id;
    } else {
      s2 = d.id;
      break;
    }
  }
  const NodeId r1 = net.topology().domain(s1).routers.front();
  const NodeId r2 = net.topology().domain(s2).routers.front();
  net.vnbone().deploy_router(r1);
  net.vnbone().deploy_router(r2);
  net.vnbone().add_manual_tunnel(r1, r2);
  net.converge();
  // The manual tunnel exists; the bootstrap machinery had nothing to do.
  bool manual_found = false;
  for (const auto& l : net.vnbone().virtual_links()) {
    if (l.source == VirtualLink::Source::kManual) manual_found = true;
  }
  EXPECT_TRUE(manual_found);
  EXPECT_EQ(net.vnbone().bootstrap_tunnels(), 0u);
}

}  // namespace
}  // namespace evo::vnbone
