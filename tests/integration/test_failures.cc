// Failure injection: links die, members leave, domains undeploy — the
// system must converge to a consistent state and keep what connectivity
// physics allows.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::LinkId;
using net::NodeId;

std::unique_ptr<EvolvableInternet> ring_internet() {
  // Three transit domains in a ring (redundancy for failover) with stubs.
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 1,
                                          .extra_transit_peering_probability = 1.0,
                                          .seed = 41});
  sim::Rng rng{41};
  net::attach_hosts(topo, 1, rng);
  auto net = std::make_unique<EvolvableInternet>(std::move(topo));
  net->start();
  return net;
}

TEST(Failures, AnycastSurvivesMemberLoss) {
  auto net = ring_internet();
  const auto& d0 = net->topology().domains()[0];
  net->deploy_domain(d0.id);
  net->converge();
  const auto group_id = net->vnbone().anycast_group();
  // Remove members one by one; as long as one remains, probes deliver.
  std::vector<NodeId> members(d0.routers.begin(), d0.routers.end());
  const NodeId probe_src = net->topology().domains().back().routers.front();
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    net->undeploy_router(members[i]);
    net->converge();
    const auto probe = anycast::probe(net->network(),
                                      net->anycast().group(group_id), probe_src);
    ASSERT_TRUE(probe.delivered()) << "after removing member " << i;
  }
}

TEST(Failures, IntraDomainLinkFailureReroutesTunnels) {
  core::EvolvableInternet net(net::single_domain_ring(6));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  net.deploy_router(routers[0]);
  net.deploy_router(routers[2]);
  net.converge();
  ASSERT_EQ(net.vnbone().virtual_links().size(), 1u);
  const auto cost_before = net.vnbone().virtual_links()[0].underlay_cost;
  EXPECT_EQ(cost_before, 2u);  // 0-1-2
  // Cut the 1-2 edge: the short side of the ring between the members.
  net.set_link_up(LinkId{1}, false);
  net.converge();
  ASSERT_EQ(net.vnbone().virtual_links().size(), 1u);
  // The tunnel now rides the long way round (0-5-4-3-2).
  EXPECT_EQ(net.vnbone().virtual_links()[0].underlay_cost, 4u);
  // And the underlay trace still delivers.
  const auto trace =
      net.network().trace(routers[0], net.topology().router(routers[2]).loopback);
  EXPECT_TRUE(trace.delivered());
}

TEST(Failures, InterDomainLinkFailureFailsOverBgpAndBone) {
  // Two customer transits t0, t1 under a common provider "up": when the
  // direct t0-t1 peering dies, BGP (and the vN-Bone tunnels riding it)
  // fail over through the provider. A *peer* top would not offer transit
  // (valley-freeness) — the provider relationship is what makes failover
  // policy-legal.
  net::Topology topo;
  const auto up = topo.add_domain("up");
  const auto t0 = topo.add_domain("t0");
  const auto t1 = topo.add_domain("t1");
  const auto s0 = topo.add_domain("s0", /*stub=*/true);
  const auto s1 = topo.add_domain("s1", /*stub=*/true);
  sim::Rng rng{44};
  net::IntraDomainParams internal{.routers = 2, .chord_probability = 0.0};
  for (const auto d : {up, t0, t1, s0, s1}) {
    net::populate_domain(topo, d, internal, rng);
  }
  auto first = [&](DomainId d) { return topo.domain(d).routers[0]; };
  auto second = [&](DomainId d) { return topo.domain(d).routers[1]; };
  topo.add_interdomain_link(first(up), first(t0), net::Relationship::kCustomer);
  topo.add_interdomain_link(second(up), first(t1), net::Relationship::kCustomer);
  const auto direct =
      topo.add_interdomain_link(second(t0), second(t1), net::Relationship::kPeer);
  topo.add_interdomain_link(second(t0), first(s0), net::Relationship::kCustomer);
  topo.add_interdomain_link(second(t1), first(s1), net::Relationship::kCustomer);
  topo.add_host(second(s0));
  topo.add_host(second(s1));

  core::EvolvableInternet net(std::move(topo));
  net.start();
  net.deploy_domain(t0);
  net.deploy_domain(t1);
  net.converge();
  ASSERT_TRUE(core::verify_universal_access(net).universal());

  net.set_link_up(direct, false);
  net.converge();
  const auto deployed = net.vnbone().deployed_routers();
  const auto comps = net::connected_components(net.vnbone().virtual_graph());
  for (const NodeId n : deployed) {
    EXPECT_EQ(comps.label[n.value()], comps.label[deployed.front().value()]);
  }
  const auto report = core::verify_universal_access(net);
  EXPECT_TRUE(report.universal()) << report.failures.size() << " failures";
}

TEST(Failures, FullUndeployReturnsToNoDeploymentState) {
  core::EvolvableInternet net(net::single_domain_line(4));
  net.start();
  const auto& routers = net.topology().domain(DomainId{0}).routers;
  for (const NodeId r : routers) net.deploy_router(r);
  net.converge();
  for (const NodeId r : routers) net.undeploy_router(r);
  net.converge();
  EXPECT_TRUE(net.vnbone().deployed_routers().empty());
  EXPECT_TRUE(net.vnbone().virtual_links().empty());
  // No router still claims the anycast address locally.
  const auto addr = net.vnbone().anycast_address();
  for (const NodeId r : routers) {
    EXPECT_FALSE(net.network().has_local_address(r, addr));
  }
}

TEST(Failures, StubIsolationOnlyBreaksItsOwnPairs) {
  auto net = ring_internet();
  net->deploy_domain(net->topology().domains()[0].id);
  net->converge();
  // Cut the single provider link of the last stub: its host pairs fail,
  // everyone else keeps working.
  const auto& topo = net->topology();
  const DomainId stub = topo.domains().back().id;
  ASSERT_TRUE(topo.domain(stub).stub);
  for (const auto& peering : topo.domain(stub).peerings) {
    net->set_link_up(peering.link, false);
  }
  net->converge();
  const auto report = core::verify_universal_access(*net);
  EXPECT_FALSE(report.universal());
  for (const auto& failure : report.failures) {
    const auto src_domain =
        topo.router(topo.host(failure.src).access_router).domain;
    const auto dst_domain =
        topo.router(topo.host(failure.dst).access_router).domain;
    EXPECT_TRUE(src_domain == stub || dst_domain == stub)
        << "unrelated pair broke: " << failure.src.value() << "->"
        << failure.dst.value();
  }
}

TEST(Failures, DefaultDomainMemberLossUnderOption2) {
  // Option 2 depends on the default domain capturing un-peered traffic.
  // If the default domain's members all leave but another member domain
  // peer-advertises widely enough, its neighbors keep working.
  auto fig_topo = net::generate_transit_stub({.transit_domains = 2,
                                              .stubs_per_transit = 1,
                                              .seed = 43});
  core::EvolvableInternet net(std::move(fig_topo));
  net.start();
  const auto& domains = net.topology().domains();
  net.deploy_domain(domains[0].id);  // default
  net.deploy_domain(domains[1].id);
  net.converge();
  const auto group_id = net.vnbone().anycast_group();
  // Default domain undeploys entirely.
  for (const NodeId r : net.topology().domain(domains[0].id).routers) {
    net.undeploy_router(r);
  }
  net.converge();
  // Probes from inside the remaining member domain still deliver (its own
  // IGP anycast routes capture them)...
  const auto inside = anycast::probe(net.network(), net.anycast().group(group_id),
                                     domains[1].routers.front());
  EXPECT_TRUE(inside.delivered());
  // ...while probes from a legacy stub far from domain 1 head toward the
  // (now empty) default space and die — the documented failure mode that
  // motivates keeping a member in the home domain (GIA's rule).
  const auto outside = anycast::probe(net.network(), net.anycast().group(group_id),
                                      domains[2].routers.front());
  EXPECT_FALSE(outside.delivered());
}

}  // namespace
}  // namespace evo
