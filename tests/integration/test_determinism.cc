// Whole-system determinism: identical seeds must produce bit-identical
// outcomes across independent runs — the property every experiment in
// EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "core/transport.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::HostId;

std::unique_ptr<EvolvableInternet> build(std::uint64_t seed, core::IgpKind igp) {
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 2,
                                          .seed = seed});
  sim::Rng rng{seed};
  net::attach_hosts(topo, 2, rng);
  core::Options options;
  options.igp = igp;
  auto internet = std::make_unique<EvolvableInternet>(std::move(topo), options);
  internet->start();
  internet->deploy_domain(DomainId{0});
  internet->deploy_domain(DomainId{1});
  internet->converge();
  return internet;
}

/// A digest of everything observable: trace paths, costs, vn links.
std::string digest(EvolvableInternet& net) {
  std::string out;
  for (const auto& l : net.vnbone().virtual_links()) {
    out += std::to_string(l.a.value()) + "-" + std::to_string(l.b.value()) + ":" +
           std::to_string(l.underlay_cost) + ";";
  }
  const auto& hosts = net.topology().hosts();
  for (const auto& src : hosts) {
    for (const auto& dst : hosts) {
      if (src.id == dst.id) continue;
      const auto trace = core::send_ipvn(net, src.id, dst.id);
      out += trace.delivered ? "D" : "F";
      out += std::to_string(trace.total_cost());
      for (const auto& seg : trace.segments) {
        for (const auto hop : seg.trace.hops) out += "." + std::to_string(hop.value());
      }
      out += "|";
    }
  }
  return out;
}

TEST(Determinism, IdenticalRunsLinkState) {
  auto a = build(771, core::IgpKind::kLinkState);
  auto b = build(771, core::IgpKind::kLinkState);
  EXPECT_EQ(digest(*a), digest(*b));
}

TEST(Determinism, IdenticalRunsDistanceVector) {
  auto a = build(772, core::IgpKind::kDistanceVector);
  auto b = build(772, core::IgpKind::kDistanceVector);
  EXPECT_EQ(digest(*a), digest(*b));
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto a = build(773, core::IgpKind::kLinkState);
  auto b = build(774, core::IgpKind::kLinkState);
  EXPECT_NE(digest(*a), digest(*b));
}

TEST(Determinism, EventDrivenTransportMatchesAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    auto net = build(seed, core::IgpKind::kLinkState);
    core::IpvnTransport transport(*net);
    std::vector<std::int64_t> latencies;
    for (const auto& h : net->topology().hosts()) {
      transport.listen(h.id, [&](HostId, HostId, std::uint64_t,
                                 sim::Duration latency) {
        latencies.push_back(latency.count_micros());
      });
    }
    const auto& hosts = net->topology().hosts();
    for (const auto& src : hosts) {
      for (const auto& dst : hosts) {
        if (src.id != dst.id) transport.send(src.id, dst.id);
      }
    }
    net->simulator().run();
    return latencies;
  };
  EXPECT_EQ(run(775), run(775));
}

TEST(Determinism, ConvergedStateIndependentOfBatching) {
  // Deploying two domains in one converge() batch or in two must reach
  // the same converged data plane (the protocols' fixed point does not
  // depend on event interleaving at this granularity).
  auto batched = build(776, core::IgpKind::kLinkState);

  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 2,
                                          .seed = 776});
  sim::Rng rng{776};
  net::attach_hosts(topo, 2, rng);
  auto stepped = std::make_unique<EvolvableInternet>(std::move(topo));
  stepped->start();
  stepped->deploy_domain(DomainId{0});
  stepped->converge();
  stepped->deploy_domain(DomainId{1});
  stepped->converge();

  // Compare delivered cost for every pair (paths may tie-break alike too,
  // but cost equality is the meaningful invariant).
  const auto& hosts = batched->topology().hosts();
  for (const auto& src : hosts) {
    for (const auto& dst : hosts) {
      if (src.id == dst.id) continue;
      const auto a = core::send_ipvn(*batched, src.id, dst.id);
      const auto b = core::send_ipvn(*stepped, src.id, dst.id);
      EXPECT_EQ(a.delivered, b.delivered);
      if (a.delivered && b.delivered) {
        EXPECT_EQ(a.total_cost(), b.total_cost())
            << src.id.value() << "->" << dst.id.value();
      }
    }
  }
}

}  // namespace
}  // namespace evo
