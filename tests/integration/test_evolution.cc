// Gradual-evolution integration: roll IPvN out router-by-router and
// domain-by-domain over a transit-stub Internet, checking the paper's
// invariants at every epoch.
#include <gtest/gtest.h>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::NodeId;

std::unique_ptr<EvolvableInternet> make_internet(std::uint64_t seed) {
  auto topo = net::generate_transit_stub({.transit_domains = 2,
                                          .stubs_per_transit = 2,
                                          .seed = seed});
  sim::Rng rng{seed};
  net::attach_hosts(topo, 1, rng);
  auto net = std::make_unique<EvolvableInternet>(std::move(topo));
  net->start();
  return net;
}

TEST(Evolution, DomainByDomainKeepsUniversalAccess) {
  auto net = make_internet(31);
  std::vector<double> stretches;
  for (const auto& domain : net->topology().domains()) {
    net->deploy_domain(domain.id);
    net->converge();
    const auto report = core::verify_universal_access(*net);
    ASSERT_TRUE(report.universal())
        << "UA broken after deploying " << domain.name;
    stretches.push_back(report.mean_stretch);
  }
  // Full deployment beats first-domain-only deployment on stretch.
  EXPECT_LE(stretches.back(), stretches.front());
}

TEST(Evolution, RouterByRouterWithinOneDomain) {
  auto net = make_internet(32);
  const auto& domain = net->topology().domains()[0];
  for (const NodeId r : domain.routers) {
    net->deploy_router(r);
    net->converge();
    const auto report = core::verify_universal_access(*net, 30);
    ASSERT_TRUE(report.universal())
        << "UA broken at router " << r.value() << " of " << domain.name;
  }
}

TEST(Evolution, AnycastProximityImprovesMonotonically) {
  // As more domains deploy, the mean distance-to-ingress for a fixed probe
  // set must not get worse (option 1: true closest-member routing).
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 2,
                                          .seed = 33});
  core::Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  EvolvableInternet net(std::move(topo), options);
  net.start();

  double previous = -1.0;
  for (const auto& domain : net.topology().domains()) {
    net.deploy_domain(domain.id);
    net.converge();
    const auto& group = net.anycast().group(net.vnbone().anycast_group());
    const anycast::ClosestMemberOracle oracle(net.topology(), group);
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& router : net.topology().routers()) {
      const auto probe = anycast::probe(net.network(), group, router.id, oracle);
      if (!probe.delivered()) continue;
      total += static_cast<double>(probe.optimal_cost);
      ++count;
    }
    ASSERT_GT(count, 0u);
    const double mean_optimal = total / static_cast<double>(count);
    if (previous >= 0.0) {
      EXPECT_LE(mean_optimal, previous + 1e-9)
          << "optimal distance regressed after " << domain.name;
    }
    previous = mean_optimal;
  }
}

TEST(Evolution, VnBoneStaysConnectedThroughout) {
  auto net = make_internet(34);
  sim::Rng rng{34};
  // Deploy random routers one at a time (worst-case scatter).
  std::vector<NodeId> order;
  for (const auto& r : net->topology().routers()) order.push_back(r.id);
  rng.shuffle(order);
  std::size_t deployed = 0;
  for (const NodeId r : order) {
    net->deploy_router(r);
    net->converge();
    ++deployed;
    const auto nodes = net->vnbone().deployed_routers();
    ASSERT_EQ(nodes.size(), deployed);
    const auto comps = net::connected_components(net->vnbone().virtual_graph());
    for (const NodeId n : nodes) {
      ASSERT_EQ(comps.label[n.value()], comps.label[nodes.front().value()])
          << "vN-Bone partition at deployment step " << deployed;
    }
    if (deployed >= 12) break;  // bounded runtime; scatter phase is the risk
  }
}

TEST(Evolution, NativeAddressFractionGrows) {
  auto net = make_internet(35);
  const auto& topo = net->topology();
  std::size_t last_native = 0;
  for (const auto& domain : topo.domains()) {
    net->deploy_domain(domain.id);
    net->converge();
    std::size_t native = 0;
    for (const auto& host : topo.hosts()) {
      if (net->hosts().has_native_address(host.id)) ++native;
    }
    EXPECT_GE(native, last_native);
    last_native = native;
  }
  EXPECT_EQ(last_native, topo.host_count());
}

TEST(Evolution, LateJoinerServedByOwnDomain) {
  auto net = make_internet(36);
  const auto& topo = net->topology();
  // Deploy the first transit, then a stub joins late; its hosts' ingress
  // must move into the stub itself.
  net->deploy_domain(DomainId{0});
  net->converge();
  const auto host = topo.hosts().front().id;
  const auto before = core::send_ipvn(*net, host, topo.hosts().back().id);
  ASSERT_TRUE(before.delivered);
  const DomainId host_domain = topo.router(topo.host(host).access_router).domain;
  EXPECT_NE(topo.router(before.ingress).domain, host_domain);

  net->deploy_domain(host_domain);
  net->converge();
  const auto after = core::send_ipvn(*net, host, topo.hosts().back().id);
  ASSERT_TRUE(after.delivered);
  EXPECT_EQ(topo.router(after.ingress).domain, host_domain);
}

}  // namespace
}  // namespace evo
