// Full-pipeline integration: host-to-host IPvN datagrams across every IGP
// variant and both anycast deployment options.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using core::IgpKind;
using core::Options;
using net::DomainId;
using net::HostId;

struct Param {
  IgpKind igp;
  anycast::InterDomainMode mode;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string name = core::to_string(info.param.igp);
  name += "_";
  name += anycast::to_string(info.param.mode);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class EndToEndTest : public testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto topo = net::generate_transit_stub({.transit_domains = 2,
                                            .stubs_per_transit = 2,
                                            .seed = 99});
    sim::Rng rng{99};
    net::attach_hosts(topo, 2, rng);
    Options options;
    options.igp = GetParam().igp;
    options.vnbone.anycast_mode = GetParam().mode;
    internet_ = std::make_unique<EvolvableInternet>(std::move(topo), options);
    internet_->start();
  }

  std::unique_ptr<EvolvableInternet> internet_;
};

TEST_P(EndToEndTest, LegacyToLegacyPair) {
  // Only one transit deploys; both endpoints sit in legacy stubs.
  internet_->deploy_domain(DomainId{0});
  internet_->converge();
  const auto trace = core::send_ipvn(*internet_, HostId{0}, HostId{7});
  ASSERT_TRUE(trace.delivered) << trace.describe();
  // The ingress is in the deployed transit; the egress exits to legacy.
  EXPECT_TRUE(internet_->vnbone().deployed(trace.ingress));
  EXPECT_TRUE(trace.vn_route.exits_to_legacy);
}

TEST_P(EndToEndTest, NativeToNativePair) {
  // Deploy both endpoints' stub domains fully: fully native delivery.
  const auto& topo = internet_->topology();
  const DomainId src_domain = topo.router(topo.host(HostId{0}).access_router).domain;
  const DomainId dst_domain = topo.router(topo.host(HostId{7}).access_router).domain;
  internet_->deploy_domain(src_domain);
  internet_->deploy_domain(dst_domain);
  internet_->converge();
  ASSERT_TRUE(internet_->hosts().has_native_address(HostId{0}));
  ASSERT_TRUE(internet_->hosts().has_native_address(HostId{7}));
  const auto trace = core::send_ipvn(*internet_, HostId{0}, HostId{7});
  ASSERT_TRUE(trace.delivered) << trace.describe();
  EXPECT_FALSE(trace.vn_route.exits_to_legacy);
  EXPECT_EQ(trace.egress, topo.host(HostId{7}).access_router);
}

TEST_P(EndToEndTest, MixedPairNativeToLegacy) {
  const auto& topo = internet_->topology();
  const DomainId src_domain = topo.router(topo.host(HostId{0}).access_router).domain;
  internet_->deploy_domain(src_domain);
  internet_->converge();
  const auto trace = core::send_ipvn(*internet_, HostId{0}, HostId{7});
  ASSERT_TRUE(trace.delivered) << trace.describe();
  EXPECT_TRUE(trace.vn_route.exits_to_legacy);
  // Reply direction works too (legacy source toward native destination).
  const auto reply = core::send_ipvn(*internet_, HostId{7}, HostId{0});
  ASSERT_TRUE(reply.delivered) << reply.describe();
}

TEST_P(EndToEndTest, UniversalAccessSample) {
  internet_->deploy_domain(DomainId{1});
  internet_->converge();
  const auto report = core::verify_universal_access(*internet_, 40);
  EXPECT_TRUE(report.universal()) << report.failures.size() << " failures";
}

TEST_P(EndToEndTest, IngressIsClosestMember) {
  internet_->deploy_domain(DomainId{0});
  internet_->deploy_domain(DomainId{1});
  internet_->converge();
  const auto trace = core::send_ipvn(*internet_, HostId{0}, HostId{5});
  ASSERT_TRUE(trace.delivered) << trace.describe();
  ASSERT_FALSE(trace.segments.empty());
  EXPECT_EQ(trace.segments.front().kind, core::Segment::Kind::kAnycastIngress);
  // Under option 1 (global routes) delivery is policy-closest; under
  // option 2 it lands wherever the default route passes first. In both
  // cases the ingress must be a deployed router.
  EXPECT_TRUE(internet_->vnbone().deployed(trace.ingress));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, EndToEndTest,
    testing::Values(
        Param{IgpKind::kLinkState, anycast::InterDomainMode::kDefaultRoute},
        Param{IgpKind::kLinkState, anycast::InterDomainMode::kGlobalRoutes},
        Param{IgpKind::kDistanceVector, anycast::InterDomainMode::kDefaultRoute},
        Param{IgpKind::kDistanceVector, anycast::InterDomainMode::kGlobalRoutes},
        Param{IgpKind::kDistanceVectorTagged,
              anycast::InterDomainMode::kDefaultRoute},
        Param{IgpKind::kDistanceVectorTagged,
              anycast::InterDomainMode::kGlobalRoutes}),
    param_name);

}  // namespace
}  // namespace evo
