// Scale smoke: the full stack at hundreds of domains — base convergence,
// partial deployment, universal access, and vN-Bone integrity.
#include <gtest/gtest.h>

#include "core/evolvable_internet.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

using core::EvolvableInternet;

TEST(Scale, TwoHundredDomains) {
  auto topo = net::generate_transit_stub({.transit_domains = 10,
                                          .stubs_per_transit = 19,
                                          .seed = 4242});
  sim::Rng rng{4242};
  net::attach_hosts(topo, 1, rng);
  EvolvableInternet net(std::move(topo));
  net.start();
  EXPECT_EQ(net.topology().domain_count(), 200u);
  EXPECT_TRUE(net.simulator().idle());

  // Spot-check base reachability across far-apart domains.
  const auto& topo_ref = net.topology();
  const auto src = topo_ref.domains().front().routers.front();
  const auto dst = topo_ref.domains().back().routers.back();
  EXPECT_TRUE(net.network()
                  .trace(src, topo_ref.router(dst).loopback)
                  .delivered());

  // Deploy the transit core; universal access must hold for a sample.
  for (const auto& d : topo_ref.domains()) {
    if (!d.stub) net.deploy_domain(d.id);
  }
  net.converge();
  const auto report = core::verify_universal_access(net, /*max_pairs=*/150);
  EXPECT_TRUE(report.universal()) << report.failures.size() << " failures";

  // The bone is connected and congruence machinery ran.
  const auto deployed = net.vnbone().deployed_routers();
  ASSERT_GT(deployed.size(), 50u);
  const auto comps = net::connected_components(net.vnbone().virtual_graph());
  for (const auto r : deployed) {
    ASSERT_EQ(comps.label[r.value()], comps.label[deployed.front().value()]);
  }
}

TEST(Scale, ScatteredDeploymentAcrossManyDomains) {
  auto topo = net::generate_transit_stub({.transit_domains = 8,
                                          .stubs_per_transit = 12,
                                          .seed = 4343});
  sim::Rng rng{4343};
  net::attach_hosts(topo, 1, rng);
  EvolvableInternet net(std::move(topo));
  net.start();
  // One router in every fifth domain — heavy bootstrap pressure.
  const auto& domains = net.topology().domains();
  for (std::size_t i = 0; i < domains.size(); i += 5) {
    net.deploy_router(domains[i].routers.front());
  }
  net.converge();
  const auto report = core::verify_universal_access(net, /*max_pairs=*/100);
  EXPECT_TRUE(report.universal()) << report.failures.size() << " failures";
}

}  // namespace
}  // namespace evo
