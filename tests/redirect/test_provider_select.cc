// User choice of IPvN provider (§2.1's variant): users pick which
// provider's vN-Bone entry point serves them, while providers keep
// operating the redirection.
#include "redirect/provider_select.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace evo::redirect {
namespace {

using net::DomainId;
using net::HostId;

struct Fixture {
  Fixture() {
    auto topo = net::generate_transit_stub({.transit_domains = 3,
                                            .stubs_per_transit = 2,
                                            .seed = 71});
    sim::Rng rng{71};
    net::attach_hosts(topo, 1, rng);
    internet = std::make_unique<core::EvolvableInternet>(std::move(topo));
    internet->start();
    // Two providers deploy.
    internet->deploy_domain(DomainId{0});
    internet->deploy_domain(DomainId{1});
    internet->converge();
  }

  std::unique_ptr<core::EvolvableInternet> internet;
};

TEST(ProviderSelect, AddressRootedInProvider) {
  Fixture f;
  ProviderSelect select(*f.internet);
  select.enable_provider(DomainId{0});
  select.enable_provider(DomainId{1});
  EXPECT_EQ(select.enabled_count(), 2u);
  const auto a0 = select.provider_address(DomainId{0});
  const auto a1 = select.provider_address(DomainId{1});
  ASSERT_TRUE(a0 && a1);
  EXPECT_NE(*a0, *a1);
  EXPECT_TRUE(f.internet->topology().domain(DomainId{0}).prefix.contains(*a0));
  EXPECT_TRUE(f.internet->topology().domain(DomainId{1}).prefix.contains(*a1));
  EXPECT_FALSE(select.provider_address(DomainId{2}).has_value());
}

TEST(ProviderSelect, UserChoiceControlsIngress) {
  Fixture f;
  ProviderSelect select(*f.internet);
  select.enable_provider(DomainId{0});
  select.enable_provider(DomainId{1});
  f.internet->converge();

  // The same host pair, two different chosen providers, two different
  // ingress domains — and both deliver.
  const auto via0 =
      send_ipvn_via_provider(*f.internet, select, DomainId{0}, HostId{0}, HostId{4});
  const auto via1 =
      send_ipvn_via_provider(*f.internet, select, DomainId{1}, HostId{0}, HostId{4});
  ASSERT_TRUE(via0.delivered) << via0.describe();
  ASSERT_TRUE(via1.delivered) << via1.describe();
  EXPECT_EQ(f.internet->topology().router(via0.ingress).domain, DomainId{0});
  EXPECT_EQ(f.internet->topology().router(via1.ingress).domain, DomainId{1});
}

TEST(ProviderSelect, UnenabledProviderFails) {
  Fixture f;
  ProviderSelect select(*f.internet);
  const auto trace =
      send_ipvn_via_provider(*f.internet, select, DomainId{0}, HostId{0}, HostId{4});
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.failure, core::EndToEndTrace::Failure::kNoDeployment);
}

TEST(ProviderSelect, RefreshTracksUndeployments) {
  Fixture f;
  ProviderSelect select(*f.internet);
  select.enable_provider(DomainId{0});
  f.internet->converge();
  // Provider 0 loses all but one router.
  const auto routers = f.internet->vnbone().deployed_routers_in(DomainId{0});
  for (std::size_t i = 0; i + 1 < routers.size(); ++i) {
    f.internet->undeploy_router(routers[i]);
  }
  select.refresh_provider(DomainId{0});
  f.internet->converge();
  const auto trace =
      send_ipvn_via_provider(*f.internet, select, DomainId{0}, HostId{0}, HostId{4});
  ASSERT_TRUE(trace.delivered) << trace.describe();
  EXPECT_EQ(trace.ingress, routers.back());
}

TEST(ProviderSelect, ProviderGroupsAreSeparateFromDeploymentGroup) {
  Fixture f;
  const auto before = f.internet->anycast().group_count();
  ProviderSelect select(*f.internet);
  select.enable_provider(DomainId{0});
  EXPECT_EQ(f.internet->anycast().group_count(), before + 1);
  // The deployment-wide anycast address keeps working unchanged.
  EXPECT_TRUE(core::send_ipvn(*f.internet, HostId{0}, HostId{4}).delivered);
}

}  // namespace
}  // namespace evo::redirect
