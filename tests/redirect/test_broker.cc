// Application-level broker redirection (§2.2) — the rejected alternative,
// verified to fail exactly the ways the paper predicts: participation
// gaps and stale deployment views.
#include "redirect/broker.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "net/topology_gen.h"

namespace evo::redirect {
namespace {

using net::DomainId;
using net::HostId;

struct Fixture {
  Fixture() {
    auto topo = net::generate_transit_stub({.transit_domains = 2,
                                            .stubs_per_transit = 2,
                                            .seed = 61});
    sim::Rng rng{61};
    net::attach_hosts(topo, 2, rng);
    internet = std::make_unique<core::EvolvableInternet>(std::move(topo));
    internet->start();
  }

  std::unique_ptr<core::EvolvableInternet> internet;
};

TEST(Broker, EmptyDatabaseLocksClientsOut) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  BrokerService broker(*f.internet);
  broker.refresh();  // nobody participates yet
  EXPECT_EQ(broker.known_routers(), 0u);
  const auto trace = send_ipvn_via_broker(*f.internet, broker, HostId{0}, HostId{5});
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.failure, core::EndToEndTrace::Failure::kIngressFailed);
  // The anycast mechanism delivers regardless — that is the whole point.
  EXPECT_TRUE(core::send_ipvn(*f.internet, HostId{0}, HostId{5}).delivered);
}

TEST(Broker, ParticipationEnablesDelivery) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  BrokerService broker(*f.internet);
  broker.set_participation(DomainId{0}, true);
  EXPECT_TRUE(broker.participates(DomainId{0}));
  broker.refresh();
  EXPECT_GT(broker.known_routers(), 0u);
  const auto trace = send_ipvn_via_broker(*f.internet, broker, HostId{0}, HostId{5});
  EXPECT_TRUE(trace.delivered) << trace.describe();
}

TEST(Broker, PartialParticipationHidesCloserRouters) {
  Fixture f;
  // Both transits deploy; only transit 0 reports to the broker.
  f.internet->deploy_domain(DomainId{0});
  f.internet->deploy_domain(DomainId{1});
  f.internet->converge();
  BrokerService broker(*f.internet);
  broker.set_participation(DomainId{0}, true);
  broker.refresh();
  // Every broker answer is in domain 0, even for clients adjacent to
  // domain 1's routers.
  for (const auto& host : f.internet->topology().hosts()) {
    const auto target = broker.lookup(host.access_router);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(f.internet->topology().router(*target).domain, DomainId{0});
  }
}

TEST(Broker, StaleAnswerFailsAfterUndeploy) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  BrokerService broker(*f.internet);
  broker.set_all_participating();
  broker.refresh();
  const auto fresh = send_ipvn_via_broker(*f.internet, broker, HostId{0}, HostId{5});
  ASSERT_TRUE(fresh.delivered);
  // The serving router undeploys; the broker has not refreshed.
  f.internet->undeploy_router(fresh.ingress);
  f.internet->converge();
  const auto stale = send_ipvn_via_broker(*f.internet, broker, HostId{0}, HostId{5});
  EXPECT_FALSE(stale.delivered);
  EXPECT_EQ(stale.failure, core::EndToEndTrace::Failure::kIngressFailed);
  // Anycast self-heals with no third party involved.
  EXPECT_TRUE(core::send_ipvn(*f.internet, HostId{0}, HostId{5}).delivered);
  // After a refresh the broker works again too.
  broker.refresh();
  EXPECT_TRUE(
      send_ipvn_via_broker(*f.internet, broker, HostId{0}, HostId{5}).delivered);
}

TEST(Broker, MissesDeploymentsUntilRefresh) {
  Fixture f;
  f.internet->deploy_domain(DomainId{0});
  f.internet->converge();
  BrokerService broker(*f.internet);
  broker.set_all_participating();
  broker.refresh();
  const auto before = broker.known_routers();
  f.internet->deploy_domain(DomainId{1});
  f.internet->converge();
  EXPECT_EQ(broker.known_routers(), before);  // still the old view
  broker.refresh();
  EXPECT_GT(broker.known_routers(), before);
}

TEST(Broker, LookupPrefersDomainLevelCloserRouters) {
  Fixture f;
  const auto& topo = f.internet->topology();
  // Deploy one router in a stub and one in a distant stub; a client inside
  // the first stub must be pointed at its own stub's router.
  DomainId first_stub = DomainId::invalid();
  DomainId last_stub = DomainId::invalid();
  for (const auto& d : topo.domains()) {
    if (!d.stub) continue;
    if (!first_stub.valid()) first_stub = d.id;
    last_stub = d.id;
  }
  f.internet->deploy_router(topo.domain(first_stub).routers.front());
  f.internet->deploy_router(topo.domain(last_stub).routers.front());
  f.internet->converge();
  BrokerService broker(*f.internet);
  broker.set_all_participating();
  broker.refresh();
  const auto target = broker.lookup(topo.domain(first_stub).routers.back());
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(topo.router(*target).domain, first_stub);
}

}  // namespace
}  // namespace evo::redirect
