#!/usr/bin/env python3
"""Compare benchmark runs against a committed baseline; fail on regressions.

All files are flat JSON maps of "BM_Name[/arg].metric" -> number, as
emitted by the bench binaries' --json flag (and committed as
BENCH_micro_substrate.json).

Direction-aware: `.ns_per_op` regresses when it goes UP, `.items_per_sec`
when it goes DOWN. Improvements and unknown metrics never fail. Counters
that exist only on one side are reported but do not fail the gate (new
benchmarks land with a baseline refresh; machines legitimately differ in
which counters appear).

Pass several current files (repeated runs) and each metric is aggregated
to its best observation — min for ns_per_op, max for items_per_sec. A
genuine regression is slow on EVERY run; scheduler noise is not, so
best-of-N is the noise-robust statistic for a one-sided gate.

Exit status: 0 when no metric regresses past the threshold, 1 otherwise.
"""

import argparse
import json
import sys


def classify(name):
    """Return +1 if higher is worse, -1 if lower is worse, 0 if unknown."""
    if name.endswith(".ns_per_op"):
        return 1
    if name.endswith(".items_per_sec"):
        return -1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "current", nargs="+", help="freshly measured JSON (repeat for best-of-N)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed relative regression (default 0.30 = 30%%)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    runs = []
    for path in args.current:
        with open(path) as f:
            runs.append(json.load(f))

    current = {}
    for run in runs:
        for name, value in run.items():
            # The "meta" provenance object (and any other non-numeric
            # entry) is informational, never gated.
            if not isinstance(value, (int, float)):
                continue
            value = float(value)
            if name not in current:
                current[name] = value
            elif classify(name) > 0:
                current[name] = min(current[name], value)
            else:
                current[name] = max(current[name], value)

    regressions = []
    compared = 0
    for name in sorted(baseline):
        if not isinstance(baseline[name], (int, float)):
            continue
        direction = classify(name)
        if direction == 0 or name not in current:
            if name not in current:
                print(f"  [absent]   {name} (in baseline only)")
            continue
        base, now = float(baseline[name]), float(current[name])
        if base <= 0:
            continue
        compared += 1
        # Signed relative change where positive always means "worse".
        delta = direction * (now - base) / base
        tag = "ok"
        if delta > args.threshold:
            tag = "REGRESSED"
            regressions.append(name)
        elif delta < -args.threshold:
            tag = "improved"
        if tag != "ok":
            print(f"  [{tag:9s}] {name}: {base:.4g} -> {now:.4g} ({delta:+.1%})")

    for name in sorted(set(current) - set(baseline)):
        print(f"  [new]      {name} (not in baseline)")

    print(
        f"bench_compare: {compared} metrics compared over {len(runs)} run(s), "
        f"{len(regressions)} regressed past {args.threshold:.0%}"
    )
    if regressions:
        print(
            "If the slowdown is intended, refresh the baseline:\n"
            "  ./bench/bench_micro_substrate --benchmark_min_time=0.05 "
            "--json BENCH_micro_substrate.json"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
