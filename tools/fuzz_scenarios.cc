// Scenario fuzzing CLI: generate seeds, run the invariant oracles at every
// quiescent point, shrink the first failure to a minimal reproducer.
//
//   fuzz_scenarios --iterations 200 --seed 1          # campaign
//   fuzz_scenarios --time-budget 120s                 # bounded by wall time
//   fuzz_scenarios --replay corpus/foo.replay         # rerun one reproducer
//   fuzz_scenarios --break silent-link-down           # harness self-test
//   fuzz_scenarios --seed 0x2a --dump-plan out.replay # export a scenario
//
// stdout is deterministic (one "seed <hex> digest <hex> ..." line per
// iteration) so two invocations with the same flags can be diffed;
// wall-clock progress goes to stderr. Exit status: 0 clean, 1 violations
// (or replay mismatch), 2 usage/file errors.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>

#include "check/fuzzer.h"
#include "check/replay.h"
#include "check/shrink.h"
#include "obs/export.h"
#include "obs/recorder.h"

namespace {

using evo::check::Breakage;
using evo::check::RunReport;
using evo::check::ScenarioPlan;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 100;
  /// 0 = no wall-clock bound.
  std::int64_t time_budget_seconds = 0;
  std::string replay_path;
  std::string shrink_out = "fuzz_repro.replay";
  std::string dump_plan_path;
  /// With --replay: write a full Perfetto trace of the run here.
  std::string trace_path;
  Breakage breakage = Breakage::kNone;
  std::size_t shrink_runs = 400;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--iterations N] [--seed S] [--time-budget 120s]\n"
      "          [--replay FILE] [--dump-plan FILE] [--shrink-out FILE]\n"
      "          [--trace FILE]   (with --replay: Perfetto trace of the run)\n"
      "          [--break none|silent-link-down|drop-route|split-horizon]\n"
      "          [--shrink-runs N]\n",
      argv0);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 0);
  return end != text && *end == '\0';
}

/// "120", "120s", "2m" -> seconds.
bool parse_duration_seconds(const char* text, std::int64_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || value < 0) return false;
  if (*end == '\0' || std::strcmp(end, "s") == 0) {
    out = value;
  } else if (std::strcmp(end, "m") == 0) {
    out = value * 60;
  } else {
    return false;
  }
  return true;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--iterations") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, args.iterations)) return std::nullopt;
    } else if (flag == "--seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, args.seed)) return std::nullopt;
    } else if (flag == "--time-budget") {
      const char* v = value();
      if (v == nullptr || !parse_duration_seconds(v, args.time_budget_seconds)) {
        return std::nullopt;
      }
    } else if (flag == "--replay") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.replay_path = v;
    } else if (flag == "--dump-plan") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.dump_plan_path = v;
    } else if (flag == "--trace") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.trace_path = v;
    } else if (flag == "--shrink-out") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      args.shrink_out = v;
    } else if (flag == "--break") {
      const char* v = value();
      const auto parsed = v ? evo::check::breakage_from_string(v) : std::nullopt;
      if (!parsed) return std::nullopt;
      args.breakage = *parsed;
    } else if (flag == "--shrink-runs") {
      std::uint64_t runs = 0;
      const char* v = value();
      if (v == nullptr || !parse_u64(v, runs)) return std::nullopt;
      args.shrink_runs = static_cast<std::size_t>(runs);
    } else {
      return std::nullopt;
    }
  }
  return args;
}

void print_violations(const RunReport& report) {
  for (const auto& violation : report.violations) {
    std::printf("  violation %s\n", violation.describe().c_str());
  }
}

/// "foo.replay" -> "foo.flight"; anything else gets ".flight" appended.
std::string flight_path_for(const std::string& replay_path) {
  const std::string suffix = ".replay";
  if (replay_path.size() > suffix.size() &&
      replay_path.compare(replay_path.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
    return replay_path.substr(0, replay_path.size() - suffix.size()) + ".flight";
  }
  return replay_path + ".flight";
}

/// Dump the flight-recorder tail of a failing run next to the reproducer.
void dump_flight(const evo::obs::Recorder& recorder, const std::string& path) {
  const std::string error =
      evo::obs::write_text_file(path, evo::obs::flight_text(recorder, 256));
  if (error.empty()) {
    std::printf("flight recorder dumped to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }
}

/// Shrink a failing plan and write the minimal reproducer.
void shrink_and_save(const Args& args, const ScenarioPlan& plan,
                     const RunReport& report) {
  std::fprintf(stderr, "shrinking (up to %zu runs)...\n", args.shrink_runs);
  const auto shrunk =
      evo::check::shrink(plan, report, {}, args.shrink_runs);
  std::printf("shrunk to %zu events, %zu deployed routers (%zu runs)\n",
              shrunk.plan.events.size(), shrunk.plan.initial_deployment.size(),
              shrunk.runs);
  print_violations(shrunk.report);
  const std::string error =
      evo::check::write_replay_file(args.shrink_out, shrunk.plan);
  if (error.empty()) {
    std::printf("reproducer written to %s\n", args.shrink_out.c_str());
  } else {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }
}

int run_replay(const Args& args) {
  const auto parsed = evo::check::load_replay_file(args.replay_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", args.replay_path.c_str(),
                 parsed.error.c_str());
    return 2;
  }
  evo::obs::Recorder recorder;
  if (!args.trace_path.empty()) recorder.set_capture_all(true);
  const RunReport report = evo::check::run_plan(parsed.plan, {}, &recorder);
  if (!args.trace_path.empty()) {
    const std::string error = evo::obs::write_text_file(
        args.trace_path, evo::obs::perfetto_json(recorder));
    if (error.empty()) {
      std::printf("trace written to %s\n", args.trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
  }
  if (!report.invalid.empty()) {
    std::printf("replay %s invalid: %s\n", args.replay_path.c_str(),
                report.invalid.c_str());
    return 1;
  }
  std::printf("replay %s seed 0x%" PRIx64 " digest 0x%016" PRIx64
              " episodes %zu violations %zu\n",
              args.replay_path.c_str(), parsed.plan.seed, report.digest,
              report.episodes, report.violations.size());
  print_violations(report);
  if (!report.violations.empty()) {
    dump_flight(recorder, flight_path_for(args.replay_path));
  }
  return report.clean() ? 0 : 1;
}

int run_campaign(const Args& args) {
  const std::time_t start = std::time(nullptr);
  std::uint64_t ran = 0;
  for (std::uint64_t i = 0; i < args.iterations; ++i) {
    if (args.time_budget_seconds > 0 &&
        std::time(nullptr) - start >= args.time_budget_seconds) {
      std::fprintf(stderr, "time budget exhausted after %" PRIu64 " iterations\n",
                   ran);
      break;
    }
    const std::uint64_t seed = args.seed + i;
    ScenarioPlan plan = evo::check::generate_plan(seed);
    plan.breakage = args.breakage;
    if (plan.breakage == Breakage::kSplitHorizon) {
      // Count-to-infinity is "slow convergence", not wrong quiescent
      // state; a tight budget is what makes the oracle fire.
      plan.convergence_budget = 20'000;
    }
    evo::obs::Recorder recorder;
    const RunReport report = evo::check::run_plan(plan, {}, &recorder);
    ++ran;
    std::printf("seed 0x%" PRIx64 " digest 0x%016" PRIx64
                " episodes %zu events %" PRIu64 " violations %zu\n",
                seed, report.digest, report.episodes, report.events_processed,
                report.violations.size());
    if (!report.invalid.empty()) {
      std::printf("  plan invalid: %s\n", report.invalid.c_str());
      return 1;
    }
    if (!report.violations.empty()) {
      print_violations(report);
      dump_flight(recorder, flight_path_for(args.shrink_out));
      shrink_and_save(args, plan, report);
      return 1;
    }
  }
  std::printf("%" PRIu64 " iterations clean\n", ran);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage(argv[0]);
    return 2;
  }
  if (!args->dump_plan_path.empty()) {
    ScenarioPlan plan = evo::check::generate_plan(args->seed);
    plan.breakage = args->breakage;
    const std::string error =
        evo::check::write_replay_file(args->dump_plan_path, plan);
    if (!error.empty()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("plan for seed 0x%" PRIx64 " written to %s\n", args->seed,
                args->dump_plan_path.c_str());
    return 0;
  }
  if (!args->replay_path.empty()) return run_replay(*args);
  return run_campaign(*args);
}
