// Inspect Perfetto trace-event JSON produced by obs::perfetto_json.
//
//   trace_inspect summarize trace.json                # per-event-name stats
//   trace_inspect spans trace.json                    # span durations
//   trace_inspect filter trace.json --cat igp         # re-emit a subset
//   trace_inspect filter trace.json --name bgp.flush
//   trace_inspect diff a.json b.json                  # event-count deltas
//
// The parser understands exactly the line-oriented subset the exporter
// writes (one event object per line): it is not a general JSON parser, by
// design — no third-party dependency, and byte-identical round trips.
// Exit status: 0 ok, 1 diff found differences, 2 usage/parse errors.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = '?';           // 'b', 'e', or 'i'
  std::int64_t ts = 0;     // microseconds of sim time
  std::uint32_t pid = 0;   // track (sweep cell)
  std::uint64_t id = 0;    // async span id; 0 for instants
  std::uint64_t a = 0, b = 0;
  std::string raw;         // original line, for filter re-emission
};

/// Extract `"key":<number>` or `"key":"value"` from one JSON line. Returns
/// the raw token (quotes stripped for strings).
std::optional<std::string> field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t start = pos + needle.size();
  if (start >= line.size()) return std::nullopt;
  if (line[start] == '"') {
    const auto end = line.find('"', start + 1);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(start + 1, end - start - 1);
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

std::optional<TraceEvent> parse_event(const std::string& line) {
  TraceEvent event;
  const auto name = field(line, "name");
  const auto cat = field(line, "cat");
  const auto ph = field(line, "ph");
  const auto ts = field(line, "ts");
  if (!name || !cat || !ph || !ts || ph->size() != 1) return std::nullopt;
  event.name = *name;
  event.cat = *cat;
  event.ph = (*ph)[0];
  event.ts = std::strtoll(ts->c_str(), nullptr, 10);
  if (const auto pid = field(line, "pid")) {
    event.pid = static_cast<std::uint32_t>(std::strtoul(pid->c_str(), nullptr, 10));
  }
  if (const auto id = field(line, "id")) {
    event.id = std::strtoull(id->c_str(), nullptr, 0);  // "0x..." form
  }
  if (const auto a = field(line, "a")) {
    event.a = std::strtoull(a->c_str(), nullptr, 10);
  }
  if (const auto b = field(line, "b")) {
    event.b = std::strtoull(b->c_str(), nullptr, 10);
  }
  event.raw = line;
  return event;
}

struct Trace {
  std::vector<TraceEvent> events;
  std::string error;
};

Trace load(const std::string& path) {
  Trace trace;
  std::ifstream in(path);
  if (!in) {
    trace.error = "cannot open " + path;
    return trace;
  }
  std::string line;
  while (std::getline(in, line)) {
    // Event lines are the ones carrying a "ph" field; header/footer lines
    // ("{\"displayTimeUnit\"...", "]}") are structural and skipped.
    if (line.find("\"ph\":") == std::string::npos) continue;
    // Strip the inter-event separator the exporter appends.
    while (!line.empty() && (line.back() == ',' || line.back() == '\r')) {
      line.pop_back();
    }
    const auto event = parse_event(line);
    if (!event) {
      trace.error = "unparseable event line: " + line;
      return trace;
    }
    trace.events.push_back(*event);
  }
  return trace;
}

struct NameStats {
  std::uint64_t count = 0;
  std::int64_t first_ts = 0;
  std::int64_t last_ts = 0;
};

int summarize(const Trace& trace) {
  std::map<std::string, std::map<std::string, NameStats>> by_cat;
  for (const TraceEvent& event : trace.events) {
    auto& stats = by_cat[event.cat][event.name];
    if (stats.count == 0) stats.first_ts = event.ts;
    stats.last_ts = event.ts;
    ++stats.count;
  }
  std::printf("%zu events\n", trace.events.size());
  for (const auto& [cat, names] : by_cat) {
    std::uint64_t total = 0;
    for (const auto& [name, stats] : names) total += stats.count;
    std::printf("%-8s %8" PRIu64 " events\n", cat.c_str(), total);
    for (const auto& [name, stats] : names) {
      std::printf("  %-30s %8" PRIu64 "  [%.3fms .. %.3fms]\n", name.c_str(),
                  stats.count, static_cast<double>(stats.first_ts) / 1000.0,
                  static_cast<double>(stats.last_ts) / 1000.0);
    }
  }
  return 0;
}

int spans(const Trace& trace) {
  // Pair "b"/"e" by async id; sort completed spans by open time.
  struct Open {
    const TraceEvent* open;
  };
  std::map<std::uint64_t, const TraceEvent*> open;
  struct Closed {
    const TraceEvent* begin;
    const TraceEvent* end;
  };
  std::vector<Closed> closed;
  for (const TraceEvent& event : trace.events) {
    if (event.ph == 'b') {
      open[event.id] = &event;
    } else if (event.ph == 'e') {
      const auto it = open.find(event.id);
      if (it != open.end()) {
        closed.push_back({it->second, &event});
        open.erase(it);
      }
    }
  }
  std::stable_sort(closed.begin(), closed.end(),
                   [](const Closed& x, const Closed& y) {
                     return x.begin->ts < y.begin->ts;
                   });
  std::printf("%zu completed spans, %zu unclosed\n", closed.size(), open.size());
  for (const Closed& span : closed) {
    std::printf("  %-24s %-8s open %10.3fms  dur %10.3fms  a=%" PRIu64
                " b=%" PRIu64 "\n",
                span.begin->name.c_str(), span.begin->cat.c_str(),
                static_cast<double>(span.begin->ts) / 1000.0,
                static_cast<double>(span.end->ts - span.begin->ts) / 1000.0,
                span.end->a, span.end->b);
  }
  for (const auto& [id, event] : open) {
    std::printf("  %-24s %-8s open %10.3fms  UNCLOSED\n", event->name.c_str(),
                event->cat.c_str(), static_cast<double>(event->ts) / 1000.0);
  }
  return 0;
}

int filter(const Trace& trace, const std::string& cat, const std::string& name) {
  std::printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  for (const TraceEvent& event : trace.events) {
    if (!cat.empty() && event.cat != cat) continue;
    if (!name.empty() && event.name.find(name) == std::string::npos) continue;
    if (!first) std::printf(",\n");
    first = false;
    std::printf("%s", event.raw.c_str());
  }
  std::printf("\n]}\n");
  return 0;
}

int diff(const Trace& lhs, const Trace& rhs) {
  std::map<std::pair<std::string, std::string>, std::pair<std::int64_t, std::int64_t>>
      counts;
  for (const TraceEvent& event : lhs.events) {
    ++counts[{event.cat, event.name}].first;
  }
  for (const TraceEvent& event : rhs.events) {
    ++counts[{event.cat, event.name}].second;
  }
  bool differs = lhs.events.size() != rhs.events.size();
  for (const auto& [key, pair] : counts) {
    if (pair.first == pair.second) continue;
    differs = true;
    std::printf("%-8s %-30s %8" PRId64 " -> %8" PRId64 "  (%+" PRId64 ")\n",
                key.first.c_str(), key.second.c_str(), pair.first, pair.second,
                pair.second - pair.first);
  }
  if (!differs) {
    std::printf("identical: %zu events\n", lhs.events.size());
    return 0;
  }
  std::printf("totals: %zu -> %zu events\n", lhs.events.size(), rhs.events.size());
  return 1;
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summarize TRACE\n"
               "       %s spans TRACE\n"
               "       %s filter [--cat CAT] [--name SUBSTR] TRACE\n"
               "       %s diff TRACE_A TRACE_B\n",
               argv0, argv0, argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  // Flags and positional file arguments may appear in any order.
  std::string cat, name;
  std::vector<const char*> files;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cat") == 0 && i + 1 < argc) {
      cat = argv[++i];
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  const std::size_t want_files = command == "diff" ? 2 : 1;
  if (files.size() != want_files ||
      ((!cat.empty() || !name.empty()) && command != "filter")) {
    usage(argv[0]);
    return 2;
  }
  const Trace trace = load(files[0]);
  if (!trace.error.empty()) {
    std::fprintf(stderr, "error: %s\n", trace.error.c_str());
    return 2;
  }
  if (command == "summarize") return summarize(trace);
  if (command == "spans") return spans(trace);
  if (command == "filter") return filter(trace, cat, name);
  if (command == "diff") {
    const Trace rhs = load(files[1]);
    if (!rhs.error.empty()) {
      std::fprintf(stderr, "error: %s\n", rhs.error.c_str());
      return 2;
    }
    return diff(trace, rhs);
  }
  usage(argv[0]);
  return 2;
}
