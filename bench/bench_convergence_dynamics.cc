// Experiment E11: convergence dynamics under churn.
//
// The paper motivates anycast partly by its operational record — "the
// robust implementation of root DNS name servers" (RFC 3258) — and claims
// the network "self-manages" redirection. Here we inject deterministic
// churn through the fault-injection plane and measure, in simulated time,
// how long the control plane takes to reconverge and how the data plane
// fares while it does: {link-flap, router-crash, member-loss} × {LS, DV}
// × {Option 1 (global routes), Option 2 (default route)}, reported from
// the net.failure.* metrics.
#include "bench_util.h"

#include "core/failure_plane.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using core::FailurePlane;
using core::FailureSchedule;
using core::IgpKind;
using net::DomainId;
using net::LinkId;
using net::NodeId;

enum class Churn { kLinkFlap, kRouterCrash, kMemberLoss };

const char* to_string(Churn churn) {
  switch (churn) {
    case Churn::kLinkFlap: return "link-flap";
    case Churn::kRouterCrash: return "router-crash";
    case Churn::kMemberLoss: return "member-loss";
  }
  return "?";
}

/// The cheapest physical link between two adjacent routers.
LinkId link_between(const net::Topology& topo, NodeId a, NodeId b) {
  for (const LinkId link_id : topo.router(a).links) {
    if (topo.link(link_id).other_end(a) == b) return link_id;
  }
  return LinkId::invalid();
}

void sweep() {
  bench::banner(
      "E11: convergence dynamics — per-event time-to-reconverge and "
      "delivery rate during/after churn (net.failure.* metrics)");
  bench::row("%-13s %-23s %-15s %3s  %8s %8s  %7s %7s  %5s %5s", "failure",
             "igp", "anycast option", "ev", "rc-p50", "rc-max", "during",
             "after", "bhole", "loop");

  for (const Churn churn :
       {Churn::kLinkFlap, Churn::kRouterCrash, Churn::kMemberLoss}) {
    for (const IgpKind igp : {IgpKind::kLinkState, IgpKind::kDistanceVector}) {
      for (const anycast::InterDomainMode mode :
           {anycast::InterDomainMode::kGlobalRoutes,
            anycast::InterDomainMode::kDefaultRoute}) {
        core::Options options;
        options.igp = igp;
        options.vnbone.anycast_mode = mode;
        auto net = bench::make_internet({.transit_domains = 3,
                                         .stubs_per_transit = 2,
                                         .seed = 11011},
                                        /*hosts_per_stub=*/0, options);
        // Members: the first two transit domains, so both intra-domain and
        // inter-domain failover paths exist.
        net->deploy_domain(DomainId{0});
        net->deploy_domain(DomainId{1});
        net->converge();
        const auto& group = net->anycast().group(net->vnbone().anycast_group());

        // Probe from every stub domain toward the anycast address.
        sim::MetricRegistry metrics;
        FailurePlane plane(*net, metrics);
        std::vector<NodeId> probes;
        for (const auto& d : net->topology().domains()) {
          if (d.stub) probes.push_back(d.routers.front());
        }
        for (const NodeId p : probes) plane.add_probe(p, group.address);
        const auto baseline = net->network().trace(probes.front(), group.address);
        EVO_BENCH_REQUIRE(baseline.delivered());

        // Victims are read off probe[0]'s converged path, so every combo
        // hits infrastructure that actually carries measured traffic.
        const sim::TimePoint t0 = net->simulator().now();
        auto at = [&](std::int64_t ms) {
          return t0 + sim::Duration::millis(ms);
        };
        FailureSchedule schedule;
        switch (churn) {
          case Churn::kLinkFlap: {
            EVO_BENCH_REQUIRE(baseline.hops.size() >= 2);
            const LinkId victim = link_between(
                net->topology(), baseline.hops[baseline.hops.size() - 2],
                baseline.hops.back());
            EVO_BENCH_REQUIRE(victim.valid());
            schedule.link_flap(at(100), sim::Duration::millis(400), victim)
                .link_flap(at(2000), sim::Duration::millis(400), victim)
                .link_flap(at(4000), sim::Duration::millis(400), victim);
            break;
          }
          case Churn::kRouterCrash: {
            const NodeId victim = baseline.delivered_at;
            schedule.node_crash(at(100), sim::Duration::millis(800), victim)
                .node_crash(at(3000), sim::Duration::millis(800), victim);
            break;
          }
          case Churn::kMemberLoss: {
            const NodeId victim = baseline.delivered_at;
            schedule.member_loss(at(100), victim)
                .member_join(at(2000), victim)
                .member_loss(at(4000), victim)
                .member_join(at(6000), victim);
            break;
          }
        }
        plane.arm(schedule);
        net->converge();
        EVO_BENCH_REQUIRE(plane.events_applied() == schedule.size());

        const auto* reconverge = metrics.find_summary("net.failure.reconverge_ms");
        const auto* during =
            metrics.find_summary("net.failure.during.delivery_rate");
        const auto* after =
            metrics.find_summary("net.failure.after.delivery_rate");
        EVO_BENCH_REQUIRE(reconverge != nullptr && during != nullptr &&
                          after != nullptr);
        bench::row("%-13s %-23s %-15s %3lld  %6.1fms %6.1fms  %6.1f%% %6.1f%%  %5lld %5lld",
                   to_string(churn), to_string(igp), to_string(mode),
                   static_cast<long long>(metrics.counter("net.failure.events")),
                   reconverge->percentile(50.0), reconverge->max(),
                   during->mean(), after->mean(),
                   static_cast<long long>(metrics.counter("net.failure.blackholes")),
                   static_cast<long long>(metrics.counter("net.failure.loops")));
      }
    }
  }
  bench::row(
      "claim: redirection self-heals in protocol-convergence time with zero "
      "endhost involvement (RFC3258's operational story). After each event "
      "delivery recovers to whatever physics allows — 100%% once the "
      "link/router/member returns; during a down window, probes whose only "
      "path crossed the victim stay dark (blackholes), but never loop. "
      "Distance-vector pays its poison/request round trips on crashes "
      "(rc-max ~10x link-state); router crashes cost the most because IGP, "
      "BGP sessions, and the vN-Bone all must react.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::sweep();
  return 0;
}
