// Experiment E11: convergence dynamics under churn.
//
// The paper motivates anycast partly by its operational record — "the
// robust implementation of root DNS name servers" (RFC 3258) — and claims
// the network "self-manages" redirection. Here we inject deterministic
// churn through the fault-injection plane and measure, in simulated time,
// how long the control plane takes to reconverge and how the data plane
// fares while it does: {link-flap, router-crash, member-loss} × {LS, DV}
// × {Option 1 (global routes), Option 2 (default route)}, reported from
// the net.failure.* metrics.
//
// Each combo is one independent ParallelSweep cell (own Simulator, own
// MetricRegistry): `--threads N` spreads cells over a pool, and output is
// byte-identical for every N because rows are buffered per cell and
// emitted in cell order.
#include "bench_util.h"

#include "core/failure_plane.h"
#include "sim/metrics.h"
#include "sim/parallel.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using core::FailurePlane;
using core::FailureSchedule;
using core::IgpKind;
using net::DomainId;
using net::LinkId;
using net::NodeId;

enum class Churn { kLinkFlap, kRouterCrash, kMemberLoss };

const char* to_string(Churn churn) {
  switch (churn) {
    case Churn::kLinkFlap: return "link-flap";
    case Churn::kRouterCrash: return "router-crash";
    case Churn::kMemberLoss: return "member-loss";
  }
  return "?";
}

struct Combo {
  Churn churn;
  IgpKind igp;
  anycast::InterDomainMode mode;
};

std::vector<Combo> combos() {
  std::vector<Combo> cells;
  for (const Churn churn :
       {Churn::kLinkFlap, Churn::kRouterCrash, Churn::kMemberLoss}) {
    for (const IgpKind igp : {IgpKind::kLinkState, IgpKind::kDistanceVector}) {
      for (const anycast::InterDomainMode mode :
           {anycast::InterDomainMode::kGlobalRoutes,
            anycast::InterDomainMode::kDefaultRoute}) {
        cells.push_back({churn, igp, mode});
      }
    }
  }
  return cells;
}

/// The cheapest physical link between two adjacent routers.
LinkId link_between(const net::Topology& topo, NodeId a, NodeId b) {
  for (const LinkId link_id : topo.router(a).links) {
    if (topo.link(link_id).other_end(a) == b) return link_id;
  }
  return LinkId::invalid();
}

sim::CellResult run_combo(const Combo& combo) {
  core::Options options;
  options.igp = combo.igp;
  options.vnbone.anycast_mode = combo.mode;
  auto net = bench::make_internet({.transit_domains = 3,
                                   .stubs_per_transit = 2,
                                   .seed = 11011},
                                  /*hosts_per_stub=*/0, options);
  // Members: the first two transit domains, so both intra-domain and
  // inter-domain failover paths exist.
  net->deploy_domain(DomainId{0});
  net->deploy_domain(DomainId{1});
  net->converge();
  const auto& group = net->anycast().group(net->vnbone().anycast_group());

  // Probe from every stub domain toward the anycast address.
  sim::CellResult result;
  FailurePlane plane(*net, result.metrics);
  std::vector<NodeId> probes;
  for (const auto& d : net->topology().domains()) {
    if (d.stub) probes.push_back(d.routers.front());
  }
  for (const NodeId p : probes) plane.add_probe(p, group.address);
  const auto baseline = net->network().trace(probes.front(), group.address);
  EVO_BENCH_REQUIRE(baseline.delivered());

  // Victims are read off probe[0]'s converged path, so every combo
  // hits infrastructure that actually carries measured traffic.
  const sim::TimePoint t0 = net->simulator().now();
  auto at = [&](std::int64_t ms) { return t0 + sim::Duration::millis(ms); };
  FailureSchedule schedule;
  switch (combo.churn) {
    case Churn::kLinkFlap: {
      EVO_BENCH_REQUIRE(baseline.hops.size() >= 2);
      const LinkId victim = link_between(
          net->topology(), baseline.hops[baseline.hops.size() - 2],
          baseline.hops.back());
      EVO_BENCH_REQUIRE(victim.valid());
      schedule.link_flap(at(100), sim::Duration::millis(400), victim)
          .link_flap(at(2000), sim::Duration::millis(400), victim)
          .link_flap(at(4000), sim::Duration::millis(400), victim);
      break;
    }
    case Churn::kRouterCrash: {
      const NodeId victim = baseline.delivered_at;
      schedule.node_crash(at(100), sim::Duration::millis(800), victim)
          .node_crash(at(3000), sim::Duration::millis(800), victim);
      break;
    }
    case Churn::kMemberLoss: {
      const NodeId victim = baseline.delivered_at;
      schedule.member_loss(at(100), victim)
          .member_join(at(2000), victim)
          .member_loss(at(4000), victim)
          .member_join(at(6000), victim);
      break;
    }
  }
  plane.arm(schedule);
  net->converge();
  EVO_BENCH_REQUIRE(plane.events_applied() == schedule.size());

  const auto& metrics = result.metrics;
  const auto* reconverge = metrics.find_summary("net.failure.reconverge_ms");
  const auto* during = metrics.find_summary("net.failure.during.delivery_rate");
  const auto* after = metrics.find_summary("net.failure.after.delivery_rate");
  EVO_BENCH_REQUIRE(reconverge != nullptr && during != nullptr &&
                    after != nullptr);
  bench::cell_row(
      result.text,
      "%-13s %-23s %-15s %3lld  %6.1fms %6.1fms  %6.1f%% %6.1f%%  %5lld %5lld",
      to_string(combo.churn), to_string(combo.igp), to_string(combo.mode),
      static_cast<long long>(metrics.counter("net.failure.events")),
      reconverge->percentile(50.0), reconverge->max(), during->mean(),
      after->mean(),
      static_cast<long long>(metrics.counter("net.failure.blackholes")),
      static_cast<long long>(metrics.counter("net.failure.loops")));
  return result;
}

void sweep(const bench::Args& args) {
  bench::banner(
      "E11: convergence dynamics — per-event time-to-reconverge and "
      "delivery rate during/after churn (net.failure.* metrics)");
  bench::row("%-13s %-23s %-15s %3s  %8s %8s  %7s %7s  %5s %5s", "failure",
             "igp", "anycast option", "ev", "rc-p50", "rc-max", "during",
             "after", "bhole", "loop");

  const auto cells = combos();
  // Cells are fully seeded by their combo (fixed topology seed), so the
  // sweep seed only feeds the harness's per-cell rng, which E11 ignores.
  const sim::ParallelSweep sweep_pool(args.threads);
  const auto results = sweep_pool.run(
      cells.size(), /*sweep_seed=*/11011,
      [&cells](std::size_t cell, sim::Rng&) { return run_combo(cells[cell]); });

  bench::JsonWriter json;
  bench::fill_standard_meta(json, "convergence_dynamics", args.threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s", results[i].text.c_str());
    const auto& m = results[i].metrics;
    const std::string key = std::string("e11.") + to_string(cells[i].churn) +
                            "." + to_string(cells[i].igp) + "." +
                            to_string(cells[i].mode);
    json.set(key + ".reconverge_p50_ms",
             m.find_summary("net.failure.reconverge_ms")->percentile(50.0));
    json.set(key + ".reconverge_p99_ms",
             m.find_summary("net.failure.reconverge_ms")->percentile(99.0));
    json.set(key + ".after_delivery_rate",
             m.find_summary("net.failure.after.delivery_rate")->mean());
    json.set(key + ".blackholes",
             static_cast<double>(m.counter("net.failure.blackholes")));
  }
  bench::row(
      "claim: redirection self-heals in protocol-convergence time with zero "
      "endhost involvement (RFC3258's operational story). After each event "
      "delivery recovers to whatever physics allows — 100%% once the "
      "link/router/member returns; during a down window, probes whose only "
      "path crossed the victim stay dark (blackholes), but never loop. "
      "Distance-vector pays its poison/request round trips on crashes "
      "(rc-max ~10x link-state); router crashes cost the most because IGP, "
      "BGP sessions, and the vN-Bone all must react.");
  if (!args.json_path.empty()) json.write(args.json_path);
}

}  // namespace
}  // namespace evo

int main(int argc, char** argv) {
  evo::sweep(evo::bench::parse_args(argc, argv));
  return 0;
}
