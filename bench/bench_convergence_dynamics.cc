// Experiment E11: convergence dynamics of anycast redirection.
//
// The paper motivates anycast partly by its operational record — "the
// robust implementation of root DNS name servers" (RFC 3258) — and claims
// the network "self-manages" redirection. Here we measure *how fast*, in
// simulated time: after a member loss or a link failure, how long until
// probes deliver again, per IGP family and per inter-domain option.
#include "bench_util.h"

#include "anycast/resolver.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using core::IgpKind;
using net::DomainId;
using net::NodeId;

/// Run the simulator event-by-event until `predicate()` holds; returns
/// the simulated time consumed, or the bound if the system quiesces (or
/// runs far too long) without satisfying it.
sim::Duration time_until(EvolvableInternet& net, std::function<bool()> predicate) {
  const sim::TimePoint start = net.simulator().now();
  const sim::Duration bound = sim::Duration::seconds(120);
  for (int i = 0; i < 100000; ++i) {
    net.bgp().install_routes();
    if (predicate()) return net.simulator().now() - start;
    if (net.simulator().idle()) return bound;  // quiesced; nothing will change
    net.simulator().run_events(20);
    if (net.simulator().now() - start >= bound) break;
  }
  return bound;
}

void member_failover() {
  bench::banner(
      "E11/A: anycast failover time after member loss (simulated time "
      "until a fixed probe set delivers again)");
  bench::row("%-26s %-22s %-16s", "igp", "anycast option", "failover");

  for (const IgpKind igp : {IgpKind::kLinkState, IgpKind::kDistanceVector}) {
    for (const anycast::InterDomainMode mode :
         {anycast::InterDomainMode::kGlobalRoutes,
          anycast::InterDomainMode::kDefaultRoute}) {
      core::Options options;
      options.igp = igp;
      options.vnbone.anycast_mode = mode;
      auto net = bench::make_internet({.transit_domains = 3,
                                       .stubs_per_transit = 2,
                                       .seed = 11011},
                                      /*hosts_per_stub=*/0, options);
      // Members: all routers of the first transit (several per domain so
      // in-domain failover is exercised), plus the second transit.
      net->deploy_domain(DomainId{0});
      net->deploy_domain(DomainId{1});
      net->converge();
      const auto& group = net->anycast().group(net->vnbone().anycast_group());
      // A probe set in legacy stubs.
      std::vector<NodeId> probes;
      for (const auto& d : net->topology().domains()) {
        if (d.stub) probes.push_back(d.routers.front());
      }
      auto all_delivered = [&] {
        for (const NodeId p : probes) {
          if (!net->network().trace(p, group.address).delivered()) return false;
        }
        return true;
      };
      EVO_BENCH_REQUIRE(all_delivered());
      // Kill the member each probe currently lands on (worst case):
      // undeploy every router of domain 0 except one.
      const auto victims = net->vnbone().deployed_routers_in(DomainId{0});
      for (std::size_t i = 0; i + 1 < victims.size(); ++i) {
        net->undeploy_router(victims[i]);
      }
      const auto t = time_until(*net, all_delivered);
      net->converge();
      bench::row("%-26s %-22s %-16s", to_string(igp), to_string(mode),
                 sim::to_string(t).c_str());
    }
  }
  bench::row(
      "claim: redirection self-heals in protocol-convergence time (tens of "
      "ms here) with zero endhost involvement — the RFC3258 operational "
      "story.");
}

void link_failover() {
  bench::banner("E11/B: redirection recovery after an interior link failure");
  bench::row("%-26s %-16s", "igp", "recovery");
  for (const IgpKind igp : {IgpKind::kLinkState, IgpKind::kDistanceVector}) {
    core::Options options;
    options.igp = igp;
    net::Topology topo = net::single_domain_ring(8);
    core::EvolvableInternet net(std::move(topo), options);
    net.start();
    const auto& routers = net.topology().domain(DomainId{0}).routers;
    net.deploy_router(routers[0]);
    net.converge();
    const auto& group = net.anycast().group(net.vnbone().anycast_group());
    const NodeId probe = routers[1];
    EVO_BENCH_REQUIRE(net.network().trace(probe, group.address).delivered());
    // Cut the probe's direct link toward the member.
    net.set_link_up(net::LinkId{0}, false);
    auto recovered = [&] {
      return net.network().trace(probe, group.address).delivered();
    };
    const auto t = time_until(net, recovered);
    bench::row("%-26s %-16s", to_string(igp), sim::to_string(t).c_str());
  }
  bench::row(
      "claim: both IGP families reroute anycast around failures in "
      "protocol time; distance-vector pays its request/poison round trips.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::member_failover();
  evo::link_failover();
  return 0;
}
