// Experiment E9: substrate microbenchmarks (google-benchmark).
//
// FIB longest-prefix match, Dijkstra/SPF, trace throughput, and control
// plane convergence (LS flooding, DV settling, BGP propagation) — the
// costs that bound how large the scenario experiments can scale.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/fib.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

void BM_FibLookup(benchmark::State& state) {
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  net::Fib fib;
  for (std::uint32_t i = 0; i < entries; ++i) {
    net::FibEntry e;
    e.prefix = net::Prefix{net::Ipv4Addr{(i + 1) << 16}, 16};
    e.next_hop = net::NodeId{i};
    fib.insert(e);
  }
  sim::Rng rng{1};
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const auto addr = net::Ipv4Addr{static_cast<std::uint32_t>(
        ((rng.next_u64() % entries + 1) << 16) | 7)};
    hits += fib.lookup(addr) != nullptr;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FibLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FibInsert(benchmark::State& state) {
  for (auto _ : state) {
    net::Fib fib;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      net::FibEntry e;
      e.prefix = net::Prefix{net::Ipv4Addr{(i + 1) << 16}, 16};
      e.next_hop = net::NodeId{i};
      fib.insert(e);
    }
    benchmark::DoNotOptimize(fib.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FibInsert);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::single_domain_grid(n, n);
  const auto graph = topo.physical_graph();
  for (auto _ : state) {
    const auto paths = net::dijkstra(graph, net::NodeId{0});
    benchmark::DoNotOptimize(paths.distance.back());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Dijkstra)->Arg(8)->Arg(16)->Arg(32);

void BM_DataPlaneTrace(benchmark::State& state) {
  core::EvolvableInternet net(net::single_domain_grid(8, 8));
  net.start();
  const auto& routers = net.topology().domain(net::DomainId{0}).routers;
  const auto dst = net.topology().router(routers.back()).loopback;
  for (auto _ : state) {
    const auto trace = net.network().trace(routers.front(), dst);
    benchmark::DoNotOptimize(trace.cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataPlaneTrace);

void BM_LinkStateConvergence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    const auto d = topo.add_domain("d");
    sim::Rng rng{42};
    net::populate_domain(topo, d, {.routers = n, .chord_probability = 0.3}, rng);
    sim::Simulator simulator;
    net::Network network(std::move(topo));
    igp::LinkStateIgp igp(simulator, network, d);
    state.ResumeTiming();
    igp.start();
    simulator.run();
    benchmark::DoNotOptimize(igp.messages_sent());
  }
}
BENCHMARK(BM_LinkStateConvergence)->Arg(8)->Arg(16)->Arg(32);

void BM_DistanceVectorConvergence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    const auto d = topo.add_domain("d");
    sim::Rng rng{42};
    net::populate_domain(topo, d, {.routers = n, .chord_probability = 0.3}, rng);
    sim::Simulator simulator;
    net::Network network(std::move(topo));
    igp::DistanceVectorIgp igp(simulator, network, d);
    state.ResumeTiming();
    igp.start();
    simulator.run();
    benchmark::DoNotOptimize(igp.messages_sent());
  }
}
BENCHMARK(BM_DistanceVectorConvergence)->Arg(8)->Arg(16)->Arg(32);

void BM_BgpConvergence(benchmark::State& state) {
  const auto domains = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = net::generate_transit_stub(
        {.transit_domains = domains / 4 + 1,
         .stubs_per_transit = 3,
         .seed = 11});
    auto net = std::make_unique<core::EvolvableInternet>(std::move(topo));
    state.ResumeTiming();
    net->start();
    benchmark::DoNotOptimize(net->bgp().messages_sent());
  }
}
BENCHMARK(BM_BgpConvergence)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_VnBoneRebuild(benchmark::State& state) {
  auto topo = net::generate_transit_stub(
      {.transit_domains = 4, .stubs_per_transit = 3, .seed = 13});
  core::EvolvableInternet net(std::move(topo));
  net.start();
  for (const auto& d : net.topology().domains()) net.deploy_domain(d.id);
  net.converge();
  for (auto _ : state) {
    net.vnbone().rebuild();
    benchmark::DoNotOptimize(net.vnbone().virtual_links().size());
  }
  state.SetLabel(std::to_string(net.vnbone().deployed_routers().size()) +
                 " routers");
}
BENCHMARK(BM_VnBoneRebuild)->Unit(benchmark::kMillisecond);

void BM_EndToEndSend(benchmark::State& state) {
  auto topo = net::generate_transit_stub(
      {.transit_domains = 2, .stubs_per_transit = 2, .seed = 17});
  sim::Rng rng{17};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet net(std::move(topo));
  net.start();
  net.deploy_domain(net::DomainId{0});
  net.converge();
  for (auto _ : state) {
    const auto trace = core::send_ipvn(net, net::HostId{0}, net::HostId{7});
    benchmark::DoNotOptimize(trace.delivered);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndSend);

}  // namespace
}  // namespace evo

BENCHMARK_MAIN();
