// Experiment E9: substrate microbenchmarks (google-benchmark).
//
// FIB longest-prefix match, Dijkstra/SPF, trace throughput, and control
// plane convergence (LS flooding, DV settling, BGP propagation) — the
// costs that bound how large the scenario experiments can scale.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/compiled_fib.h"
#include "net/fib.h"
#include "net/topology_gen.h"

namespace evo {
namespace {

/// `entries` /16 routes, the table shape BM_FibLookup has always used.
net::Fib make_fib(std::uint32_t entries) {
  net::Fib fib;
  for (std::uint32_t i = 0; i < entries; ++i) {
    net::FibEntry e;
    e.prefix = net::Prefix{net::Ipv4Addr{(i + 1) << 16}, 16};
    e.next_hop = net::NodeId{i};
    fib.insert(e);
  }
  return fib;
}

/// Pre-generated probe addresses hitting random installed /16s. Generating
/// addresses inside the timed loop serializes every iteration behind a
/// 64-bit divide, which dominates and masks the actual lookup cost.
std::vector<net::Ipv4Addr> make_probes(std::uint32_t entries) {
  sim::Rng rng{1};
  std::vector<net::Ipv4Addr> probes(4096);
  for (auto& addr : probes) {
    addr = net::Ipv4Addr{static_cast<std::uint32_t>(
        ((rng.next_u64() % entries + 1) << 16) | 7)};
  }
  return probes;
}

void BM_FibLookup(benchmark::State& state) {
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  const net::Fib fib = make_fib(entries);
  const auto probes = make_probes(entries);
  std::uint64_t hits = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    hits += fib.lookup(probes[i]) != nullptr;
    i = (i + 1) & (probes.size() - 1);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FibLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CompiledFibLookup(benchmark::State& state) {
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  const net::Fib fib = make_fib(entries);
  net::CompiledFib compiled;
  compiled.compile(fib);
  const auto probes = make_probes(entries);
  std::uint64_t hits = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    hits += compiled.lookup(probes[i]) != nullptr;
    i = (i + 1) & (probes.size() - 1);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledFibLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CompiledFibCompile(benchmark::State& state) {
  // Recompile cost: what one route-epoch invalidation costs a router the
  // next time the data plane touches it.
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  const net::Fib fib = make_fib(entries);
  net::CompiledFib compiled;
  for (auto _ : state) {
    compiled.compile(fib);
    benchmark::DoNotOptimize(compiled.range_count());
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_CompiledFibCompile)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FibInsert(benchmark::State& state) {
  for (auto _ : state) {
    net::Fib fib;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      net::FibEntry e;
      e.prefix = net::Prefix{net::Ipv4Addr{(i + 1) << 16}, 16};
      e.next_hop = net::NodeId{i};
      fib.insert(e);
    }
    benchmark::DoNotOptimize(fib.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FibInsert);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::single_domain_grid(n, n);
  const auto graph = topo.physical_graph();
  for (auto _ : state) {
    const auto paths = net::dijkstra(graph, net::NodeId{0});
    benchmark::DoNotOptimize(paths.distance.back());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Dijkstra)->Arg(8)->Arg(16)->Arg(32);

void BM_DataPlaneTrace(benchmark::State& state) {
  core::EvolvableInternet net(net::single_domain_grid(8, 8));
  net.start();
  const auto& routers = net.topology().domain(net::DomainId{0}).routers;
  const auto dst = net.topology().router(routers.back()).loopback;
  for (auto _ : state) {
    const auto trace = net.network().trace(routers.front(), dst);
    benchmark::DoNotOptimize(trace.cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataPlaneTrace);

void BM_DataPlaneTraceBatch(benchmark::State& state) {
  // All-pairs-from-corner probe fan-out through trace_batch: amortizes
  // compiled-FIB freshness checks and result allocation across a sweep.
  core::EvolvableInternet net(net::single_domain_grid(8, 8));
  net.start();
  const auto& routers = net.topology().domain(net::DomainId{0}).routers;
  std::vector<net::Network::ProbeSpec> probes;
  probes.reserve(routers.size());
  for (const auto dst : routers) {
    probes.push_back({.from = routers.front(),
                      .dst = net.topology().router(dst).loopback});
  }
  for (auto _ : state) {
    const auto traces = net.network().trace_batch(probes);
    benchmark::DoNotOptimize(traces.back().cost);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_DataPlaneTraceBatch);

void BM_LinkStateConvergence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    const auto d = topo.add_domain("d");
    sim::Rng rng{42};
    net::populate_domain(topo, d, {.routers = n, .chord_probability = 0.3}, rng);
    sim::Simulator simulator;
    net::Network network(std::move(topo));
    igp::LinkStateIgp igp(simulator, network, d);
    state.ResumeTiming();
    igp.start();
    simulator.run();
    benchmark::DoNotOptimize(igp.messages_sent());
  }
}
BENCHMARK(BM_LinkStateConvergence)->Arg(8)->Arg(16)->Arg(32);

void BM_DistanceVectorConvergence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    const auto d = topo.add_domain("d");
    sim::Rng rng{42};
    net::populate_domain(topo, d, {.routers = n, .chord_probability = 0.3}, rng);
    sim::Simulator simulator;
    net::Network network(std::move(topo));
    igp::DistanceVectorIgp igp(simulator, network, d);
    state.ResumeTiming();
    igp.start();
    simulator.run();
    benchmark::DoNotOptimize(igp.messages_sent());
  }
}
BENCHMARK(BM_DistanceVectorConvergence)->Arg(8)->Arg(16)->Arg(32);

void BM_BgpConvergence(benchmark::State& state) {
  const auto domains = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = net::generate_transit_stub(
        {.transit_domains = domains / 4 + 1,
         .stubs_per_transit = 3,
         .seed = 11});
    auto net = std::make_unique<core::EvolvableInternet>(std::move(topo));
    state.ResumeTiming();
    net->start();
    benchmark::DoNotOptimize(net->bgp().messages_sent());
  }
}
BENCHMARK(BM_BgpConvergence)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_VnBoneRebuild(benchmark::State& state) {
  auto topo = net::generate_transit_stub(
      {.transit_domains = 4, .stubs_per_transit = 3, .seed = 13});
  core::EvolvableInternet net(std::move(topo));
  net.start();
  for (const auto& d : net.topology().domains()) net.deploy_domain(d.id);
  net.converge();
  for (auto _ : state) {
    net.vnbone().rebuild();
    benchmark::DoNotOptimize(net.vnbone().virtual_links().size());
  }
  state.SetLabel(std::to_string(net.vnbone().deployed_routers().size()) +
                 " routers");
}
BENCHMARK(BM_VnBoneRebuild)->Unit(benchmark::kMillisecond);

void BM_EndToEndSend(benchmark::State& state) {
  auto topo = net::generate_transit_stub(
      {.transit_domains = 2, .stubs_per_transit = 2, .seed = 17});
  sim::Rng rng{17};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet net(std::move(topo));
  net.start();
  net.deploy_domain(net::DomainId{0});
  net.converge();
  for (auto _ : state) {
    const auto trace = core::send_ipvn(net, net::HostId{0}, net::HostId{7});
    benchmark::DoNotOptimize(trace.delivered);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndSend);

}  // namespace
}  // namespace evo

BENCHMARK_MAIN();
