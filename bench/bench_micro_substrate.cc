// Experiment E9: substrate microbenchmarks (google-benchmark).
//
// FIB longest-prefix match, Dijkstra/SPF, trace throughput, event-queue
// schedule/fire, and control plane convergence (LS flooding, DV settling,
// BGP propagation) — the costs that bound how large the scenario
// experiments can scale.
//
// `--json <path>` additionally writes a flat {metric → value} artifact
// (ns_per_op and items_per_sec per benchmark); BENCH_micro_substrate.json
// at the repo root is the committed baseline of that output.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "bench_util.h"
#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/compiled_fib.h"
#include "net/fib.h"
#include "net/topology_gen.h"
#include "sim/event_queue.h"
#include "sim/inplace_fn.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace evo {
namespace {

/// `entries` /16 routes, the table shape BM_FibLookup has always used.
net::Fib make_fib(std::uint32_t entries) {
  net::Fib fib;
  for (std::uint32_t i = 0; i < entries; ++i) {
    net::FibEntry e;
    e.prefix = net::Prefix{net::Ipv4Addr{(i + 1) << 16}, 16};
    e.next_hop = net::NodeId{i};
    fib.insert(e);
  }
  return fib;
}

/// Pre-generated probe addresses hitting random installed /16s. Generating
/// addresses inside the timed loop serializes every iteration behind a
/// 64-bit divide, which dominates and masks the actual lookup cost.
std::vector<net::Ipv4Addr> make_probes(std::uint32_t entries) {
  sim::Rng rng{1};
  std::vector<net::Ipv4Addr> probes(4096);
  for (auto& addr : probes) {
    addr = net::Ipv4Addr{static_cast<std::uint32_t>(
        ((rng.next_u64() % entries + 1) << 16) | 7)};
  }
  return probes;
}

void BM_FibLookup(benchmark::State& state) {
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  const net::Fib fib = make_fib(entries);
  const auto probes = make_probes(entries);
  std::uint64_t hits = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    hits += fib.lookup(probes[i]) != nullptr;
    i = (i + 1) & (probes.size() - 1);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FibLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CompiledFibLookup(benchmark::State& state) {
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  const net::Fib fib = make_fib(entries);
  net::CompiledFib compiled;
  compiled.compile(fib);
  const auto probes = make_probes(entries);
  std::uint64_t hits = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    hits += compiled.lookup(probes[i]) != nullptr;
    i = (i + 1) & (probes.size() - 1);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledFibLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CompiledFibCompile(benchmark::State& state) {
  // Recompile cost: what one route-epoch invalidation costs a router the
  // next time the data plane touches it.
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  const net::Fib fib = make_fib(entries);
  net::CompiledFib compiled;
  for (auto _ : state) {
    compiled.compile(fib);
    benchmark::DoNotOptimize(compiled.range_count());
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_CompiledFibCompile)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FibInsert(benchmark::State& state) {
  for (auto _ : state) {
    net::Fib fib;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      net::FibEntry e;
      e.prefix = net::Prefix{net::Ipv4Addr{(i + 1) << 16}, 16};
      e.next_hop = net::NodeId{i};
      fib.insert(e);
    }
    benchmark::DoNotOptimize(fib.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FibInsert);

// ---------------------------------------------------------------------------
// Event queue: calendar queue vs the heap it replaced.

/// The pre-calendar EventQueue, kept verbatim as the performance baseline:
/// one std::priority_queue entry + one type-erasure allocation + one
/// shared_ptr<bool> cancellation flag per event.
class RefHeapQueue {
 public:
  void schedule(sim::TimePoint when, std::function<void()> fn) {
    heap_.push(Entry{when, next_seq_++, std::move(fn),
                     std::make_shared<bool>(false)});
  }
  bool empty() const {
    skim();
    return heap_.empty();
  }
  struct Popped {
    sim::TimePoint when;
    std::function<void()> fn;
  };
  Popped pop() {
    skim();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    *top.cancelled = true;
    return Popped{top.when, std::move(top.fn)};
  }

 private:
  struct Entry {
    sim::TimePoint when;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  void skim() const {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }
  mutable std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Pseudorandom event delays, the hold-model's arrival process: mostly
/// sub-horizon (link latencies, protocol timers), a tail of multi-second
/// timers that exercises the calendar's overflow path.
std::vector<sim::Duration> make_delays() {
  sim::Rng rng{99};
  std::vector<sim::Duration> delays(4096);
  for (auto& d : delays) {
    const auto us = rng.uniform_int(1, 50'000);          // up to 50ms
    d = sim::Duration::micros(rng.bernoulli(0.01) ? us * 200 : us);
  }
  return delays;
}

/// Classic hold model: keep `hold` events pending; each iteration fires
/// the earliest and schedules a replacement. Measures steady-state
/// schedule+fire cost including the callback's type erasure.
template <typename Queue>
void schedule_fire_hold(benchmark::State& state) {
  const auto hold = static_cast<std::size_t>(state.range(0));
  const auto delays = make_delays();
  Queue q;
  std::uint64_t fired = 0;
  sim::TimePoint now = sim::TimePoint::origin();
  std::size_t i = 0;
  for (std::size_t k = 0; k < hold; ++k) {
    q.schedule(now + delays[i++ & (delays.size() - 1)], [&fired] { ++fired; });
  }
  for (auto _ : state) {
    auto popped = q.pop();
    now = popped.when;
    popped.fn();
    q.schedule(now + delays[i++ & (delays.size() - 1)], [&fired] { ++fired; });
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}

void BM_EventQueueScheduleFire(benchmark::State& state) {
  schedule_fire_hold<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RefHeapScheduleFire(benchmark::State& state) {
  schedule_fire_hold<RefHeapQueue>(state);
}
BENCHMARK(BM_RefHeapScheduleFire)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancel(benchmark::State& state) {
  // Generation-compare cancellation: schedule + cancel + (dead) skim. The
  // hold keeps the calendar populated so cancels hit realistic buckets.
  sim::EventQueue q;
  const auto delays = make_delays();
  sim::TimePoint now = sim::TimePoint::origin();
  std::size_t i = 0;
  std::uint64_t fired = 0;
  for (std::size_t k = 0; k < 1024; ++k) {
    q.schedule(now + delays[i++ & (delays.size() - 1)], [&fired] { ++fired; });
  }
  for (auto _ : state) {
    auto handle =
        q.schedule(now + delays[i++ & (delays.size() - 1)], [&fired] { ++fired; });
    handle.cancel();
    auto popped = q.pop();
    now = popped.when;
    popped.fn();
    q.schedule(now + delays[i++ & (delays.size() - 1)], [&fired] { ++fired; });
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancel);

// ---------------------------------------------------------------------------
// Callback type erasure: InplaceFn vs std::function for a capture that is
// representative of protocol events (40 bytes: this-style pointer + ids).

struct FatCapture {
  std::uint64_t* sink;
  std::uint64_t a, b, c, d;
  void operator()() const { *sink += a + b + c + d; }
};

void BM_InplaceFnRoundTrip(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    sim::EventFn fn{FatCapture{&sink, ++i, 2, 3, 4}};
    benchmark::DoNotOptimize(fn);  // forbid folding the erased dispatch away
    fn();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InplaceFnRoundTrip);

void BM_StdFunctionRoundTrip(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::function<void()> fn{FatCapture{&sink, ++i, 2, 3, 4}};
    benchmark::DoNotOptimize(fn);
    fn();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdFunctionRoundTrip);

// ---------------------------------------------------------------------------
// ParallelSweep: harness overhead and scaling on a real simulator cell.

void BM_ParallelSweepCells(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const sim::ParallelSweep pool(threads);
  for (auto _ : state) {
    const auto results = pool.run(
        8, /*sweep_seed=*/7, [](std::size_t, sim::Rng& rng) {
          sim::Simulator simulator;
          std::uint64_t acc = 0;
          for (int burst = 0; burst < 64; ++burst) {
            for (int e = 0; e < 64; ++e) {
              simulator.schedule_after(
                  sim::Duration::micros(rng.uniform_int(1, 20'000)),
                  [&acc] { ++acc; });
            }
            simulator.run();
          }
          sim::CellResult result;
          result.metrics.increment("events", static_cast<std::int64_t>(acc));
          return result;
        });
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 64 * 64);
}
BENCHMARK(BM_ParallelSweepCells)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::single_domain_grid(n, n);
  const auto graph = topo.physical_graph();
  for (auto _ : state) {
    const auto paths = net::dijkstra(graph, net::NodeId{0});
    benchmark::DoNotOptimize(paths.distance.back());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Dijkstra)->Arg(8)->Arg(16)->Arg(32);

void BM_DataPlaneTrace(benchmark::State& state) {
  core::EvolvableInternet net(net::single_domain_grid(8, 8));
  net.start();
  const auto& routers = net.topology().domain(net::DomainId{0}).routers;
  const auto dst = net.topology().router(routers.back()).loopback;
  for (auto _ : state) {
    const auto trace = net.network().trace(routers.front(), dst);
    benchmark::DoNotOptimize(trace.cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataPlaneTrace);

void BM_DataPlaneTraceBatch(benchmark::State& state) {
  // All-pairs-from-corner probe fan-out through trace_batch: amortizes
  // compiled-FIB freshness checks and result allocation across a sweep.
  core::EvolvableInternet net(net::single_domain_grid(8, 8));
  net.start();
  const auto& routers = net.topology().domain(net::DomainId{0}).routers;
  std::vector<net::Network::ProbeSpec> probes;
  probes.reserve(routers.size());
  for (const auto dst : routers) {
    probes.push_back({.from = routers.front(),
                      .dst = net.topology().router(dst).loopback});
  }
  for (auto _ : state) {
    const auto traces = net.network().trace_batch(probes);
    benchmark::DoNotOptimize(traces.back().cost);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_DataPlaneTraceBatch);

void BM_LinkStateConvergence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    const auto d = topo.add_domain("d");
    sim::Rng rng{42};
    net::populate_domain(topo, d, {.routers = n, .chord_probability = 0.3}, rng);
    sim::Simulator simulator;
    net::Network network(std::move(topo));
    igp::LinkStateIgp igp(simulator, network, d);
    state.ResumeTiming();
    igp.start();
    simulator.run();
    benchmark::DoNotOptimize(igp.messages_sent());
  }
}
BENCHMARK(BM_LinkStateConvergence)->Arg(8)->Arg(16)->Arg(32);

void BM_DistanceVectorConvergence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    const auto d = topo.add_domain("d");
    sim::Rng rng{42};
    net::populate_domain(topo, d, {.routers = n, .chord_probability = 0.3}, rng);
    sim::Simulator simulator;
    net::Network network(std::move(topo));
    igp::DistanceVectorIgp igp(simulator, network, d);
    state.ResumeTiming();
    igp.start();
    simulator.run();
    benchmark::DoNotOptimize(igp.messages_sent());
  }
}
BENCHMARK(BM_DistanceVectorConvergence)->Arg(8)->Arg(16)->Arg(32);

void BM_BgpConvergence(benchmark::State& state) {
  const auto domains = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = net::generate_transit_stub(
        {.transit_domains = domains / 4 + 1,
         .stubs_per_transit = 3,
         .seed = 11});
    auto net = std::make_unique<core::EvolvableInternet>(std::move(topo));
    state.ResumeTiming();
    net->start();
    benchmark::DoNotOptimize(net->bgp().messages_sent());
  }
}
BENCHMARK(BM_BgpConvergence)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_VnBoneRebuild(benchmark::State& state) {
  auto topo = net::generate_transit_stub(
      {.transit_domains = 4, .stubs_per_transit = 3, .seed = 13});
  core::EvolvableInternet net(std::move(topo));
  net.start();
  for (const auto& d : net.topology().domains()) net.deploy_domain(d.id);
  net.converge();
  for (auto _ : state) {
    net.vnbone().rebuild();
    benchmark::DoNotOptimize(net.vnbone().virtual_links().size());
  }
  state.SetLabel(std::to_string(net.vnbone().deployed_routers().size()) +
                 " routers");
}
BENCHMARK(BM_VnBoneRebuild)->Unit(benchmark::kMillisecond);

void BM_EndToEndSend(benchmark::State& state) {
  auto topo = net::generate_transit_stub(
      {.transit_domains = 2, .stubs_per_transit = 2, .seed = 17});
  sim::Rng rng{17};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet net(std::move(topo));
  net.start();
  net.deploy_domain(net::DomainId{0});
  net.converge();
  for (auto _ : state) {
    const auto trace = core::send_ipvn(net, net::HostId{0}, net::HostId{7});
    benchmark::DoNotOptimize(trace.delivered);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndSend);

/// ConsoleReporter that additionally records ns_per_op (and items_per_sec
/// when SetItemsProcessed was used) for the --json artifact.
class JsonRecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRecordingReporter(bench::JsonWriter& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      const std::string name = run.benchmark_name();
      json_.set(name + ".ns_per_op", run.real_accumulated_time /
                                         static_cast<double>(run.iterations) *
                                         1e9);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        json_.set(name + ".items_per_sec", items->second.value);
      }
    }
  }

 private:
  bench::JsonWriter& json_;
};

}  // namespace
}  // namespace evo

int main(int argc, char** argv) {
  // Peel off --json <path> (ours) before google-benchmark sees the rest.
  std::string json_path;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::string_view(*it) == "--json" && it + 1 != args.end()) {
      json_path = *(it + 1);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  evo::bench::JsonWriter json;
  evo::bench::fill_standard_meta(json, "micro_substrate", 1);
  evo::JsonRecordingReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
