// Experiment E7 (§3.3.1): vN-Bone construction — the k-closest neighbor
// rule, partition detection/repair, bootstrap tunnels, and congruence of
// the virtual topology with the physical one as deployment spreads.
#include "bench_util.h"

#include "sim/metrics.h"
#include "vnbone/bgpvn.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::NodeId;

/// Congruence: mean ratio of vN-Bone path cost to physical path cost
/// between random deployed pairs (1.0 = perfectly congruent).
double congruence(EvolvableInternet& net, sim::Rng& rng) {
  const auto deployed = net.vnbone().deployed_routers();
  if (deployed.size() < 2) return 1.0;
  const auto vgraph = net.vnbone().virtual_graph();
  const auto pgraph = net.topology().physical_graph();
  sim::Summary ratio;
  for (int i = 0; i < 64; ++i) {
    const NodeId a = rng.pick(deployed);
    const NodeId b = rng.pick(deployed);
    if (a == b) continue;
    const auto vp = net::dijkstra(vgraph, a);
    const auto pp = net::dijkstra(pgraph, a);
    if (!vp.reachable(b) || !pp.reachable(b) || pp.distance_to(b) == 0) continue;
    ratio.add(static_cast<double>(vp.distance_to(b)) /
              static_cast<double>(pp.distance_to(b)));
  }
  return ratio.empty() ? 1.0 : ratio.mean();
}

void k_sweep() {
  bench::banner("E7/A: intra-domain degree k vs bone quality (one 24-router domain)");
  bench::row("%-6s %-10s %-14s %-16s %-14s", "k", "links", "repairs",
             "mean-degree", "congruence");
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 6u}) {
    net::Topology topo;
    const auto d = topo.add_domain("big", /*stub=*/true);
    sim::Rng gen{7007};
    net::IntraDomainParams params;
    params.routers = 24;
    params.chord_probability = 0.2;
    params.max_cost = 9;
    net::populate_domain(topo, d, params, gen);

    core::Options options;
    options.vnbone.k_neighbors = k;
    EvolvableInternet net(std::move(topo), options);
    net.start();
    for (const NodeId r : net.topology().domain(d).routers) net.deploy_router(r);
    net.converge();

    sim::Rng rng{k};
    const auto links = net.vnbone().virtual_links().size();
    const double degree =
        2.0 * static_cast<double>(links) /
        static_cast<double>(net.vnbone().deployed_routers().size());
    bench::row("%-6u %-10zu %-14zu %-16.2f %-14.3f", k, links,
               net.vnbone().partition_repairs(), degree, congruence(net, rng));
  }
  bench::row(
      "claim: small k keeps the bone sparse; the repair rule guarantees "
      "connectivity even at k=1; congruence improves with k.");
}

void deployment_sweep() {
  bench::banner(
      "E7/B: bone shape vs deployment fraction (transit-stub, 20 domains, "
      "random router order)");
  bench::row("%-12s %-10s %-14s %-12s %-12s %-12s", "routers", "links",
             "peering-tun", "bootstraps", "repairs", "congruence");
  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 7007},
                                  /*hosts_per_stub=*/0);
  std::vector<NodeId> order;
  for (const auto& r : net->topology().routers()) order.push_back(r.id);
  sim::Rng rng{77};
  rng.shuffle(order);

  std::size_t step = 0;
  for (const NodeId r : order) {
    net->deploy_router(r);
    ++step;
    if (step % 10 != 0 && step != order.size()) continue;
    net->converge();
    std::size_t peering = 0;
    std::size_t boots = 0;
    for (const auto& l : net->vnbone().virtual_links()) {
      if (l.source == vnbone::VirtualLink::Source::kPeeringTunnel) ++peering;
      if (l.source == vnbone::VirtualLink::Source::kAnycastBootstrap) ++boots;
    }
    sim::Rng crng{step};
    bench::row("%-12zu %-10zu %-14zu %-12zu %-12zu %-12.3f", step,
               net->vnbone().virtual_links().size(), peering, boots,
               net->vnbone().partition_repairs(), congruence(*net, crng));
  }
  bench::row(
      "claim: early scattered deployment leans on anycast bootstrap "
      "tunnels; as deployment fills in, policy (peering) tunnels take over "
      "and the bone becomes congruent with the physical topology.");
}

void bgpvn_cost() {
  bench::banner(
      "E7/C: BGPvN protocol cost vs deployment size (event-driven "
      "path-vector over the bone's tunnels)");
  bench::row("%-12s %-12s %-12s %-14s %-16s", "domains", "messages",
             "rib/domain", "convergence", "proxy-entries");
  for (const std::uint32_t transits : {2u, 4u, 6u}) {
    auto net = bench::make_internet({.transit_domains = transits,
                                     .stubs_per_transit = 3,
                                     .seed = 7009},
                                    /*hosts_per_stub=*/0);
    for (const auto& d : net->topology().domains()) {
      if (!d.stub) net->deploy_domain(d.id);
    }
    net->converge();
    vnbone::BgpVn bgpvn(net->simulator(), net->network(), net->vnbone());
    bgpvn.restart();
    net->simulator().run();
    const auto deployed = net->vnbone().deployed_domains();
    sim::Summary rib;
    for (const auto d : deployed) {
      rib.add(static_cast<double>(bgpvn.rib_size(d)));
    }
    const std::size_t proxies =
        static_cast<std::size_t>(rib.mean()) - deployed.size();
    bench::row("%-12zu %-12llu %-12.1f %-14s %-16zu", deployed.size(),
               static_cast<unsigned long long>(bgpvn.messages_sent()), rib.mean(),
               sim::to_string(bgpvn.convergence_time()).c_str(), proxies);
  }
  bench::row(
      "claim: BGPvN stays tiny — one native route per deployed domain plus "
      "one proxy entry per legacy domain; convergence in protocol time.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::k_sweep();
  evo::deployment_sweep();
  evo::bgpvn_cost();
  return 0;
}
