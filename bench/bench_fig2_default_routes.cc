// Experiment E2 (Figure 2): inter-domain anycast — Option 2 (default-ISP
// rooted addresses) vs Option 1 (global non-aggregatable routes).
//
// Part A replays the figure: D default + Q deployed; X, Y land in D and Z
// in Q; after the Q->Y peering advertisement, Y lands in Q.
//
// Part B quantifies the paper's trade-off at scale: Option 2 routes
// "correctly, although imperfectly in terms of proximity"; peering
// advertisement is "an optimization that leads to more improved
// anycasting". We sweep the fraction of member domains that peer-advertise
// to their neighbors, measuring stretch and the default domain's share of
// the traffic ("the default provider ... receives a larger than normal
// share of IPvN traffic").
#include "bench_util.h"

#include "anycast/resolver.h"
#include "core/scenario.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::NodeId;

void figure_replay() {
  bench::banner("E2/A: Figure 2 replay (default D, member Q, optional Q-Y peering)");
  auto fig = core::make_figure2();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.d);
  net.deploy_domain(fig.q);
  net.converge();

  auto serving = [&](net::HostId h) -> std::string {
    const auto probe = anycast::probe(
        net.network(), net.anycast().group(net.vnbone().anycast_group()),
        net.topology().host(h).access_router);
    if (!probe.delivered()) return "<none>";
    return net.topology()
        .domain(net.topology().router(probe.member).domain)
        .name;
  };

  bench::row("%-22s %-8s %-8s %-8s", "stage", "from-X", "from-Y", "from-Z");
  bench::row("%-22s %-8s %-8s %-8s", "before Q-Y peering",
             serving(fig.host_x).c_str(), serving(fig.host_y).c_str(),
             serving(fig.host_z).c_str());
  net.anycast().advertise_via_peering(net.vnbone().anycast_group(), fig.q, fig.y);
  net.converge();
  bench::row("%-22s %-8s %-8s %-8s", "after Q-Y peering",
             serving(fig.host_x).c_str(), serving(fig.host_y).c_str(),
             serving(fig.host_z).c_str());
}

struct SweepResult {
  double mean_stretch = 0.0;
  double optimal_fraction = 0.0;
  double default_share = 0.0;
  double delivered = 0.0;
  double mean_anycast_rib = 0.0;  // per-border BGP state for this group
};

SweepResult measure(EvolvableInternet& net) {
  // The relevant group is the last one created (the vN-Bone's, or the
  // manually built GIA group).
  const auto& group = net.anycast().group(
      net::GroupId{static_cast<std::uint32_t>(net.anycast().group_count() - 1)});
  const auto catchment = anycast::compute_catchment(net.network(), group);
  SweepResult result;
  result.mean_stretch = catchment.mean_stretch;
  result.optimal_fraction = catchment.optimal_fraction;
  result.delivered = catchment.delivered_fraction;
  std::size_t to_default = 0;
  std::size_t total = 0;
  for (const auto& router : net.topology().routers()) {
    const NodeId member = catchment.member[router.id.value()];
    if (!member.valid()) continue;
    ++total;
    const DomainId default_domain = net.vnbone().anycast_group().valid()
                                        ? net.vnbone().default_domain()
                                        : group.config.default_domain;
    if (net.topology().router(member).domain == default_domain) {
      ++to_default;
    }
  }
  result.default_share =
      total == 0 ? 0.0 : static_cast<double>(to_default) / static_cast<double>(total);
  sim::Summary rib;
  for (const auto& router : net.topology().routers()) {
    if (!router.border) continue;
    rib.add(static_cast<double>(net.bgp().loc_rib_size(router.id, true)));
  }
  result.mean_anycast_rib = rib.mean();
  return result;
}

void deploy_every_third(EvolvableInternet& net) {
  const auto& domains = net.topology().domains();
  for (std::size_t i = 0; i < domains.size(); i += 3) {
    net.deploy_domain(domains[i].id);
  }
  net.converge();
}

/// GIA variant: build the group directly (bypassing the vN-Bone's lazy
/// group creation) so the search radius can be configured, then enroll
/// every third domain's routers.
void deploy_every_third_gia(EvolvableInternet& net, std::uint8_t radius) {
  const auto& domains = net.topology().domains();
  anycast::GroupConfig config;
  config.mode = anycast::InterDomainMode::kGia;
  config.default_domain = domains[0].id;
  config.gia_search_radius = radius;
  const auto g = net.anycast().create_group(config);
  for (std::size_t i = 0; i < domains.size(); i += 3) {
    for (const net::NodeId r : domains[i].routers) {
      net.anycast().add_member(g, r);
    }
  }
  net.converge();
}

void scaled_sweep() {
  bench::banner(
      "E2/B: option-2 peer-advertisement sweep vs option-1 global routes "
      "(transit-stub, 24 domains, 1/3 deployed)");
  bench::row("%-28s %-14s %-14s %-16s %-10s %-12s", "configuration",
             "mean-stretch", "optimal-frac", "default-share", "delivered",
             "anycast-rib");

  const net::TransitStubParams params{.transit_domains = 6,
                                      .stubs_per_transit = 3,
                                      .seed = 2002};

  // Option 2 with increasing peering-advertisement coverage.
  for (const double advertise_fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::Options options;
    options.vnbone.anycast_mode = anycast::InterDomainMode::kDefaultRoute;
    auto net = bench::make_internet(params, 0, options);
    deploy_every_third(*net);
    // Member domains peer-advertise to a prefix of their neighbors.
    sim::Rng rng{7};
    for (const DomainId member_domain : net->vnbone().deployed_domains()) {
      if (member_domain == net->vnbone().default_domain()) continue;
      for (const auto& peering : net->topology().domain(member_domain).peerings) {
        if (rng.uniform() < advertise_fraction) {
          net->anycast().advertise_via_peering(net->vnbone().anycast_group(),
                                               member_domain, peering.neighbor);
        }
      }
    }
    net->converge();
    const auto m = measure(*net);
    char label[64];
    std::snprintf(label, sizeof label, "option-2, %3.0f%% peering adv",
                  advertise_fraction * 100);
    bench::row("%-28s %-14.3f %-14.3f %-16.3f %-10.3f %-12.2f", label,
               m.mean_stretch, m.optimal_fraction, m.default_share, m.delivered,
               m.mean_anycast_rib);
  }

  // GIA baseline (radius sweep).
  for (const std::uint8_t radius : {1, 2, 4}) {
    core::Options options;
    options.vnbone.anycast_mode = anycast::InterDomainMode::kGia;
    auto net = bench::make_internet(params, 0, options);
    // Patch the group's search radius before deployment: GIA groups are
    // created lazily at first deployment, so configure via the vnbone's
    // anycast mode and re-create membership with the radius.
    deploy_every_third_gia(*net, radius);
    const auto m = measure(*net);
    char label[64];
    std::snprintf(label, sizeof label, "GIA, search radius %u", radius);
    bench::row("%-28s %-14.3f %-14.3f %-16.3f %-10.3f %-12.2f", label,
               m.mean_stretch, m.optimal_fraction, m.default_share, m.delivered,
               m.mean_anycast_rib);
  }

  // Option 1 baseline.
  {
    core::Options options;
    options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
    auto net = bench::make_internet(params, 0, options);
    deploy_every_third(*net);
    const auto m = measure(*net);
    bench::row("%-28s %-14.3f %-14.3f %-16.3f %-10.3f %-12.2f",
               "option-1, global routes", m.mean_stretch, m.optimal_fraction,
               m.default_share, m.delivered, m.mean_anycast_rib);
  }
  bench::row(
      "claim: option 2 delivers correctly everywhere; without peering the "
      "default domain is a hotspot (large default-share) and proximity is "
      "imperfect. Peering advertisement drains the hotspot and raises the "
      "optimal fraction; at 100%% coverage it reproduces option 1 exactly. "
      "GIA matches option-1 proximity in this dense core (members are "
      "always within the search radius) while bounding how far each /32 "
      "travels — the rib column shows the state saving at radius 1.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::figure_replay();
  evo::scaled_sweep();
  return 0;
}
