// Experiment E4 (Figure 4): advertising-by-proxy.
//
// Part A replays the figure: A, B, C deployed; M, N, Z legacy; the
// expensive legacy chain A-M-N-Z loses to the cheap deployed chain
// A-B-C-Z once B and C advertise their BGPv(N-1) distance to Z into
// BGPvN.
//
// Part B scales it: total path cost to legacy destinations with and
// without proxy advertisement, as the deployment fraction grows.
#include "bench_util.h"

#include "core/scenario.h"
#include "core/trace.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using vnbone::EgressMode;

void figure_replay() {
  bench::banner("E4/A: Figure 4 replay (A -> Z with and without proxy)");
  auto fig = core::make_figure4();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.deploy_domain(fig.b);
  net.deploy_domain(fig.c);
  net.converge();

  bench::row("%-24s %-12s %-12s %-12s", "mode", "egress-ISP", "total-cost",
             "vn-hops");
  for (const EgressMode mode :
       {EgressMode::kOwnPathKnowledge, EgressMode::kProxyAdvertising}) {
    const auto trace = core::send_ipvn(net, fig.src, fig.dst, mode);
    bench::row("%-24s %-12s %-12llu %-12zu", to_string(mode),
               trace.delivered
                   ? net.topology()
                         .domain(net.topology().router(trace.egress).domain)
                         .name.c_str()
                   : "<failed>",
               static_cast<unsigned long long>(trace.total_cost()),
               trace.vn_route.vn_hop_count());
  }
}

void scaled_sweep() {
  bench::banner(
      "E4/B: mean cost to legacy destinations vs deployment fraction "
      "(transit-stub, 24 domains)");
  bench::row("%-12s %-20s %-20s %-12s", "deployed", "cost-no-proxy",
             "cost-with-proxy", "improvement");

  auto net = bench::make_internet({.transit_domains = 6,
                                   .stubs_per_transit = 3,
                                   .seed = 4004},
                                  /*hosts_per_stub=*/1);
  const auto& domains = net->topology().domains();
  std::size_t deployed = 0;
  for (const auto& domain : domains) {
    net->deploy_domain(domain.id);
    net->converge();
    ++deployed;
    sim::Summary no_proxy;
    sim::Summary with_proxy;
    const auto& hosts = net->topology().hosts();
    for (const auto& src : hosts) {
      for (const auto& dst : hosts) {
        if (src.id == dst.id) continue;
        // Only legacy destinations exercise proxy advertising.
        const auto dst_domain =
            net->topology().router(net->topology().host(dst.id).access_router).domain;
        if (net->vnbone().domain_deployed(dst_domain)) continue;
        const auto a =
            core::send_ipvn(*net, src.id, dst.id, EgressMode::kOwnPathKnowledge);
        const auto b =
            core::send_ipvn(*net, src.id, dst.id, EgressMode::kProxyAdvertising);
        if (!a.delivered || !b.delivered) continue;
        no_proxy.add(static_cast<double>(a.total_cost()));
        with_proxy.add(static_cast<double>(b.total_cost()));
      }
    }
    if (no_proxy.empty()) {
      bench::row("%-12zu (all destinations deployed; proxy moot)", deployed);
      continue;
    }
    bench::row("%-12zu %-20.2f %-20.2f %-12.3f", deployed, no_proxy.mean(),
               with_proxy.mean(),
               no_proxy.mean() > 0 ? 1.0 - with_proxy.mean() / no_proxy.mean()
                                   : 0.0);
  }
  bench::row(
      "claim: proxy advertisement rescues destinations that are invisible "
      "from the ingress's own BGPv(N-1) path (early deployment; Figure 4's "
      "A->Z) and tracks own-path performance elsewhere — its coarse AS-hop "
      "metric can cost a few percent at high deployment, the price of "
      "advertising reachability rather than true distance.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::figure_replay();
  evo::scaled_sweep();
  return 0;
}
