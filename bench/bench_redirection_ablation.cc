// Experiment E10 (§2.2 vs §2.3): application-level broker redirection vs
// network-level anycast redirection — the paper's central architectural
// choice, measured.
//
// Part A: ISP participation. Brokers depend on ISPs reporting deployment
// ("third party-brokers are dependent on ISPs for the deployment
// information needed to effect redirection"); we sweep the participating
// fraction and measure delivery and ingress proximity. Anycast needs no
// participation at all.
//
// Part B: churn and staleness. Deployment changes between broker
// refreshes produce redirects to routers that no longer serve IPvN; the
// network-level mechanism "self-manages" — we measure failure rates for
// both as routers churn.
#include "bench_util.h"

#include "anycast/resolver.h"
#include "core/universal_access.h"
#include "redirect/broker.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::HostId;
using net::NodeId;

void participation_sweep() {
  bench::banner(
      "E10/A: broker participation sweep vs anycast (transit-stub, 20 "
      "domains, transits deployed)");
  bench::row("%-26s %-12s %-16s %-14s", "redirection", "delivered",
             "mean-ingress-dist", "vs-optimal");

  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 10010},
                                  /*hosts_per_stub=*/2);
  for (const auto& d : net->topology().domains()) {
    if (!d.stub) net->deploy_domain(d.id);
  }
  net->converge();
  const auto& topo = net->topology();
  const auto& hosts = topo.hosts();
  const auto& group = net->anycast().group(net->vnbone().anycast_group());
  const anycast::ClosestMemberOracle oracle(topo, group);

  std::vector<core::HostPair> pairs;
  for (const auto& src : hosts) {
    for (const auto& dst : hosts) {
      if (src.id != dst.id) pairs.push_back({src.id, dst.id});
    }
  }

  // `batch_sender` maps the pair list to one EndToEndTrace per pair; the
  // anycast arm rides core::send_ipvn_batch so FIB compilation is
  // amortized across the sweep.
  auto measure = [&](auto&& batch_sender, const char* label) {
    sim::Summary ingress_dist;
    sim::Summary optimal_dist;
    std::size_t delivered = 0;
    const std::vector<core::EndToEndTrace> traces = batch_sender(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const core::EndToEndTrace& trace = traces[i];
      if (!trace.delivered) continue;
      ++delivered;
      ingress_dist.add(static_cast<double>(trace.segments.front().trace.cost));
      optimal_dist.add(static_cast<double>(
          oracle.distance_from(topo.host(pairs[i].src).access_router)));
    }
    bench::row("%-26s %zu/%-9zu %-16.2f %+.2f", label, delivered, pairs.size(),
               ingress_dist.mean(), ingress_dist.mean() - optimal_dist.mean());
  };

  sim::Rng rng{10};
  for (const double fraction : {0.25, 0.5, 0.75, 1.0}) {
    redirect::BrokerService broker(*net);
    for (const auto& d : topo.domains()) {
      if (rng.uniform() < fraction) broker.set_participation(d.id, true);
    }
    broker.refresh();
    char label[64];
    std::snprintf(label, sizeof label, "broker, %3.0f%% participation",
                  fraction * 100);
    measure(
        [&](const std::vector<core::HostPair>& batch) {
          std::vector<core::EndToEndTrace> traces;
          traces.reserve(batch.size());
          for (const auto& [s, d] : batch) {
            traces.push_back(redirect::send_ipvn_via_broker(*net, broker, s, d));
          }
          return traces;
        },
        label);
  }
  measure(
      [&](const std::vector<core::HostPair>& batch) {
        return core::send_ipvn_batch(*net, batch);
      },
      "anycast (network-level)");
  bench::row(
      "claim: the broker needs broad ISP participation to approach anycast "
      "proximity, and anycast requires none — the incentive gap the paper "
      "identifies.");
}

void churn_sweep() {
  bench::banner("E10/B: failure rate under deployment churn (refresh lag)");
  bench::row("%-24s %-18s %-18s", "churn events", "broker failures",
             "anycast failures");

  auto net = bench::make_internet({.transit_domains = 3,
                                   .stubs_per_transit = 3,
                                   .seed = 10020},
                                  /*hosts_per_stub=*/1);
  for (const auto& d : net->topology().domains()) net->deploy_domain(d.id);
  net->converge();
  redirect::BrokerService broker(*net);
  broker.set_all_participating();
  broker.refresh();

  const auto& hosts = net->topology().hosts();
  sim::Rng rng{20};
  auto failure_counts = [&](int churn_events) {
    // Churn: random routers undeploy (between broker refreshes).
    std::vector<NodeId> pool = net->vnbone().deployed_routers();
    for (int i = 0; i < churn_events && pool.size() > 1; ++i) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
      net->undeploy_router(pool[idx]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    net->converge();
    std::vector<core::HostPair> pairs;
    for (const auto& src : hosts) {
      for (const auto& dst : hosts) {
        if (src.id != dst.id) pairs.push_back({src.id, dst.id});
      }
    }
    std::size_t broker_failures = 0;
    std::size_t anycast_failures = 0;
    for (const auto& [src, dst] : pairs) {
      if (!redirect::send_ipvn_via_broker(*net, broker, src, dst).delivered) {
        ++broker_failures;
      }
    }
    for (const auto& trace : core::send_ipvn_batch(*net, pairs)) {
      if (!trace.delivered) ++anycast_failures;
    }
    char broker_text[32];
    char anycast_text[32];
    std::snprintf(broker_text, sizeof broker_text, "%zu/%zu", broker_failures,
                  pairs.size());
    std::snprintf(anycast_text, sizeof anycast_text, "%zu/%zu", anycast_failures,
                  pairs.size());
    bench::row("%-24d %-18s %-18s", churn_events, broker_text, anycast_text);
  };

  failure_counts(0);
  failure_counts(4);   // cumulative: 4 routers gone
  failure_counts(8);   // cumulative: 12 routers gone
  bench::row(
      "claim: anycast redirection self-heals through routing; broker "
      "answers rot until the next refresh (\"brokers become a crucial "
      "component of the infrastructure\").");
}

}  // namespace
}  // namespace evo

int main() {
  evo::participation_sweep();
  evo::churn_sweep();
  return 0;
}
