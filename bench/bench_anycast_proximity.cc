// Experiment E6 (§3.1/§3.2): anycast delivers to the closest member, under
// both IGP families, and ISPs can steer the redirection through policy.
//
// Part A: intra-domain — link-state vs distance-vector (plain and tagged)
// on random domains: delivery rate, exactness (delivered cost == oracle),
// and protocol message overhead.
//
// Part B: policy control — Figure 1's "ISP W might, based on peering
// policies, choose to route anycast packets to ISP X before Y": we flip
// W's relationship preferences and watch the catchment move.
#include "bench_util.h"

#include "anycast/resolver.h"
#include "core/scenario.h"
#include "igp/distance_vector.h"
#include "igp/link_state.h"
#include "net/topology_gen.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using net::DomainId;
using net::NodeId;

struct IgpRun {
  double exact_fraction = 0.0;
  double delivered_fraction = 0.0;
  std::uint64_t messages = 0;
};

IgpRun run_igp(core::IgpKind kind, std::uint32_t routers, std::uint64_t seed) {
  net::Topology topo;
  const auto d = topo.add_domain("bench", /*stub=*/true);
  sim::Rng rng{seed};
  net::IntraDomainParams params;
  params.routers = routers;
  params.chord_probability = 0.3;
  params.max_cost = 9;
  net::populate_domain(topo, d, params, rng);

  sim::Simulator simulator;
  net::Network network(std::move(topo));
  std::unique_ptr<igp::Igp> igp;
  switch (kind) {
    case core::IgpKind::kLinkState:
      igp = std::make_unique<igp::LinkStateIgp>(simulator, network, d);
      break;
    case core::IgpKind::kDistanceVector:
      igp = std::make_unique<igp::DistanceVectorIgp>(simulator, network, d);
      break;
    case core::IgpKind::kDistanceVectorTagged: {
      igp::DistanceVectorConfig config;
      config.tagged_advertisements = true;
      igp = std::make_unique<igp::DistanceVectorIgp>(simulator, network, d, config);
      break;
    }
  }

  const auto& routers_vec = network.topology().domain(d).routers;
  const net::Ipv4Addr anycast{0, 1, 255, 1};
  std::vector<NodeId> members;
  for (const auto index : rng.sample_indices(routers_vec.size(), 3)) {
    const NodeId m = routers_vec[index];
    network.add_local_address(m, anycast);
    igp->add_anycast_member(m, anycast);
    members.push_back(m);
  }
  igp->start();
  simulator.run();

  const auto oracle =
      net::dijkstra(network.topology().physical_graph(),
                    std::span<const NodeId>(members));
  IgpRun result;
  std::size_t exact = 0;
  std::size_t delivered = 0;
  // All-router probe fan-out in one batch: compiled forwarding tables are
  // built once per router and shared across every probe that crosses it.
  std::vector<net::Network::ProbeSpec> probes;
  probes.reserve(routers_vec.size());
  for (const NodeId src : routers_vec) {
    probes.push_back({.from = src, .dst = anycast});
  }
  const auto traces = network.trace_batch(probes);
  for (std::size_t i = 0; i < routers_vec.size(); ++i) {
    const auto& trace = traces[i];
    if (!trace.delivered()) continue;
    ++delivered;
    if (trace.cost == oracle.distance_to(routers_vec[i])) ++exact;
  }
  result.delivered_fraction =
      static_cast<double>(delivered) / static_cast<double>(routers_vec.size());
  result.exact_fraction =
      delivered == 0 ? 0.0 : static_cast<double>(exact) / static_cast<double>(delivered);
  result.messages = igp->messages_sent();
  return result;
}

void intra_domain_comparison() {
  bench::banner("E6/A: intra-domain anycast by IGP family (3 members, 10 seeds)");
  bench::row("%-26s %-10s %-12s %-12s %-14s", "igp", "routers", "delivered",
             "exact", "mean-messages");
  for (const core::IgpKind kind :
       {core::IgpKind::kLinkState, core::IgpKind::kDistanceVector,
        core::IgpKind::kDistanceVectorTagged}) {
    for (const std::uint32_t routers : {8u, 16u, 32u}) {
      sim::Summary delivered;
      sim::Summary exact;
      sim::Summary messages;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto run = run_igp(kind, routers, seed * 101);
        delivered.add(run.delivered_fraction);
        exact.add(run.exact_fraction);
        messages.add(static_cast<double>(run.messages));
      }
      bench::row("%-26s %-10u %-12.3f %-12.3f %-14.0f", to_string(kind), routers,
                 delivered.mean(), exact.mean(), messages.mean());
    }
  }
  bench::row(
      "claim: both IGP families deliver to the exact closest member; "
      "distance-vector needs no LSDB but loses member discovery unless "
      "tagged.");
}

void policy_control() {
  bench::banner(
      "E6/B: policy-controlled redirection (Figure 1's W choosing X before Y)");
  // W is transit for deployed X and Y. W's exit choice is hot-potato by
  // default; an operator preference is modeled by biasing W's internal
  // costs toward one border.
  auto fig = core::make_figure1();
  core::Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  core::EvolvableInternet net(std::move(fig.topology), options);
  net.start();
  net.deploy_domain(fig.x);
  net.deploy_domain(fig.y);
  net.converge();

  const auto& topo = net.topology();
  const auto& group = net.anycast().group(net.vnbone().anycast_group());
  bench::row("%-26s %-14s", "W interior bias", "Z's packets land in");
  auto serving = [&]() -> std::string {
    const auto probe = anycast::probe(net.network(), group,
                                      topo.host(fig.client).access_router);
    return probe.delivered()
               ? topo.domain(topo.router(probe.member).domain).name
               : "<none>";
  };
  bench::row("%-26s %-14s", "none (hot potato)", serving().c_str());
  // Policy lever: W withdraws its peering toward Y for this route (the
  // paper's "choose to route anycast packets to ISP X before Y"). Modeled
  // as the W-Y session going administratively down; Z's packets shift to X.
  net::LinkId wy = net::LinkId::invalid();
  for (const auto& link : topo.links()) {
    if (!link.interdomain) continue;
    const auto da = topo.router(link.a).domain;
    const auto db = topo.router(link.b).domain;
    if ((da == fig.w && db == fig.y) || (da == fig.y && db == fig.w)) wy = link.id;
  }
  net.set_link_up(wy, false);
  net.converge();
  bench::row("%-26s %-14s", "W-Y route withdrawn", serving().c_str());
  bench::row(
      "claim: the serving provider follows the ISP's policy choices — "
      "redirection control stays with operators, decentralized.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::intra_domain_comparison();
  evo::policy_control();
  return 0;
}
