// Experiment E12 (§2.1, assumption A4): the incentive structure, measured
// as traffic flows.
//
// Part A — early-adopter advantage: with a fixed IPvN workload, compare
// the traffic a transit ISP attracts (vN ingress + settlement-bearing
// transit hops) when it is the sole deployer vs when it has not deployed.
//
// Part B — competitive erosion: the early adopter's captured share as
// competitors deploy one by one ("late-adopting ISPs will do so only if
// they feel they are at a competitive disadvantage without it").
#include "bench_util.h"

#include "core/economics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;

void early_adopter_advantage() {
  bench::banner(
      "E12/A: traffic attracted by deploying (transit-stub, 20 domains, "
      "all-pairs IPv8 workload)");
  bench::row("%-28s %-12s %-14s %-12s", "scenario (for transit-1)", "vn-ingress",
             "transit-hops", "delivered");

  // Scenario 1: transit-1 does NOT deploy (transit-0 is the only deployer).
  {
    auto net = bench::make_internet({.transit_domains = 4,
                                     .stubs_per_transit = 4,
                                     .seed = 12012},
                                    /*hosts_per_stub=*/2);
    net->deploy_domain(DomainId{0});
    net->converge();
    const auto account = core::account_ipvn_traffic(*net);
    const auto& t = account.domain(DomainId{1});
    bench::row("%-28s %-12llu %-14llu %llu/%llu", "stays legacy",
               static_cast<unsigned long long>(t.vn_ingress),
               static_cast<unsigned long long>(t.transit_hops),
               static_cast<unsigned long long>(account.flows_delivered),
               static_cast<unsigned long long>(account.flows_attempted));
  }
  // Scenario 2: transit-1 deploys too.
  {
    auto net = bench::make_internet({.transit_domains = 4,
                                     .stubs_per_transit = 4,
                                     .seed = 12012},
                                    /*hosts_per_stub=*/2);
    net->deploy_domain(DomainId{0});
    net->deploy_domain(DomainId{1});
    net->converge();
    const auto account = core::account_ipvn_traffic(*net);
    const auto& t = account.domain(DomainId{1});
    bench::row("%-28s %-12llu %-14llu %llu/%llu", "deploys IPv8",
               static_cast<unsigned long long>(t.vn_ingress),
               static_cast<unsigned long long>(t.transit_hops),
               static_cast<unsigned long long>(account.flows_delivered),
               static_cast<unsigned long long>(account.flows_attempted));
  }
  bench::row(
      "claim: deploying turns an ISP into a vN ingress for its whole "
      "catchment (A4's \"attracts new traffic\" => settlement revenue).");
}

void competitive_erosion() {
  bench::banner(
      "E12/B: the early adopter's ingress share as competitors deploy");
  bench::row("%-12s %-22s %-22s", "deployers", "adopter-ingress-share",
             "adopter-transit-hops");

  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 12013},
                                  /*hosts_per_stub=*/2);
  const auto& domains = net->topology().domains();
  std::size_t deployers = 0;
  for (const auto& d : domains) {
    if (d.stub) continue;
    net->deploy_domain(d.id);
    net->converge();
    ++deployers;
    const auto account = core::account_ipvn_traffic(*net);
    const auto& adopter = account.domain(DomainId{0});
    const double share =
        account.flows_delivered == 0
            ? 0.0
            : static_cast<double>(adopter.vn_ingress) /
                  static_cast<double>(account.flows_delivered);
    bench::row("%-12zu %-22.3f %-22llu", deployers, share,
               static_cast<unsigned long long>(adopter.transit_hops));
  }
  bench::row(
      "claim: the first mover's monopoly on IPvN ingress erodes as rivals "
      "deploy — the competitive pressure that keeps evolution moving.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::early_adopter_advantage();
  evo::competitive_erosion();
  return 0;
}
