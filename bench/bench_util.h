// Shared helpers for the experiment benchmarks: internet builders, table
// printing, and sweep drivers. Each bench binary regenerates one
// experiment row of EXPERIMENTS.md (see DESIGN.md §4 for the index).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo::bench {

/// A transit-stub Internet with hosts, started and converged.
inline std::unique_ptr<core::EvolvableInternet> make_internet(
    const net::TransitStubParams& params, std::uint32_t hosts_per_stub,
    core::Options options = {}) {
  auto topo = net::generate_transit_stub(params);
  sim::Rng rng{params.seed ^ 0xB0B};
  if (hosts_per_stub > 0) net::attach_hosts(topo, hosts_per_stub, rng);
  auto internet =
      std::make_unique<core::EvolvableInternet>(std::move(topo), options);
  internet->start();
  return internet;
}

/// printf into a row of the experiment table.
inline void row(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Section banner for a bench's output.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subbanner(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

}  // namespace evo::bench

/// Hard requirement inside a bench scenario: abort loudly if violated
/// (benches are not tests, but silently wrong scenarios poison results).
#define EVO_BENCH_REQUIRE(cond)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "bench requirement failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
