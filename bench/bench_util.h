// Shared helpers for the experiment benchmarks: internet builders, table
// printing, and sweep drivers. Each bench binary regenerates one
// experiment row of EXPERIMENTS.md (see DESIGN.md §4 for the index).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/evolvable_internet.h"
#include "net/topology_gen.h"

namespace evo::bench {

/// Common bench command line: `--json <path>` emits a {metric → value}
/// artifact, `--threads <n>` sizes the ParallelSweep pool (0 = all cores).
struct Args {
  std::string json_path;
  unsigned threads = 0;
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--threads <n>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Flat {metric → value} JSON artifact (BENCH_<name>.json): one number per
/// metric, keys sorted, so committed baselines diff cleanly run-to-run.
/// An optional "meta" object (bench name, thread count, git describe)
/// carries provenance; bench_compare.py ignores it.
class JsonWriter {
 public:
  void set(const std::string& name, double value) { values_[name] = value; }

  /// String-valued provenance entry under the "meta" object.
  void set_meta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    if (!meta_.empty()) {
      std::fprintf(f, "  \"meta\": {");
      std::size_t m = 0;
      for (const auto& [key, value] : meta_) {
        std::fprintf(f, "\"%s\": \"%s\"%s", key.c_str(), value.c_str(),
                     ++m < meta_.size() ? ", " : "");
      }
      std::fprintf(f, "}%s\n", values_.empty() ? "" : ",");
    }
    std::size_t i = 0;
    for (const auto& [name, value] : values_) {
      std::fprintf(f, "  \"%s\": %.6g%s\n", name.c_str(), value,
                   ++i < values_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %zu metrics to %s\n", values_.size(), path.c_str());
    return true;
  }

  bool empty() const { return values_.empty(); }

 private:
  std::map<std::string, double> values_;
  std::map<std::string, std::string> meta_;
};

#ifndef EVO_GIT_DESCRIBE
#define EVO_GIT_DESCRIBE "unknown"
#endif

/// Standard provenance for a bench artifact: which binary, how many sweep
/// threads, which commit (EVO_GIT_DESCRIBE is stamped by CMake).
inline void fill_standard_meta(JsonWriter& json, const std::string& bench_name,
                               unsigned threads) {
  json.set_meta("bench", bench_name);
  json.set_meta("threads", std::to_string(threads));
  json.set_meta("git", EVO_GIT_DESCRIBE);
}

/// A transit-stub Internet with hosts, started and converged.
inline std::unique_ptr<core::EvolvableInternet> make_internet(
    const net::TransitStubParams& params, std::uint32_t hosts_per_stub,
    core::Options options = {}) {
  auto topo = net::generate_transit_stub(params);
  sim::Rng rng{params.seed ^ 0xB0B};
  if (hosts_per_stub > 0) net::attach_hosts(topo, hosts_per_stub, rng);
  auto internet =
      std::make_unique<core::EvolvableInternet>(std::move(topo), options);
  internet->start();
  return internet;
}

/// printf into a row of the experiment table.
inline void row(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// printf one table row into a sweep cell's text buffer instead of stdout;
/// ParallelSweep cells must not print directly (output is emitted in cell
/// order after the pool drains, keeping it byte-identical at any -j).
inline void cell_row(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
inline void cell_row(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

/// Section banner for a bench's output.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subbanner(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

}  // namespace evo::bench

/// Hard requirement inside a bench scenario: abort loudly if violated
/// (benches are not tests, but silently wrong scenarios poison results).
#define EVO_BENCH_REQUIRE(cond)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "bench requirement failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
