// Experiment E1 (Figure 1): seamless spread of deployment.
//
// Part A replays the figure exactly: IPv8 deployed successively in X, Y,
// Z; at each stage we report which provider serves client C, the
// redirection cost, and the number of client-side reconfigurations
// (must stay zero).
//
// Part B scales the claim: on a transit-stub Internet, sweep the fraction
// of deployed domains and measure the distance from every router to its
// anycast ingress. The paper's claim is the redirection distance shrinks
// monotonically while clients stay untouched.
#include "bench_util.h"

#include "anycast/resolver.h"
#include "core/scenario.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::NodeId;

void figure_replay() {
  bench::banner("E1/A: Figure 1 replay (IPv8 in X, then Y, then Z)");
  auto fig = core::make_figure1();
  core::Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  EvolvableInternet net(std::move(fig.topology), options);
  net.start();
  const NodeId client = net.topology().host(fig.client).access_router;

  bench::row("%-8s %-16s %-12s %-18s", "stage", "serving-ISP", "cost",
             "client-reconfigs");
  int stage = 0;
  net::Ipv4Addr last_address;
  int reconfigs = 0;
  for (const DomainId d : {fig.x, fig.y, fig.z}) {
    net.deploy_domain(d);
    net.converge();
    ++stage;
    const auto& group = net.anycast().group(net.vnbone().anycast_group());
    // Client-visible config: the anycast address. Count changes.
    if (stage > 1 && group.address != last_address) ++reconfigs;
    last_address = group.address;
    const auto probe = anycast::probe(net.network(), group, client);
    bench::row("%-8d %-16s %-12llu %-18d", stage,
               probe.delivered()
                   ? net.topology()
                         .domain(net.topology().router(probe.member).domain)
                         .name.c_str()
                   : "<none>",
               static_cast<unsigned long long>(probe.trace.cost), reconfigs);
  }
}

void scaled_sweep() {
  bench::banner(
      "E1/B: redirection distance vs deployment fraction "
      "(transit-stub, 20 domains, option-1 anycast)");
  bench::row("%-12s %-10s %-12s %-12s %-12s %-10s", "deployed", "fraction",
             "mean-dist", "p95-dist", "max-dist", "delivered");

  core::Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 1001},
                                  /*hosts_per_stub=*/0, options);
  const auto& domains = net->topology().domains();
  std::size_t deployed = 0;
  for (const auto& domain : domains) {
    net->deploy_domain(domain.id);
    net->converge();
    ++deployed;
    const auto& group = net->anycast().group(net->vnbone().anycast_group());
    const anycast::ClosestMemberOracle oracle(net->topology(), group);
    sim::Summary dist;
    std::size_t delivered_count = 0;
    // Batched probe fan-out: one trace_batch under the hood, so each
    // router's FIB is compiled at most once per deployment stage.
    std::vector<NodeId> sources;
    sources.reserve(net->topology().router_count());
    for (const auto& router : net->topology().routers()) sources.push_back(router.id);
    for (const auto& probe :
         anycast::probe_batch(net->network(), group, sources, oracle)) {
      if (!probe.delivered()) continue;
      ++delivered_count;
      dist.add(static_cast<double>(probe.trace.cost));
    }
    bench::row("%-12zu %-10.2f %-12.2f %-12.0f %-12.0f %zu/%zu", deployed,
               static_cast<double>(deployed) / static_cast<double>(domains.size()),
               dist.mean(), dist.percentile(95), dist.max(), delivered_count,
               net->topology().router_count());
  }
  bench::row(
      "claim: distance to the IPvN ingress shrinks as deployment spreads; "
      "delivery is total throughout (universal access).");
}

}  // namespace
}  // namespace evo

int main() {
  evo::figure_replay();
  evo::scaled_sweep();
  return 0;
}
