// Experiment E8 (§2.1): the full evolution story. IPvN rolls out domain
// by domain over a transit-stub Internet; at every epoch we verify
// universal access (every host pair exchanges IPvN datagrams), and track
// stretch, native-address adoption, vN-Bone size, and per-ISP anycast
// traffic share (the revenue-flow signal of assumption A4).
//
// Epoch k is an independent ParallelSweep cell: it builds its own
// Internet, deploys the first k domains as one adoption batch, converges
// once, and measures. Epoch state is adoption-set-determined, so the
// per-epoch rows match the old serial deploy-converge-measure loop while
// cells run concurrently under `--threads N`.
#include "bench_util.h"

#include "anycast/resolver.h"
#include "core/universal_access.h"
#include "sim/metrics.h"
#include "sim/parallel.h"

namespace evo {
namespace {

using core::EvolvableInternet;

std::unique_ptr<EvolvableInternet> deployed_internet(std::size_t epochs) {
  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 8008},
                                  /*hosts_per_stub=*/2);
  const auto& domains = net->topology().domains();
  for (std::size_t i = 0; i < epochs; ++i) net->deploy_domain(domains[i].id);
  net->converge();
  return net;
}

sim::CellResult run_epoch(std::size_t epoch, std::size_t total_epochs) {
  auto net = deployed_internet(epoch);
  const auto& topo = net->topology();

  sim::CellResult result;
  // verify_universal_access rides core::send_ipvn_batch (and
  // compute_catchment below rides anycast::probe_batch), so each router's
  // FIB is compiled at most once per adoption epoch across all probes.
  const auto report = core::verify_universal_access(*net, /*max_pairs=*/300);
  std::size_t native = 0;
  for (const auto& host : topo.hosts()) {
    if (net->hosts().has_native_address(host.id)) ++native;
  }
  bench::cell_row(result.text,
                  "%-8zu %-10s %zu/%-9zu %-12.2f %-14.3f %-12.3f %-12zu",
                  epoch, report.universal() ? "YES" : "NO",
                  report.pairs_delivered, report.pairs_checked,
                  report.mean_cost, report.mean_stretch,
                  static_cast<double>(native) /
                      static_cast<double>(topo.host_count()),
                  net->vnbone().virtual_links().size());
  result.metrics.observe("e8.mean_stretch", report.mean_stretch);
  result.metrics.observe("e8.pairs_delivered",
                         static_cast<double>(report.pairs_delivered));

  if (epoch == total_epochs) {
    // Revenue-flow signal: share of anycast ingress traffic captured per
    // deployed ISP at an intermediate stage would be the A4 argument; show
    // it for the final state as a catchment distribution instead.
    std::string& out = result.text;
    out += "--- final catchment per ISP (assumption A4's traffic signal) ---\n";
    const auto& group = net->anycast().group(net->vnbone().anycast_group());
    const auto catchment = anycast::compute_catchment(net->network(), group);
    std::vector<std::size_t> per_domain(topo.domain_count(), 0);
    for (const auto& router : topo.routers()) {
      const auto member = catchment.member[router.id.value()];
      if (member.valid()) ++per_domain[topo.router(member).domain.value()];
    }
    for (const auto& domain : topo.domains()) {
      if (per_domain[domain.id.value()] == 0) continue;
      bench::cell_row(out, "  %-14s captures ingress for %3zu routers",
                      domain.name.c_str(), per_domain[domain.id.value()]);
    }
  }
  return result;
}

void evolution_run(const bench::Args& args) {
  bench::banner(
      "E8: full evolution, transit-stub Internet (20 domains, 2 hosts per "
      "stub), domain-by-domain adoption");
  // Count the domains once from a throwaway topology so cells can be sized
  // up front (the generator is deterministic in the seed).
  const std::size_t total_epochs =
      net::generate_transit_stub(
          {.transit_domains = 4, .stubs_per_transit = 4, .seed = 8008})
          .domain_count();

  bench::row("%-8s %-10s %-12s %-12s %-14s %-12s %-12s", "epoch", "UA",
             "delivered", "mean-cost", "mean-stretch", "native-frac",
             "vn-links");
  const sim::ParallelSweep sweep_pool(args.threads);
  const auto results = sweep_pool.run(
      total_epochs, /*sweep_seed=*/8008,
      [total_epochs](std::size_t cell, sim::Rng&) {
        return run_epoch(cell + 1, total_epochs);
      });

  bench::JsonWriter json;
  bench::fill_standard_meta(json, "deployment_evolution", args.threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s", results[i].text.c_str());
    char key[64];
    std::snprintf(key, sizeof key, "e8.epoch_%02zu.mean_stretch", i + 1);
    json.set(key, results[i].metrics.find_summary("e8.mean_stretch")->mean());
  }
  bench::row(
      "claim: universal access holds from the first adopter onwards; "
      "stretch decays toward 1.0 and native addressing reaches 100%% at "
      "full deployment.");
  if (!args.json_path.empty()) json.write(args.json_path);
}

}  // namespace
}  // namespace evo

int main(int argc, char** argv) {
  evo::evolution_run(evo::bench::parse_args(argc, argv));
  return 0;
}
