// Experiment E8 (§2.1): the full evolution story. IPvN rolls out domain
// by domain over a transit-stub Internet; at every epoch we verify
// universal access (every host pair exchanges IPvN datagrams), and track
// stretch, native-address adoption, vN-Bone size, and per-ISP anycast
// traffic share (the revenue-flow signal of assumption A4).
#include "bench_util.h"

#include "anycast/resolver.h"
#include "core/universal_access.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;

void evolution_run() {
  bench::banner(
      "E8: full evolution, transit-stub Internet (20 domains, 2 hosts per "
      "stub), domain-by-domain adoption");
  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 8008},
                                  /*hosts_per_stub=*/2);
  const auto& topo = net->topology();

  bench::row("%-8s %-10s %-12s %-12s %-14s %-12s %-12s", "epoch", "UA",
             "delivered", "mean-cost", "mean-stretch", "native-frac",
             "vn-links");
  std::size_t epoch = 0;
  for (const auto& domain : topo.domains()) {
    net->deploy_domain(domain.id);
    net->converge();
    ++epoch;
    // verify_universal_access rides core::send_ipvn_batch (and
    // compute_catchment below rides anycast::probe_batch), so each router's
    // FIB is compiled at most once per adoption epoch across all probes.
    const auto report = core::verify_universal_access(*net, /*max_pairs=*/300);
    std::size_t native = 0;
    for (const auto& host : topo.hosts()) {
      if (net->hosts().has_native_address(host.id)) ++native;
    }
    bench::row("%-8zu %-10s %zu/%-9zu %-12.2f %-14.3f %-12.3f %-12zu", epoch,
               report.universal() ? "YES" : "NO", report.pairs_delivered,
               report.pairs_checked, report.mean_cost, report.mean_stretch,
               static_cast<double>(native) / static_cast<double>(topo.host_count()),
               net->vnbone().virtual_links().size());
  }

  // Revenue-flow signal: share of anycast ingress traffic captured per
  // deployed ISP at an intermediate stage would be the A4 argument; show
  // it for the final state as a catchment distribution instead.
  bench::subbanner("final catchment per ISP (assumption A4's traffic signal)");
  const auto& group = net->anycast().group(net->vnbone().anycast_group());
  const auto catchment = anycast::compute_catchment(net->network(), group);
  std::vector<std::size_t> per_domain(topo.domain_count(), 0);
  for (const auto& router : topo.routers()) {
    const auto member = catchment.member[router.id.value()];
    if (member.valid()) ++per_domain[topo.router(member).domain.value()];
  }
  for (const auto& domain : topo.domains()) {
    if (per_domain[domain.id.value()] == 0) continue;
    bench::row("  %-14s captures ingress for %3zu routers",
               domain.name.c_str(), per_domain[domain.id.value()]);
  }
  bench::row(
      "claim: universal access holds from the first adopter onwards; "
      "stretch decays toward 1.0 and native addressing reaches 100%% at "
      "full deployment.");
}

}  // namespace
}  // namespace evo

int main() {
  evo::evolution_run();
  return 0;
}
