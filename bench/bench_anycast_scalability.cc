// Experiment E5 (§3.2 scalability claim): "anycast addresses ... must be
// advertised individually by routing protocols and lead to routing state
// that grows in direct proportion to the number of anycast groups."
//
// We sweep the number of simultaneously deployed anycast groups under
// Option 1 (global non-aggregatable routes) and Option 2 (default-ISP
// rooted), counting per-router BGP RIB entries and FIB entries. Option 1
// must grow linearly in the group count at *every* router of the
// Internet; Option 2 keeps remote routers' state flat (only member
// domains carry per-group state in their IGP).
#include "bench_util.h"

#include "anycast/anycast.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::NodeId;

struct StateCount {
  double mean_rib = 0.0;
  double mean_fib_anycast = 0.0;
  double max_rib = 0.0;
};

StateCount count_state(EvolvableInternet& net) {
  sim::Summary rib;
  sim::Summary fib;
  for (const auto& router : net.topology().routers()) {
    if (router.border) {
      rib.add(static_cast<double>(
          net.bgp().loc_rib_size(router.id, /*anycast_only=*/true)));
    }
    // One for_each walk counts both origins; no table copy, no second walk.
    std::size_t routed = 0;
    net.network().fib(router.id).for_each([&](const net::FibEntry& e) {
      routed += e.origin == net::RouteOrigin::kBgp ||
                e.origin == net::RouteOrigin::kAnycast;
    });
    fib.add(static_cast<double>(routed));
  }
  return StateCount{rib.mean(), fib.mean(), rib.max()};
}

void sweep(anycast::InterDomainMode mode) {
  bench::subbanner(std::string("mode: ") + to_string(mode));
  bench::row("%-10s %-16s %-16s %-14s", "groups", "mean-anycast-rib",
             "mean-route-fib", "max-anycast-rib");

  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 3,
                                   .seed = 5005},
                                  /*hosts_per_stub=*/0);
  const auto& domains = net->topology().domains();
  sim::Rng rng{55};

  std::vector<net::GroupId> groups;
  for (const std::size_t target : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    while (groups.size() < target) {
      anycast::GroupConfig config;
      config.mode = mode;
      config.default_domain = domains[groups.size() % domains.size()].id;
      const auto g = net->anycast().create_group(config);
      groups.push_back(g);
      // Each group gets members in 3 random domains, one router each.
      const auto picks = rng.sample_indices(domains.size(), 3);
      for (const auto d : picks) {
        const auto& routers = domains[d].routers;
        net->anycast().add_member(
            g, routers[static_cast<std::size_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(routers.size()) - 1))]);
      }
    }
    net->converge();
    const auto state = count_state(*net);
    bench::row("%-10zu %-16.2f %-16.2f %-14.0f", target, state.mean_rib,
               state.mean_fib_anycast, state.max_rib);
  }
}

}  // namespace
}  // namespace evo

int main() {
  evo::bench::banner(
      "E5: routing state vs number of anycast groups (\"state grows in "
      "direct proportion to the number of anycast groups\")");
  evo::sweep(evo::anycast::InterDomainMode::kGlobalRoutes);
  evo::sweep(evo::anycast::InterDomainMode::kDefaultRoute);
  evo::bench::row(
      "claim: option 1 RIB/FIB state is linear in #groups at every router; "
      "option 2 keeps global state flat (no BGP origination), trading "
      "proximity for scalability. The paper also argues #groups stays tiny "
      "(one per IP generation) because ISPs, not endusers, consume them.");
  return 0;
}
