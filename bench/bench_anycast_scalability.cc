// Experiment E5 (§3.2 scalability claim): "anycast addresses ... must be
// advertised individually by routing protocols and lead to routing state
// that grows in direct proportion to the number of anycast groups."
//
// We sweep the number of simultaneously deployed anycast groups under
// Option 1 (global non-aggregatable routes) and Option 2 (default-ISP
// rooted), counting per-router BGP RIB entries and FIB entries. Option 1
// must grow linearly in the group count at *every* router of the
// Internet; Option 2 keeps remote routers' state flat (only member
// domains carry per-group state in their IGP).
//
// Every (mode, #groups) point is an independent ParallelSweep cell that
// builds its own Internet and deploys groups 0..n-1. Group g's membership
// derives from a per-group splitmix64 stream, so all cells place group g
// identically — the same property the old incremental sweep had, but with
// no serial dependency between cells.
#include "bench_util.h"

#include "anycast/anycast.h"
#include "sim/metrics.h"
#include "sim/parallel.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using net::DomainId;
using net::NodeId;

constexpr std::uint64_t kTopologySeed = 5005;
constexpr std::size_t kGroupCounts[] = {1, 2, 4, 8, 16, 32, 64};

struct StateCount {
  double mean_rib = 0.0;
  double mean_fib_anycast = 0.0;
  double max_rib = 0.0;
};

StateCount count_state(EvolvableInternet& net) {
  sim::Summary rib;
  sim::Summary fib;
  for (const auto& router : net.topology().routers()) {
    if (router.border) {
      rib.add(static_cast<double>(
          net.bgp().loc_rib_size(router.id, /*anycast_only=*/true)));
    }
    // One for_each walk counts both origins; no table copy, no second walk.
    std::size_t routed = 0;
    net.network().fib(router.id).for_each([&](const net::FibEntry& e) {
      routed += e.origin == net::RouteOrigin::kBgp ||
                e.origin == net::RouteOrigin::kAnycast;
    });
    fib.add(static_cast<double>(routed));
  }
  return StateCount{rib.mean(), fib.mean(), rib.max()};
}

/// Create group `index` with members in 3 domains drawn from the group's
/// own deterministic stream (identical in every cell that deploys it).
void create_group(EvolvableInternet& net, anycast::InterDomainMode mode,
                  std::size_t index) {
  const auto& domains = net.topology().domains();
  std::uint64_t state = kTopologySeed ^ (0xA17Cu + index);
  sim::Rng rng{sim::splitmix64(state)};
  anycast::GroupConfig config;
  config.mode = mode;
  config.default_domain = domains[index % domains.size()].id;
  const auto g = net.anycast().create_group(config);
  const auto picks = rng.sample_indices(domains.size(), 3);
  for (const auto d : picks) {
    const auto& routers = domains[d].routers;
    net.anycast().add_member(
        g, routers[static_cast<std::size_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(routers.size()) - 1))]);
  }
}

sim::CellResult run_cell(anycast::InterDomainMode mode, std::size_t n_groups) {
  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 3,
                                   .seed = kTopologySeed},
                                  /*hosts_per_stub=*/0);
  for (std::size_t g = 0; g < n_groups; ++g) create_group(*net, mode, g);
  net->converge();
  const auto state = count_state(*net);

  sim::CellResult result;
  bench::cell_row(result.text, "%-10zu %-16.2f %-16.2f %-14.0f", n_groups,
                  state.mean_rib, state.mean_fib_anycast, state.max_rib);
  result.metrics.observe("e5.mean_anycast_rib", state.mean_rib);
  result.metrics.observe("e5.mean_route_fib", state.mean_fib_anycast);
  result.metrics.observe("e5.max_anycast_rib", state.max_rib);
  return result;
}

void sweep(anycast::InterDomainMode mode, const bench::Args& args,
           bench::JsonWriter& json) {
  bench::subbanner(std::string("mode: ") + to_string(mode));
  bench::row("%-10s %-16s %-16s %-14s", "groups", "mean-anycast-rib",
             "mean-route-fib", "max-anycast-rib");

  const std::size_t cells = std::size(kGroupCounts);
  const sim::ParallelSweep sweep_pool(args.threads);
  const auto results = sweep_pool.run(
      cells, kTopologySeed, [mode](std::size_t cell, sim::Rng&) {
        return run_cell(mode, kGroupCounts[cell]);
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s", results[i].text.c_str());
    char key[96];
    std::snprintf(key, sizeof key, "e5.%s.groups_%zu.max_anycast_rib",
                  to_string(mode), kGroupCounts[i]);
    json.set(key, results[i].metrics.find_summary("e5.max_anycast_rib")->max());
  }
}

}  // namespace
}  // namespace evo

int main(int argc, char** argv) {
  const auto args = evo::bench::parse_args(argc, argv);
  evo::bench::banner(
      "E5: routing state vs number of anycast groups (\"state grows in "
      "direct proportion to the number of anycast groups\")");
  evo::bench::JsonWriter json;
  evo::bench::fill_standard_meta(json, "anycast_scalability", args.threads);
  evo::sweep(evo::anycast::InterDomainMode::kGlobalRoutes, args, json);
  evo::sweep(evo::anycast::InterDomainMode::kDefaultRoute, args, json);
  evo::bench::row(
      "claim: option 1 RIB/FIB state is linear in #groups at every router; "
      "option 2 keeps global state flat (no BGP origination), trading "
      "proximity for scalability. The paper also argues #groups stays tiny "
      "(one per IP generation) because ISPs, not endusers, consume them.");
  if (!args.json_path.empty()) json.write(args.json_path);
  return 0;
}
