// Experiment E3 (Figure 3): egress selection with imported BGPv(N-1)
// knowledge.
//
// Part A replays the figure: with only BGPvN the packet exits the vN-Bone
// at M's border X; with BGPv(N-1) import it rides to O's router Y next to
// C's domain, shrinking the legacy tail.
//
// Part B scales it: on a transit-stub Internet with a partially deployed
// vN-Bone, compare the legacy-tail cost and the fraction of the end-to-end
// path under IPvN control, across the egress-selection modes.
#include "bench_util.h"

#include "core/scenario.h"
#include "core/trace.h"
#include "sim/metrics.h"

namespace evo {
namespace {

using core::EvolvableInternet;
using vnbone::EgressMode;

void figure_replay() {
  bench::banner("E3/A: Figure 3 replay (exit at X vs ride to Y)");
  auto fig = core::make_figure3();
  EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.m);
  net.deploy_domain(fig.o);
  net.converge();

  bench::row("%-22s %-14s %-12s %-12s %-10s", "mode", "egress-ISP",
             "legacy-tail", "total-cost", "vn-hops");
  for (const EgressMode mode :
       {EgressMode::kExitAtIngress, EgressMode::kOwnPathKnowledge}) {
    const auto trace = core::send_ipvn(net, fig.a, fig.c, mode);
    bench::row("%-22s %-14s %-12llu %-12llu %-10zu", to_string(mode),
               trace.delivered
                   ? net.topology()
                         .domain(net.topology().router(trace.egress).domain)
                         .name.c_str()
                   : "<failed>",
               static_cast<unsigned long long>(trace.legacy_tail_cost()),
               static_cast<unsigned long long>(trace.total_cost()),
               trace.vn_route.vn_hop_count());
  }
}

void scaled_sweep() {
  bench::banner(
      "E3/B: legacy-tail cost by egress mode (transit-stub, 20 domains, "
      "transits deployed, stubs legacy)");
  auto net = bench::make_internet({.transit_domains = 4,
                                   .stubs_per_transit = 4,
                                   .seed = 3003},
                                  /*hosts_per_stub=*/2);
  // Deploy the transit core only; every host sits in a legacy stub, so
  // every delivery exercises egress selection.
  for (const auto& domain : net->topology().domains()) {
    if (!domain.stub) net->deploy_domain(domain.id);
  }
  net->converge();

  // The §3.3.2 endhost-advertisement alternative needs every destination
  // registered first ("an endhost would periodically repeat this
  // process").
  for (const auto& host : net->topology().hosts()) {
    core::register_endhost_route(*net, host.id);
  }

  bench::row("%-22s %-12s %-12s %-14s %-14s %-10s", "mode", "mean-tail",
             "p95-tail", "mean-total", "vn-controlled", "delivered");
  for (const EgressMode mode :
       {EgressMode::kExitAtIngress, EgressMode::kOwnPathKnowledge,
        EgressMode::kProxyAdvertising, EgressMode::kEndhostAdvertised}) {
    sim::Summary tail;
    sim::Summary total;
    sim::Summary controlled;
    std::size_t delivered = 0;
    std::size_t pairs = 0;
    const auto& hosts = net->topology().hosts();
    for (const auto& src : hosts) {
      for (const auto& dst : hosts) {
        if (src.id == dst.id) continue;
        ++pairs;
        const auto trace = core::send_ipvn(*net, src.id, dst.id, mode);
        if (!trace.delivered) continue;
        ++delivered;
        tail.add(static_cast<double>(trace.legacy_tail_cost()));
        total.add(static_cast<double>(trace.total_cost()));
        const double t = static_cast<double>(trace.total_cost());
        controlled.add(t == 0.0 ? 1.0
                                : 1.0 - static_cast<double>(trace.legacy_tail_cost()) / t);
      }
    }
    bench::row("%-22s %-12.2f %-12.0f %-14.2f %-14.3f %zu/%zu", to_string(mode),
               tail.mean(), tail.percentile(95), total.mean(), controlled.mean(),
               delivered, pairs);
  }
  bench::row(
      "claim: importing BGPv(N-1) tables at IPvN border routers shrinks the "
      "legacy tail and keeps more of the path under IPvN control. The "
      "endhost-advertised alternative gives the shortest tails of all but "
      "costs one BGPvN route per self-addressed host and fate-shares with "
      "the advertising router (see tests/vnbone/test_endhost_routes.cc).");
}

}  // namespace
}  // namespace evo

int main() {
  evo::figure_replay();
  evo::scaled_sweep();
  return 0;
}
