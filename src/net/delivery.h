// Event-driven packet forwarding: packets move hop-by-hop through the
// simulator, accruing link latencies and decrementing TTL — the
// latency-accurate counterpart of Network::trace (which is synchronous
// and cost-only).
#pragma once

#include <cstdint>
#include <functional>

#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace evo::net {

class DeliveryEngine {
 public:
  /// Called when the packet is locally delivered somewhere.
  using DeliveredFn =
      std::function<void(NodeId at, const Packet& packet, sim::Duration elapsed)>;
  /// Called when the packet is dropped (no route, TTL, link down, loop cap).
  using DroppedFn = std::function<void(Network::TraceResult::Outcome reason,
                                       NodeId at, const Packet& packet)>;

  /// References must outlive the engine and any in-flight packets.
  DeliveryEngine(sim::Simulator& simulator, const Network& network);

  /// Telemetry sink for per-hop packet records (hop, delivered, drop).
  /// Null by default; must outlive any in-flight packets when set.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Inject `packet` at `node`. Exactly one of the callbacks fires,
  /// possibly synchronously (local delivery at the injection point).
  /// `on_dropped` may be empty. Forwarding acts on the packet's outermost
  /// IPv4 header.
  void inject(NodeId node, Packet packet, DeliveredFn on_delivered,
              DroppedFn on_dropped = {});

  std::uint64_t packets_forwarded() const { return hops_forwarded_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t packets_dropped() const { return dropped_; }

 private:
  void step(NodeId node, Packet packet, sim::TimePoint injected_at,
            DeliveredFn on_delivered, DroppedFn on_dropped);

  void drop(Network::TraceResult::Outcome reason, NodeId at, const Packet& packet,
            const DroppedFn& on_dropped);

  sim::Simulator& simulator_;
  const Network& network_;
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t hops_forwarded_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace evo::net
