// Compiled forwarding table: a flat, contiguous-array LPM structure built
// from a Fib snapshot.
//
// The binary trie in Fib stays the mutable authoritative store the control
// plane writes; CompiledFib is the read-optimized form the data plane
// consults on every trace hop. Compilation projects the prefix set onto
// disjoint address ranges (prefixes form a laminar family, so a single
// interval sweep suffices), then lays a direct-indexed block table on top
// so a lookup is one table load plus a short bounded binary search over one
// or two cache lines — no per-node heap allocations, no pointer chasing.
//
// Staleness is detected through Fib's route epoch: compile() records the
// source epoch, and Network recompiles a router's CompiledFib lazily when
// its epoch no longer matches (see Network::compiled_fib).
#pragma once

#include <cstdint>
#include <vector>

#include "net/fib.h"

namespace evo::net {

class CompiledFib {
 public:
  /// Rebuild from `fib` and record its epoch. Reuses previously allocated
  /// storage, so periodic recompilation does not churn the allocator.
  void compile(const Fib& fib);

  /// Longest-prefix match over the compiled snapshot; nullptr when no
  /// route covers `addr` (or nothing was compiled yet). Returns the same
  /// winning entry Fib::lookup would.
  const FibEntry* lookup(Ipv4Addr addr) const {
    if (ranges_.empty()) return nullptr;
    const std::uint32_t bits = addr.bits();
    const std::uint32_t block = bits >> shift_;
    // The winner is the last range starting at or before `addr`, bracketed
    // by the block index: index_[b] already points at the last range that
    // starts at or before the block's first address.
    // Branchless bounded search (the comparison becomes a conditional move,
    // so random probes cost no mispredicts): invariant base[0].start <= bits.
    const Range* base = ranges_.data() + index_[block];
    std::size_t n = index_[block + 1] - index_[block] + 1;
    while (n > 1) {
      const std::size_t half = n / 2;
      base += (base[half].start <= bits) ? half : 0;
      n -= half;
    }
    const std::int32_t winner = base->winner;
    return winner < 0 ? nullptr : &entries_[static_cast<std::size_t>(winner)];
  }

  /// Epoch of the Fib this was compiled from; 0 = never compiled.
  std::uint64_t epoch() const { return epoch_; }

  std::size_t entry_count() const { return entries_.size(); }
  /// Number of disjoint address ranges the prefix set projected onto.
  std::size_t range_count() const { return ranges_.size(); }
  /// Bytes of flat storage currently held (entries + ranges + index).
  std::size_t memory_bytes() const;

 private:
  struct Range {
    std::uint32_t start;   // first address covered
    std::int32_t winner;   // index into entries_; -1 = no route
  };

  std::vector<FibEntry> entries_;  // table snapshot, trie order
  std::vector<Range> ranges_;      // disjoint, sorted by start; [0] starts at 0
  // index_[b] = index of the last range starting at or before (b << shift_);
  // one extra slot so lookup can read index_[block + 1] unconditionally.
  std::vector<std::uint32_t> index_;
  unsigned shift_ = 32;
  std::uint64_t epoch_ = 0;
};

}  // namespace evo::net
