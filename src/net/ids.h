// Strong identifier types for network entities.
//
// NodeId, LinkId, DomainId, HostId and GroupId are distinct wrapper types so
// a router index can never be passed where a domain index is expected
// (C++ Core Guidelines P.1/P.4). Each has an invalid() sentinel and hashes.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace evo::net {

namespace detail {

template <typename Tag>
class Id {
 public:
  using underlying = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying value) : value_(value) {}

  static constexpr Id invalid() {
    return Id{std::numeric_limits<underlying>::max()};
  }

  constexpr underlying value() const { return value_; }
  constexpr bool valid() const { return *this != invalid(); }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying value_ = std::numeric_limits<underlying>::max();
};

}  // namespace detail

struct NodeTag {};
struct LinkTag {};
struct DomainTag {};
struct HostTag {};
struct GroupTag {};

/// A router (or switch) in the physical topology.
using NodeId = detail::Id<NodeTag>;
/// A physical link between two nodes.
using LinkId = detail::Id<LinkTag>;
/// An ISP domain (autonomous system).
using DomainId = detail::Id<DomainTag>;
/// An endhost attached to an access router.
using HostId = detail::Id<HostTag>;
/// An anycast group.
using GroupId = detail::Id<GroupTag>;

}  // namespace evo::net

namespace std {

template <typename Tag>
struct hash<evo::net::detail::Id<Tag>> {
  std::size_t operator()(evo::net::detail::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

}  // namespace std
