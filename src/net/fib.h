// Forwarding Information Base: longest-prefix-match over a binary trie.
//
// Each router holds one Fib for IPv(N-1) forwarding. Entries record where
// a route came from (connected / IGP / BGP / anycast) so experiments can
// count per-origin state — e.g. the paper's §3.2 scalability claim that
// Option-1 anycast "leads to routing state that grows in direct proportion
// to the number of anycast groups".
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/graph.h"
#include "net/ids.h"

namespace evo::net {

enum class RouteOrigin : std::uint8_t {
  kConnected,  // local interface / loopback
  kIgp,        // intra-domain routing
  kBgp,        // inter-domain routing
  kAnycast,    // anycast member advertisement
  kStatic,     // operator configuration
};

const char* to_string(RouteOrigin origin);

struct FibEntry {
  Prefix prefix;
  NodeId next_hop;  // invalid() => deliver locally
  LinkId out_link;  // invalid() for local delivery
  RouteOrigin origin = RouteOrigin::kStatic;
  Cost metric = 0;  // distance the producing protocol assigned

  friend bool operator==(const FibEntry&, const FibEntry&) = default;
};

/// Binary-trie FIB with longest-prefix-match lookup.
class Fib {
 public:
  Fib();
  ~Fib();
  Fib(Fib&&) noexcept;
  Fib& operator=(Fib&&) noexcept;
  Fib(const Fib&) = delete;
  Fib& operator=(const Fib&) = delete;

  /// Insert or replace the entry for `entry.prefix`.
  void insert(const FibEntry& entry);

  /// Remove the entry for `prefix` if present; returns true if removed.
  bool remove(const Prefix& prefix);

  /// Remove every entry with the given origin; returns how many.
  std::size_t remove_origin(RouteOrigin origin);

  /// Make the set of entries whose origin is in `origins` exactly equal to
  /// `entries` (each of which must carry an origin from `origins`; a later
  /// duplicate prefix wins). The route epoch is bumped only when the table
  /// actually changes, so a control-plane sync that reinstalls an identical
  /// table leaves compiled forwarding state valid.
  void replace_origins(std::initializer_list<RouteOrigin> origins,
                       std::span<const FibEntry> entries);

  /// Longest-prefix match; nullptr when no route covers `addr`.
  const FibEntry* lookup(Ipv4Addr addr) const;

  /// Exact-prefix fetch (no LPM); nullptr if absent.
  const FibEntry* find(const Prefix& prefix) const;

  std::size_t size() const { return size_; }
  std::size_t size_with_origin(RouteOrigin origin) const;

  /// Visit every entry in trie (prefix) order — sorted by address, shorter
  /// prefixes before the longer ones they contain — without materializing a
  /// copy of the table (unlike entries()).
  void for_each(const std::function<void(const FibEntry&)>& fn) const;

  /// All entries, in trie (prefix) order. Copies the table; prefer
  /// for_each() for counting or scanning.
  std::vector<FibEntry> entries() const;

  void clear();

  /// Route epoch: starts at 1 and increases monotonically on every call
  /// that actually changes table contents (insert of a new or different
  /// entry, successful remove, non-empty remove_origin/clear, effective
  /// replace_origins). Consumers such as CompiledFib cache a snapshot and
  /// recompile only when the epoch moves.
  std::uint64_t epoch() const { return epoch_; }

  /// Multi-line diagnostic dump.
  std::string dump() const;

 private:
  struct TrieNode;
  std::unique_ptr<TrieNode> root_;
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 1;
};

}  // namespace evo::net
