#include "net/topology.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace evo::net {

const char* to_string(Relationship rel) {
  switch (rel) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kProvider: return "provider";
    case Relationship::kPeer: return "peer";
  }
  return "?";
}

DomainId Topology::add_domain(std::string name, bool stub) {
  const DomainId id{static_cast<std::uint32_t>(domains_.size())};
  Domain d;
  d.id = id;
  d.name = std::move(name);
  d.prefix = domain_prefix(id);
  d.stub = stub;
  domains_.push_back(std::move(d));
  return id;
}

NodeId Topology::add_router(DomainId domain) {
  assert(domain.value() < domains_.size());
  const NodeId id{static_cast<std::uint32_t>(routers_.size())};
  Router r;
  r.id = id;
  r.domain = domain;
  r.index_in_domain = static_cast<std::uint32_t>(domains_[domain.value()].routers.size());
  r.loopback = router_loopback(domain, r.index_in_domain);
  routers_.push_back(std::move(r));
  domains_[domain.value()].routers.push_back(id);
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, Cost cost, sim::Duration latency) {
  assert(a.value() < routers_.size() && b.value() < routers_.size());
  assert(routers_[a.value()].domain == routers_[b.value()].domain &&
         "use add_interdomain_link for links between domains");
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(Link{id, a, b, cost, latency, /*up=*/true, /*interdomain=*/false});
  routers_[a.value()].links.push_back(id);
  routers_[b.value()].links.push_back(id);
  return id;
}

LinkId Topology::add_interdomain_link(NodeId a, NodeId b, Relationship rel,
                                      Cost cost, sim::Duration latency) {
  assert(a.value() < routers_.size() && b.value() < routers_.size());
  auto& ra = routers_[a.value()];
  auto& rb = routers_[b.value()];
  assert(ra.domain != rb.domain && "use add_link for intra-domain links");
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(Link{id, a, b, cost, latency, /*up=*/true, /*interdomain=*/true});
  ra.links.push_back(id);
  rb.links.push_back(id);
  ra.border = true;
  rb.border = true;
  domains_[ra.domain.value()].peerings.push_back(Peering{rb.domain, rel, id});
  domains_[rb.domain.value()].peerings.push_back(Peering{ra.domain, reverse(rel), id});
  return id;
}

HostId Topology::add_host(NodeId access_router) {
  assert(access_router.value() < routers_.size());
  const auto& r = routers_[access_router.value()];
  // Count existing hosts on this access router to pick the next address.
  std::uint32_t attached = 0;
  for (const auto& h : hosts_) {
    if (h.access_router == access_router) ++attached;
  }
  assert(attached < 253 && "router subnet exhausted");
  const HostId id{static_cast<std::uint32_t>(hosts_.size())};
  const Ipv4Addr addr{router_subnet(r.domain, r.index_in_domain).address().bits() |
                      (attached + 2)};
  hosts_.push_back(Host{id, access_router, addr});
  return id;
}

bool Topology::set_link_up(LinkId link, bool up) {
  if (!link.valid() || link.value() >= links_.size()) {
    throw std::out_of_range("Topology::set_link_up: LinkId " +
                            std::to_string(link.value()) + " out of range");
  }
  Link& l = links_[link.value()];
  if (l.up == up) return false;
  l.up = up;
  return true;
}

bool Topology::set_node_up(NodeId node, bool up) {
  if (!node.valid() || node.value() >= routers_.size()) {
    throw std::out_of_range("Topology::set_node_up: NodeId " +
                            std::to_string(node.value()) + " out of range");
  }
  Router& r = routers_[node.value()];
  if (r.up == up) return false;
  r.up = up;
  return true;
}

std::optional<Relationship> Topology::relationship(DomainId domain,
                                                   DomainId neighbor) const {
  for (const auto& p : domains_[domain.value()].peerings) {
    if (p.neighbor == neighbor) return p.relationship;
  }
  return std::nullopt;
}

std::optional<DomainId> Topology::domain_of_address(Ipv4Addr addr) const {
  // Allocation is deterministic: the /16 index identifies the domain.
  const std::uint32_t slot = addr.bits() >> 16;
  if (slot == 0 || slot > domains_.size()) return std::nullopt;
  const DomainId id{slot - 1};
  assert(domains_[id.value()].prefix.contains(addr));
  return id;
}

std::optional<NodeId> Topology::router_by_loopback(Ipv4Addr addr) const {
  const auto domain = domain_of_address(addr);
  if (!domain) return std::nullopt;
  const std::uint32_t index = (addr.bits() >> 8) & 0xFF;
  const auto& d = domains_[domain->value()];
  if (index >= d.routers.size()) return std::nullopt;
  const NodeId node = d.routers[index];
  if (routers_[node.value()].loopback != addr) return std::nullopt;
  return node;
}

std::optional<HostId> Topology::host_by_address(Ipv4Addr addr) const {
  // Hosts are few per experiment; linear scan keeps the structure simple.
  for (const auto& h : hosts_) {
    if (h.address == addr) return h.id;
  }
  return std::nullopt;
}

Graph Topology::physical_graph() const {
  Graph g(routers_.size());
  for (const auto& link : links_) {
    if (!link_usable(link.id)) continue;
    g.add_undirected_edge(link.a, link.b, link.cost, link.id);
  }
  return g;
}

Graph Topology::domain_graph(DomainId domain) const {
  Graph g(routers_.size());
  for (const auto& link : links_) {
    if (!link_usable(link.id) || link.interdomain) continue;
    if (routers_[link.a.value()].domain != domain) continue;
    g.add_undirected_edge(link.a, link.b, link.cost, link.id);
  }
  return g;
}

Graph Topology::domain_level_graph() const {
  Graph g(domains_.size());
  for (const auto& link : links_) {
    if (!link_usable(link.id) || !link.interdomain) continue;
    const auto da = routers_[link.a.value()].domain;
    const auto db = routers_[link.b.value()].domain;
    g.add_undirected_edge(NodeId{da.value()}, NodeId{db.value()}, 1, link.id);
  }
  return g;
}

}  // namespace evo::net
