#include "net/delivery.h"

#include <cassert>

namespace evo::net {

DeliveryEngine::DeliveryEngine(sim::Simulator& simulator, const Network& network)
    : simulator_(simulator), network_(network) {}

void DeliveryEngine::inject(NodeId node, Packet packet, DeliveredFn on_delivered,
                            DroppedFn on_dropped) {
  assert(!packet.empty() && packet.outer().kind == HeaderLayer::Kind::kIpv4 &&
         "forwarding acts on an outer IPv4 header");
  step(node, std::move(packet), simulator_.now(), std::move(on_delivered),
       std::move(on_dropped));
}

void DeliveryEngine::drop(Network::TraceResult::Outcome reason, NodeId at,
                          const Packet& packet, const DroppedFn& on_dropped) {
  ++dropped_;
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kNet, "net.pkt.drop", at.value(),
                       static_cast<std::uint64_t>(reason));
  }
  if (on_dropped) on_dropped(reason, at, packet);
}

void DeliveryEngine::step(NodeId node, Packet packet, sim::TimePoint injected_at,
                          DeliveredFn on_delivered, DroppedFn on_dropped) {
  const Ipv4Addr dst = packet.outer().v4.dst;
  if (network_.delivers_locally(node, dst)) {
    ++delivered_;
    if (recorder_ != nullptr) {
      recorder_->instant(
          obs::Domain::kNet, "net.pkt.delivered", node.value(),
          static_cast<std::uint64_t>(
              (simulator_.now() - injected_at).count_micros()));
    }
    on_delivered(node, packet, simulator_.now() - injected_at);
    return;
  }
  if (packet.outer().v4.ttl == 0) {
    drop(Network::TraceResult::Outcome::kTtlExpired, node, packet, on_dropped);
    return;
  }
  const FibEntry* entry = network_.compiled_fib(node).lookup(dst);
  if (entry == nullptr || !entry->next_hop.valid()) {
    drop(Network::TraceResult::Outcome::kNoRoute, node, packet, on_dropped);
    return;
  }
  sim::Duration latency = sim::Duration::millis(1);
  const LinkId out_link = entry->out_link;
  if (out_link.valid()) {
    const Link& link = network_.topology().link(out_link);
    if (!network_.topology().link_usable(out_link)) {
      drop(Network::TraceResult::Outcome::kLinkDown, node, packet, on_dropped);
      return;
    }
    latency = link.latency;
  }
  --packet.outer().v4.ttl;
  ++hops_forwarded_;
  const NodeId next = entry->next_hop;
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kNet, "net.pkt.hop", node.value(),
                       next.value());
  }
  auto continuation = [this, node, next, out_link, packet = std::move(packet),
                       injected_at, on_delivered = std::move(on_delivered),
                       on_dropped = std::move(on_dropped)]() mutable {
    // The link was usable when the packet departed, but it (or either
    // endpoint) may have died while the packet was in flight. Re-check
    // at arrival time — a packet cannot cross a link that no longer
    // exists, and LSA flooding already models this (link_state.cc).
    if (out_link.valid() && !network_.topology().link_usable(out_link)) {
      drop(Network::TraceResult::Outcome::kLinkDown, node, packet, on_dropped);
      return;
    }
    step(next, std::move(packet), injected_at, std::move(on_delivered),
         std::move(on_dropped));
  };
  // EventFn's inline buffer is sized for exactly this capture: per-hop
  // scheduling must never heap-allocate the continuation.
  static_assert(sizeof(continuation) <= sim::EventFn::inline_capacity);
  simulator_.schedule_after(latency, std::move(continuation));
}

}  // namespace evo::net
