#include "net/network.h"

#include <cassert>

namespace evo::net {

const char* to_string(Network::TraceResult::Outcome outcome) {
  using Outcome = Network::TraceResult::Outcome;
  switch (outcome) {
    case Outcome::kDelivered: return "delivered";
    case Outcome::kNoRoute: return "no-route";
    case Outcome::kTtlExpired: return "ttl-expired";
    case Outcome::kForwardingLoop: return "forwarding-loop";
    case Outcome::kLinkDown: return "link-down";
  }
  return "?";
}

Network::Network(Topology topology) : topology_(std::move(topology)) {
  fibs_.resize(topology_.router_count());
  local_addresses_.resize(topology_.router_count());
  compiled_fibs_.resize(topology_.router_count());
  visit_mark_.resize(topology_.router_count(), 0);
  install_connected_routes();
}

void Network::add_local_address(NodeId node, Ipv4Addr addr) {
  local_addresses_[node.value()].insert(addr);
}

void Network::remove_local_address(NodeId node, Ipv4Addr addr) {
  local_addresses_[node.value()].erase(addr);
}

bool Network::has_local_address(NodeId node, Ipv4Addr addr) const {
  return local_addresses_[node.value()].contains(addr);
}

bool Network::delivers_locally(NodeId node, Ipv4Addr dst) const {
  const auto& router = topology_.router(node);
  if (!router.up) return false;  // a crashed router delivers nothing
  if (router.loopback == dst) return true;
  if (local_addresses_[node.value()].contains(dst)) return true;
  return Topology::router_subnet(router.domain, router.index_in_domain).contains(dst);
}

void Network::install_connected_routes() {
  if (fibs_.size() < topology_.router_count()) {
    fibs_.resize(topology_.router_count());
    local_addresses_.resize(topology_.router_count());
    compiled_fibs_.resize(topology_.router_count());
    visit_mark_.resize(topology_.router_count(), 0);
  }
  for (const auto& router : topology_.routers()) {
    auto& fib = fibs_[router.id.value()];
    fib.insert(FibEntry{Prefix::host(router.loopback), NodeId::invalid(),
                        LinkId::invalid(), RouteOrigin::kConnected, 0});
    fib.insert(FibEntry{Topology::router_subnet(router.domain, router.index_in_domain),
                        NodeId::invalid(), LinkId::invalid(), RouteOrigin::kConnected,
                        0});
  }
}

const CompiledFib& Network::compiled_fib(NodeId node) const {
  CompiledFib& compiled = compiled_fibs_[node.value()];
  const Fib& fib = fibs_[node.value()];
  if (compiled.epoch() != fib.epoch()) {
    compiled.compile(fib);
    ++forwarding_stats_.fib_compiles;
    if (recorder_ != nullptr) {
      recorder_->instant(obs::Domain::kNet, "net.fib.recompile", node.value(),
                         fib.size());
    }
  } else {
    ++forwarding_stats_.cache_hits;
  }
  return compiled;
}

Network::TraceResult Network::trace(NodeId from, Ipv4Addr dst,
                                    unsigned max_hops) const {
  TraceResult result;
  trace_into(from, dst, max_hops, result);
  return result;
}

void Network::trace_into(NodeId from, Ipv4Addr dst, unsigned max_hops,
                         TraceResult& result) const {
  result.outcome = TraceResult::Outcome::kNoRoute;
  result.hops.clear();
  result.delivered_at = NodeId::invalid();
  result.cost = 0;
  result.latency = {};
  result.hops.push_back(from);
  ++forwarding_stats_.traces;

  // Loop detection via generation marking: one counter bump replaces a
  // per-trace hash-set allocation.
  const std::uint64_t gen = ++visit_gen_;
  NodeId current = from;
  for (unsigned hop = 0; hop <= max_hops; ++hop) {
    if (delivers_locally(current, dst)) {
      result.outcome = TraceResult::Outcome::kDelivered;
      result.delivered_at = current;
      return;
    }
    if (visit_mark_[current.value()] == gen) {
      result.outcome = TraceResult::Outcome::kForwardingLoop;
      return;
    }
    visit_mark_[current.value()] = gen;
    const FibEntry* entry = compiled_fib(current).lookup(dst);
    ++forwarding_stats_.lookups;
    if (entry == nullptr || !entry->next_hop.valid()) {
      // A local-delivery entry that didn't match delivers_locally means a
      // stale route; treat both as no-route.
      result.outcome = TraceResult::Outcome::kNoRoute;
      return;
    }
    if (entry->out_link.valid()) {
      const Link& link = topology_.link(entry->out_link);
      if (!topology_.link_usable(entry->out_link)) {
        result.outcome = TraceResult::Outcome::kLinkDown;
        return;
      }
      result.cost += link.cost;
      result.latency += link.latency;
    } else {
      result.cost += 1;  // next hop known but link identity elided
    }
    current = entry->next_hop;
    result.hops.push_back(current);
  }
  result.outcome = TraceResult::Outcome::kTtlExpired;
}

std::vector<Network::TraceResult> Network::trace_batch(
    std::span<const ProbeSpec> probes) const {
  std::vector<TraceResult> results(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    trace_into(probes[i].from, probes[i].dst, probes[i].max_hops, results[i]);
  }
  return results;
}

void Network::export_forwarding_metrics(sim::MetricRegistry& metrics) const {
  metrics.increment("net.forwarding.traces",
                    static_cast<std::int64_t>(forwarding_stats_.traces));
  metrics.increment("net.forwarding.lookups",
                    static_cast<std::int64_t>(forwarding_stats_.lookups));
  metrics.increment("net.forwarding.fib_compiles",
                    static_cast<std::int64_t>(forwarding_stats_.fib_compiles));
  metrics.increment("net.forwarding.cache_hits",
                    static_cast<std::int64_t>(forwarding_stats_.cache_hits));
}

std::string Network::describe(const TraceResult& result) const {
  std::string out = to_string(result.outcome);
  out += ":";
  for (const NodeId hop : result.hops) {
    out += " ";
    const auto& router = topology_.router(hop);
    out += topology_.domain(router.domain).name;
    out += "/r";
    out += std::to_string(router.index_in_domain);
  }
  out += " (cost " + std::to_string(result.cost) + ")";
  return out;
}

}  // namespace evo::net
