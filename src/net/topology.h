// The physical multi-provider topology: ISP domains, routers, links, hosts.
//
// Address allocation mirrors provider-based allocation in the real
// Internet: each domain owns a /16 slice, each router a /24 slice of that,
// endhosts get addresses under their access router's slice. Inter-domain
// links carry a business relationship (customer / provider / peer) because
// the paper's mechanisms interact with policy routing ("ISP W might, based
// on peering policies, choose to route anycast packets to ISP X before Y").
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/graph.h"
#include "net/ids.h"
#include "sim/time.h"

namespace evo::net {

/// Business relationship of a neighboring domain, from the local domain's
/// point of view (Gao-Rexford model).
enum class Relationship : std::uint8_t {
  kCustomer,  // the neighbor pays us
  kProvider,  // we pay the neighbor
  kPeer,      // settlement-free peer
};

const char* to_string(Relationship rel);

/// The reciprocal of a relationship (a's view given b's view).
constexpr Relationship reverse(Relationship rel) {
  switch (rel) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

struct Link {
  LinkId id;
  NodeId a;
  NodeId b;
  Cost cost = 1;
  sim::Duration latency = sim::Duration::millis(1);
  bool up = true;
  bool interdomain = false;

  NodeId other_end(NodeId node) const { return node == a ? b : a; }
};

struct Router {
  NodeId id;
  DomainId domain;
  std::uint32_t index_in_domain = 0;  // dense per-domain index
  Ipv4Addr loopback;
  std::vector<LinkId> links;
  bool border = false;  // has at least one inter-domain link
  /// False while the router is crashed: it forwards nothing, delivers
  /// nothing locally, and every incident link is unusable.
  bool up = true;
};

struct Peering {
  DomainId neighbor;
  Relationship relationship = Relationship::kPeer;
  LinkId link;  // the physical link implementing this peering
};

struct Domain {
  DomainId id;
  std::string name;
  Prefix prefix;  // the domain's provider-allocated address block
  std::vector<NodeId> routers;
  std::vector<Peering> peerings;
  /// Stub domains host clients; transit domains carry traffic.
  bool stub = false;
};

struct Host {
  HostId id;
  NodeId access_router;
  Ipv4Addr address;
};

class Topology {
 public:
  Topology() = default;

  // --- construction -------------------------------------------------------
  DomainId add_domain(std::string name, bool stub = false);
  NodeId add_router(DomainId domain);

  /// Intra-domain link; both ends must be in the same domain.
  LinkId add_link(NodeId a, NodeId b, Cost cost = 1,
                  sim::Duration latency = sim::Duration::millis(1));

  /// Inter-domain link; `rel` is b's relationship as seen from a's domain
  /// (kCustomer means b's domain is a customer of a's domain).
  LinkId add_interdomain_link(NodeId a, NodeId b, Relationship rel,
                              Cost cost = 1,
                              sim::Duration latency = sim::Duration::millis(5));

  HostId add_host(NodeId access_router);

  // --- failure primitives --------------------------------------------------
  /// Set a link's administrative state. Returns whether the stored state
  /// actually changed, so callers can skip reconvergence on no-op flaps.
  /// Throws std::out_of_range for an invalid LinkId (checked in all build
  /// types, not assert-only).
  bool set_link_up(LinkId link, bool up);

  /// Crash (up=false) or recover (up=true) a router. Returns whether the
  /// stored state changed. Throws std::out_of_range for an invalid NodeId.
  bool set_node_up(NodeId node, bool up);

  /// A link carries traffic only when it is administratively up AND both
  /// endpoint routers are up — the single predicate every consumer
  /// (forwarding, flooding, session liveness, derived graphs) must use.
  bool link_usable(LinkId link) const {
    const Link& l = links_[link.value()];
    return l.up && routers_[l.a.value()].up && routers_[l.b.value()].up;
  }

  // --- accessors ----------------------------------------------------------
  std::size_t domain_count() const { return domains_.size(); }
  std::size_t router_count() const { return routers_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t host_count() const { return hosts_.size(); }

  const Domain& domain(DomainId id) const { return domains_[id.value()]; }
  const Router& router(NodeId id) const { return routers_[id.value()]; }
  const Link& link(LinkId id) const { return links_[id.value()]; }
  const Host& host(HostId id) const { return hosts_[id.value()]; }

  const std::vector<Domain>& domains() const { return domains_; }
  const std::vector<Router>& routers() const { return routers_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<Host>& hosts() const { return hosts_; }

  /// The relationship of `neighbor` from `domain`'s point of view, if the
  /// two domains have any peering.
  std::optional<Relationship> relationship(DomainId domain, DomainId neighbor) const;

  /// The domain owning the longest matching allocation for `addr`, if any.
  std::optional<DomainId> domain_of_address(Ipv4Addr addr) const;

  /// The router whose loopback is `addr`, if any.
  std::optional<NodeId> router_by_loopback(Ipv4Addr addr) const;

  /// The host with address `addr`, if any.
  std::optional<HostId> host_by_address(Ipv4Addr addr) const;

  // --- address allocation scheme -----------------------------------------
  static Prefix domain_prefix(DomainId id) {
    // Domain d owns (d+1).0.0.0-style /16 carved out of a flat space.
    return Prefix{Ipv4Addr{(id.value() + 1) << 16}, 16};
  }
  static Ipv4Addr router_loopback(DomainId d, std::uint32_t router_index) {
    assert(router_index < 255);
    return Ipv4Addr{domain_prefix(d).address().bits() | (router_index << 8) | 1};
  }
  static Prefix router_subnet(DomainId d, std::uint32_t router_index) {
    return Prefix{Ipv4Addr{domain_prefix(d).address().bits() | (router_index << 8)},
                  24};
  }

  // --- derived graphs ------------------------------------------------------
  /// Weighted graph over all routers, honoring link up/down state.
  Graph physical_graph() const;

  /// Weighted graph restricted to one domain's routers and intra-domain
  /// links. Node indices are global NodeIds (the graph is sized to all
  /// routers; other domains' nodes are simply isolated).
  Graph domain_graph(DomainId domain) const;

  /// Domain-level graph: one node per domain, an edge per peering.
  Graph domain_level_graph() const;

 private:
  std::vector<Domain> domains_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<Host> hosts_;
};

}  // namespace evo::net
