#include "net/address.h"

#include <cstdio>

namespace evo::net {

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (bits_ >> 24) & 0xFF,
                (bits_ >> 16) & 0xFF, (bits_ >> 8) & 0xFF, bits_ & 0xFF);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t octets[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return std::nullopt;
    std::uint32_t value = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      if (value > 255 || ++digits > 3) return std::nullopt;
      ++pos;
    }
    octets[i] = value;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr{static_cast<std::uint8_t>(octets[0]),
                  static_cast<std::uint8_t>(octets[1]),
                  static_cast<std::uint8_t>(octets[2]),
                  static_cast<std::uint8_t>(octets[3])};
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) return std::nullopt;
  std::uint32_t len = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (len > 32) return std::nullopt;
  return Prefix{*addr, static_cast<std::uint8_t>(len)};
}

namespace {

constexpr std::uint64_t hi_mask(std::uint8_t length) {
  if (length == 0) return 0;
  if (length >= 64) return ~std::uint64_t{0};
  return ~std::uint64_t{0} << (64 - length);
}

constexpr std::uint64_t lo_mask(std::uint8_t length) {
  if (length <= 64) return 0;
  if (length >= 128) return ~std::uint64_t{0};
  return ~std::uint64_t{0} << (128 - length);
}

}  // namespace

IpvNPrefix::IpvNPrefix(IpvNAddr addr, std::uint8_t length)
    : addr_(addr.hi() & hi_mask(length), addr.lo() & lo_mask(length)),
      length_(length) {}

bool IpvNPrefix::contains(IpvNAddr addr) const {
  return (addr.hi() & hi_mask(length_)) == addr_.hi() &&
         (addr.lo() & lo_mask(length_)) == addr_.lo();
}

std::string IpvNPrefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::string IpvNAddr::to_string() const {
  char buf[64];
  if (is_self_address()) {
    std::snprintf(buf, sizeof buf, "v%u:self:%s", version(),
                  embedded_v4().to_string().c_str());
  } else {
    std::snprintf(buf, sizeof buf, "v%u:%014llx:%016llx", version(),
                  static_cast<unsigned long long>(hi_ & 0x00FFFFFFFFFFFFFFULL),
                  static_cast<unsigned long long>(lo_));
  }
  return buf;
}

}  // namespace evo::net
