#include "net/graph.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace evo::net {

void Graph::add_edge(NodeId from, NodeId to, Cost cost, LinkId link) {
  assert(from.value() < adjacency_.size() && to.value() < adjacency_.size());
  adjacency_[from.value()].push_back(Edge{to, cost, link});
}

void Graph::add_undirected_edge(NodeId a, NodeId b, Cost cost, LinkId link) {
  add_edge(a, b, cost, link);
  add_edge(b, a, cost, link);
}

std::size_t Graph::edge_count() const {
  std::size_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return total;
}

std::vector<NodeId> ShortestPaths::path_to(NodeId node) const {
  if (!reachable(node)) return {};
  std::vector<NodeId> path;
  for (NodeId cur = node; cur.valid(); cur = predecessor[cur.value()]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

struct HeapEntry {
  Cost dist;
  std::uint32_t node;
  friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
    if (a.dist != b.dist) return a.dist > b.dist;  // min-heap
    return a.node > b.node;                        // deterministic tiebreak
  }
};

}  // namespace

ShortestPaths dijkstra(const Graph& graph, std::span<const NodeId> sources) {
  const std::size_t n = graph.size();
  ShortestPaths result;
  result.distance.assign(n, kInfiniteCost);
  result.predecessor.assign(n, NodeId::invalid());
  result.source_of.assign(n, NodeId::invalid());

  std::priority_queue<HeapEntry> heap;
  for (NodeId s : sources) {
    assert(s.value() < n);
    if (result.distance[s.value()] == 0 && result.source_of[s.value()].valid())
      continue;  // duplicate source
    result.distance[s.value()] = 0;
    result.source_of[s.value()] = s;
    heap.push(HeapEntry{0, s.value()});
  }

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > result.distance[u]) continue;  // stale entry
    for (const auto& edge : graph.neighbors(NodeId{u})) {
      const auto v = edge.to.value();
      // Guard against overflow on kInfiniteCost arithmetic.
      const Cost next = dist + edge.cost;
      if (next < result.distance[v]) {
        result.distance[v] = next;
        result.predecessor[v] = NodeId{u};
        result.source_of[v] = result.source_of[u];
        heap.push(HeapEntry{next, v});
      }
    }
  }
  return result;
}

ShortestPaths dijkstra(const Graph& graph, NodeId source) {
  const NodeId sources[] = {source};
  return dijkstra(graph, std::span<const NodeId>(sources));
}

Components connected_components(const Graph& graph) {
  const std::size_t n = graph.size();
  Components result;
  result.label.assign(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (result.label[start] != std::numeric_limits<std::uint32_t>::max()) continue;
    stack.push_back(start);
    result.label[start] = result.count;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (const auto& edge : graph.neighbors(NodeId{u})) {
        const auto v = edge.to.value();
        if (result.label[v] == std::numeric_limits<std::uint32_t>::max()) {
          result.label[v] = result.count;
          stack.push_back(v);
        }
      }
    }
    ++result.count;
  }
  return result;
}

std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source) {
  const std::size_t n = graph.size();
  std::vector<std::uint32_t> hops(n, std::numeric_limits<std::uint32_t>::max());
  std::queue<std::uint32_t> frontier;
  hops[source.value()] = 0;
  frontier.push(source.value());
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (const auto& edge : graph.neighbors(NodeId{u})) {
      const auto v = edge.to.value();
      if (hops[v] == std::numeric_limits<std::uint32_t>::max()) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

}  // namespace evo::net
