// Weighted graph over NodeIds with shortest-path algorithms.
//
// Used both by the routing protocols (SPF over a link-state database) and
// as the experiments' ground-truth oracle (exact closest-member distances
// for anycast stretch measurements).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "net/ids.h"

namespace evo::net {

/// Link cost / path distance. Integer for exact determinism.
using Cost = std::uint64_t;
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::max();

/// Adjacency-list weighted graph. Nodes are dense indices [0, size).
/// Edges can be added directed or (the common case for links) symmetric.
class Graph {
 public:
  struct Edge {
    NodeId to;
    Cost cost = 1;
    LinkId link;  // invalid() when the edge has no physical-link identity
  };

  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  std::size_t size() const { return adjacency_.size(); }

  /// Grow to at least `node_count` nodes.
  void ensure_size(std::size_t node_count) {
    if (adjacency_.size() < node_count) adjacency_.resize(node_count);
  }

  void add_edge(NodeId from, NodeId to, Cost cost, LinkId link = LinkId::invalid());
  void add_undirected_edge(NodeId a, NodeId b, Cost cost,
                           LinkId link = LinkId::invalid());

  std::span<const Edge> neighbors(NodeId node) const {
    return adjacency_[node.value()];
  }

  std::size_t edge_count() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
};

/// Result of a (multi-source) Dijkstra run.
struct ShortestPaths {
  std::vector<Cost> distance;        // kInfiniteCost if unreachable
  std::vector<NodeId> predecessor;   // invalid() at sources / unreachable
  std::vector<NodeId> source_of;     // which source serves this node

  bool reachable(NodeId node) const {
    return distance[node.value()] != kInfiniteCost;
  }
  Cost distance_to(NodeId node) const { return distance[node.value()]; }

  /// Path from the serving source to `node` (inclusive); empty if
  /// unreachable.
  std::vector<NodeId> path_to(NodeId node) const;
};

/// Single-source shortest paths.
ShortestPaths dijkstra(const Graph& graph, NodeId source);

/// Multi-source shortest paths: distance to the *nearest* source, and which
/// source that is. This is exactly the anycast delivery oracle — "the
/// server closest to the client host where closest is defined in terms of
/// the network's measure of routing distance" (RFC 1546 via the paper).
ShortestPaths dijkstra(const Graph& graph, std::span<const NodeId> sources);

/// Connected components (treating edges as undirected); returns a label per
/// node and the number of components.
struct Components {
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;
};
Components connected_components(const Graph& graph);

/// Hop-count BFS from a single source (all edge costs treated as 1).
std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source);

}  // namespace evo::net
