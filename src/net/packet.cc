#include "net/packet.h"

namespace evo::net {

std::string Packet::describe() const {
  std::string out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if (!out.empty()) out += " | ";
    if (it->kind == HeaderLayer::Kind::kIpv4) {
      out += "v4[" + it->v4.src.to_string() + " -> " + it->v4.dst.to_string() + "]";
    } else {
      out += "vN[" + it->vn.src.to_string() + " -> " + it->vn.dst.to_string() + "]";
    }
  }
  return out.empty() ? "<empty>" : out;
}

Packet make_encapsulated(IpvNHeader inner, Ipv4Addr outer_src, Ipv4Addr anycast_dst) {
  Packet p;
  p.push(HeaderLayer::ipvn(inner));
  Ipv4Header outer;
  outer.src = outer_src;
  outer.dst = anycast_dst;
  outer.proto = Ipv4Header::Proto::kIpvNEncap;
  p.push(HeaderLayer::ipv4(outer));
  return p;
}

}  // namespace evo::net
