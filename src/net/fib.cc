#include "net/fib.h"

#include <functional>
#include <unordered_map>

namespace evo::net {

const char* to_string(RouteOrigin origin) {
  switch (origin) {
    case RouteOrigin::kConnected: return "connected";
    case RouteOrigin::kIgp: return "igp";
    case RouteOrigin::kBgp: return "bgp";
    case RouteOrigin::kAnycast: return "anycast";
    case RouteOrigin::kStatic: return "static";
  }
  return "?";
}

struct Fib::TrieNode {
  std::unique_ptr<TrieNode> child[2];
  std::optional<FibEntry> entry;
};

Fib::Fib() : root_(std::make_unique<TrieNode>()) {}
Fib::~Fib() = default;
Fib::Fib(Fib&&) noexcept = default;
Fib& Fib::operator=(Fib&&) noexcept = default;

namespace {

/// Bit `i` (0 = most significant) of an address.
inline unsigned bit_at(Ipv4Addr addr, unsigned i) {
  return (addr.bits() >> (31 - i)) & 1u;
}

}  // namespace

void Fib::insert(const FibEntry& entry) {
  TrieNode* node = root_.get();
  for (unsigned i = 0; i < entry.prefix.length(); ++i) {
    const unsigned b = bit_at(entry.prefix.address(), i);
    if (!node->child[b]) node->child[b] = std::make_unique<TrieNode>();
    node = node->child[b].get();
  }
  if (node->entry && *node->entry == entry) return;  // no-op: keep the epoch
  if (!node->entry) ++size_;
  node->entry = entry;
  ++epoch_;
}

bool Fib::remove(const Prefix& prefix) {
  TrieNode* node = root_.get();
  for (unsigned i = 0; i < prefix.length(); ++i) {
    const unsigned b = bit_at(prefix.address(), i);
    if (!node->child[b]) return false;
    node = node->child[b].get();
  }
  if (!node->entry) return false;
  node->entry.reset();
  --size_;
  ++epoch_;
  // Dangling interior nodes are left in place; they are reclaimed on
  // clear(). This keeps remove() O(length) with no parent tracking.
  return true;
}

std::size_t Fib::remove_origin(RouteOrigin origin) {
  std::size_t removed = 0;
  std::function<void(TrieNode*)> walk = [&](TrieNode* node) {
    if (node->entry && node->entry->origin == origin) {
      node->entry.reset();
      --size_;
      ++removed;
    }
    for (auto& child : node->child) {
      if (child) walk(child.get());
    }
  };
  walk(root_.get());
  if (removed > 0) ++epoch_;
  return removed;
}

void Fib::replace_origins(std::initializer_list<RouteOrigin> origins,
                          std::span<const FibEntry> entries) {
  const auto in_set = [&](RouteOrigin origin) {
    for (const RouteOrigin o : origins) {
      if (o == origin) return true;
    }
    return false;
  };

  // Desired table for these origins; a later duplicate prefix wins, exactly
  // as repeated insert() calls would behave.
  std::unordered_map<Prefix, const FibEntry*> desired;
  desired.reserve(entries.size());
  for (const FibEntry& e : entries) desired[e.prefix] = &e;

  // No-op detection: every existing entry of these origins must appear in
  // `desired` with identical contents, and the counts must match. When so,
  // skip the rebuild and leave the epoch — compiled state stays valid.
  std::size_t existing = 0;
  bool identical = true;
  for_each([&](const FibEntry& e) {
    if (!in_set(e.origin)) return;
    ++existing;
    const auto it = desired.find(e.prefix);
    if (it == desired.end() || !(*it->second == e)) identical = false;
  });
  if (identical && existing == desired.size()) return;

  for (const RouteOrigin o : origins) remove_origin(o);
  for (const FibEntry& e : entries) insert(e);
}

const FibEntry* Fib::lookup(Ipv4Addr addr) const {
  const TrieNode* node = root_.get();
  const FibEntry* best = node->entry ? &*node->entry : nullptr;
  for (unsigned i = 0; i < 32 && node; ++i) {
    const unsigned b = bit_at(addr, i);
    node = node->child[b].get();
    if (node && node->entry) best = &*node->entry;
  }
  return best;
}

const FibEntry* Fib::find(const Prefix& prefix) const {
  const TrieNode* node = root_.get();
  for (unsigned i = 0; i < prefix.length(); ++i) {
    const unsigned b = bit_at(prefix.address(), i);
    if (!node->child[b]) return nullptr;
    node = node->child[b].get();
  }
  return node->entry ? &*node->entry : nullptr;
}

void Fib::for_each(const std::function<void(const FibEntry&)>& fn) const {
  // Pre-order DFS, child[0] before child[1]: yields entries sorted by
  // address, with a covering (shorter) prefix before the prefixes nested
  // inside it — the order CompiledFib's range sweep requires.
  std::function<void(const TrieNode*)> walk = [&](const TrieNode* node) {
    if (node->entry) fn(*node->entry);
    for (const auto& child : node->child) {
      if (child) walk(child.get());
    }
  };
  walk(root_.get());
}

std::size_t Fib::size_with_origin(RouteOrigin origin) const {
  std::size_t count = 0;
  for_each([&](const FibEntry& e) { count += e.origin == origin; });
  return count;
}

std::vector<FibEntry> Fib::entries() const {
  std::vector<FibEntry> out;
  out.reserve(size_);
  for_each([&](const FibEntry& e) { out.push_back(e); });
  return out;
}

void Fib::clear() {
  root_ = std::make_unique<TrieNode>();
  if (size_ > 0) ++epoch_;
  size_ = 0;
}

std::string Fib::dump() const {
  std::string out;
  for (const auto& e : entries()) {
    out += e.prefix.to_string();
    out += " -> ";
    out += e.next_hop.valid() ? ("node " + std::to_string(e.next_hop.value()))
                              : std::string("local");
    out += " (";
    out += to_string(e.origin);
    out += ", metric ";
    out += std::to_string(e.metric);
    out += ")\n";
  }
  return out;
}

}  // namespace evo::net
