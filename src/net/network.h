// The IPv(N-1) data plane: per-router FIBs and hop-by-hop forwarding.
//
// The control plane (IGP, BGP, anycast advertisement) runs event-driven in
// the simulator and *installs* routes here; tracing a packet is then a
// synchronous FIB walk, cheap enough for millions of probes per benchmark.
//
// Forwarding is two-tier: each router's binary-trie Fib is the mutable
// authoritative store, and a flat CompiledFib is compiled from it lazily
// (per router, on first use after the Fib's route epoch moves) and consulted
// on every trace hop. IGP SPF runs, DV updates, BGP installs and anycast
// membership changes all invalidate transparently by bumping the epoch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/compiled_fib.h"
#include "net/fib.h"
#include "net/packet.h"
#include "net/topology.h"
#include "obs/recorder.h"
#include "sim/metrics.h"
#include "sim/time.h"

namespace evo::net {

class Network {
 public:
  explicit Network(Topology topology);

  const Topology& topology() const { return topology_; }
  Topology& topology() { return topology_; }

  Fib& fib(NodeId node) { return fibs_[node.value()]; }
  const Fib& fib(NodeId node) const { return fibs_[node.value()]; }

  /// Extra addresses a node accepts for local delivery beyond its loopback
  /// and connected subnet — this is how an IPvN router "accepts delivery of
  /// packets destined to [the anycast address] A4" (paper §3.1).
  void add_local_address(NodeId node, Ipv4Addr addr);
  void remove_local_address(NodeId node, Ipv4Addr addr);
  bool has_local_address(NodeId node, Ipv4Addr addr) const;

  /// True if `node` delivers `dst` locally: loopback, registered local
  /// address, or an attached-subnet address.
  bool delivers_locally(NodeId node, Ipv4Addr dst) const;

  /// Install connected routes (loopback /32 + router subnet /24) on every
  /// router. Called by the constructor; call again after adding routers.
  void install_connected_routes();

  struct TraceResult {
    enum class Outcome : std::uint8_t {
      kDelivered,
      kNoRoute,
      kTtlExpired,
      kForwardingLoop,
      kLinkDown,
    };
    Outcome outcome = Outcome::kNoRoute;
    std::vector<NodeId> hops;  // starts with the injection node
    NodeId delivered_at;       // valid only when kDelivered
    Cost cost = 0;             // sum of traversed link costs
    sim::Duration latency;     // sum of traversed link latencies

    bool delivered() const { return outcome == Outcome::kDelivered; }
    std::size_t hop_count() const { return hops.empty() ? 0 : hops.size() - 1; }
  };

  /// Walk FIBs from `from` toward `dst`. Deterministic and observably
  /// side-effect free (internally it refreshes the per-router compiled
  /// forwarding caches).
  TraceResult trace(NodeId from, Ipv4Addr dst, unsigned max_hops = 255) const;

  /// Like trace(), but reuses `result`'s buffers — the allocation-free
  /// form the batch API and hot probe loops build on.
  void trace_into(NodeId from, Ipv4Addr dst, unsigned max_hops,
                  TraceResult& result) const;

  /// One probe of a batch: a packet injected at `from` toward `dst`.
  struct ProbeSpec {
    NodeId from;
    Ipv4Addr dst;
    unsigned max_hops = 255;
  };

  /// Trace every probe, amortizing compiled-FIB compilation across the
  /// batch. results[i] corresponds to probes[i]; each result is identical
  /// to what trace(probes[i]...) would return.
  std::vector<TraceResult> trace_batch(std::span<const ProbeSpec> probes) const;

  /// The compiled forwarding table for `node`, recompiled first if its
  /// route epoch is stale. Valid until the next mutation of fib(node).
  const CompiledFib& compiled_fib(NodeId node) const;

  /// Data-plane counters: how the compiled forwarding tier behaves.
  struct ForwardingStats {
    std::uint64_t traces = 0;        // trace/trace_into invocations
    std::uint64_t lookups = 0;       // per-hop LPM lookups
    std::uint64_t fib_compiles = 0;  // CompiledFib rebuilds (epoch misses)
    std::uint64_t cache_hits = 0;    // hops served by an already-fresh table
  };
  const ForwardingStats& forwarding_stats() const { return forwarding_stats_; }

  /// Export the forwarding counters into `metrics` under
  /// "net.forwarding.*" (traces, lookups, fib_compiles, cache_hits).
  void export_forwarding_metrics(sim::MetricRegistry& metrics) const;

  /// Telemetry sink for data-plane structure events (per-router compiled
  /// FIB recompiles). Null by default.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  obs::Recorder* recorder() const { return recorder_; }

  std::string describe(const TraceResult& result) const;

 private:
  Topology topology_;
  std::vector<Fib> fibs_;
  std::vector<std::unordered_set<Ipv4Addr>> local_addresses_;

  // Lazily (re)compiled per-router forwarding tables plus the visited-node
  // scratch for loop detection. Mutable: tracing is logically const but
  // maintains these caches (the simulation is single-threaded).
  mutable std::vector<CompiledFib> compiled_fibs_;
  mutable std::vector<std::uint64_t> visit_mark_;
  mutable std::uint64_t visit_gen_ = 0;
  mutable ForwardingStats forwarding_stats_;
  obs::Recorder* recorder_ = nullptr;
};

const char* to_string(Network::TraceResult::Outcome outcome);

}  // namespace evo::net
