// The IPv(N-1) data plane: per-router FIBs and hop-by-hop forwarding.
//
// The control plane (IGP, BGP, anycast advertisement) runs event-driven in
// the simulator and *installs* routes here; tracing a packet is then a
// synchronous FIB walk, cheap enough for millions of probes per benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/fib.h"
#include "net/packet.h"
#include "net/topology.h"
#include "sim/time.h"

namespace evo::net {

class Network {
 public:
  explicit Network(Topology topology);

  const Topology& topology() const { return topology_; }
  Topology& topology() { return topology_; }

  Fib& fib(NodeId node) { return fibs_[node.value()]; }
  const Fib& fib(NodeId node) const { return fibs_[node.value()]; }

  /// Extra addresses a node accepts for local delivery beyond its loopback
  /// and connected subnet — this is how an IPvN router "accepts delivery of
  /// packets destined to [the anycast address] A4" (paper §3.1).
  void add_local_address(NodeId node, Ipv4Addr addr);
  void remove_local_address(NodeId node, Ipv4Addr addr);
  bool has_local_address(NodeId node, Ipv4Addr addr) const;

  /// True if `node` delivers `dst` locally: loopback, registered local
  /// address, or an attached-subnet address.
  bool delivers_locally(NodeId node, Ipv4Addr dst) const;

  /// Install connected routes (loopback /32 + router subnet /24) on every
  /// router. Called by the constructor; call again after adding routers.
  void install_connected_routes();

  struct TraceResult {
    enum class Outcome : std::uint8_t {
      kDelivered,
      kNoRoute,
      kTtlExpired,
      kForwardingLoop,
      kLinkDown,
    };
    Outcome outcome = Outcome::kNoRoute;
    std::vector<NodeId> hops;  // starts with the injection node
    NodeId delivered_at;       // valid only when kDelivered
    Cost cost = 0;             // sum of traversed link costs
    sim::Duration latency;     // sum of traversed link latencies

    bool delivered() const { return outcome == Outcome::kDelivered; }
    std::size_t hop_count() const { return hops.empty() ? 0 : hops.size() - 1; }
  };

  /// Walk FIBs from `from` toward `dst`. Deterministic and side-effect
  /// free.
  TraceResult trace(NodeId from, Ipv4Addr dst, unsigned max_hops = 255) const;

  std::string describe(const TraceResult& result) const;

 private:
  Topology topology_;
  std::vector<Fib> fibs_;
  std::vector<std::unordered_set<Ipv4Addr>> local_addresses_;
};

const char* to_string(Network::TraceResult::Outcome outcome);

}  // namespace evo::net
