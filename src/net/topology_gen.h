// Synthetic Internet topology generators.
//
// The paper has no traces or testbed topology; its claims are structural.
// We generate transit-stub topologies (the standard model of the
// multi-provider Internet: a core of transit ISPs with customer stub
// domains hanging off them), plus ring/line/star/grid helpers for unit
// tests and a Barabási–Albert preferential-attachment AS graph for
// scale-free sweeps. All generators are deterministic given a seed.
#pragma once

#include <cstdint>

#include "net/topology.h"
#include "sim/random.h"

namespace evo::net {

struct IntraDomainParams {
  std::uint32_t routers = 4;
  /// Probability of each extra chord beyond the connectivity ring.
  double chord_probability = 0.3;
  Cost min_cost = 1;
  Cost max_cost = 10;
};

/// Populate an existing (empty) domain with a connected random router
/// graph: a ring for guaranteed connectivity plus random chords.
void populate_domain(Topology& topo, DomainId domain, const IntraDomainParams& params,
                     sim::Rng& rng);

struct WaxmanParams {
  std::uint32_t routers = 12;
  /// Overall edge density (Waxman's alpha).
  double alpha = 0.9;
  /// Distance sensitivity (Waxman's beta): smaller = strongly local edges.
  double beta = 0.25;
  /// Link cost per unit of Euclidean distance (unit square geometry).
  double cost_scale = 10.0;
};

/// Populate an existing (empty) domain with a Waxman random-geometric
/// router graph: routers at uniform points in the unit square, edge
/// probability alpha * exp(-d / (beta * sqrt(2))), costs proportional to
/// distance. Disconnected components are stitched with their cheapest
/// inter-component edge, so the result is always connected.
void populate_domain_waxman(Topology& topo, DomainId domain,
                            const WaxmanParams& params, sim::Rng& rng);

struct TransitStubParams {
  std::uint32_t transit_domains = 4;
  std::uint32_t stubs_per_transit = 4;
  IntraDomainParams transit_internal{.routers = 8, .chord_probability = 0.4};
  IntraDomainParams stub_internal{.routers = 3, .chord_probability = 0.2};
  /// Use Waxman random-geometric interiors instead of ring+chords (router
  /// counts still come from the IntraDomainParams above).
  bool waxman_interiors = false;
  /// Probability of each transit-transit peering beyond the connectivity
  /// ring. Defaults to a full mesh: settlement-free peers do not transit
  /// for each other (valley-freeness), so a complete core — like the real
  /// tier-1 mesh — is what guarantees global reachability.
  double extra_transit_peering_probability = 1.0;
  /// Probability a stub is multi-homed to a second transit provider.
  double multihoming_probability = 0.15;
  std::uint64_t seed = 1;
};

/// Transit-stub Internet: transit domains peer with each other; stubs are
/// customers of their transit provider(s).
Topology generate_transit_stub(const TransitStubParams& params);

struct BarabasiAlbertParams {
  std::uint32_t domains = 64;
  std::uint32_t edges_per_new_domain = 2;
  IntraDomainParams internal{.routers = 3, .chord_probability = 0.2};
  std::uint64_t seed = 1;
};

/// Scale-free AS-level topology via preferential attachment. Higher-degree
/// (earlier) domains act as providers of later attachers.
Topology generate_barabasi_albert(const BarabasiAlbertParams& params);

/// A single domain whose routers form a line: r0 - r1 - ... - r(n-1).
/// Handy for unit tests with hand-computable distances.
Topology single_domain_line(std::uint32_t routers, Cost cost = 1);

/// A single domain whose routers form a ring.
Topology single_domain_ring(std::uint32_t routers, Cost cost = 1);

/// A single domain whose routers form a star: r0 is the hub.
Topology single_domain_star(std::uint32_t leaves, Cost cost = 1);

/// A single domain laid out as a w x h grid (unit costs).
Topology single_domain_grid(std::uint32_t width, std::uint32_t height);

/// Attach `hosts_per_domain` hosts to random routers of every stub domain
/// (or every domain when the topology has no stubs).
void attach_hosts(Topology& topo, std::uint32_t hosts_per_domain, sim::Rng& rng);

}  // namespace evo::net
