// Addresses and prefixes for the "current" (IPv(N-1)) and "next" (IPvN)
// generations of IP.
//
// The simulated IPv(N-1) is IPv4-shaped: 32-bit addresses, CIDR prefixes,
// longest-prefix-match forwarding. The simulated IPvN is 128-bit with a
// version tag, because the paper's IPvN is deliberately unconstrained
// ("we place no particular constraints on the addressing structure") —
// 128 bits is enough to carry both native allocations and RFC3056-style
// self-addresses that embed an IPv(N-1) address.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace evo::net {

/// 32-bit IPv(N-1) (IPv4-shaped) address. Value type, totally ordered.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t bits() const { return bits_; }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

  /// Dotted-quad rendering, e.g. "10.1.0.1".
  std::string to_string() const;

  /// Parse dotted-quad; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

 private:
  std::uint32_t bits_ = 0;
};

/// CIDR prefix over Ipv4Addr. The address is stored canonicalized (host
/// bits zeroed), so equal prefixes always compare equal.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr addr, std::uint8_t length)
      : addr_(Ipv4Addr{addr.bits() & mask_bits(length)}), length_(length) {}

  /// A host route (/32) for one address.
  static constexpr Prefix host(Ipv4Addr addr) { return Prefix{addr, 32}; }

  constexpr Ipv4Addr address() const { return addr_; }
  constexpr std::uint8_t length() const { return length_; }

  constexpr bool contains(Ipv4Addr addr) const {
    return (addr.bits() & mask_bits(length_)) == addr_.bits();
  }
  constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.addr_);
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  /// "10.1.0.0/16"
  std::string to_string() const;

  /// Parse "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  static constexpr std::uint32_t mask_bits(std::uint8_t length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

 private:
  Ipv4Addr addr_;
  std::uint8_t length_ = 0;
};

/// 128-bit IPvN address with an explicit version octet.
///
/// Layout (big-endian conceptually):
///   [127]      self-address flag (1 = RFC3056-style temporary address)
///   [126:120]  IP version number N (e.g. 8 for "IPv8")
///   [119:96]   reserved / allocation space tag
///   [95:32]    allocation-specific bits (native: domain/router/host ids)
///   [31:0]     for self-addresses: the embedded IPv(N-1) address
class IpvNAddr {
 public:
  constexpr IpvNAddr() = default;
  constexpr IpvNAddr(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  static constexpr std::uint64_t kSelfFlag = 1ULL << 63;

  /// Native address allocated by an IPvN-deploying provider.
  static constexpr IpvNAddr native(std::uint8_t version, std::uint32_t domain,
                                   std::uint32_t node, std::uint32_t host) {
    const std::uint64_t hi =
        (static_cast<std::uint64_t>(version & 0x7F) << 56) |
        (static_cast<std::uint64_t>(domain) << 24) | (node & 0xFFFFFF);
    return IpvNAddr{hi, (static_cast<std::uint64_t>(node) << 32) | host};
  }

  /// RFC3056-style self-address: flag bit set, version, embedded v4 bits.
  /// "using one address bit to indicate such 'self addressing' and deriving
  /// the remaining IPvN address bits from the endhost's unique IPv(N-1)
  /// address" (paper, §3.3.2).
  static constexpr IpvNAddr self(std::uint8_t version, Ipv4Addr v4) {
    const std::uint64_t hi =
        kSelfFlag | (static_cast<std::uint64_t>(version & 0x7F) << 56);
    return IpvNAddr{hi, v4.bits()};
  }

  constexpr bool is_self_address() const { return (hi_ & kSelfFlag) != 0; }
  constexpr std::uint8_t version() const {
    return static_cast<std::uint8_t>((hi_ >> 56) & 0x7F);
  }

  /// For native addresses: the allocating domain / access router / host
  /// fields laid down by native().
  constexpr std::uint32_t native_domain() const {
    return static_cast<std::uint32_t>((hi_ >> 24) & 0xFFFFFFFF);
  }
  constexpr std::uint32_t native_node() const {
    return static_cast<std::uint32_t>(lo_ >> 32);
  }
  constexpr std::uint32_t native_host() const {
    return static_cast<std::uint32_t>(lo_ & 0xFFFFFFFF);
  }

  /// For self-addresses: the embedded IPv(N-1) address.
  constexpr Ipv4Addr embedded_v4() const {
    return Ipv4Addr{static_cast<std::uint32_t>(lo_ & 0xFFFFFFFF)};
  }

  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }

  constexpr bool is_unspecified() const { return hi_ == 0 && lo_ == 0; }

  friend constexpr auto operator<=>(IpvNAddr, IpvNAddr) = default;

  /// "vN:hex-hi:hex-lo" or "vN:self:a.b.c.d".
  std::string to_string() const;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// Prefix over IPvN addresses. Length in [0, 128]; canonicalized.
class IpvNPrefix {
 public:
  constexpr IpvNPrefix() = default;
  IpvNPrefix(IpvNAddr addr, std::uint8_t length);

  /// A host route (/128).
  static IpvNPrefix host(IpvNAddr addr) { return IpvNPrefix{addr, 128}; }

  IpvNAddr address() const { return addr_; }
  std::uint8_t length() const { return length_; }

  bool contains(IpvNAddr addr) const;

  friend constexpr auto operator<=>(const IpvNPrefix&, const IpvNPrefix&) = default;

  std::string to_string() const;

 private:
  IpvNAddr addr_;
  std::uint8_t length_ = 0;
};

}  // namespace evo::net

namespace std {

template <>
struct hash<evo::net::Ipv4Addr> {
  std::size_t operator()(evo::net::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct hash<evo::net::Prefix> {
  std::size_t operator()(const evo::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.address().bits()) << 8) | p.length());
  }
};

template <>
struct hash<evo::net::IpvNAddr> {
  std::size_t operator()(const evo::net::IpvNAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.hi() * 0x9E3779B97f4A7C15ULL ^ a.lo());
  }
};

template <>
struct hash<evo::net::IpvNPrefix> {
  std::size_t operator()(const evo::net::IpvNPrefix& p) const noexcept {
    return std::hash<evo::net::IpvNAddr>{}(p.address()) * 31 + p.length();
  }
};

}  // namespace std
