// Packets as an explicit header stack.
//
// The paper's transition mechanism is encapsulation: "any endhost can
// simply encapsulate an IPv8 packet in an IPv4 packet with destination A4"
// (§3.1). A Packet therefore carries a stack of headers; the outermost
// header is what the current hop forwards on. vN-Bone tunnels push/pop
// additional IPv(N-1) headers.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/ids.h"

namespace evo::net {

/// IPv(N-1) (v4-shaped) header.
struct Ipv4Header {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t ttl = 64;
  /// Protocol demux: which kind of payload follows.
  enum class Proto : std::uint8_t {
    kData = 0,       // plain IPv(N-1) datagram
    kIpvNEncap = 41, // an IPvN header follows (6in4-style)
    kControl = 89,   // routing-protocol payloads
  };
  Proto proto = Proto::kData;
};

/// IPvN header. Carries an optional "legacy destination" option field:
/// "The destination's IPv(N-1) address could either be inferred from its
/// temporary IPvN address or might be carried in a separate option field
/// in the IPvN header" (§3.3.2).
struct IpvNHeader {
  IpvNAddr src;
  IpvNAddr dst;
  std::uint8_t ttl = 64;
  /// Optional legacy (IPv(N-1)) destination for egress routing; zero if
  /// absent. Redundant with dst.embedded_v4() for self-addresses.
  Ipv4Addr legacy_dst;
  bool has_legacy_dst = false;
};

/// One layer of the header stack.
struct HeaderLayer {
  enum class Kind : std::uint8_t { kIpv4, kIpvN } kind = Kind::kIpv4;
  Ipv4Header v4;   // valid when kind == kIpv4
  IpvNHeader vn;   // valid when kind == kIpvN

  static HeaderLayer ipv4(Ipv4Header h) {
    HeaderLayer l;
    l.kind = Kind::kIpv4;
    l.v4 = h;
    return l;
  }
  static HeaderLayer ipvn(IpvNHeader h) {
    HeaderLayer l;
    l.kind = Kind::kIpvN;
    l.vn = h;
    return l;
  }
};

/// A simulated datagram: a stack of headers plus an opaque payload tag the
/// experiments use to correlate sends with receives.
class Packet {
 public:
  Packet() = default;

  /// Outermost header (the one forwarding acts on). Requires non-empty.
  HeaderLayer& outer() {
    assert(!layers_.empty());
    return layers_.back();
  }
  const HeaderLayer& outer() const {
    assert(!layers_.empty());
    return layers_.back();
  }

  bool empty() const { return layers_.empty(); }
  std::size_t depth() const { return layers_.size(); }

  /// Encapsulate: push a new outermost header.
  void push(HeaderLayer layer) { layers_.push_back(layer); }

  /// Decapsulate: pop the outermost header. Requires non-empty.
  HeaderLayer pop() {
    assert(!layers_.empty());
    HeaderLayer top = layers_.back();
    layers_.pop_back();
    return top;
  }

  const std::vector<HeaderLayer>& layers() const { return layers_; }

  std::uint64_t payload_id = 0;

  /// Diagnostic rendering of the header stack, outermost first.
  std::string describe() const;

 private:
  std::vector<HeaderLayer> layers_;
};

/// Build the canonical paper packet: an IPvN datagram encapsulated in an
/// IPv(N-1) datagram addressed to the deployment's anycast address.
Packet make_encapsulated(IpvNHeader inner, Ipv4Addr outer_src, Ipv4Addr anycast_dst);

}  // namespace evo::net
