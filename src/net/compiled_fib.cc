#include "net/compiled_fib.h"

#include <bit>

namespace evo::net {

void CompiledFib::compile(const Fib& fib) {
  entries_.clear();
  ranges_.clear();
  entries_.reserve(fib.size());
  fib.for_each([&](const FibEntry& e) { entries_.push_back(e); });

  // Project the prefix set onto disjoint ranges. Prefixes form a laminar
  // family (any two are nested or disjoint) and for_each yields them sorted
  // by start address with containers before containees, so one sweep with a
  // stack of currently-open prefixes computes the LPM winner everywhere.
  // 64-bit cursors avoid overflow at the top of the address space.
  struct Open {
    std::uint64_t end;  // inclusive
    std::int32_t idx;
  };
  std::vector<Open> open;
  const auto emit = [&](std::uint64_t start, std::int32_t winner) {
    if (!ranges_.empty() && ranges_.back().start == start) {
      ranges_.back().winner = winner;  // a longer prefix opens at the same address
      return;
    }
    if (!ranges_.empty() && ranges_.back().winner == winner) return;
    ranges_.push_back(Range{static_cast<std::uint32_t>(start), winner});
  };
  emit(0, -1);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Prefix& p = entries_[i].prefix;
    const std::uint64_t start = p.address().bits();
    const std::uint64_t end = start + ((std::uint64_t{1} << (32 - p.length())) - 1);
    while (!open.empty() && open.back().end < start) {
      const Open closed = open.back();
      open.pop_back();
      emit(closed.end + 1, open.empty() ? -1 : open.back().idx);
    }
    emit(start, static_cast<std::int32_t>(i));
    open.push_back(Open{end, static_cast<std::int32_t>(i)});
  }
  while (!open.empty()) {
    const Open closed = open.back();
    open.pop_back();
    if (closed.end < 0xFFFFFFFFull) {
      emit(closed.end + 1, open.empty() ? -1 : open.back().idx);
    }
  }

  // Size the block index so the average block brackets only a handful of
  // ranges: lookups then cost one index load plus a search over one or two
  // cache lines. Clamped so a small table keeps a 1 KiB index and a huge
  // one never exceeds the 16-bit (256 Ki-slot) granularity.
  const unsigned range_bits =
      std::bit_width(ranges_.size() | 1);  // ~ceil(log2(ranges))
  const unsigned index_bits = std::min(16u, std::max(8u, range_bits + 5));
  shift_ = 32 - index_bits;
  const std::size_t blocks = std::size_t{1} << index_bits;
  index_.assign(blocks + 1, 0);
  std::size_t r = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint64_t block_start = static_cast<std::uint64_t>(b) << shift_;
    while (r + 1 < ranges_.size() && ranges_[r + 1].start <= block_start) ++r;
    index_[b] = static_cast<std::uint32_t>(r);
  }
  index_[blocks] = static_cast<std::uint32_t>(ranges_.size() - 1);

  epoch_ = fib.epoch();
}

std::size_t CompiledFib::memory_bytes() const {
  return entries_.capacity() * sizeof(FibEntry) +
         ranges_.capacity() * sizeof(Range) +
         index_.capacity() * sizeof(std::uint32_t);
}

}  // namespace evo::net
