#include "net/topology_gen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cassert>
#include <string>
#include <vector>

namespace evo::net {

namespace {

Cost random_cost(const IntraDomainParams& params, sim::Rng& rng) {
  return static_cast<Cost>(rng.uniform_int(static_cast<std::int64_t>(params.min_cost),
                                           static_cast<std::int64_t>(params.max_cost)));
}

/// A random border router of `domain`, or any router when none is marked
/// border yet (used while wiring the first inter-domain links).
NodeId random_router(const Topology& topo, DomainId domain, sim::Rng& rng) {
  const auto& routers = topo.domain(domain).routers;
  assert(!routers.empty());
  return routers[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(routers.size()) - 1))];
}

}  // namespace

void populate_domain(Topology& topo, DomainId domain, const IntraDomainParams& params,
                     sim::Rng& rng) {
  assert(topo.domain(domain).routers.empty() && "domain already populated");
  std::vector<NodeId> routers;
  routers.reserve(params.routers);
  for (std::uint32_t i = 0; i < params.routers; ++i) {
    routers.push_back(topo.add_router(domain));
  }
  if (params.routers == 1) return;
  // Connectivity ring.
  for (std::uint32_t i = 0; i < params.routers; ++i) {
    const auto j = (i + 1) % params.routers;
    if (params.routers == 2 && j == 0) break;  // avoid a duplicate pair link
    topo.add_link(routers[i], routers[j], random_cost(params, rng));
  }
  // Random chords.
  for (std::uint32_t i = 0; i + 2 < params.routers; ++i) {
    for (std::uint32_t j = i + 2; j < params.routers; ++j) {
      if (i == 0 && j == params.routers - 1) continue;  // ring edge already
      if (rng.bernoulli(params.chord_probability)) {
        topo.add_link(routers[i], routers[j], random_cost(params, rng));
      }
    }
  }
}

void populate_domain_waxman(Topology& topo, DomainId domain,
                            const WaxmanParams& params, sim::Rng& rng) {
  assert(topo.domain(domain).routers.empty() && "domain already populated");
  assert(params.routers >= 1);
  struct Point {
    double x, y;
  };
  std::vector<Point> points;
  std::vector<NodeId> routers;
  for (std::uint32_t i = 0; i < params.routers; ++i) {
    routers.push_back(topo.add_router(domain));
    points.push_back(Point{rng.uniform(), rng.uniform()});
  }
  auto distance = [&](std::uint32_t i, std::uint32_t j) {
    const double dx = points[i].x - points[j].x;
    const double dy = points[i].y - points[j].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  auto link_cost = [&](double d) {
    return std::max<Cost>(1, static_cast<Cost>(d * params.cost_scale + 0.5));
  };
  const double diag = std::sqrt(2.0);
  for (std::uint32_t i = 0; i < params.routers; ++i) {
    for (std::uint32_t j = i + 1; j < params.routers; ++j) {
      const double d = distance(i, j);
      const double p = params.alpha * std::exp(-d / (params.beta * diag));
      if (rng.uniform() < p) {
        topo.add_link(routers[i], routers[j], link_cost(d));
      }
    }
  }
  // Stitch any disconnected components with their cheapest bridging edge.
  while (true) {
    const auto comps = connected_components(topo.domain_graph(domain));
    bool split = false;
    for (const NodeId r : routers) {
      split = split || comps.label[r.value()] != comps.label[routers[0].value()];
    }
    if (!split) break;
    double best_d = std::numeric_limits<double>::max();
    std::uint32_t best_i = 0;
    std::uint32_t best_j = 0;
    for (std::uint32_t i = 0; i < params.routers; ++i) {
      for (std::uint32_t j = i + 1; j < params.routers; ++j) {
        if (comps.label[routers[i].value()] == comps.label[routers[j].value()]) {
          continue;
        }
        const double d = distance(i, j);
        if (d < best_d) {
          best_d = d;
          best_i = i;
          best_j = j;
        }
      }
    }
    topo.add_link(routers[best_i], routers[best_j], link_cost(best_d));
  }
}

Topology generate_transit_stub(const TransitStubParams& params) {
  assert(params.transit_domains >= 1);
  sim::Rng rng{params.seed};
  Topology topo;

  auto populate = [&](DomainId d, const IntraDomainParams& internal) {
    if (params.waxman_interiors) {
      WaxmanParams waxman;
      waxman.routers = internal.routers;
      waxman.cost_scale = static_cast<double>(internal.max_cost);
      populate_domain_waxman(topo, d, waxman, rng);
    } else {
      populate_domain(topo, d, internal, rng);
    }
  };

  std::vector<DomainId> transits;
  for (std::uint32_t t = 0; t < params.transit_domains; ++t) {
    const auto d = topo.add_domain("transit-" + std::to_string(t), /*stub=*/false);
    populate(d, params.transit_internal);
    transits.push_back(d);
  }

  // Transit core: ring for connectivity + extra random peerings.
  for (std::uint32_t t = 0; params.transit_domains > 1 && t < params.transit_domains;
       ++t) {
    const auto u = transits[t];
    const auto v = transits[(t + 1) % params.transit_domains];
    if (params.transit_domains == 2 && t == 1) break;
    topo.add_interdomain_link(random_router(topo, u, rng), random_router(topo, v, rng),
                              Relationship::kPeer);
  }
  for (std::uint32_t i = 0; i + 2 < params.transit_domains; ++i) {
    for (std::uint32_t j = i + 2; j < params.transit_domains; ++j) {
      if (i == 0 && j == params.transit_domains - 1) continue;
      if (rng.bernoulli(params.extra_transit_peering_probability)) {
        topo.add_interdomain_link(random_router(topo, transits[i], rng),
                                  random_router(topo, transits[j], rng),
                                  Relationship::kPeer);
      }
    }
  }

  // Stub domains: customers of their transit provider(s).
  for (std::uint32_t t = 0; t < params.transit_domains; ++t) {
    for (std::uint32_t s = 0; s < params.stubs_per_transit; ++s) {
      const auto d = topo.add_domain(
          "stub-" + std::to_string(t) + "." + std::to_string(s), /*stub=*/true);
      populate(d, params.stub_internal);
      // Provider link: from the transit's perspective the stub is a customer.
      topo.add_interdomain_link(random_router(topo, transits[t], rng),
                                random_router(topo, d, rng), Relationship::kCustomer);
      if (params.transit_domains > 1 && rng.bernoulli(params.multihoming_probability)) {
        std::uint32_t other = t;
        while (other == t) {
          other = static_cast<std::uint32_t>(
              rng.uniform_int(0, params.transit_domains - 1));
        }
        topo.add_interdomain_link(random_router(topo, transits[other], rng),
                                  random_router(topo, d, rng),
                                  Relationship::kCustomer);
      }
    }
  }
  return topo;
}

Topology generate_barabasi_albert(const BarabasiAlbertParams& params) {
  assert(params.domains >= 2);
  sim::Rng rng{params.seed};
  Topology topo;

  std::vector<DomainId> domains;
  // Degree-proportional attachment implemented by repeating each endpoint
  // of every edge in this bag.
  std::vector<DomainId> attachment_bag;

  for (std::uint32_t i = 0; i < params.domains; ++i) {
    const auto d = topo.add_domain("as-" + std::to_string(i), /*stub=*/false);
    populate_domain(topo, d, params.internal, rng);
    domains.push_back(d);
    if (i == 0) {
      attachment_bag.push_back(d);
      continue;
    }
    const std::uint32_t m = std::min(params.edges_per_new_domain, i);
    std::vector<DomainId> chosen;
    while (chosen.size() < m) {
      const DomainId candidate = attachment_bag[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(attachment_bag.size()) - 1))];
      if (candidate == d) continue;
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) continue;
      chosen.push_back(candidate);
    }
    for (const DomainId provider : chosen) {
      // The established (higher-degree) domain acts as the provider.
      topo.add_interdomain_link(random_router(topo, provider, rng),
                                random_router(topo, d, rng), Relationship::kCustomer);
      attachment_bag.push_back(provider);
      attachment_bag.push_back(d);
    }
  }
  // No stub flags here: in a scale-free graph every domain is
  // host-eligible, which attach_hosts handles via its no-stub fallback.
  (void)domains;
  return topo;
}

namespace {

Topology single_domain(std::uint32_t routers, const char* name) {
  Topology topo;
  const auto d = topo.add_domain(name, /*stub=*/true);
  for (std::uint32_t i = 0; i < routers; ++i) topo.add_router(d);
  return topo;
}

}  // namespace

Topology single_domain_line(std::uint32_t routers, Cost cost) {
  Topology topo = single_domain(routers, "line");
  const auto& nodes = topo.domain(DomainId{0}).routers;
  for (std::uint32_t i = 0; i + 1 < routers; ++i) {
    topo.add_link(nodes[i], nodes[i + 1], cost);
  }
  return topo;
}

Topology single_domain_ring(std::uint32_t routers, Cost cost) {
  assert(routers >= 3);
  Topology topo = single_domain(routers, "ring");
  const auto& nodes = topo.domain(DomainId{0}).routers;
  for (std::uint32_t i = 0; i < routers; ++i) {
    topo.add_link(nodes[i], nodes[(i + 1) % routers], cost);
  }
  return topo;
}

Topology single_domain_star(std::uint32_t leaves, Cost cost) {
  Topology topo = single_domain(leaves + 1, "star");
  const auto& nodes = topo.domain(DomainId{0}).routers;
  for (std::uint32_t i = 1; i <= leaves; ++i) {
    topo.add_link(nodes[0], nodes[i], cost);
  }
  return topo;
}

Topology single_domain_grid(std::uint32_t width, std::uint32_t height) {
  assert(width >= 1 && height >= 1);
  Topology topo = single_domain(width * height, "grid");
  const auto& nodes = topo.domain(DomainId{0}).routers;
  const auto at = [&](std::uint32_t x, std::uint32_t y) { return nodes[y * width + x]; };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) topo.add_link(at(x, y), at(x + 1, y), 1);
      if (y + 1 < height) topo.add_link(at(x, y), at(x, y + 1), 1);
    }
  }
  return topo;
}

void attach_hosts(Topology& topo, std::uint32_t hosts_per_domain, sim::Rng& rng) {
  bool any_stub = false;
  for (const auto& d : topo.domains()) any_stub = any_stub || d.stub;
  for (const auto& d : topo.domains()) {
    if (any_stub && !d.stub) continue;
    for (std::uint32_t h = 0; h < hosts_per_domain; ++h) {
      topo.add_host(random_router(topo, d.id, rng));
    }
  }
}

}  // namespace evo::net
