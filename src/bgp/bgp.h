// Inter-domain routing: an event-driven path-vector protocol with
// Gao-Rexford policies, per-border-router RIBs, iBGP route sharing within
// a domain, and hot-potato FIB installation.
//
// One BgpSystem manages every speaker in the topology. Border routers
// (routers with inter-domain links) are eBGP speakers; border routers of
// the same domain form an iBGP full mesh. Internal routers are not
// speakers — they receive routes at FIB-installation time, forwarding
// toward the IGP-closest border router holding a best route (hot potato).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/route.h"
#include "igp/igp.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace evo::bgp {

struct BgpConfig {
  /// Latency of iBGP propagation between border routers of one domain.
  sim::Duration ibgp_latency = sim::Duration::millis(2);
  /// Debounce between a Loc-RIB change and the UPDATEs it triggers.
  sim::Duration update_delay = sim::Duration::millis(5);
};

class BgpSystem {
 public:
  /// `network`, `simulator` and the IGP map must outlive this object.
  /// `igp_of` maps each domain to its running IGP (used for hot-potato
  /// distances at FIB-install time).
  BgpSystem(sim::Simulator& simulator, net::Network& network,
            std::function<const igp::Igp*(net::DomainId)> igp_of,
            BgpConfig config = {});

  /// Create sessions and originate every domain's own prefix. Run the
  /// simulator afterwards to converge.
  void start();

  /// Originate `prefix` from `domain` (announced by all of its border
  /// routers) under `policy`.
  void originate(net::DomainId domain, net::Prefix prefix,
                 OriginationPolicy policy = {});

  /// Withdraw a locally originated prefix.
  void withdraw(net::DomainId domain, net::Prefix prefix);

  /// Push converged routes into every router's FIB (hot potato through the
  /// domain's IGP). Call after the simulator reaches quiescence.
  void install_routes();

  /// Best route for `prefix` at `speaker`'s Loc-RIB, if any.
  const Route* best_route(net::NodeId speaker, net::Prefix prefix) const;

  /// Visit every Loc-RIB best route at `speaker` in prefix order, without
  /// materializing prefix lists. No-op for non-speakers. Const inspection
  /// point for policy-compliance oracles (e.g. Gao-Rexford audits).
  void for_each_best_route(net::NodeId speaker,
                           const std::function<void(const Route&)>& fn) const;

  /// All prefixes with a best route at `speaker`.
  std::vector<net::Prefix> loc_rib_prefixes(net::NodeId speaker) const;

  /// Loc-RIB size (for routing-state experiments). `anycast_only` counts
  /// just anycast routes.
  std::size_t loc_rib_size(net::NodeId speaker, bool anycast_only = false) const;

  std::uint64_t messages_sent() const { return messages_sent_; }

  /// The speakers (border routers) of a domain, sorted by NodeId.
  std::vector<net::NodeId> speakers_of(net::DomainId domain) const;

  /// Notify that an inter-domain link changed state: sessions over it come
  /// up or go down and routes are re-evaluated.
  void on_link_change(net::LinkId link);

  /// Notify that a router crashed (up=false) or recovered (up=true). A
  /// crashed speaker loses all volatile RIB state (originations survive as
  /// configuration); its peers withdraw everything learned from it. On
  /// recovery the speaker re-seeds its self-originated routes and peers
  /// re-advertise their Loc-RIBs toward it.
  void on_node_change(net::NodeId node, bool up);

  /// Telemetry sink for protocol point events (originations, session
  /// transitions, update flushes). Null by default; records nothing unset.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  struct Session {
    net::NodeId local;
    net::NodeId remote;
    net::LinkId link;                 // invalid() for iBGP
    net::Relationship relationship;   // of remote as seen from local (eBGP)
    bool ibgp = false;
  };

  struct Update {
    net::Prefix prefix;
    bool withdraw = false;
    std::vector<net::DomainId> as_path;
    bool no_export = false;
    std::uint8_t propagation_ttl = 0;
    bool anycast = false;
  };

  /// Sentinel "session" index for self-originated Adj-RIB-In entries.
  static constexpr std::size_t kSelfSession = static_cast<std::size_t>(-1);

  struct SpeakerState {
    net::DomainId domain;
    std::vector<std::size_t> sessions;  // indices into sessions_
    /// Adj-RIB-In: best known offer per (prefix, receiving session).
    /// Keying by session (not neighbor) keeps parallel sessions to the
    /// same neighbor independent.
    std::map<std::pair<net::Prefix, std::size_t>, Route> adj_rib_in;
    /// Loc-RIB: the winning route per prefix.
    std::map<net::Prefix, Route> loc_rib;
    /// Adj-RIB-Out: (prefix, session) pairs currently advertised, so
    /// withdrawals are sent only where an advertisement exists.
    std::set<std::pair<net::Prefix, std::size_t>> adj_rib_out;
    /// Prefixes originated locally (shared per domain but stored per
    /// speaker for uniform processing).
    std::map<net::Prefix, OriginationPolicy> originated;
    /// Prefixes whose best changed and need (re-)advertisement.
    std::set<net::Prefix> dirty;
    bool send_pending = false;
  };

  bool is_speaker(net::NodeId node) const {
    return speakers_.contains(node.value());
  }
  SpeakerState& speaker(net::NodeId node) { return speakers_.at(node.value()); }
  const SpeakerState& speaker(net::NodeId node) const {
    return speakers_.at(node.value());
  }

  void send(net::NodeId from, net::NodeId to, std::size_t session_index,
            Update update);
  void receive(net::NodeId local, net::NodeId from, std::size_t session_index,
               Update update);

  /// Re-run the decision process for `prefix` at `node`; queue updates if
  /// the best route changed.
  void decide(net::NodeId node, net::Prefix prefix);

  /// True if `route` may be exported over `session` (Gao-Rexford + scope +
  /// no-export + iBGP rules).
  bool exportable(const SpeakerState& st, const Route& route,
                  const Session& session) const;

  void schedule_send(net::NodeId node);
  void flush_updates(net::NodeId node);

  /// True when the session can carry updates right now: both speakers up
  /// and (for eBGP) the underlying link usable.
  bool session_usable(const Session& session) const;

  /// Speakers sorted by NodeId, for deterministic fan-out order.
  std::vector<net::NodeId> sorted_speakers() const;

  /// Total ordering on routes: true if `a` is preferred over `b`.
  static bool preferred(const Route& a, const Route& b);

  /// Find the cheapest up link between adjacent routers (for FIB entries).
  net::LinkId connecting_link(net::NodeId a, net::NodeId b) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  std::function<const igp::Igp*(net::DomainId)> igp_of_;
  BgpConfig config_;
  std::vector<Session> sessions_;
  std::unordered_map<std::uint32_t, SpeakerState> speakers_;  // by NodeId value
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t messages_sent_ = 0;
  bool started_ = false;
};

}  // namespace evo::bgp
