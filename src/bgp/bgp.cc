#include "bgp/bgp.h"

#include <algorithm>
#include <cassert>

namespace evo::bgp {

using net::Cost;
using net::DomainId;
using net::FibEntry;
using net::LinkId;
using net::NodeId;
using net::Prefix;
using net::Relationship;
using net::RouteOrigin;

const char* to_string(LearnedFrom learned) {
  switch (learned) {
    case LearnedFrom::kSelf: return "self";
    case LearnedFrom::kCustomer: return "customer";
    case LearnedFrom::kPeer: return "peer";
    case LearnedFrom::kProvider: return "provider";
  }
  return "?";
}

std::string Route::describe() const {
  std::string out = prefix.to_string() + " path[";
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(as_path[i].value());
  }
  out += "] pref=" + std::to_string(local_pref);
  out += std::string(" from=") + to_string(learned);
  if (anycast) out += " anycast";
  if (no_export) out += " no-export";
  return out;
}

BgpSystem::BgpSystem(sim::Simulator& simulator, net::Network& network,
                     std::function<const igp::Igp*(net::DomainId)> igp_of,
                     BgpConfig config)
    : simulator_(simulator),
      network_(network),
      igp_of_(std::move(igp_of)),
      config_(config) {
  const auto& topo = network_.topology();
  // Every border router is a speaker.
  for (const auto& router : topo.routers()) {
    if (router.border) {
      SpeakerState st;
      st.domain = router.domain;
      speakers_.emplace(router.id.value(), std::move(st));
    }
  }
  // eBGP sessions over inter-domain links.
  for (const auto& link : topo.links()) {
    if (!link.interdomain) continue;
    const auto rel_of_b = topo.relationship(topo.router(link.a).domain,
                                            topo.router(link.b).domain);
    assert(rel_of_b.has_value());
    const std::size_t ab = sessions_.size();
    sessions_.push_back(Session{link.a, link.b, link.id, *rel_of_b, false});
    speaker(link.a).sessions.push_back(ab);
    const std::size_t ba = sessions_.size();
    sessions_.push_back(Session{link.b, link.a, link.id, reverse(*rel_of_b), false});
    speaker(link.b).sessions.push_back(ba);
  }
  // iBGP full mesh among each domain's border routers.
  for (const auto& domain : topo.domains()) {
    std::vector<NodeId> borders;
    for (const NodeId r : domain.routers) {
      if (topo.router(r).border) borders.push_back(r);
    }
    for (std::size_t i = 0; i < borders.size(); ++i) {
      for (std::size_t j = 0; j < borders.size(); ++j) {
        if (i == j) continue;
        const std::size_t s = sessions_.size();
        sessions_.push_back(Session{borders[i], borders[j], LinkId::invalid(),
                                    Relationship::kPeer, /*ibgp=*/true});
        speaker(borders[i]).sessions.push_back(s);
      }
    }
  }
}

void BgpSystem::start() {
  started_ = true;
  // Each domain originates its own address block.
  for (const auto& domain : network_.topology().domains()) {
    originate(domain.id, domain.prefix);
  }
  // Flush anything originated before start() (its decide() could not
  // schedule a send yet).
  for (auto& [node, st] : speakers_) {
    if (!st.dirty.empty()) schedule_send(NodeId{node});
  }
}

void BgpSystem::originate(DomainId domain, Prefix prefix, OriginationPolicy policy) {
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kBgp, "bgp.originate", domain.value(),
                       (std::uint64_t{prefix.address().bits()} << 8) | prefix.length());
  }
  for (const NodeId node : speakers_of(domain)) {
    auto& st = speaker(node);
    st.originated[prefix] = policy;
    Route route;
    route.prefix = prefix;
    route.as_path = {domain};
    route.egress_router = node;
    route.local_pref = local_pref_for(LearnedFrom::kSelf);
    route.learned = LearnedFrom::kSelf;
    route.no_export = policy.no_export;
    route.propagation_ttl = policy.propagation_ttl;
    route.anycast = policy.anycast;
    st.adj_rib_in[{prefix, kSelfSession}] = route;
    decide(node, prefix);
    // A re-origination may change only export policy; the decision process
    // cannot see that, so always force a (re-)advertisement pass.
    st.dirty.insert(prefix);
    schedule_send(node);
  }
}

void BgpSystem::withdraw(DomainId domain, Prefix prefix) {
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kBgp, "bgp.withdraw", domain.value(),
                       (std::uint64_t{prefix.address().bits()} << 8) | prefix.length());
  }
  for (const NodeId node : speakers_of(domain)) {
    auto& st = speaker(node);
    st.originated.erase(prefix);
    st.adj_rib_in.erase({prefix, kSelfSession});
    decide(node, prefix);
  }
}

std::vector<NodeId> BgpSystem::speakers_of(DomainId domain) const {
  std::vector<NodeId> out;
  for (const NodeId r : network_.topology().domain(domain).routers) {
    if (network_.topology().router(r).border) out.push_back(r);
  }
  return out;  // domain.routers is in creation order == sorted
}

bool BgpSystem::preferred(const Route& a, const Route& b) {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path.size() != b.as_path.size()) return a.as_path.size() < b.as_path.size();
  // Prefer eBGP-learned (and self) over iBGP-learned.
  if (a.via_ibgp != b.via_ibgp) return b.via_ibgp;
  // Deterministic tiebreaks: neighbor domain, then remote router, then
  // egress router.
  const DomainId an = a.as_path.empty() ? DomainId::invalid() : a.as_path.front();
  const DomainId bn = b.as_path.empty() ? DomainId::invalid() : b.as_path.front();
  if (an != bn) return an < bn;
  if (a.ebgp_next_hop != b.ebgp_next_hop) return a.ebgp_next_hop < b.ebgp_next_hop;
  return a.egress_router < b.egress_router;
}

void BgpSystem::decide(NodeId node, Prefix prefix) {
  auto& st = speaker(node);
  const Route* best = nullptr;
  // Scan Adj-RIB-In for this prefix (keys are ordered, so the range is
  // contiguous).
  const auto lo = st.adj_rib_in.lower_bound({prefix, 0});
  for (auto it = lo; it != st.adj_rib_in.end() && it->first.first == prefix; ++it) {
    if (best == nullptr || preferred(it->second, *best)) best = &it->second;
  }

  const auto current = st.loc_rib.find(prefix);
  const bool had = current != st.loc_rib.end();
  if (best == nullptr) {
    if (!had) return;
    st.loc_rib.erase(current);
  } else {
    if (had && current->second.describe() == best->describe() &&
        current->second.egress_router == best->egress_router &&
        current->second.ebgp_next_hop == best->ebgp_next_hop &&
        current->second.via_link == best->via_link) {
      return;  // no effective change
    }
    st.loc_rib[prefix] = *best;
  }
  st.dirty.insert(prefix);
  schedule_send(node);
}

bool BgpSystem::exportable(const SpeakerState& st, const Route& route,
                           const Session& session) const {
  if (session.ibgp) {
    // iBGP: share only eBGP-learned or self-originated routes.
    return !route.via_ibgp;
  }
  // eBGP rules.
  if (route.no_export && route.learned != LearnedFrom::kSelf) return false;
  // GIA-style scoped propagation: stop once the exported path would
  // exceed the radius.
  if (route.propagation_ttl > 0) {
    const std::size_t exported_length =
        route.learned == LearnedFrom::kSelf ? 1 : route.as_path.size() + 1;
    if (exported_length > route.propagation_ttl) return false;
  }
  if (route.learned == LearnedFrom::kSelf) {
    const auto policy = st.originated.find(route.prefix);
    if (policy != st.originated.end() && policy->second.export_scope) {
      const DomainId neighbor = network_.topology().router(session.remote).domain;
      if (!policy->second.export_scope->contains(neighbor)) return false;
    }
    return true;
  }
  // Gao-Rexford: customer-learned exports everywhere; peer/provider-learned
  // exports only to customers.
  const bool from_customer = route.learned == LearnedFrom::kCustomer;
  if (from_customer) return true;
  return session.relationship == Relationship::kCustomer;
}

void BgpSystem::schedule_send(NodeId node) {
  auto& st = speaker(node);
  if (st.send_pending || !started_) return;
  st.send_pending = true;
  simulator_.schedule_after(config_.update_delay, [this, node] {
    speaker(node).send_pending = false;
    flush_updates(node);
  });
}

bool BgpSystem::session_usable(const Session& session) const {
  const auto& topo = network_.topology();
  if (!topo.router(session.local).up || !topo.router(session.remote).up) {
    return false;
  }
  // iBGP rides the intra-domain fabric; eBGP needs its physical link.
  return !session.link.valid() || topo.link_usable(session.link);
}

std::vector<NodeId> BgpSystem::sorted_speakers() const {
  std::vector<NodeId> out;
  out.reserve(speakers_.size());
  for (const auto& [value, st] : speakers_) out.push_back(NodeId{value});
  std::sort(out.begin(), out.end());
  return out;
}

void BgpSystem::flush_updates(NodeId node) {
  if (!network_.topology().router(node).up) return;  // crashed: sends nothing
  auto& st = speaker(node);
  const auto dirty = std::move(st.dirty);
  st.dirty.clear();
  if (recorder_ != nullptr && !dirty.empty()) {
    recorder_->instant(obs::Domain::kBgp, "bgp.flush", node.value(), dirty.size());
  }
  for (const Prefix prefix : dirty) {
    const auto best = st.loc_rib.find(prefix);
    for (const std::size_t si : st.sessions) {
      const Session& session = sessions_[si];
      if (!session_usable(session)) continue;
      Update update;
      update.prefix = prefix;
      if (best == st.loc_rib.end() || !exportable(st, best->second, session)) {
        // Withdraw only where an advertisement actually exists.
        if (st.adj_rib_out.erase({prefix, si}) == 0) continue;
        update.withdraw = true;
      } else {
        st.adj_rib_out.insert({prefix, si});
      }
      if (!update.withdraw) {
        update.as_path = best->second.as_path;
        if (!session.ibgp) {
          // Path was already prepended with our domain at origination time
          // (self routes carry {domain}); for learned routes prepend now.
          if (best->second.learned != LearnedFrom::kSelf) {
            update.as_path.insert(update.as_path.begin(), st.domain);
          }
        }
        update.no_export = best->second.no_export;
        update.propagation_ttl = best->second.propagation_ttl;
        update.anycast = best->second.anycast;
      }
      send(node, session.remote, si, std::move(update));
    }
  }
}

void BgpSystem::send(NodeId from, NodeId to, std::size_t session_index,
                     Update update) {
  const Session& session = sessions_[session_index];
  const sim::Duration latency = session.ibgp
                                    ? config_.ibgp_latency
                                    : network_.topology().link(session.link).latency;
  ++messages_sent_;
  simulator_.schedule_after(latency, [this, from, to, session_index,
                                      update = std::move(update)] {
    // Re-check at delivery: the session may have died in flight.
    if (!session_usable(sessions_[session_index])) return;
    receive(to, from, session_index, update);
  });
}

void BgpSystem::receive(NodeId local, NodeId from, std::size_t session_index,
                        Update update) {
  auto& st = speaker(local);
  // Find the reverse session to learn the relationship (sessions are
  // created in pairs; the incoming view is the remote's perspective).
  const Session& incoming = sessions_[session_index];
  const bool ibgp = incoming.ibgp;

  // The incoming session as seen from `local`: the reverse twin of
  // `session_index` (sessions are created in adjacent pairs for eBGP; for
  // iBGP, the peer's mirrored session). Identify it by scanning local's
  // sessions for the matching remote + link.
  const std::size_t in_session = [&]() -> std::size_t {
    for (const std::size_t si : st.sessions) {
      const Session& s = sessions_[si];
      if (s.remote == from && s.ibgp == incoming.ibgp && s.link == incoming.link) {
        return si;
      }
    }
    return kSelfSession;  // unreachable in a consistent session graph
  }();

  if (update.withdraw) {
    if (st.adj_rib_in.erase({update.prefix, in_session}) > 0) {
      decide(local, update.prefix);
    }
    return;
  }

  // Loop prevention (eBGP): reject paths containing our own domain.
  if (!ibgp && std::find(update.as_path.begin(), update.as_path.end(), st.domain) !=
                   update.as_path.end()) {
    return;
  }

  Route route;
  route.prefix = update.prefix;
  route.as_path = update.as_path;
  route.no_export = update.no_export;
  route.propagation_ttl = update.propagation_ttl;
  route.anycast = update.anycast;
  if (ibgp) {
    // The sending border router remains the egress; the route keeps the
    // Gao-Rexford class it had where it entered the domain, recomputed
    // from the domain's relationship with the path's first AS hop.
    route.via_ibgp = true;
    route.egress_router = from;
    const auto rel = network_.topology().relationship(
        st.domain, route.as_path.empty() ? DomainId::invalid() : route.as_path.front());
    route.learned = !rel                              ? LearnedFrom::kPeer
                    : *rel == Relationship::kCustomer ? LearnedFrom::kCustomer
                    : *rel == Relationship::kPeer     ? LearnedFrom::kPeer
                                                      : LearnedFrom::kProvider;
    route.local_pref = local_pref_for(route.learned);
  } else {
    const Relationship rel = in_session == kSelfSession
                                 ? Relationship::kPeer
                                 : sessions_[in_session].relationship;
    route.learned = rel == Relationship::kCustomer  ? LearnedFrom::kCustomer
                    : rel == Relationship::kPeer    ? LearnedFrom::kPeer
                                                    : LearnedFrom::kProvider;
    route.local_pref = local_pref_for(route.learned);
    route.egress_router = local;
    route.ebgp_next_hop = from;
    route.via_link = incoming.link;
  }

  st.adj_rib_in[{update.prefix, in_session}] = std::move(route);
  decide(local, update.prefix);
}

void BgpSystem::on_link_change(LinkId link_id) {
  const auto& link = network_.topology().link(link_id);
  if (!link.interdomain) return;
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kBgp,
                       network_.topology().link_usable(link_id) ? "bgp.session.up"
                                                                : "bgp.session.down",
                       link_id.value(),
                       (std::uint64_t{link.a.value()} << 32) | link.b.value());
  }
  if (network_.topology().link_usable(link_id)) {
    // Sessions re-establish: both ends re-advertise their full Loc-RIBs.
    for (const NodeId end : {link.a, link.b}) {
      auto& st = speaker(end);
      for (const auto& [prefix, route] : st.loc_rib) st.dirty.insert(prefix);
      schedule_send(end);
    }
  } else {
    // Session down: drop routes learned over this link's sessions at both
    // ends, and forget what was advertised over them.
    for (const NodeId end : {link.a, link.b}) {
      auto& st = speaker(end);
      std::set<std::size_t> dead_sessions;
      for (const std::size_t si : st.sessions) {
        if (sessions_[si].link == link_id) dead_sessions.insert(si);
      }
      std::vector<Prefix> affected;
      for (auto it = st.adj_rib_in.begin(); it != st.adj_rib_in.end();) {
        if (dead_sessions.contains(it->first.second)) {
          affected.push_back(it->first.first);
          it = st.adj_rib_in.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = st.adj_rib_out.begin(); it != st.adj_rib_out.end();) {
        if (dead_sessions.contains(it->second)) {
          it = st.adj_rib_out.erase(it);
        } else {
          ++it;
        }
      }
      for (const Prefix prefix : affected) decide(end, prefix);
    }
  }
}

void BgpSystem::on_node_change(NodeId node, bool up) {
  if (!started_) return;
  if (recorder_ != nullptr && is_speaker(node)) {
    recorder_->instant(obs::Domain::kBgp,
                       up ? "bgp.speaker.up" : "bgp.speaker.down", node.value());
  }
  if (!up) {
    // The crashed speaker loses all volatile RIB state; `originated` stays
    // (it is configuration, restored below on recovery).
    if (is_speaker(node)) {
      auto& st = speaker(node);
      st.adj_rib_in.clear();
      st.loc_rib.clear();
      st.adj_rib_out.clear();
      st.dirty.clear();
    }
    // Peers hold down every session to the dead node and withdraw what
    // they learned over those sessions.
    for (const NodeId peer : sorted_speakers()) {
      if (peer == node) continue;
      auto& st = speaker(peer);
      std::set<std::size_t> dead_sessions;
      for (const std::size_t si : st.sessions) {
        if (sessions_[si].remote == node) dead_sessions.insert(si);
      }
      if (dead_sessions.empty()) continue;
      std::vector<Prefix> affected;
      for (auto it = st.adj_rib_in.begin(); it != st.adj_rib_in.end();) {
        if (dead_sessions.contains(it->first.second)) {
          affected.push_back(it->first.first);
          it = st.adj_rib_in.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = st.adj_rib_out.begin(); it != st.adj_rib_out.end();) {
        if (dead_sessions.contains(it->second)) {
          it = st.adj_rib_out.erase(it);
        } else {
          ++it;
        }
      }
      for (const Prefix prefix : affected) decide(peer, prefix);
    }
  } else {
    // Recovery: re-seed self-originated routes from configuration...
    if (is_speaker(node)) {
      auto& st = speaker(node);
      for (const auto& [prefix, policy] : st.originated) {
        Route route;
        route.prefix = prefix;
        route.as_path = {st.domain};
        route.egress_router = node;
        route.local_pref = local_pref_for(LearnedFrom::kSelf);
        route.learned = LearnedFrom::kSelf;
        route.no_export = policy.no_export;
        route.propagation_ttl = policy.propagation_ttl;
        route.anycast = policy.anycast;
        st.adj_rib_in[{prefix, kSelfSession}] = route;
        decide(node, prefix);
        st.dirty.insert(prefix);
      }
      if (!st.dirty.empty()) schedule_send(node);
    }
    // ...and peers with a session to the restored speaker re-advertise
    // their full Loc-RIBs toward it (session re-establishment).
    for (const NodeId peer : sorted_speakers()) {
      if (peer == node) continue;
      auto& st = speaker(peer);
      const bool has_session =
          std::any_of(st.sessions.begin(), st.sessions.end(),
                      [&](std::size_t si) { return sessions_[si].remote == node; });
      if (!has_session || st.loc_rib.empty()) continue;
      for (const auto& [prefix, route] : st.loc_rib) st.dirty.insert(prefix);
      schedule_send(peer);
    }
  }
}

const Route* BgpSystem::best_route(NodeId node, Prefix prefix) const {
  if (!is_speaker(node)) return nullptr;
  const auto& st = speaker(node);
  const auto it = st.loc_rib.find(prefix);
  return it == st.loc_rib.end() ? nullptr : &it->second;
}

void BgpSystem::for_each_best_route(
    NodeId node, const std::function<void(const Route&)>& fn) const {
  if (!is_speaker(node)) return;
  for (const auto& [prefix, route] : speaker(node).loc_rib) fn(route);
}

std::vector<Prefix> BgpSystem::loc_rib_prefixes(NodeId node) const {
  std::vector<Prefix> out;
  if (!is_speaker(node)) return out;
  for (const auto& [prefix, route] : speaker(node).loc_rib) out.push_back(prefix);
  return out;
}

std::size_t BgpSystem::loc_rib_size(NodeId node, bool anycast_only) const {
  if (!is_speaker(node)) return 0;
  const auto& st = speaker(node);
  if (!anycast_only) return st.loc_rib.size();
  std::size_t count = 0;
  for (const auto& [prefix, route] : st.loc_rib) {
    if (route.anycast) ++count;
  }
  return count;
}

net::LinkId BgpSystem::connecting_link(NodeId a, NodeId b) const {
  const auto& topo = network_.topology();
  LinkId best = LinkId::invalid();
  Cost best_cost = net::kInfiniteCost;
  for (const LinkId link_id : topo.router(a).links) {
    const auto& link = topo.link(link_id);
    if (!topo.link_usable(link_id) || link.other_end(a) != b) continue;
    if (link.cost < best_cost) {
      best = link_id;
      best_cost = link.cost;
    }
  }
  return best;
}

void BgpSystem::install_routes() {
  const auto& topo = network_.topology();
  for (const auto& domain : topo.domains()) {
    const auto borders = speakers_of(domain.id);
    if (borders.empty()) continue;
    const igp::Igp* igp = igp_of_(domain.id);

    // Union of prefixes any border router can reach.
    std::set<Prefix> prefixes;
    for (const NodeId b : borders) {
      for (const auto& [prefix, route] : speaker(b).loc_rib) prefixes.insert(prefix);
    }

    for (const NodeId r : domain.routers) {
      auto& fib = network_.fib(r);
      // Collected first, installed via replace_origins below: a sync that
      // rederives the same BGP table leaves the route epoch (and thus the
      // router's compiled forwarding state) untouched.
      std::vector<FibEntry> routes;
      for (const Prefix prefix : prefixes) {
        // Never install a BGP route for our own aggregate: intra-domain
        // routing handles it.
        if (prefix == domain.prefix) continue;
        // Likewise skip any prefix this domain originates itself (e.g. an
        // anycast /32 with local members): internal reachability is the
        // IGP's job, and clobbering the IGP's anycast routes would defeat
        // local capture.
        const bool originated_here = std::any_of(
            borders.begin(), borders.end(), [&](NodeId b) {
              return speaker(b).originated.contains(prefix);
            });
        if (originated_here) continue;
        // Intra-domain routes win over BGP for an identical prefix (the
        // "IGP-preferred" admin-distance rule; see DESIGN.md): a member
        // domain's own anycast members must keep capturing local traffic
        // even when a remote member peer-advertises the same /32 to us.
        if (const auto* existing = fib.find(prefix);
            existing != nullptr && existing->origin != RouteOrigin::kBgp) {
          continue;
        }

        // Hot potato: the IGP-closest border router with a best route.
        NodeId chosen = NodeId::invalid();
        Cost chosen_cost = net::kInfiniteCost;
        const Route* chosen_route = nullptr;
        for (const NodeId b : borders) {
          const auto& rib = speaker(b).loc_rib;
          const auto it = rib.find(prefix);
          if (it == rib.end()) continue;
          // Don't egress through an iBGP-learned copy when its eBGP owner
          // is also a candidate: route through the true egress.
          const NodeId egress = it->second.via_ibgp ? it->second.egress_router : b;
          const Cost d = (r == egress) ? 0
                                       : (igp ? igp->distance(r, egress)
                                              : net::kInfiniteCost);
          if (d < chosen_cost || (d == chosen_cost && egress < chosen)) {
            chosen = egress;
            chosen_cost = d;
            chosen_route = &it->second;
          }
        }
        if (!chosen.valid() || chosen_route == nullptr) continue;

        if (r == chosen) {
          // We are the egress: forward over the eBGP link. Self-originated
          // routes need no FIB entry (IGP covers the domain).
          const auto& rib = speaker(chosen).loc_rib;
          const auto it = rib.find(prefix);
          if (it == rib.end()) continue;
          const Route& route = it->second;
          if (route.learned == LearnedFrom::kSelf || route.via_ibgp) {
            // via_ibgp at the egress itself shouldn't happen (egress
            // resolution above); kSelf means the prefix is ours — skip.
            continue;
          }
          if (!route.via_link.valid() || !topo.link_usable(route.via_link)) continue;
          routes.push_back(FibEntry{prefix, route.ebgp_next_hop, route.via_link,
                                    RouteOrigin::kBgp,
                                    static_cast<Cost>(route.as_path.size())});
        } else {
          const NodeId hop = igp ? igp->next_hop(r, chosen) : NodeId::invalid();
          if (!hop.valid()) continue;
          const LinkId out = connecting_link(r, hop);
          routes.push_back(
              FibEntry{prefix, hop, out, RouteOrigin::kBgp, chosen_cost});
        }
      }
      fib.replace_origins({RouteOrigin::kBgp}, routes);
    }
  }
}

}  // namespace evo::bgp
