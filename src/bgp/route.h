// BGP route representation and policy attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/ids.h"
#include "net/topology.h"

namespace evo::bgp {

/// How a route entered the local *domain* (drives Gao-Rexford export and
/// local preference). A route received over iBGP keeps the class it had at
/// the border that learned it — see Route::via_ibgp.
enum class LearnedFrom : std::uint8_t {
  kSelf,      // originated by this domain
  kCustomer,  // learned over a customer session
  kPeer,      // learned over a peer session
  kProvider,  // learned over a provider session
};

const char* to_string(LearnedFrom learned);

/// Standard Gao-Rexford local preference: prefer customer > peer > provider.
constexpr int local_pref_for(LearnedFrom learned) {
  switch (learned) {
    case LearnedFrom::kSelf: return 400;
    case LearnedFrom::kCustomer: return 300;
    case LearnedFrom::kPeer: return 200;
    case LearnedFrom::kProvider: return 100;
  }
  return 0;
}

struct Route {
  net::Prefix prefix;
  /// AS path, nearest first; back() is the origin domain.
  std::vector<net::DomainId> as_path;
  /// The local border router holding the eBGP session this route entered
  /// through (== the egress for hot-potato forwarding).
  net::NodeId egress_router;
  /// The remote border router to forward to at the egress.
  net::NodeId ebgp_next_hop;
  /// The inter-domain link at the egress.
  net::LinkId via_link;
  int local_pref = 0;
  LearnedFrom learned = LearnedFrom::kSelf;
  /// True when this copy arrived over iBGP (the egress is a *different*
  /// border router of this domain). `learned` still records how the route
  /// entered the domain, so export policy survives iBGP distribution.
  bool via_ibgp = false;
  /// Community "no-export": receivers keep the route but never propagate
  /// it. Used for the paper's bilateral anycast peering arrangements.
  bool no_export = false;
  /// GIA-style propagation radius carried with the route (see
  /// OriginationPolicy::propagation_ttl); 0 = unlimited.
  std::uint8_t propagation_ttl = 0;
  /// Marks anycast group routes (for state-counting experiments).
  bool anycast = false;

  net::DomainId origin_domain() const {
    return as_path.empty() ? net::DomainId::invalid() : as_path.back();
  }
  bool contains_domain(net::DomainId d) const {
    for (const auto dom : as_path) {
      if (dom == d) return true;
    }
    return false;
  }

  std::string describe() const;
};

/// How a locally originated prefix is exported.
struct OriginationPolicy {
  /// When set, export only to these neighbor domains (the paper's "peer
  /// with neighboring domains to advertise their anycast route").
  std::optional<std::set<net::DomainId>> export_scope;
  /// Receivers must not propagate further (bilateral arrangement).
  bool no_export = false;
  /// Stop propagating once the AS path reaches this length (GIA-style
  /// scoped search dissemination: members are visible within a radius,
  /// default routes to the home domain cover the rest). 0 = unlimited.
  std::uint8_t propagation_ttl = 0;
  bool anycast = false;
};

}  // namespace evo::bgp
