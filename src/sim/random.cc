#include "sim/random.h"

#include <cmath>
#include <numeric>

namespace evo::sim {

double Rng::exponential(double mean) {
  // Inverse-CDF; clamp away from 0 so log() is finite.
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    using std::swap;
    swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace evo::sim
