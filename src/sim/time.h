// Virtual time for the discrete-event simulator.
//
// Time is a strong integer type counting microseconds of simulated time.
// Integer time keeps the simulation exactly deterministic: two events
// scheduled from identical inputs always compare identically, independent
// of floating-point rounding.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace evo::sim {

/// A span of simulated time, in microseconds. Value type, totally ordered.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration micros(std::int64_t n) { return Duration{n}; }
  static constexpr Duration millis(std::int64_t n) { return Duration{n * 1000}; }
  static constexpr Duration seconds(std::int64_t n) { return Duration{n * 1'000'000}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_micros() const { return micros_; }
  constexpr double count_millis() const { return static_cast<double>(micros_) / 1000.0; }
  constexpr double count_seconds() const {
    return static_cast<double>(micros_) / 1'000'000.0;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.micros_ + b.micros_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.micros_ - b.micros_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.micros_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.micros_ / k};
  }

  Duration& operator+=(Duration other) {
    micros_ += other.micros_;
    return *this;
  }

 private:
  std::int64_t micros_ = 0;
};

/// An instant of simulated time (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t micros) : micros_(micros) {}

  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_micros() const { return micros_; }
  constexpr double count_seconds() const {
    return static_cast<double>(micros_) / 1'000'000.0;
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.micros_ + d.count_micros()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.micros_ - b.micros_};
  }

 private:
  std::int64_t micros_ = 0;
};

/// Human-readable rendering, e.g. "1.250s" or "340us".
std::string to_string(Duration d);
std::string to_string(TimePoint t);

}  // namespace evo::sim
