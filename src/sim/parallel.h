// Deterministic parallel execution of independent sweep cells.
//
// A "cell" is one point of an experiment's parameter sweep: it builds its
// own Simulator, MetricRegistry, and topology from a cell-specific seed,
// runs, and returns rendered rows plus metrics. Cells share no mutable
// state, so the harness can run them on a thread pool; results are merged
// in cell-index order, making output byte-identical regardless of thread
// count (a 1-thread run IS the serial run).
//
// Per-cell seeds are derived with splitmix64 from (sweep seed, cell index),
// so a cell's random stream does not depend on which thread picks it up or
// on how many cells ran before it — the property that makes parallel
// sweeps reproducible (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/random.h"

namespace evo::sim {

/// What one sweep cell produces.
struct CellResult {
  std::string text;        // rendered table rows, printed in cell order
  MetricRegistry metrics;  // per-cell metrics, merged in cell order
};

class ParallelSweep {
 public:
  using CellFn = std::function<CellResult(std::size_t cell, Rng& rng)>;

  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ParallelSweep(unsigned threads = 0);

  /// The deterministic seed for cell `cell` of a sweep keyed by `sweep_seed`.
  static std::uint64_t cell_seed(std::uint64_t sweep_seed, std::size_t cell);

  /// Run `fn` for every cell in [0, cells), distributing cells over the
  /// pool; results are returned in cell order. If a cell throws, the first
  /// exception (in cell order) is rethrown after all workers finish.
  std::vector<CellResult> run(std::size_t cells, std::uint64_t sweep_seed,
                              const CellFn& fn) const;

  unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

/// Fold every cell's registry into one, in cell order: counters are summed,
/// summary samples appended. Sample order within a summary is cell-major,
/// so the merged registry is identical for any thread count.
MetricRegistry merge_metrics(const std::vector<CellResult>& cells);

}  // namespace evo::sim
