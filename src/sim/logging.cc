#include "sim/logging.h"

#include <cstdio>

namespace evo::sim {

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component, const char* fmt, ...) {
  if (!enabled(level)) return;
  char message[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof message, fmt, args);
  va_end(args);
  if (now_ != nullptr) {
    std::fprintf(stderr, "[%12.6fs] %s [%.*s] %s\n", now_->count_seconds(),
                 level_tag(level), static_cast<int>(component.size()),
                 component.data(), message);
  } else {
    std::fprintf(stderr, "%s [%.*s] %s\n", level_tag(level),
                 static_cast<int>(component.size()), component.data(), message);
  }
}

}  // namespace evo::sim
