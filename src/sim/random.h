// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded through splitmix64. Every simulation component takes
// an explicit Rng (or a seed), never a global: reproducibility is a core
// requirement (see DESIGN.md §6).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace evo::sim {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derive an independent child seed for a named substream. One scenario
/// seed fans out into per-component streams (topology, plan, probes,
/// iteration i of a campaign) that are reproducible in isolation: the
/// same (seed, stream) pair always yields the same child seed.
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed ^ (stream * 0xD1342543DE82EF95ULL);
  const std::uint64_t a = splitmix64(state);
  return a ^ splitmix64(state);
}

/// xoshiro256** generator. Small, fast, high quality, and deterministic
/// across platforms (unlike std::mt19937's distribution wrappers).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Debiased modulo (Lemire-style rejection).
    std::uint64_t x = next_u64();
    std::uint64_t threshold = (0 - range) % range;
    while (x < threshold) x = next_u64();
    return lo + static_cast<std::int64_t>(x % range);
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Pick one element uniformly. Requires a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    assert(!items.empty());
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng{next_u64()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace evo::sim
