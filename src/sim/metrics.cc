#include "sim/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace evo::sim {

double Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::percentile(double p) const {
  // NaN compares false against every bound below and its cast to an index
  // is undefined, so reject it outright rather than return samples_[?].
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  // Nearest-rank (ceil) definition. p/100*n picks up FP noise at exact
  // rank boundaries (99.9/100*1000 = 999.0000000000001, whose ceil lands
  // one rank high); a relative nudge absorbs it without moving any
  // genuinely fractional rank.
  const double exact = p / 100.0 * static_cast<double>(samples_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(exact * (1.0 - 1e-12)));
  return samples_[std::max<std::size_t>(rank, 1) - 1];
}

std::string Summary::brief() const {
  // Consecutive percentile calls reuse one sort: ensure_sorted() caches and
  // add() invalidates (regression-tested in test_metrics.cc).
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f p99.9=%.3f max=%.3f",
                count(), mean(), percentile(50), percentile(95), percentile(99),
                percentile(99.9), max());
  return buf;
}

std::string MetricRegistry::report() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    char line[256];
    std::snprintf(line, sizeof line, "%-48s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, summary] : summaries_) {
    char line[320];
    std::snprintf(line, sizeof line, "%-48s %s\n", name.c_str(),
                  summary.brief().c_str());
    out += line;
  }
  return out;
}

}  // namespace evo::sim
