// Cancellable calendar queue of timed events.
//
// Events live in bucketed slot vectors (a calendar/ladder queue) instead of
// a binary heap: the ring covers a sliding horizon of kBuckets fixed-width
// time buckets, events beyond the horizon wait in an overflow vector that
// is redistributed when the cursor reaches them. Equal-time events fire in
// schedule order (FIFO), which keeps protocol simulations deterministic.
//
// Cancellation is a generation compare: every event borrows a slot in a
// queue-wide slot table; its handle remembers (slot, generation) and an
// event is live exactly while the table still holds its generation. No
// per-event heap allocation anywhere — the slot table and buckets are
// reused flat vectors, and EventFn stores typical closures inline (see
// inplace_fn.h). size() is maintained as an exact live-event counter.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "obs/recorder.h"
#include "sim/inplace_fn.h"
#include "sim/time.h"

namespace evo::sim {

/// Type-erased event callback. The inline capacity is sized for the largest
/// hot-path capture (DeliveryEngine's forwarding continuation, static_assert
/// in delivery.cc); everything the control plane schedules fits comfortably.
using EventFn = InplaceFn<128>;

namespace detail {

/// Queue-wide slot table shared (via shared_ptr) with outstanding handles,
/// so handles stay safe to query even after the queue is destroyed.
struct SlotTable {
  std::vector<std::uint64_t> gens;
  std::vector<std::uint32_t> free_slots;
  std::size_t live = 0;

  /// Borrow a slot and advance its generation; the returned generation
  /// identifies exactly one scheduled event for the slot's current tenancy.
  std::uint32_t acquire() {
    if (!free_slots.empty()) {
      const std::uint32_t slot = free_slots.back();
      free_slots.pop_back();
      ++gens[slot];
      return slot;
    }
    gens.push_back(1);
    return static_cast<std::uint32_t>(gens.size() - 1);
  }

  /// Invalidate the slot's current generation and make it reusable.
  void release(std::uint32_t slot) {
    ++gens[slot];
    free_slots.push_back(slot);
  }

  bool is_live(std::uint32_t slot, std::uint64_t gen) const {
    return gens[slot] == gen;
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same event. Remains safe (reporting not-pending) after the
/// event fires, is cancelled, the queue is cleared, or the queue dies.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto table = table_.lock()) {
      if (table->is_live(slot_, gen_)) {
        table->release(slot_);
        --table->live;
      }
    }
  }

  /// True if this handle refers to an event that is still pending.
  bool pending() const {
    auto table = table_.lock();
    return table && table->is_live(slot_, gen_);
  }

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<detail::SlotTable> table, std::uint32_t slot,
              std::uint64_t gen)
      : table_(std::move(table)), slot_(slot), gen_(gen) {}

  std::weak_ptr<detail::SlotTable> table_;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;  // generation 0 never matches a live slot
};

class EventQueue {
 public:
  /// Health counters, cumulative over the queue's lifetime (clear() keeps
  /// them). Exported by Simulator::export_queue_metrics as sim.queue.*.
  struct Stats {
    std::size_t live_high_water = 0;        // max simultaneous live events
    std::uint64_t overflow_scheduled = 0;   // events that landed past the horizon
    std::uint64_t overflow_redistributed = 0;  // overflow events pulled into the ring
    std::uint64_t rebases = 0;              // horizon rebase operations
  };

  EventQueue() : table_(std::make_shared<detail::SlotTable>()), ring_(kBuckets) {}

  EventHandle schedule(TimePoint when, EventFn fn) {
    const std::uint32_t slot = table_->acquire();
    const std::uint64_t gen = table_->gens[slot];
    if (++table_->live > stats_.live_high_water) {
      stats_.live_high_water = table_->live;
    }
    insert(Entry{when, next_seq_++, gen, slot, std::move(fn)});
    return EventHandle{table_, slot, gen};
  }

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return table_->live == 0; }

  /// Exact number of live events. O(1): the counter is decremented on both
  /// cancel and fire, so cancelled entries never inflate it.
  std::size_t size() const { return table_->live; }

  const Stats& stats() const { return stats_; }

  /// Telemetry sink for rare structural events (horizon rebases). Null by
  /// default; never consulted on the schedule/pop fast path.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Time of the earliest live event; TimePoint::max() if none.
  TimePoint next_time() const {
    return ensure_front() ? active_[active_idx_].when : TimePoint::max();
  }

  /// Remove and return the earliest live event. Requires !empty().
  struct Popped {
    TimePoint when;
    EventFn fn;
  };
  Popped pop() {
    const bool have = ensure_front();
    assert(have && "pop() on an empty EventQueue");
    (void)have;
    Entry& entry = active_[active_idx_++];
    table_->release(entry.slot);  // fired events are no longer "pending"
    --table_->live;
    return Popped{entry.when, std::move(entry.fn)};
  }

  /// Drop every scheduled event. Outstanding EventHandles observe the
  /// cancellation: pending() reports false afterwards, exactly as if each
  /// event had been cancelled individually.
  void clear() {
    auto drop_all = [&](std::vector<Entry>& entries, std::size_t from) {
      for (std::size_t i = from; i < entries.size(); ++i) {
        if (table_->is_live(entries[i].slot, entries[i].gen)) {
          table_->release(entries[i].slot);
          --table_->live;
        }
      }
      entries.clear();
    };
    drop_all(active_, active_idx_);
    active_idx_ = 0;
    for (auto& bucket : ring_) drop_all(bucket, 0);
    drop_all(overflow_, 0);
    base_abs_ = 0;
    overflow_min_ab_ = kNoOverflow;
  }

 private:
  // 1024us buckets x 256 buckets = a ~262ms sliding horizon. Typical event
  // delays here are link latencies and protocol timers (100us..100ms), so
  // nearly every event lands in the ring; multi-second timers take the
  // overflow path and are redistributed when the cursor reaches them.
  static constexpr int kBucketShift = 10;  // 1024us per bucket
  static constexpr std::int64_t kBuckets = 256;
  static constexpr std::int64_t kNoOverflow =
      std::numeric_limits<std::int64_t>::max();

  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    std::uint64_t gen = 0;
    std::uint32_t slot = 0;
    EventFn fn;
  };

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  static std::int64_t abs_bucket(TimePoint t) {
    return t.count_micros() >> kBucketShift;  // arithmetic shift (C++20)
  }

  void insert(Entry entry) {
    const std::int64_t ab = abs_bucket(entry.when);
    if (ab <= base_abs_) {
      // Lands in the bucket the cursor is consuming (or, if scheduled
      // "into the past", before it): splice into the unconsumed tail so
      // (when, seq) order — the heap's order — is preserved.
      const auto pos =
          std::upper_bound(active_.begin() + static_cast<std::ptrdiff_t>(active_idx_),
                           active_.end(), entry, entry_less);
      active_.insert(pos, std::move(entry));
    } else if (ab < base_abs_ + kBuckets) {
      ring_[static_cast<std::size_t>(ab % kBuckets)].push_back(std::move(entry));
    } else {
      overflow_min_ab_ = std::min(overflow_min_ab_, ab);
      overflow_.push_back(std::move(entry));
      ++stats_.overflow_scheduled;
    }
  }

  /// Position the cursor on the earliest live entry; false if none exist.
  /// Lazily drops cancelled entries and loads/sorts the next bucket (or
  /// redistributes the overflow into a new horizon) as needed.
  bool ensure_front() const {
    for (;;) {
      while (active_idx_ < active_.size()) {
        Entry& entry = active_[active_idx_];
        if (table_->is_live(entry.slot, entry.gen)) return true;
        entry.fn.reset();  // cancelled: free the closure promptly
        ++active_idx_;
      }
      active_.clear();
      active_idx_ = 0;
      if (table_->live == 0) return false;

      // Advance to the next non-empty ring bucket. The scan is capped at
      // the earliest overflow bucket: an overflow event may sit *inside*
      // the advanced horizon (it was beyond the horizon when scheduled),
      // and ring buckets past it must not fire before it is pulled in.
      const std::int64_t limit = std::min(base_abs_ + kBuckets, overflow_min_ab_);
      bool loaded = false;
      for (std::int64_t ab = base_abs_; ab < limit; ++ab) {
        auto& bucket = ring_[static_cast<std::size_t>(ab % kBuckets)];
        if (bucket.empty()) continue;
        base_abs_ = ab;
        active_.swap(bucket);
        std::sort(active_.begin(), active_.end(), entry_less);
        loaded = true;
        break;
      }
      if (loaded) continue;

      // Nothing fires before the overflow: rebase the horizon at its
      // earliest bucket and pull every overflow event inside the new
      // horizon into the ring. Remaining ring entries all have buckets in
      // [old limit, old base + kBuckets) ⊂ [new base, new base + kBuckets),
      // so their ring positions stay valid.
      assert(overflow_min_ab_ != kNoOverflow && "live counter says events remain");
      base_abs_ = overflow_min_ab_;
      std::int64_t new_min = kNoOverflow;
      std::size_t keep = 0;
      for (std::size_t i = 0; i < overflow_.size(); ++i) {
        const std::int64_t ab = abs_bucket(overflow_[i].when);
        if (ab < base_abs_ + kBuckets) {
          ring_[static_cast<std::size_t>(ab % kBuckets)].push_back(
              std::move(overflow_[i]));
        } else {
          new_min = std::min(new_min, ab);
          if (keep != i) overflow_[keep] = std::move(overflow_[i]);
          ++keep;
        }
      }
      stats_.overflow_redistributed += overflow_.size() - keep;
      ++stats_.rebases;
      if (recorder_ != nullptr) {
        recorder_->instant(obs::Domain::kSim, "sim.queue.rebase",
                           static_cast<std::uint64_t>(base_abs_),
                           static_cast<std::uint64_t>(overflow_.size() - keep));
      }
      overflow_.resize(keep);
      overflow_min_ab_ = new_min;
    }
  }

  std::shared_ptr<detail::SlotTable> table_;
  // Lazily maintained by const queries (next_time/empty-adjacent paths),
  // exactly like the old heap's skim(); hence mutable.
  mutable std::vector<std::vector<Entry>> ring_;
  mutable std::vector<Entry> active_;  // cursor bucket, sorted by (when, seq)
  mutable std::size_t active_idx_ = 0;
  mutable std::int64_t base_abs_ = 0;  // absolute bucket index of active_
  mutable std::vector<Entry> overflow_;
  mutable std::int64_t overflow_min_ab_ = kNoOverflow;
  mutable Stats stats_;  // rebase counters advance inside const queries
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t next_seq_ = 0;
};

}  // namespace evo::sim
