// Cancellable priority queue of timed events.
//
// Events at equal times fire in schedule order (FIFO), which keeps protocol
// simulations deterministic. Cancellation is lazy: a cancelled entry stays
// in the heap and is skimmed off the top before any query or pop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace evo::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto s = cancelled_.lock()) *s = true;
  }

  /// True if this handle refers to an event that is still pending.
  bool pending() const {
    auto s = cancelled_.lock();
    return s && !*s;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  std::weak_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  EventHandle schedule(TimePoint when, EventFn fn) {
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, std::move(fn), cancelled});
    return EventHandle{cancelled};
  }

  /// True if no live (non-cancelled) events remain.
  bool empty() const {
    skim();
    return heap_.empty();
  }

  /// Number of live events. O(heap) in the worst case only when many
  /// cancelled entries pile up at the top; amortized cheap.
  std::size_t size() const {
    skim();
    // Entries below the top may still be cancelled; this is an upper bound
    // that is exact when cancellation is rare (the common case here).
    return heap_.size();
  }

  /// Time of the earliest live event; TimePoint::max() if none.
  TimePoint next_time() const {
    skim();
    return heap_.empty() ? TimePoint::max() : heap_.top().when;
  }

  /// Remove and return the earliest live event. Requires !empty().
  struct Popped {
    TimePoint when;
    EventFn fn;
  };
  Popped pop() {
    skim();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    *top.cancelled = true;  // fired events are no longer "pending"
    return Popped{top.when, std::move(top.fn)};
  }

  /// Drop every scheduled event. Outstanding EventHandles observe the
  /// cancellation: pending() reports false afterwards, exactly as if each
  /// event had been cancelled individually.
  void clear() {
    while (!heap_.empty()) {
      *heap_.top().cancelled = true;
      heap_.pop();
    }
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    EventFn fn;
    std::shared_ptr<bool> cancelled;

    // Min-heap: std::priority_queue is a max-heap, so invert.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled entries from the top of the heap.
  void skim() const {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }

  mutable std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace evo::sim
