#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace evo::sim {

ParallelSweep::ParallelSweep(unsigned threads)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {}

std::uint64_t ParallelSweep::cell_seed(std::uint64_t sweep_seed,
                                       std::size_t cell) {
  // Mix the cell index through the golden-ratio increment before the
  // splitmix64 finalizer: adjacent cells land in uncorrelated streams even
  // for adjacent sweep seeds.
  std::uint64_t state =
      sweep_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(cell) + 1));
  return splitmix64(state);
}

std::vector<CellResult> ParallelSweep::run(std::size_t cells,
                                           std::uint64_t sweep_seed,
                                           const CellFn& fn) const {
  std::vector<CellResult> results(cells);
  if (cells == 0) return results;
  std::vector<std::exception_ptr> errors(cells);

  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells) return;
      Rng rng{cell_seed(sweep_seed, i)};
      try {
        results[i] = fn(i, rng);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, cells));
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

MetricRegistry merge_metrics(const std::vector<CellResult>& cells) {
  MetricRegistry merged;
  for (const CellResult& cell : cells) merged.merge_from(cell.metrics);
  return merged;
}

}  // namespace evo::sim
