#include "sim/time.h"

#include <cstdio>

namespace evo::sim {

namespace {

std::string format_micros(std::int64_t us) {
  char buf[64];
  if (us % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(us / 1'000'000));
  } else if (us % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

std::string to_string(Duration d) { return format_micros(d.count_micros()); }
std::string to_string(TimePoint t) { return format_micros(t.count_micros()); }

}  // namespace evo::sim
