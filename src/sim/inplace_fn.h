// Small-buffer-optimized, move-only `void()` callable.
//
// std::function heap-allocates for any capture larger than ~2 pointers,
// which puts two allocations (closure + control block) on every scheduled
// event. InplaceFn stores the closure inline — the buffer is sized by the
// template parameter so EventFn can be sized for the largest hot-path
// capture (DeliveryEngine's forwarding continuation) — and only falls back
// to the heap for oversized or throwing-move callables, which none of the
// simulator's hot paths produce.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace evo::sim {

template <std::size_t InlineBytes>
class InplaceFn {
 public:
  static constexpr std::size_t inline_capacity = InlineBytes;

  InplaceFn() = default;
  InplaceFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InplaceFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InplaceFn(InplaceFn&& other) noexcept { move_from(other); }
  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;
  ~InplaceFn() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(buf_); }

  /// Destroy the held callable (if any); *this becomes empty.
  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  /// True if the held callable lives in the inline buffer (no heap). Empty
  /// functions report false.
  bool uses_inline_storage() const {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    bool inline_storage;
  };

  template <typename F>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<F*>(p))(); }
    static void destroy(void* p) noexcept { static_cast<F*>(p)->~F(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static constexpr VTable vtable{&invoke, &destroy, &relocate, true};
  };

  template <typename F>
  struct HeapOps {
    static F* ptr(void* p) { return *static_cast<F**>(p); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(ptr(src));  // steal the pointer; nothing to destroy
    }
    static constexpr VTable vtable{&invoke, &destroy, &relocate, false};
  };

  template <typename F0>
  void emplace(F0&& f) {
    using F = std::remove_cvref_t<F0>;
    if constexpr (sizeof(F) <= InlineBytes &&
                  alignof(F) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<F>) {
      ::new (static_cast<void*>(buf_)) F(std::forward<F0>(f));
      vtable_ = &InlineOps<F>::vtable;
    } else {
      ::new (static_cast<void*>(buf_)) F*(new F(std::forward<F0>(f)));
      vtable_ = &HeapOps<F>::vtable;
    }
  }

  void move_from(InplaceFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[InlineBytes];
};

}  // namespace evo::sim
