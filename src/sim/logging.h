// Minimal leveled logger for simulation diagnostics.
//
// Logging is off by default so benchmarks stay quiet; tests and examples
// flip the level. The logger is intentionally tiny: printf-style sinks to
// stderr, tagged with the simulated time when a clock is attached.
#pragma once

#include <cstdarg>
#include <string_view>

#include "sim/time.h"

namespace evo::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Attach a clock so messages carry simulated timestamps. Pass nullptr
  /// to detach. The pointer must outlive the attachment.
  void attach_clock(const TimePoint* now) { now_ = now; }

  bool enabled(LogLevel level) const {
    return level_ >= level && level != LogLevel::kOff;
  }

  void log(LogLevel level, std::string_view component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
  const TimePoint* now_ = nullptr;
};

// Convenience macros; the argument list is not evaluated when disabled.
#define EVO_LOG(level, component, ...)                                      \
  do {                                                                      \
    if (::evo::sim::Logger::instance().enabled(level))                     \
      ::evo::sim::Logger::instance().log(level, component, __VA_ARGS__);   \
  } while (0)

#define EVO_LOG_ERROR(component, ...) \
  EVO_LOG(::evo::sim::LogLevel::kError, component, __VA_ARGS__)
#define EVO_LOG_WARN(component, ...) \
  EVO_LOG(::evo::sim::LogLevel::kWarn, component, __VA_ARGS__)
#define EVO_LOG_INFO(component, ...) \
  EVO_LOG(::evo::sim::LogLevel::kInfo, component, __VA_ARGS__)
#define EVO_LOG_DEBUG(component, ...) \
  EVO_LOG(::evo::sim::LogLevel::kDebug, component, __VA_ARGS__)
#define EVO_LOG_TRACE(component, ...) \
  EVO_LOG(::evo::sim::LogLevel::kTrace, component, __VA_ARGS__)

}  // namespace evo::sim
