#include "sim/simulator.h"

#include <cassert>

namespace evo::sim {

EventHandle Simulator::schedule_at(TimePoint when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++fired;
    ++processed_;
  }
  if (deadline != TimePoint::max() && now_ < deadline) {
    // Advance the clock to the requested time even when future events
    // remain: "run until T" leaves the clock at T, so repeated short
    // slices always make progress.
    now_ = deadline;
  }
  return fired;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && !queue_.empty()) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++fired;
    ++processed_;
  }
  return fired;
}

void Simulator::reset() {
  now_ = TimePoint::origin();
  // EventQueue::clear also invalidates outstanding handles lazily.
  while (!queue_.empty()) queue_.pop();
  processed_ = 0;
}

}  // namespace evo::sim
