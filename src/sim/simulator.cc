#include "sim/simulator.h"

#include <cassert>

namespace evo::sim {

void Simulator::export_queue_metrics(MetricRegistry& metrics) const {
  const EventQueue::Stats& stats = queue_.stats();
  metrics.increment("sim.queue.live_high_water",
                    static_cast<std::int64_t>(stats.live_high_water));
  metrics.increment("sim.queue.overflow_scheduled",
                    static_cast<std::int64_t>(stats.overflow_scheduled));
  metrics.increment("sim.queue.overflow_redistributed",
                    static_cast<std::int64_t>(stats.overflow_redistributed));
  metrics.increment("sim.queue.rebases",
                    static_cast<std::int64_t>(stats.rebases));
}

EventHandle Simulator::schedule_at(TimePoint when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

bool Simulator::fire_idle_callbacks() {
  if (idle_callbacks_.empty()) return false;
  // A callback may register further idle callbacks; those wait for the
  // *next* quiescence, so swap the batch out first.
  std::vector<EventFn> batch;
  batch.swap(idle_callbacks_);
  for (auto& fn : batch) fn();
  return true;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t fired = 0;
  for (;;) {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      auto [when, fn] = queue_.pop();
      now_ = when;
      fn();
      ++fired;
      ++processed_;
    }
    // True quiescence (not just the deadline) triggers idle callbacks,
    // which may schedule more work — keep going until both are exhausted.
    if (queue_.empty() && fire_idle_callbacks()) continue;
    break;
  }
  if (deadline != TimePoint::max() && now_ < deadline) {
    // Advance the clock to the requested time even when future events
    // remain: "run until T" leaves the clock at T, so repeated short
    // slices always make progress.
    now_ = deadline;
  }
  return fired;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events) {
    if (queue_.empty()) {
      if (!fire_idle_callbacks()) break;
      continue;
    }
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++fired;
    ++processed_;
  }
  return fired;
}

void Simulator::reset() {
  now_ = TimePoint::origin();
  // EventQueue::clear also invalidates outstanding handles.
  queue_.clear();
  idle_callbacks_.clear();
  processed_ = 0;
}

}  // namespace evo::sim
