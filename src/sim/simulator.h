// The discrete-event simulation driver.
//
// A Simulator owns the virtual clock and the event queue. Protocol modules
// schedule callbacks ("in 3ms, deliver this LSA to router 7"); run() fires
// them in time order until quiescence, a time bound, or an event budget.
//
// Quiescence is itself observable: notify_on_idle() registers a one-shot
// callback fired when the queue next drains. Failure injection uses this to
// timestamp reconvergence and to let the control plane sync derived state
// (FIB install, vN-Bone rebuild) exactly once per churn episode.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/recorder.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/time.h"

namespace evo::sim {

class Simulator {
 public:
  Simulator() = default;

  // The clock is authoritative state shared by every module; copying a
  // Simulator would silently fork simulated time.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule_after(Duration delay, EventFn fn) {
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute time (must not be in the past).
  EventHandle schedule_at(TimePoint when, EventFn fn);

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Stable pointer to the simulated clock, for telemetry consumers that
  /// stamp records with sim time (obs::Recorder::attach_clock, Logger).
  const TimePoint* clock() const { return &now_; }

  /// Attach (or detach, with nullptr) a telemetry recorder: the recorder's
  /// clock follows this simulator and the event queue reports structural
  /// events (horizon rebases) to it. The schedule/fire fast path is not
  /// instrumented — recorder-off overhead there is zero.
  void set_recorder(obs::Recorder* recorder) {
    if (recorder != nullptr) recorder->attach_clock(&now_);
    queue_.set_recorder(recorder);
  }

  /// The event queue's health counters (live high-water mark, overflow
  /// traffic, horizon rebases).
  const EventQueue::Stats& queue_stats() const { return queue_.stats(); }

  /// Add the queue health counters to `metrics` as sim.queue.* totals.
  void export_queue_metrics(MetricRegistry& metrics) const;

  /// Register a one-shot callback fired the next time the event queue
  /// drains to empty during run()/run_until()/run_events(). Callbacks fire
  /// in registration order at the then-current simulated time and may
  /// schedule new events (processing continues afterwards). They do not
  /// count toward events_processed().
  void notify_on_idle(EventFn fn) { idle_callbacks_.push_back(std::move(fn)); }

  /// Run until no events remain. Returns the number of events processed.
  std::uint64_t run();

  /// Run until the clock would pass `deadline` (events at exactly
  /// `deadline` are processed). Returns events processed by this call.
  std::uint64_t run_until(TimePoint deadline);

  /// Run at most `max_events` further events.
  std::uint64_t run_events(std::uint64_t max_events);

  /// Reset clock and queue (keeps processed-event count at zero).
  void reset();

 private:
  /// Fire pending idle callbacks; returns true if any ran (they may have
  /// scheduled new events).
  bool fire_idle_callbacks();

  TimePoint now_ = TimePoint::origin();
  EventQueue queue_;
  std::vector<EventFn> idle_callbacks_;
  std::uint64_t processed_ = 0;
};

}  // namespace evo::sim
