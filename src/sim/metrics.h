// Metric accumulators used by experiments and benchmarks.
//
// Summary keeps every sample so exact percentiles can be reported; the
// experiment scales here (<= millions of samples) make that affordable and
// it avoids quantile-sketch approximation error in reported results.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace evo::sim {

/// Online accumulation of scalar samples with exact percentile queries.
class Summary {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// Exact percentile via nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

  /// Append every sample of `other` (in its current order) to this summary.
  void append(const Summary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

  /// "n=5 mean=2.1 p50=2.0 p95=4.0 p99=4.0 max=4.0". Sweep tails are the
  /// interesting part under failure injection, hence p99 alongside p95.
  std::string brief() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Named counters + summaries; the shared scoreboard for an experiment run.
class MetricRegistry {
 public:
  void increment(const std::string& name, std::int64_t by = 1) {
    counters_[name] += by;
  }
  std::int64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  Summary& summary(const std::string& name) { return summaries_[name]; }
  const Summary* find_summary(const std::string& name) const {
    auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  void observe(const std::string& name, double sample) {
    summaries_[name].add(sample);
  }

  const std::map<std::string, std::int64_t>& counters() const { return counters_; }
  const std::map<std::string, Summary>& summaries() const { return summaries_; }

  /// Fold `other` into this registry: counters are summed, summary samples
  /// appended. Used to merge per-cell registries of a parallel sweep.
  void merge_from(const MetricRegistry& other) {
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
    for (const auto& [name, summary] : other.summaries_) {
      summaries_[name].append(summary);
    }
  }

  void clear() {
    counters_.clear();
    summaries_.clear();
  }

  /// Multi-line human-readable dump of all metrics.
  std::string report() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace evo::sim
