#include "core/universal_access.h"

namespace evo::core {

using net::HostId;

UaReport verify_universal_access(const EvolvableInternet& internet,
                                 std::size_t max_pairs, std::uint64_t seed) {
  UaReport report;
  const auto& topo = internet.topology();
  const std::size_t n = topo.host_count();
  if (n < 2) return report;

  std::vector<HostPair> pairs;
  const std::size_t all = n * (n - 1);
  if (max_pairs == 0 || all <= max_pairs) {
    pairs.reserve(all);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i != j) pairs.push_back({HostId{i}, HostId{j}});
      }
    }
  } else {
    sim::Rng rng{seed};
    pairs.reserve(max_pairs);
    for (std::size_t k = 0; k < max_pairs; ++k) {
      const auto i = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto j = i;
      while (j == i) {
        j = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      }
      pairs.push_back({HostId{i}, HostId{j}});
    }
  }

  double cost_sum = 0.0;
  double stretch_sum = 0.0;
  std::size_t stretch_count = 0;
  const auto traces = send_ipvn_batch(internet, pairs);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [src, dst] = pairs[k];
    const EndToEndTrace& trace = traces[k];
    ++report.pairs_checked;
    if (!trace.delivered) {
      report.failures.push_back(UaFailure{src, dst, trace.failure});
      continue;
    }
    ++report.pairs_delivered;
    cost_sum += static_cast<double>(trace.total_cost());
    const net::Cost oracle = oracle_host_distance(internet, src, dst);
    if (oracle > 0 && oracle != net::kInfiniteCost) {
      stretch_sum += static_cast<double>(trace.total_cost()) /
                     static_cast<double>(oracle);
      ++stretch_count;
    }
  }
  if (report.pairs_delivered > 0) {
    report.mean_cost = cost_sum / static_cast<double>(report.pairs_delivered);
  }
  if (stretch_count > 0) {
    report.mean_stretch = stretch_sum / static_cast<double>(stretch_count);
  }
  return report;
}

}  // namespace evo::core
