#include "core/trace.h"

namespace evo::core {

using net::Cost;
using net::HostId;
using net::NodeId;

const char* to_string(Segment::Kind kind) {
  switch (kind) {
    case Segment::Kind::kAnycastIngress: return "anycast-ingress";
    case Segment::Kind::kTunnel: return "tunnel";
    case Segment::Kind::kLegacyEgress: return "legacy-egress";
  }
  return "?";
}

const char* to_string(EndToEndTrace::Failure failure) {
  switch (failure) {
    case EndToEndTrace::Failure::kNone: return "none";
    case EndToEndTrace::Failure::kNoDeployment: return "no-deployment";
    case EndToEndTrace::Failure::kIngressFailed: return "ingress-failed";
    case EndToEndTrace::Failure::kVnRoutingFailed: return "vn-routing-failed";
    case EndToEndTrace::Failure::kTunnelFailed: return "tunnel-failed";
    case EndToEndTrace::Failure::kEgressFailed: return "egress-failed";
  }
  return "?";
}

Cost EndToEndTrace::total_cost() const {
  Cost total = 0;
  for (const auto& s : segments) total += s.trace.cost;
  return total;
}

std::size_t EndToEndTrace::total_hops() const {
  std::size_t total = 0;
  for (const auto& s : segments) total += s.trace.hop_count();
  return total;
}

Cost EndToEndTrace::legacy_tail_cost() const {
  Cost total = 0;
  for (const auto& s : segments) {
    if (s.kind == Segment::Kind::kLegacyEgress) total += s.trace.cost;
  }
  return total;
}

std::string EndToEndTrace::describe() const {
  std::string out = delivered ? "delivered" : std::string("failed: ") +
                                                  to_string(failure);
  out += " (cost " + std::to_string(total_cost()) + ", hops " +
         std::to_string(total_hops()) + ", vn-hops " +
         std::to_string(vn_route.vn_hop_count()) + ")";
  return out;
}

EndToEndTrace send_ipvn(const EvolvableInternet& internet, HostId src, HostId dst,
                        std::optional<vnbone::EgressMode> mode) {
  return send_ipvn_generation(internet, 0, src, dst, mode);
}

std::vector<EndToEndTrace> send_ipvn_batch(const EvolvableInternet& internet,
                                           std::span<const HostPair> pairs,
                                           std::optional<vnbone::EgressMode> mode) {
  // Each send walks several trace legs; the amortization lives in
  // Network's epoch-cached compiled FIBs, which stay warm across the
  // batch because nothing here mutates routes.
  std::vector<EndToEndTrace> results;
  results.reserve(pairs.size());
  for (const HostPair& pair : pairs) {
    results.push_back(send_ipvn(internet, pair.src, pair.dst, mode));
  }
  return results;
}

EndToEndTrace send_ipvn_generation(const EvolvableInternet& internet,
                                   std::size_t generation, HostId src, HostId dst,
                                   std::optional<vnbone::EgressMode> mode) {
  EndToEndTrace result;
  const auto& network = internet.network();
  const auto& topo = network.topology();
  const auto& vnbone = internet.generation(generation);

  if (!vnbone.anycast_group().valid()) {
    result.failure = EndToEndTrace::Failure::kNoDeployment;
    return result;
  }

  const net::Packet packet =
      internet.generation_hosts(generation).make_datagram(src, dst);
  const net::IpvNHeader inner = packet.layers().front().vn;
  const NodeId src_access = topo.host(src).access_router;

  // Leg 1: encapsulated packet rides unicast to the anycast address; the
  // network delivers it to the closest IPvN router (the ingress).
  Segment ingress_seg;
  ingress_seg.kind = Segment::Kind::kAnycastIngress;
  ingress_seg.trace = network.trace(src_access, packet.outer().v4.dst);
  result.segments.push_back(ingress_seg);
  if (!ingress_seg.trace.delivered() ||
      !vnbone.deployed(ingress_seg.trace.delivered_at)) {
    result.failure = EndToEndTrace::Failure::kIngressFailed;
    return result;
  }
  result.ingress = ingress_seg.trace.delivered_at;

  complete_from_ingress(internet, inner, dst, mode, result, generation);
  return result;
}

void complete_from_ingress(const EvolvableInternet& internet,
                           const net::IpvNHeader& inner, HostId dst,
                           std::optional<vnbone::EgressMode> mode,
                           EndToEndTrace& result, std::size_t generation) {
  const auto& network = internet.network();
  const auto& topo = network.topology();
  const auto& vnbone = internet.generation(generation);

  // Leg 2: the ingress decapsulates and routes over the vN-Bone.
  result.vn_route = vnbone.route(result.ingress, inner.dst, mode);
  if (!result.vn_route.ok) {
    result.failure = EndToEndTrace::Failure::kVnRoutingFailed;
    return;
  }
  result.egress = result.vn_route.egress;
  for (std::size_t i = 0; i + 1 < result.vn_route.vn_hops.size(); ++i) {
    const NodeId a = result.vn_route.vn_hops[i];
    const NodeId b = result.vn_route.vn_hops[i + 1];
    Segment tunnel;
    tunnel.kind = Segment::Kind::kTunnel;
    tunnel.trace = network.trace(a, topo.router(b).loopback);
    result.segments.push_back(tunnel);
    if (!tunnel.trace.delivered() || tunnel.trace.delivered_at != b) {
      result.failure = EndToEndTrace::Failure::kTunnelFailed;
      return;
    }
  }

  // Leg 3: exit. Either a native IPv(N-1) tail to the legacy destination,
  // or native IPvN delivery at the destination's access router.
  const NodeId dst_access = topo.host(dst).access_router;
  if (result.vn_route.exits_to_legacy) {
    Segment egress_seg;
    egress_seg.kind = Segment::Kind::kLegacyEgress;
    egress_seg.trace = network.trace(result.egress, inner.legacy_dst);
    result.segments.push_back(egress_seg);
    if (!egress_seg.trace.delivered() ||
        egress_seg.trace.delivered_at != dst_access) {
      result.failure = EndToEndTrace::Failure::kEgressFailed;
      return;
    }
  } else if (result.egress != dst_access) {
    result.failure = EndToEndTrace::Failure::kEgressFailed;
    return;
  }

  result.delivered = true;
}

NodeId register_endhost_route(EvolvableInternet& internet, HostId host) {
  auto& vnbone = internet.vnbone();
  if (!vnbone.anycast_group().valid()) return NodeId::invalid();
  const auto addr = internet.hosts().ipvn_address(host);
  if (!addr.is_self_address()) return NodeId::invalid();
  const auto& topo = internet.topology();
  const auto trace = internet.network().trace(topo.host(host).access_router,
                                              vnbone.anycast_address());
  if (!trace.delivered() || !vnbone.deployed(trace.delivered_at)) {
    return NodeId::invalid();
  }
  vnbone.register_endhost_route(addr, trace.delivered_at);
  return trace.delivered_at;
}

Cost oracle_host_distance(const EvolvableInternet& internet, HostId src, HostId dst) {
  const auto& topo = internet.topology();
  const net::Graph graph = topo.physical_graph();
  const auto paths = net::dijkstra(graph, topo.host(src).access_router);
  return paths.distance_to(topo.host(dst).access_router);
}

}  // namespace evo::core
