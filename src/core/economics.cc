#include "core/economics.h"

#include <cstdio>

#include "sim/random.h"

namespace evo::core {

using net::DomainId;
using net::HostId;
using net::NodeId;

std::string TrafficAccount::report(const net::Topology& topology) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-16s %-10s %-10s %-12s %-10s %-10s\n",
                "domain", "origin", "terminate", "transit-hops", "vn-in",
                "vn-out");
  out += line;
  for (const auto& domain : topology.domains()) {
    const auto& t = per_domain[domain.id.value()];
    if (t.originated + t.terminated + t.transit_hops + t.vn_ingress +
            t.vn_egress ==
        0) {
      continue;
    }
    std::snprintf(line, sizeof line,
                  "%-16s %-10llu %-10llu %-12llu %-10llu %-10llu\n",
                  domain.name.c_str(), static_cast<unsigned long long>(t.originated),
                  static_cast<unsigned long long>(t.terminated),
                  static_cast<unsigned long long>(t.transit_hops),
                  static_cast<unsigned long long>(t.vn_ingress),
                  static_cast<unsigned long long>(t.vn_egress));
    out += line;
  }
  return out;
}

TrafficAccount account_ipvn_traffic(const EvolvableInternet& internet,
                                    std::size_t max_pairs, std::uint64_t seed) {
  const auto& topo = internet.topology();
  TrafficAccount account;
  account.per_domain.resize(topo.domain_count());

  std::vector<std::pair<HostId, HostId>> pairs;
  const std::size_t n = topo.host_count();
  const std::size_t all = n < 2 ? 0 : n * (n - 1);
  if (max_pairs == 0 || all <= max_pairs) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i != j) pairs.push_back({HostId{i}, HostId{j}});
      }
    }
  } else {
    sim::Rng rng{seed};
    for (std::size_t k = 0; k < max_pairs; ++k) {
      const auto i = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto j = i;
      while (j == i) {
        j = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      }
      pairs.push_back({HostId{i}, HostId{j}});
    }
  }

  for (const auto& [src, dst] : pairs) {
    ++account.flows_attempted;
    const EndToEndTrace trace = send_ipvn(internet, src, dst);
    if (!trace.delivered) continue;
    ++account.flows_delivered;

    const DomainId src_domain = topo.router(topo.host(src).access_router).domain;
    const DomainId dst_domain = topo.router(topo.host(dst).access_router).domain;
    ++account.per_domain[src_domain.value()].originated;
    ++account.per_domain[dst_domain.value()].terminated;
    ++account.per_domain[topo.router(trace.ingress).domain.value()].vn_ingress;
    ++account.per_domain[topo.router(trace.egress).domain.value()].vn_egress;

    // Transit attribution: every traversed router of a third-party domain
    // counts one settlement-bearing hop.
    for (const auto& segment : trace.segments) {
      for (const NodeId hop : segment.trace.hops) {
        const DomainId d = topo.router(hop).domain;
        if (d == src_domain || d == dst_domain) continue;
        ++account.per_domain[d.value()].transit_hops;
      }
    }
  }
  return account;
}

}  // namespace evo::core
