// The paper's synthesis, assembled: one object wiring every substrate —
// simulator, data plane, per-domain IGPs, BGP, the anycast service, the
// vN-Bone, and host stacks — with a deployment API that models gradual,
// partial, incentive-driven rollout of IPvN (assumptions A1-A4).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "anycast/anycast.h"
#include "bgp/bgp.h"
#include "host/endhost.h"
#include "igp/distance_vector.h"
#include "igp/igp.h"
#include "igp/link_state.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "vnbone/vnbone.h"

namespace evo::core {

enum class IgpKind : std::uint8_t {
  kLinkState,              // OSPF-shaped; anycast member discovery built in
  kDistanceVector,         // RIP-shaped; no member discovery (paper's caveat)
  kDistanceVectorTagged,   // RIP + tagged advertisements => discovery
};

const char* to_string(IgpKind kind);

struct Options {
  IgpKind igp = IgpKind::kLinkState;
  igp::LinkStateConfig link_state{};
  igp::DistanceVectorConfig distance_vector{};
  bgp::BgpConfig bgp{};
  vnbone::VnBoneConfig vnbone{};
};

class EvolvableInternet {
 public:
  explicit EvolvableInternet(net::Topology topology, Options options = {});

  // Non-copyable/movable: internal components hold references to each
  // other.
  EvolvableInternet(const EvolvableInternet&) = delete;
  EvolvableInternet& operator=(const EvolvableInternet&) = delete;

  /// Start the control plane (IGPs + BGP) and converge the base
  /// (pre-IPvN) Internet.
  void start();

  /// Deploy IPvN on one router / a whole domain. Call converge()
  /// afterwards (deployments may be batched). These operate on the
  /// primary generation (index 0).
  void deploy_router(net::NodeId router);
  void deploy_domain(net::DomainId domain);
  void undeploy_router(net::NodeId router);

  /// Launch an additional concurrent IP generation (§3.2: "the number of
  /// simultaneous attempts to deploy different IP versions is likely to
  /// be very small (ideally one)"). Each generation gets its own vN-Bone,
  /// anycast group, and host stack; all share the substrate. Returns the
  /// new generation's index.
  std::size_t add_generation(vnbone::VnBoneConfig config);
  std::size_t generation_count() const { return vnbones_.size(); }
  vnbone::VnBone& generation(std::size_t index) { return *vnbones_[index]; }
  const vnbone::VnBone& generation(std::size_t index) const {
    return *vnbones_[index];
  }
  host::HostStack& generation_hosts(std::size_t index) { return *host_stacks_[index]; }
  const host::HostStack& generation_hosts(std::size_t index) const {
    return *host_stacks_[index];
  }

  /// Run the simulator to quiescence, install BGP routes into FIBs, and
  /// rebuild the vN-Bone. Returns events processed.
  std::uint64_t converge();

  /// Inject a link state change and propagate it to every protocol (IGP or
  /// BGP as appropriate). Also arms a coalesced control-plane sync at the
  /// next simulator quiescence, so BGP FIB installation and vN-Bone
  /// rebuild happen automatically — no manual converge()/rebuild() needed
  /// (run the simulator to let reconvergence play out). Returns false for
  /// a no-op flap (state unchanged: nothing notified).
  bool set_link_up(net::LinkId link, bool up);

  /// Crash (up=false) or recover (up=true) a router: BGP tears down /
  /// re-establishes its sessions, IGPs see every incident link become
  /// unusable/usable, and the vN-Bone drops/readmits the member at the
  /// next sync. Returns false when the state did not change.
  bool set_node_up(net::NodeId node, bool up);

  // --- accessors -----------------------------------------------------------
  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return *network_; }
  const net::Network& network() const { return *network_; }
  const net::Topology& topology() const { return network_->topology(); }
  igp::Igp* igp(net::DomainId domain) { return igps_[domain.value()].get(); }
  const igp::Igp* igp(net::DomainId domain) const {
    return igps_[domain.value()].get();
  }
  bgp::BgpSystem& bgp() { return *bgp_; }
  const bgp::BgpSystem& bgp() const { return *bgp_; }
  anycast::AnycastService& anycast() { return *anycast_; }
  const anycast::AnycastService& anycast() const { return *anycast_; }
  /// The primary generation's vN-Bone / host stack.
  vnbone::VnBone& vnbone() { return *vnbones_.front(); }
  const vnbone::VnBone& vnbone() const { return *vnbones_.front(); }
  host::HostStack& hosts() { return *host_stacks_.front(); }
  const host::HostStack& hosts() const { return *host_stacks_.front(); }
  const Options& options() const { return options_; }

  /// Attach (or detach, with nullptr) a telemetry recorder to every
  /// component: simulator queue, FIB compiler, IGPs, BGP, anycast, and all
  /// vN-Bone generations. Control-plane episodes (IGP reconvergence per
  /// domain, BGP update waves) become spans carrying message-count deltas,
  /// opened when a change is injected and closed at the next quiescence.
  void set_recorder(obs::Recorder* recorder);
  obs::Recorder* recorder() { return recorder_; }

 private:
  /// Route a link-state change to the protocol that owns the link.
  void notify_link_change(net::LinkId link);

  /// Episode spans: opened lazily on the first disturbance, closed (with
  /// the protocol's messages_sent delta) at the next quiescent sync.
  struct Episode {
    obs::SpanId span;
    std::uint64_t messages_at_open = 0;
  };
  void open_igp_episode(net::DomainId domain);
  void open_bgp_episode(std::uint64_t subject);
  void close_episodes();

  /// Arm a one-shot control-plane sync (BGP route installation + vN-Bone
  /// rebuilds) at the next simulator quiescence; coalesces repeat calls.
  void schedule_control_sync();

  Options options_;
  sim::Simulator simulator_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<igp::Igp>> igps_;  // indexed by DomainId
  std::unique_ptr<bgp::BgpSystem> bgp_;
  std::unique_ptr<anycast::AnycastService> anycast_;
  std::vector<std::unique_ptr<vnbone::VnBone>> vnbones_;
  std::vector<std::unique_ptr<host::HostStack>> host_stacks_;
  obs::Recorder* recorder_ = nullptr;
  std::map<std::uint32_t, Episode> igp_episodes_;  // by DomainId value
  Episode bgp_episode_;
  bool started_ = false;
  bool sync_pending_ = false;
};

}  // namespace evo::core
