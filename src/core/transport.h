// Event-driven IPvN datagram transport — the latency-accurate, socket-like
// counterpart of the synchronous tracer in core/trace.h.
//
// A datagram rides the full paper data path as simulator events: the
// encapsulated packet travels hop-by-hop to the anycast ingress, each
// vN-Bone virtual hop is a v4 tunnel leg, and the egress leg runs
// natively; link latencies accrue in simulated time. Hosts register
// receive callbacks; senders may register failure callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "net/delivery.h"

namespace evo::core {

class IpvnTransport {
 public:
  using ReceiveFn =
      std::function<void(net::HostId from, net::HostId to,
                         std::uint64_t payload_id, sim::Duration latency)>;
  using FailureFn =
      std::function<void(EndToEndTrace::Failure failure, std::uint64_t payload_id)>;

  /// `internet` must outlive the transport and all in-flight datagrams.
  explicit IpvnTransport(EvolvableInternet& internet);

  /// Register (or replace) the receive callback of `host`. Datagrams for
  /// hosts without a listener count as received but invoke nothing.
  void listen(net::HostId host, ReceiveFn fn);

  /// Send an IPvN datagram. Delivery or failure is signalled through the
  /// callbacks as the simulation runs; call simulator().run() to drain.
  void send(net::HostId src, net::HostId dst, std::uint64_t payload_id = 0,
            FailureFn on_failure = {});

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }
  std::uint64_t datagrams_failed() const { return failed_; }

 private:
  /// Ride the remaining vN-Bone hops (hop_index is the next tunnel to
  /// take), then the egress leg.
  void ride_bone(net::HostId src, net::HostId dst, std::uint64_t payload_id,
                 net::IpvNHeader inner, vnbone::VnBone::VnRoute route,
                 std::size_t hop_index, sim::TimePoint sent_at,
                 FailureFn on_failure);

  void finish(net::HostId src, net::HostId dst, std::uint64_t payload_id,
              sim::TimePoint sent_at);
  void fail(EndToEndTrace::Failure failure, std::uint64_t payload_id,
            const FailureFn& on_failure);

  EvolvableInternet& internet_;
  net::DeliveryEngine engine_;
  std::unordered_map<std::uint32_t, ReceiveFn> listeners_;  // by HostId value
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace evo::core
