#include "core/failure_plane.h"

#include <algorithm>
#include <string>

namespace evo::core {

using net::LinkId;
using net::NodeId;

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kLinkDown: return "link-down";
    case FailureKind::kLinkUp: return "link-up";
    case FailureKind::kNodeDown: return "node-down";
    case FailureKind::kNodeUp: return "node-up";
    case FailureKind::kMemberLoss: return "member-loss";
    case FailureKind::kMemberJoin: return "member-join";
  }
  return "?";
}

std::optional<FailureKind> failure_kind_from_string(std::string_view name) {
  for (const auto kind :
       {FailureKind::kLinkDown, FailureKind::kLinkUp, FailureKind::kNodeDown,
        FailureKind::kNodeUp, FailureKind::kMemberLoss, FailureKind::kMemberJoin}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

FailureSchedule& FailureSchedule::add(sim::TimePoint at, FailureKind kind,
                                      std::uint32_t subject) {
  events_.push_back(FailureEvent{at, kind, subject});
  sorted_ = events_.size() <= 1 ||
            (sorted_ && events_[events_.size() - 2].at <= at);
  return *this;
}

FailureSchedule& FailureSchedule::link_down(sim::TimePoint at, LinkId link) {
  return add(at, FailureKind::kLinkDown, link.value());
}

FailureSchedule& FailureSchedule::link_up(sim::TimePoint at, LinkId link) {
  return add(at, FailureKind::kLinkUp, link.value());
}

FailureSchedule& FailureSchedule::link_flap(sim::TimePoint at, sim::Duration outage,
                                            LinkId link) {
  return link_down(at, link).link_up(at + outage, link);
}

FailureSchedule& FailureSchedule::node_down(sim::TimePoint at, NodeId node) {
  return add(at, FailureKind::kNodeDown, node.value());
}

FailureSchedule& FailureSchedule::node_up(sim::TimePoint at, NodeId node) {
  return add(at, FailureKind::kNodeUp, node.value());
}

FailureSchedule& FailureSchedule::node_crash(sim::TimePoint at, sim::Duration outage,
                                             NodeId node) {
  return node_down(at, node).node_up(at + outage, node);
}

FailureSchedule& FailureSchedule::member_loss(sim::TimePoint at, NodeId router) {
  return add(at, FailureKind::kMemberLoss, router.value());
}

FailureSchedule& FailureSchedule::member_join(sim::TimePoint at, NodeId router) {
  return add(at, FailureKind::kMemberJoin, router.value());
}

const std::vector<FailureEvent>& FailureSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FailureEvent& a, const FailureEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
  return events_;
}

FailurePlane::FailurePlane(EvolvableInternet& internet,
                           sim::MetricRegistry& metrics)
    : internet_(internet), metrics_(metrics) {}

void FailurePlane::add_probe(NodeId from, net::Ipv4Addr dst) {
  probes_.push_back(Probe{from, dst});
}

void FailurePlane::arm(FailureSchedule schedule) {
  events_ = schedule.events();
  next_ = 0;
  arm_next();
}

void FailurePlane::arm_next() {
  if (next_ >= events_.size()) return;
  const FailureEvent event = events_[next_++];
  auto& simulator = internet_.simulator();
  // Nominal times in the past (e.g. the previous event reconverged slowly)
  // collapse to "now": order is preserved, spacing is best-effort.
  const sim::TimePoint when = std::max(event.at, simulator.now());
  simulator.schedule_at(when, [this, event] { apply(event); });
}

void FailurePlane::apply(const FailureEvent& event) {
  obs::SpanId span;
  if (auto* recorder = internet_.recorder()) {
    span = recorder->open_span(
        obs::Domain::kFailure, "failure.episode",
        (std::uint64_t{static_cast<std::uint8_t>(event.kind)} << 32) |
            event.subject);
  }
  switch (event.kind) {
    case FailureKind::kLinkDown:
      internet_.set_link_up(LinkId{event.subject}, false);
      break;
    case FailureKind::kLinkUp:
      internet_.set_link_up(LinkId{event.subject}, true);
      break;
    case FailureKind::kNodeDown:
      internet_.set_node_up(NodeId{event.subject}, false);
      break;
    case FailureKind::kNodeUp:
      internet_.set_node_up(NodeId{event.subject}, true);
      break;
    case FailureKind::kMemberLoss:
      internet_.undeploy_router(NodeId{event.subject});
      break;
    case FailureKind::kMemberJoin:
      internet_.deploy_router(NodeId{event.subject});
      break;
  }
  ++applied_;
  metrics_.increment("net.failure.events");
  metrics_.increment(std::string("net.failure.events.") + to_string(event.kind));

  // Snapshot the data plane while it is (potentially) broken.
  measure("during");

  // EvolvableInternet registered its control-plane sync before this
  // callback (apply() ran first), so by the time this fires the FIBs and
  // vN-Bones reflect the reconverged control plane.
  const sim::TimePoint hit = internet_.simulator().now();
  internet_.simulator().notify_on_idle([this, hit, span] {
    const sim::Duration took = internet_.simulator().now() - hit;
    metrics_.observe("net.failure.reconverge_ms", took.count_millis());
    if (auto* recorder = internet_.recorder()) {
      recorder->close_span(span,
                           static_cast<std::uint64_t>(took.count_micros()));
    }
    measure("after");
    arm_next();
  });
}

void FailurePlane::measure(const char* phase) {
  if (probes_.empty()) return;
  std::size_t delivered = 0;
  std::int64_t blackholes = 0;
  std::int64_t loops = 0;
  net::Network::TraceResult result;
  for (const Probe& probe : probes_) {
    internet_.network().trace_into(probe.from, probe.dst, 64, result);
    switch (result.outcome) {
      case net::Network::TraceResult::Outcome::kDelivered:
        ++delivered;
        break;
      case net::Network::TraceResult::Outcome::kNoRoute:
      case net::Network::TraceResult::Outcome::kLinkDown:
        ++blackholes;
        break;
      case net::Network::TraceResult::Outcome::kForwardingLoop:
      case net::Network::TraceResult::Outcome::kTtlExpired:
        ++loops;
        break;
    }
  }
  metrics_.observe(std::string("net.failure.") + phase + ".delivery_rate",
                   100.0 * static_cast<double>(delivered) /
                       static_cast<double>(probes_.size()));
  if (blackholes > 0) metrics_.increment("net.failure.blackholes", blackholes);
  if (loops > 0) metrics_.increment("net.failure.loops", loops);
}

}  // namespace evo::core
