// The paper's four figure scenarios as concrete topologies, plus helpers
// for building larger randomized evolution experiments. Each factory
// returns the topology and the named entities the figure refers to, so
// tests and benches can assert the exact behavior the figure depicts.
#pragma once

#include <cstdint>

#include "net/topology.h"
#include "net/topology_gen.h"

namespace evo::core {

/// Figure 1: "IPv8 is deployed successively in ISPs X, then Y and finally
/// Z. Throughout, client C is seamlessly redirected to the closest IPv8
/// provider." W is the transit interconnecting X, Y and Z; Z is C's local
/// ISP and is positioned closer to Y than to X so every stage changes the
/// serving provider.
struct Figure1 {
  net::Topology topology;
  net::DomainId w, x, y, z;
  net::HostId client;  // C, attached in Z
};
Figure1 make_figure1();

/// Figure 2: inter-domain anycast with ISP-rooted addresses and default
/// routes. D is the default domain; Q also deploys. Anycast packets from
/// X and Y terminate in D, those from Z reach Q (it sits on Z's path to
/// D); after Q peer-advertises to Y, Y's packets reach Q.
struct Figure2 {
  net::Topology topology;
  net::DomainId p, q, d, x, y, z;
  net::HostId host_x, host_y, host_z;
};
Figure2 make_figure2();

/// Figure 3: egress selection. ISPs M and O deploy IPvN; client C's stub
/// domain is legacy and hangs off O. With only BGPvN the packet exits the
/// vN-Bone at M's router X; with imported BGPv(N-1) it rides the vN-Bone
/// to O's router Y (adjacent to C's domain) and exits there.
struct Figure3 {
  net::Topology topology;
  net::DomainId m, o, c_domain;
  net::NodeId x;      // M's IPvN border (the naive exit)
  net::NodeId z, y;   // O's routers; Y abuts C's domain
  net::HostId a;      // source host in M
  net::HostId c;      // destination client in the legacy stub
};
Figure3 make_figure3();

/// Figure 4: advertising-by-proxy. A, B, C deploy IPvN; M, N, Z are
/// legacy. The legacy chain A-M-N-Z is expensive; the deployed chain
/// A-B-C-Z is cheap. B and C advertise their BGPv(N-1) distance to Z into
/// BGPvN, so A's traffic to Z rides the vN-Bone to C and exits there.
struct Figure4 {
  net::Topology topology;
  net::DomainId a, b, c, m, n, z;
  net::HostId src;  // in A
  net::HostId dst;  // in Z
};
Figure4 make_figure4();

}  // namespace evo::core
