#include "core/evolvable_internet.h"

#include <cassert>

namespace evo::core {

using net::DomainId;
using net::LinkId;
using net::NodeId;

const char* to_string(IgpKind kind) {
  switch (kind) {
    case IgpKind::kLinkState: return "link-state";
    case IgpKind::kDistanceVector: return "distance-vector";
    case IgpKind::kDistanceVectorTagged: return "distance-vector-tagged";
  }
  return "?";
}

EvolvableInternet::EvolvableInternet(net::Topology topology, Options options)
    : options_(options) {
  network_ = std::make_unique<net::Network>(std::move(topology));

  const auto& topo = network_->topology();
  igps_.resize(topo.domain_count());
  for (const auto& domain : topo.domains()) {
    switch (options_.igp) {
      case IgpKind::kLinkState:
        igps_[domain.id.value()] = std::make_unique<igp::LinkStateIgp>(
            simulator_, *network_, domain.id, options_.link_state);
        break;
      case IgpKind::kDistanceVector:
      case IgpKind::kDistanceVectorTagged: {
        auto config = options_.distance_vector;
        config.tagged_advertisements =
            options_.igp == IgpKind::kDistanceVectorTagged;
        igps_[domain.id.value()] = std::make_unique<igp::DistanceVectorIgp>(
            simulator_, *network_, domain.id, config);
        break;
      }
    }
  }

  auto igp_accessor = [this](DomainId d) -> igp::Igp* {
    return d.value() < igps_.size() ? igps_[d.value()].get() : nullptr;
  };
  auto const_igp_accessor = [this](DomainId d) -> const igp::Igp* {
    return d.value() < igps_.size() ? igps_[d.value()].get() : nullptr;
  };

  bgp_ = std::make_unique<bgp::BgpSystem>(simulator_, *network_, const_igp_accessor,
                                          options_.bgp);
  anycast_ = std::make_unique<anycast::AnycastService>(*network_, bgp_.get(),
                                                       igp_accessor);
  vnbones_.push_back(std::make_unique<vnbone::VnBone>(
      *network_, bgp_.get(), igp_accessor, *anycast_, options_.vnbone));
  host_stacks_.push_back(
      std::make_unique<host::HostStack>(*network_, *vnbones_.front()));
}

std::size_t EvolvableInternet::add_generation(vnbone::VnBoneConfig config) {
  auto igp_accessor = [this](DomainId d) -> igp::Igp* {
    return d.value() < igps_.size() ? igps_[d.value()].get() : nullptr;
  };
  vnbones_.push_back(std::make_unique<vnbone::VnBone>(
      *network_, bgp_.get(), igp_accessor, *anycast_, config));
  host_stacks_.push_back(
      std::make_unique<host::HostStack>(*network_, *vnbones_.back()));
  vnbones_.back()->set_recorder(recorder_);
  return vnbones_.size() - 1;
}

void EvolvableInternet::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  simulator_.set_recorder(recorder);
  network_->set_recorder(recorder);
  bgp_->set_recorder(recorder);
  anycast_->set_recorder(recorder);
  for (auto& igp : igps_) {
    if (igp) igp->set_recorder(recorder);
  }
  for (auto& vnbone : vnbones_) vnbone->set_recorder(recorder);
}

void EvolvableInternet::open_igp_episode(DomainId domain) {
  if (recorder_ == nullptr) return;
  auto& episode = igp_episodes_[domain.value()];
  if (episode.span.valid()) return;  // already reconverging: coalesce
  const auto* igp = igps_[domain.value()].get();
  episode.messages_at_open = igp != nullptr ? igp->messages_sent() : 0;
  episode.span =
      recorder_->open_span(obs::Domain::kIgp, "igp.reconvergence", domain.value());
}

void EvolvableInternet::open_bgp_episode(std::uint64_t subject) {
  if (recorder_ == nullptr || bgp_episode_.span.valid()) return;
  bgp_episode_.messages_at_open = bgp_->messages_sent();
  bgp_episode_.span =
      recorder_->open_span(obs::Domain::kBgp, "bgp.update_wave", subject);
}

void EvolvableInternet::close_episodes() {
  if (recorder_ == nullptr) return;
  for (auto& [domain, episode] : igp_episodes_) {
    if (!episode.span.valid()) continue;
    const auto* igp = igps_[domain].get();
    const std::uint64_t sent = igp != nullptr ? igp->messages_sent() : 0;
    recorder_->close_span(episode.span, sent - episode.messages_at_open);
    episode.span = obs::SpanId{};
  }
  if (bgp_episode_.span.valid()) {
    recorder_->close_span(bgp_episode_.span,
                          bgp_->messages_sent() - bgp_episode_.messages_at_open);
    bgp_episode_.span = obs::SpanId{};
  }
}

void EvolvableInternet::start() {
  assert(!started_);
  started_ = true;
  for (auto& igp : igps_) {
    if (igp) igp->start();
  }
  bgp_->start();
  converge();
}

void EvolvableInternet::deploy_router(NodeId router) {
  vnbones_.front()->deploy_router(router);
  schedule_control_sync();
}

void EvolvableInternet::deploy_domain(DomainId domain) {
  vnbones_.front()->deploy_domain(domain);
  schedule_control_sync();
}

void EvolvableInternet::undeploy_router(NodeId router) {
  vnbones_.front()->undeploy_router(router);
  schedule_control_sync();
}

std::uint64_t EvolvableInternet::converge() {
  std::uint64_t events = simulator_.run();
  // Conditional anycast origination tracks IGP reachability; a withdraw or
  // re-advertisement sends new UPDATEs, so iterate to the joint fixpoint
  // (reachability is a function of the now-converged IGPs, so one extra
  // round suffices; the bound is sheer paranoia).
  for (int i = 0; i < 8 && anycast_->sync_reachability(); ++i) {
    events += simulator_.run();
  }
  bgp_->install_routes();
  for (auto& vnbone : vnbones_) vnbone->rebuild();
  close_episodes();
  return events;
}

void EvolvableInternet::notify_link_change(LinkId link) {
  const auto& l = network_->topology().link(link);
  if (l.interdomain) {
    open_bgp_episode(link.value());
    bgp_->on_link_change(link);
  } else {
    const DomainId domain = network_->topology().router(l.a).domain;
    open_igp_episode(domain);
    if (auto* igp = igps_[domain.value()].get()) igp->on_link_change(link);
  }
}

void EvolvableInternet::schedule_control_sync() {
  if (!started_ || sync_pending_) return;
  sync_pending_ = true;
  simulator_.notify_on_idle([this] {
    sync_pending_ = false;
    if (anycast_->sync_reachability()) {
      // Origination changed: UPDATEs are in flight again. Re-arm and
      // finish the sync at the next quiescence instead.
      schedule_control_sync();
      return;
    }
    bgp_->install_routes();
    for (auto& vnbone : vnbones_) vnbone->rebuild();
    close_episodes();
  });
}

bool EvolvableInternet::set_link_up(LinkId link, bool up) {
  if (!network_->topology().set_link_up(link, up)) return false;  // no-op flap
  notify_link_change(link);
  schedule_control_sync();
  return true;
}

bool EvolvableInternet::set_node_up(NodeId node, bool up) {
  if (!network_->topology().set_node_up(node, up)) return false;
  open_bgp_episode(node.value());
  bgp_->on_node_change(node, up);
  // Every administratively-up incident link just changed usability; IGPs
  // (and BGP sessions riding those links) react as if the link flapped.
  for (const LinkId link : network_->topology().router(node).links) {
    if (network_->topology().link(link).up) notify_link_change(link);
  }
  schedule_control_sync();
  return true;
}

}  // namespace evo::core
