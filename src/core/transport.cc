#include "core/transport.h"

namespace evo::core {

using net::HostId;
using net::NodeId;

IpvnTransport::IpvnTransport(EvolvableInternet& internet)
    : internet_(internet), engine_(internet.simulator(), internet.network()) {}

void IpvnTransport::listen(HostId host, ReceiveFn fn) {
  listeners_[host.value()] = std::move(fn);
}

void IpvnTransport::fail(EndToEndTrace::Failure failure, std::uint64_t payload_id,
                         const FailureFn& on_failure) {
  ++failed_;
  if (on_failure) on_failure(failure, payload_id);
}

void IpvnTransport::finish(HostId src, HostId dst, std::uint64_t payload_id,
                           sim::TimePoint sent_at) {
  ++received_;
  const auto it = listeners_.find(dst.value());
  if (it != listeners_.end() && it->second) {
    it->second(src, dst, payload_id, internet_.simulator().now() - sent_at);
  }
}

void IpvnTransport::send(HostId src, HostId dst, std::uint64_t payload_id,
                         FailureFn on_failure) {
  ++sent_;
  const auto& vnbone = internet_.vnbone();
  if (!vnbone.anycast_group().valid()) {
    fail(EndToEndTrace::Failure::kNoDeployment, payload_id, on_failure);
    return;
  }
  net::Packet packet = internet_.hosts().make_datagram(src, dst, payload_id);
  const net::IpvNHeader inner = packet.layers().front().vn;
  const NodeId src_access = internet_.topology().host(src).access_router;
  const sim::TimePoint sent_at = internet_.simulator().now();

  engine_.inject(
      src_access, std::move(packet),
      [this, src, dst, payload_id, inner, sent_at, on_failure](
          NodeId at, const net::Packet&, sim::Duration) {
        // Leg 1 done: the encapsulated datagram reached an IPvN router.
        if (!internet_.vnbone().deployed(at)) {
          fail(EndToEndTrace::Failure::kIngressFailed, payload_id, on_failure);
          return;
        }
        // The ingress decapsulates and consults its vN routing state.
        const auto route = internet_.vnbone().route(at, inner.dst);
        if (!route.ok) {
          fail(EndToEndTrace::Failure::kVnRoutingFailed, payload_id, on_failure);
          return;
        }
        ride_bone(src, dst, payload_id, inner, route, 0, sent_at, on_failure);
      },
      [this, payload_id, on_failure](net::Network::TraceResult::Outcome, NodeId,
                                     const net::Packet&) {
        fail(EndToEndTrace::Failure::kIngressFailed, payload_id, on_failure);
      });
}

void IpvnTransport::ride_bone(HostId src, HostId dst, std::uint64_t payload_id,
                              net::IpvNHeader inner,
                              vnbone::VnBone::VnRoute route, std::size_t hop_index,
                              sim::TimePoint sent_at, FailureFn on_failure) {
  const auto& topo = internet_.topology();

  if (hop_index + 1 < route.vn_hops.size()) {
    // Next virtual hop: re-encapsulate toward the neighbor's loopback.
    const NodeId a = route.vn_hops[hop_index];
    const NodeId b = route.vn_hops[hop_index + 1];
    net::Packet tunneled;
    tunneled.push(net::HeaderLayer::ipvn(inner));
    net::Ipv4Header outer;
    outer.src = topo.router(a).loopback;
    outer.dst = topo.router(b).loopback;
    outer.proto = net::Ipv4Header::Proto::kIpvNEncap;
    tunneled.push(net::HeaderLayer::ipv4(outer));
    tunneled.payload_id = payload_id;
    engine_.inject(
        a, std::move(tunneled),
        [this, src, dst, payload_id, inner, route, hop_index, sent_at,
         on_failure](NodeId, const net::Packet&, sim::Duration) {
          ride_bone(src, dst, payload_id, inner, route, hop_index + 1, sent_at,
                    on_failure);
        },
        [this, payload_id, on_failure](net::Network::TraceResult::Outcome, NodeId,
                                       const net::Packet&) {
          fail(EndToEndTrace::Failure::kTunnelFailed, payload_id, on_failure);
        });
    return;
  }

  // At the egress.
  const NodeId egress = route.egress;
  const NodeId dst_access = topo.host(dst).access_router;
  if (!route.exits_to_legacy) {
    if (egress == dst_access) {
      finish(src, dst, payload_id, sent_at);
    } else {
      fail(EndToEndTrace::Failure::kEgressFailed, payload_id, on_failure);
    }
    return;
  }
  // Native IPv(N-1) tail to the destination host.
  net::Packet tail;
  tail.push(net::HeaderLayer::ipvn(inner));
  net::Ipv4Header outer;
  outer.src = topo.router(egress).loopback;
  outer.dst = inner.legacy_dst;
  outer.proto = net::Ipv4Header::Proto::kIpvNEncap;
  tail.push(net::HeaderLayer::ipv4(outer));
  tail.payload_id = payload_id;
  engine_.inject(
      egress, std::move(tail),
      [this, src, dst, payload_id, sent_at, dst_access, on_failure](
          NodeId at, const net::Packet&, sim::Duration) {
        if (at == dst_access) {
          finish(src, dst, payload_id, sent_at);
        } else {
          fail(EndToEndTrace::Failure::kEgressFailed, payload_id, on_failure);
        }
      },
      [this, payload_id, on_failure](net::Network::TraceResult::Outcome, NodeId,
                                     const net::Packet&) {
        fail(EndToEndTrace::Failure::kEgressFailed, payload_id, on_failure);
      });
}

}  // namespace evo::core
