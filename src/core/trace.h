// End-to-end IPvN delivery tracing across all three legs of the paper's
// data path: anycast ingress (host -> closest IPvN router), vN-Bone
// transit (tunneled virtual hops), and egress (native IPv(N-1) tail to a
// legacy destination, or native IPvN delivery at the access router).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/evolvable_internet.h"

namespace evo::core {

struct Segment {
  enum class Kind : std::uint8_t {
    kAnycastIngress,  // encapsulated packet riding unicast to the anycast addr
    kTunnel,          // one vN-Bone virtual hop (v4 tunnel between routers)
    kLegacyEgress,    // native IPv(N-1) tail from the egress to the dest
  };
  Kind kind = Kind::kAnycastIngress;
  net::Network::TraceResult trace;
};

const char* to_string(Segment::Kind kind);

struct EndToEndTrace {
  enum class Failure : std::uint8_t {
    kNone,
    kNoDeployment,     // no IPvN router exists anywhere
    kIngressFailed,    // anycast packet was not delivered to any member
    kVnRoutingFailed,  // no vN-Bone route toward the destination
    kTunnelFailed,     // a virtual hop's underlay path failed
    kEgressFailed,     // the native tail did not reach the destination
  };

  bool delivered = false;
  Failure failure = Failure::kNone;
  net::NodeId ingress;
  net::NodeId egress;
  vnbone::VnBone::VnRoute vn_route;
  std::vector<Segment> segments;

  /// Total underlay cost across all segments.
  net::Cost total_cost() const;
  /// Total underlay (physical) hops across all segments.
  std::size_t total_hops() const;
  /// Cost of the legacy (IPv(N-1)) tail only — the part of the path the
  /// IPvN deployment does not control (Figure 3's metric).
  net::Cost legacy_tail_cost() const;

  std::string describe() const;
};

const char* to_string(EndToEndTrace::Failure failure);

/// Send one IPvN datagram from `src` to `dst` through the full paper
/// data path. `mode` overrides the configured egress-selection mode.
EndToEndTrace send_ipvn(const EvolvableInternet& internet, net::HostId src,
                        net::HostId dst,
                        std::optional<vnbone::EgressMode> mode = std::nullopt);

/// One src->dst probe of a batched send.
struct HostPair {
  net::HostId src;
  net::HostId dst;
};

/// Send one IPvN datagram per pair through the full data path. The batch
/// counterpart of send_ipvn: per-router compiled forwarding tables are
/// compiled at most once per route epoch across the whole batch, so probe
/// sweeps (benches, the universal-access verifier) pay compilation once
/// instead of per packet. results[i] corresponds to pairs[i] and is
/// identical to what send_ipvn(pairs[i]...) would return.
std::vector<EndToEndTrace> send_ipvn_batch(const EvolvableInternet& internet,
                                           std::span<const HostPair> pairs,
                                           std::optional<vnbone::EgressMode> mode =
                                               std::nullopt);

/// Like send_ipvn but through a non-primary IP generation (its own
/// vN-Bone, anycast group, and host addressing).
EndToEndTrace send_ipvn_generation(const EvolvableInternet& internet,
                                   std::size_t generation, net::HostId src,
                                   net::HostId dst,
                                   std::optional<vnbone::EgressMode> mode =
                                       std::nullopt);

/// Complete a delivery whose ingress was already determined (by anycast,
/// a broker lookup, or a user-selected provider): runs the vN-Bone leg
/// and the egress leg, appending segments to `result` and setting
/// delivered/failure. `result.ingress` must be a deployed router.
void complete_from_ingress(const EvolvableInternet& internet,
                           const net::IpvNHeader& inner, net::HostId dst,
                           std::optional<vnbone::EgressMode> mode,
                           EndToEndTrace& result, std::size_t generation = 0);

/// §3.3.2 endhost route advertisement: `host` uses anycast to find a
/// nearby IPvN router and registers its temporary (self) address there
/// for BGPvN advertisement. Returns the advertiser, or invalid() when the
/// host has a native address (no registration needed) or no IPvN router
/// is reachable. "An endhost would periodically repeat this process" —
/// callers re-invoke after deployment or topology changes.
net::NodeId register_endhost_route(EvolvableInternet& internet, net::HostId host);

/// Oracle: cheapest physical cost between the two hosts' access routers
/// (for stretch metrics; ignores policy).
net::Cost oracle_host_distance(const EvolvableInternet& internet, net::HostId src,
                               net::HostId dst);

}  // namespace evo::core
