// Deterministic fault injection for the evolvable internet.
//
// A FailureSchedule is a declarative list of churn events — link flaps,
// router crash/recovery, anycast-member loss/rejoin — stamped with nominal
// simulated times. A FailurePlane arms the schedule against an
// EvolvableInternet: each event is applied as a simulator event, probes
// measure the data plane immediately after the hit ("during" churn) and
// again once the control plane requiesces ("after"), and the time between
// the two is the event's time-to-reconverge. Everything lands in a
// MetricRegistry under net.failure.*:
//
//   net.failure.events                 counter, total events applied
//   net.failure.events.<kind>          counter per event kind
//   net.failure.reconverge_ms          summary, per-event reconvergence time
//   net.failure.during.delivery_rate   summary, % probes delivered per event,
//                                      measured right after the hit
//   net.failure.after.delivery_rate    summary, same but post-reconvergence
//   net.failure.blackholes             counter, probe drops (no-route or
//                                      link-down) across both phases
//   net.failure.loops                  counter, probe forwarding loops /
//                                      TTL exhaustions across both phases
//
// Events are chain-armed: event i+1 is scheduled only after event i's
// reconvergence is observed, at max(nominal time, current time). This keeps
// quiescence observable between events (the whole schedule is never sitting
// in the queue at once) and makes per-event reconvergence well defined even
// when nominal times would overlap.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/evolvable_internet.h"
#include "net/ids.h"
#include "sim/metrics.h"
#include "sim/time.h"

namespace evo::core {

enum class FailureKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kNodeDown,
  kNodeUp,
  kMemberLoss,  // undeploy an IPvN router (drops out of the anycast group)
  kMemberJoin,  // (re-)deploy an IPvN router
};

const char* to_string(FailureKind kind);

/// Inverse of to_string(FailureKind); nullopt for unknown names. Used by
/// the scenario-replay parser.
std::optional<FailureKind> failure_kind_from_string(std::string_view name);

struct FailureEvent {
  sim::TimePoint at;      // nominal injection time
  FailureKind kind;
  std::uint32_t subject;  // LinkId value for link events, NodeId otherwise
};

/// Builder for an ordered churn schedule. Events keep the order implied by
/// their nominal times (stable for ties: insertion order wins).
class FailureSchedule {
 public:
  FailureSchedule& link_down(sim::TimePoint at, net::LinkId link);
  FailureSchedule& link_up(sim::TimePoint at, net::LinkId link);
  /// Down at `at`, back up `outage` later.
  FailureSchedule& link_flap(sim::TimePoint at, sim::Duration outage,
                             net::LinkId link);

  FailureSchedule& node_down(sim::TimePoint at, net::NodeId node);
  FailureSchedule& node_up(sim::TimePoint at, net::NodeId node);
  /// Crash at `at`, recover `outage` later.
  FailureSchedule& node_crash(sim::TimePoint at, sim::Duration outage,
                              net::NodeId node);

  FailureSchedule& member_loss(sim::TimePoint at, net::NodeId router);
  FailureSchedule& member_join(sim::TimePoint at, net::NodeId router);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  /// Events sorted by nominal time (stable).
  const std::vector<FailureEvent>& events() const;

 private:
  FailureSchedule& add(sim::TimePoint at, FailureKind kind, std::uint32_t subject);

  mutable std::vector<FailureEvent> events_;
  mutable bool sorted_ = true;
};

class FailurePlane {
 public:
  /// Both references must outlive the plane (and the simulator run).
  FailurePlane(EvolvableInternet& internet, sim::MetricRegistry& metrics);

  /// Register a data-plane probe measured around every event: a synchronous
  /// forwarding trace from `from` toward `dst`.
  void add_probe(net::NodeId from, net::Ipv4Addr dst);

  /// Arm `schedule`; run the simulator (e.g. internet.converge() or
  /// simulator().run()) to play it out. May be called again once drained.
  void arm(FailureSchedule schedule);

  std::size_t events_applied() const { return applied_; }

 private:
  struct Probe {
    net::NodeId from;
    net::Ipv4Addr dst;
  };

  void arm_next();
  void apply(const FailureEvent& event);
  /// Trace every probe; record delivery rate under `phase` ("during" /
  /// "after") and classify drops into blackholes vs loops.
  void measure(const char* phase);

  EvolvableInternet& internet_;
  sim::MetricRegistry& metrics_;
  std::vector<Probe> probes_;
  std::vector<FailureEvent> events_;
  std::size_t next_ = 0;
  std::size_t applied_ = 0;
};

}  // namespace evo::core
