#include "core/scenario.h"

namespace evo::core {

using net::Cost;
using net::DomainId;
using net::NodeId;
using net::Relationship;
using net::Topology;

namespace {

/// Add `count` routers to `domain` connected in a line with unit costs;
/// returns them in order.
std::vector<NodeId> line_routers(Topology& topo, DomainId domain,
                                 std::uint32_t count, Cost cost = 1) {
  std::vector<NodeId> routers;
  for (std::uint32_t i = 0; i < count; ++i) routers.push_back(topo.add_router(domain));
  for (std::uint32_t i = 0; i + 1 < count; ++i) {
    topo.add_link(routers[i], routers[i + 1], cost);
  }
  return routers;
}

}  // namespace

Figure1 make_figure1() {
  Figure1 fig;
  Topology& topo = fig.topology;
  fig.w = topo.add_domain("W");
  fig.x = topo.add_domain("X", /*stub=*/true);
  fig.y = topo.add_domain("Y", /*stub=*/true);
  fig.z = topo.add_domain("Z", /*stub=*/true);

  // W's backbone: w0 - w1 - w2 (X hangs off w0, Y and Z off w2), so Z is
  // decisively closer to Y than to X.
  const auto w = line_routers(topo, fig.w, 3, /*cost=*/4);
  const auto x = line_routers(topo, fig.x, 2);
  const auto y = line_routers(topo, fig.y, 2);
  const auto z = line_routers(topo, fig.z, 2);

  topo.add_interdomain_link(w[0], x[0], Relationship::kCustomer, /*cost=*/2);
  topo.add_interdomain_link(w[2], y[0], Relationship::kCustomer, /*cost=*/2);
  topo.add_interdomain_link(w[2], z[0], Relationship::kCustomer, /*cost=*/2);

  fig.client = topo.add_host(z[1]);
  return fig;
}

Figure2 make_figure2() {
  Figure2 fig;
  Topology& topo = fig.topology;
  fig.p = topo.add_domain("P");
  fig.q = topo.add_domain("Q");
  fig.d = topo.add_domain("D");
  fig.x = topo.add_domain("X", /*stub=*/true);
  fig.y = topo.add_domain("Y", /*stub=*/true);
  fig.z = topo.add_domain("Z", /*stub=*/true);

  const auto p = line_routers(topo, fig.p, 2);
  const auto q = line_routers(topo, fig.q, 2);
  const auto d = line_routers(topo, fig.d, 2);
  const auto x = line_routers(topo, fig.x, 2);
  const auto y = line_routers(topo, fig.y, 2);
  const auto z = line_routers(topo, fig.z, 2);

  // D and P are peered transits; X and Y are D's customers; Q is P's
  // customer; Z is Q's customer; Q and Y are peers (the optional anycast
  // advertisement flows over this peering).
  topo.add_interdomain_link(d[0], p[0], Relationship::kPeer);
  topo.add_interdomain_link(d[1], x[0], Relationship::kCustomer);
  topo.add_interdomain_link(d[1], y[0], Relationship::kCustomer);
  topo.add_interdomain_link(p[1], q[0], Relationship::kCustomer);
  topo.add_interdomain_link(q[1], z[0], Relationship::kCustomer);
  topo.add_interdomain_link(q[1], y[1], Relationship::kPeer);

  fig.host_x = topo.add_host(x[1]);
  fig.host_y = topo.add_host(y[1]);
  fig.host_z = topo.add_host(z[1]);
  return fig;
}

Figure3 make_figure3() {
  Figure3 fig;
  Topology& topo = fig.topology;
  fig.m = topo.add_domain("M");
  fig.o = topo.add_domain("O");
  fig.c_domain = topo.add_domain("C-dom", /*stub=*/true);

  // M: a (host's access) - x (border). O: z (border to M) - mid - y
  // (border to C's domain). The stretch inside O makes the native tail
  // from X long, so exiting at Y pays off visibly.
  const auto m = line_routers(topo, fig.m, 2, /*cost=*/1);
  const auto o = line_routers(topo, fig.o, 3, /*cost=*/3);
  const auto cd = line_routers(topo, fig.c_domain, 2, /*cost=*/1);

  fig.x = m[1];
  fig.z = o[0];
  fig.y = o[2];

  // O is the provider of both M and C's domain.
  topo.add_interdomain_link(o[0], m[1], Relationship::kCustomer, /*cost=*/2);
  topo.add_interdomain_link(o[2], cd[0], Relationship::kCustomer, /*cost=*/2);

  fig.a = topo.add_host(m[0]);
  fig.c = topo.add_host(cd[1]);
  return fig;
}

Figure4 make_figure4() {
  Figure4 fig;
  Topology& topo = fig.topology;
  fig.a = topo.add_domain("A");
  fig.b = topo.add_domain("B");
  fig.c = topo.add_domain("C");
  fig.m = topo.add_domain("M");
  fig.n = topo.add_domain("N");
  fig.z = topo.add_domain("Z", /*stub=*/true);

  const auto a = line_routers(topo, fig.a, 2);
  const auto b = line_routers(topo, fig.b, 2);
  const auto c = line_routers(topo, fig.c, 2);
  const auto m = line_routers(topo, fig.m, 2, /*cost=*/8);
  const auto n = line_routers(topo, fig.n, 2, /*cost=*/8);
  const auto z = line_routers(topo, fig.z, 2);

  // Legacy chain A-M-N-Z is expensive; deployed chain A-B-C-Z is cheap.
  // Policies: Z is multihomed (customer of N and of C); N is M's customer;
  // A peers with M and B; B peers with C. Valley-freeness makes A's only
  // BGPv(N-1) route to Z the expensive M-N-Z path.
  topo.add_interdomain_link(a[1], m[0], Relationship::kPeer, /*cost=*/8);
  topo.add_interdomain_link(m[1], n[0], Relationship::kCustomer, /*cost=*/8);
  topo.add_interdomain_link(n[1], z[0], Relationship::kCustomer, /*cost=*/8);
  topo.add_interdomain_link(a[1], b[0], Relationship::kPeer, /*cost=*/1);
  topo.add_interdomain_link(b[1], c[0], Relationship::kPeer, /*cost=*/1);
  topo.add_interdomain_link(c[1], z[1], Relationship::kCustomer, /*cost=*/1);

  fig.src = topo.add_host(a[0]);
  fig.dst = topo.add_host(z[0]);
  return fig;
}

}  // namespace evo::core
