// Traffic accounting for the paper's incentive argument (assumption A4):
//
//   "if IPvN attracts users, then revenue will flow towards those ISPs
//    offering IPvN. An ISP that attracts new customers would obviously
//    increase revenue. We also posit that an ISP that attracts new
//    traffic, by offering IPvN, will also gain revenue possibly due to
//    increased settlement payments."
//
// The account walks delivered IPvN flows hop by hop and attributes, per
// ISP: flows originated/terminated by its hosts, router-hops of foreign
// traffic it carried (the settlement signal), and flows whose vN-Bone
// ingress it captured (the traffic-attraction signal of deploying).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evolvable_internet.h"
#include "core/trace.h"

namespace evo::core {

struct DomainTraffic {
  /// Flows whose source host is in this domain.
  std::uint64_t originated = 0;
  /// Flows whose destination host is in this domain.
  std::uint64_t terminated = 0;
  /// Router-hops of *foreign* flows carried (neither endpoint here):
  /// the settlement-bearing transit traffic.
  std::uint64_t transit_hops = 0;
  /// Flows that entered the vN-Bone at one of this domain's routers —
  /// traffic this ISP attracted by deploying.
  std::uint64_t vn_ingress = 0;
  /// Flows that exited the vN-Bone here (egress service).
  std::uint64_t vn_egress = 0;
};

struct TrafficAccount {
  std::vector<DomainTraffic> per_domain;  // indexed by DomainId
  std::uint64_t flows_attempted = 0;
  std::uint64_t flows_delivered = 0;

  const DomainTraffic& domain(net::DomainId id) const {
    return per_domain[id.value()];
  }

  /// Multi-line per-domain table (domains with any traffic only).
  std::string report(const net::Topology& topology) const;
};

/// Account an all-pairs IPvN workload (or a deterministic sample of
/// `max_pairs` when the cross product is larger) over the current
/// deployment state. One flow-unit per host pair.
TrafficAccount account_ipvn_traffic(const EvolvableInternet& internet,
                                    std::size_t max_pairs = 0,
                                    std::uint64_t seed = 1);

}  // namespace evo::core
