// Universal Access verification (paper §2.1):
//   "All clients can use IPvN if they so choose, regardless of whether
//    their ISP deploys IPvN or assists their clients in accessing IPvN."
//
// The verifier sends IPvN datagrams between host pairs and reports any
// failures; universal access holds when every pair succeeds — which the
// paper's design guarantees from the moment a single ISP deploys.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "sim/random.h"

namespace evo::core {

struct UaFailure {
  net::HostId src;
  net::HostId dst;
  EndToEndTrace::Failure failure = EndToEndTrace::Failure::kNone;
};

struct UaReport {
  std::size_t pairs_checked = 0;
  std::size_t pairs_delivered = 0;
  std::vector<UaFailure> failures;
  /// Summed over delivered pairs.
  double mean_cost = 0.0;
  double mean_stretch = 0.0;  // vs the physical shortest path oracle

  bool universal() const {
    return pairs_checked > 0 && pairs_delivered == pairs_checked;
  }
};

/// Check all ordered host pairs (or a random sample of `max_pairs` when
/// the full cross product is larger). Deterministic given `seed`.
UaReport verify_universal_access(const EvolvableInternet& internet,
                                 std::size_t max_pairs = 0,
                                 std::uint64_t seed = 1);

}  // namespace evo::core
