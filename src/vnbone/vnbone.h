// The vN-Bone: the virtual IPvN network overlaid on the IPv(N-1) Internet
// (paper §3.3).
//
// Deployment is per-router (assumption A1 allows partial deployment even
// within an ISP). Every deployed router joins the deployment's anycast
// group, so encapsulated IPvN packets reach the vN-Bone from anywhere
// (universal access). The virtual topology is built per the paper:
//
//   intra-domain:  every IPvN router picks its k closest IPvN routers
//                  (IGP distance) as vN-Bone neighbors; partitions are
//                  detected and repaired using the members' complete view;
//   inter-domain:  tunnels follow peering policy (one per peering between
//                  deployed domains); a newly joined ISP with no deployed
//                  neighbor bootstraps through the anycast mechanism; and
//                  every component must stay connected to the *default*
//                  provider of the anycast address.
//
// Routing over the vN-Bone distinguishes (§3.3.2):
//   native destinations — routed on the IPvN address to the home domain;
//   self-addressed destinations — an egress IPvN router is selected using
//     imported BGPv(N-1) knowledge (Fig. 3) or advertising-by-proxy
//     (Fig. 4); the packet then exits the vN-Bone and travels natively.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "anycast/anycast.h"
#include "bgp/bgp.h"
#include "igp/igp.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace evo::vnbone {

/// How an egress router is chosen for self-addressed (legacy-domain)
/// destinations — the three §3.3.2 strategies, in increasing capability.
enum class EgressMode : std::uint8_t {
  /// "Just exit the vN-Bone and forward the packet directly to the
  /// destination's IPv(N-1) address" at the first IPvN router.
  kExitAtIngress,
  /// Figure 3: the ingress uses its own domain's BGPv(N-1) path to the
  /// destination and rides the vN-Bone to the deployed domain furthest
  /// along that path.
  kOwnPathKnowledge,
  /// Figure 4: IPvN border routers advertise their BGPv(N-1) distance to
  /// legacy domains into BGPvN; the ingress picks the globally best
  /// (vN distance + advertised legacy distance) egress.
  kProxyAdvertising,
  /// §3.3.2's rejected-but-appealing alternative: "have the IPvN client
  /// use anycast to locate a closeby IPvN router and have that router
  /// advertise the client's temporary IPvN address." Gives the best
  /// possible egress (a router near the destination) at the price of
  /// per-host routing state and fate-sharing between the endhost and its
  /// advertising router.
  kEndhostAdvertised,
};

const char* to_string(EgressMode mode);

struct VnBoneConfig {
  /// The IP version being deployed (e.g. 8 for the paper's "IPv8").
  std::uint8_t version = 8;
  /// Intra-domain virtual degree: each router's k closest IPvN routers.
  std::uint32_t k_neighbors = 2;
  EgressMode egress_mode = EgressMode::kProxyAdvertising;
  /// §3.3.1: "as deployment spreads, the vN-Bone topology should evolve
  /// to be congruent with the underlying physical topology." When set,
  /// every physical intra-domain link whose both endpoints are deployed
  /// becomes a virtual link, so at full deployment the bone *is* the
  /// physical topology (no overlay stretch).
  bool congruent_evolution = true;
  /// Honor IGP capability limits (paper footnotes 2-3): in a domain whose
  /// IGP cannot enumerate anycast members (plain distance-vector), the
  /// k-closest rule is unavailable — construction falls back to "explicit
  /// neighbor discovery leveraging anycast for the initial bootstrap":
  /// each member tunnels to the member the anycast mechanism finds for
  /// it, yielding a join-order tree (plus congruent links, which need only
  /// local knowledge). Set false to grant every IGP full discovery.
  bool respect_discovery_limits = true;
  /// Control-plane weight of one BGPv(N-1) AS hop when comparing egress
  /// candidates against vN-Bone underlay costs (proxy advertising only).
  net::Cost as_hop_weight = 5;
  /// Anycast deployment option for the group serving this vN-Bone.
  anycast::InterDomainMode anycast_mode = anycast::InterDomainMode::kDefaultRoute;
};

struct VirtualLink {
  enum class Source : std::uint8_t {
    kIntraK,           // k-closest neighbor rule
    kPartitionRepair,  // added to reconnect an intra-domain partition
    kPeeringTunnel,    // inter-domain tunnel along a peering
    kAnycastBootstrap, // inter-domain tunnel found via anycast bootstrap
    kManual,           // operator-configured (MBone-style) tunnel
    kCongruent,        // physical link whose both ends deployed (§3.3.1
                       // congruence evolution)
  };
  net::NodeId a;
  net::NodeId b;
  net::Cost underlay_cost = 0;
  bool interdomain = false;
  Source source = Source::kIntraK;
};

const char* to_string(VirtualLink::Source source);

class VnBone {
 public:
  /// `bgp` may be null only for single-domain setups. All references must
  /// outlive this object.
  VnBone(net::Network& network, bgp::BgpSystem* bgp,
         std::function<igp::Igp*(net::DomainId)> igp_of,
         anycast::AnycastService& anycast_service, VnBoneConfig config = {});

  const VnBoneConfig& config() const { return config_; }

  /// The anycast group assigned to this deployment; invalid until the
  /// first router deploys.
  net::GroupId anycast_group() const { return group_; }
  net::Ipv4Addr anycast_address() const;

  /// The default provider — the first ISP to deploy (owns the anycast
  /// address under option 2). Invalid before any deployment.
  net::DomainId default_domain() const { return default_domain_; }

  // --- deployment ---------------------------------------------------------
  void deploy_router(net::NodeId router);
  void undeploy_router(net::NodeId router);
  /// Deploy every router of `domain`.
  void deploy_domain(net::DomainId domain);

  bool deployed(net::NodeId router) const { return deployed_.contains(router); }
  bool domain_deployed(net::DomainId domain) const;
  std::vector<net::NodeId> deployed_routers() const {
    return {deployed_.begin(), deployed_.end()};
  }
  std::vector<net::NodeId> deployed_routers_in(net::DomainId domain) const;
  std::vector<net::DomainId> deployed_domains() const;

  /// The routers actually participating in the bone right now: deployed
  /// AND up. Const inspection point for invariant oracles (the fuzzer's
  /// vN-Bone connectivity check compares these against virtual_graph()).
  std::vector<net::NodeId> active_members() const { return active_routers(); }

  // --- virtual topology ----------------------------------------------------
  /// Rebuild the virtual topology from the (converged) substrate. Call
  /// after deployment changes and after the simulator reaches quiescence.
  void rebuild();

  /// MBone-style manual configuration (§3.3: "many ISPs might, as in the
  /// past, simply choose to configure their networks by hand"): a
  /// persistent operator-configured tunnel, re-applied on every rebuild
  /// while both ends remain deployed. Underlay cost follows the physical
  /// topology.
  void add_manual_tunnel(net::NodeId a, net::NodeId b);
  void remove_manual_tunnel(net::NodeId a, net::NodeId b);
  std::size_t manual_tunnel_count() const { return manual_tunnels_.size(); }

  const std::vector<VirtualLink>& virtual_links() const { return links_; }
  /// Weighted graph over router NodeIds (only deployed routers have
  /// edges).
  net::Graph virtual_graph() const;

  /// Diagnostics from the last rebuild().
  std::size_t partition_repairs() const { return partition_repairs_; }
  std::size_t bootstrap_tunnels() const { return bootstrap_tunnels_; }

  /// Telemetry sink: rebuild() episodes become spans carrying link and
  /// repair counts. Null by default.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  // --- vN routing -----------------------------------------------------------
  struct VnRoute {
    bool ok = false;
    /// Virtual hops, ingress first, egress last.
    std::vector<net::NodeId> vn_hops;
    /// Sum of tunnel underlay costs along vn_hops.
    net::Cost vn_cost = 0;
    net::NodeId egress;
    /// True when the packet exits the vN-Bone at the egress and continues
    /// natively over IPv(N-1) to a legacy destination.
    bool exits_to_legacy = false;

    std::size_t vn_hop_count() const {
      return vn_hops.empty() ? 0 : vn_hops.size() - 1;
    }
  };

  /// Route an IPvN packet from `ingress` (a deployed router) toward `dst`
  /// under `mode`; the config's mode is used when `mode` is nullopt.
  VnRoute route(net::NodeId ingress, net::IpvNAddr dst,
                std::optional<EgressMode> mode = std::nullopt) const;

  /// BGPv(N-1) AS-path length from `domain` to `target` (min over the
  /// domain's border routers); kInfiniteCost when unknown. This is the
  /// information an IPvN border router "acquires from its domain's
  /// IPv(N-1) border router" (Fig. 3) and advertises by proxy (Fig. 4).
  net::Cost legacy_path_length(net::DomainId domain, net::DomainId target) const;

  /// The BGPv(N-1) AS path from `domain` to `target` (shortest among the
  /// domain's borders); empty when unknown.
  std::vector<net::DomainId> legacy_path(net::DomainId domain,
                                         net::DomainId target) const;

  // --- endhost route advertisement (§3.3.2 alternative) -------------------
  /// Register `self_addr` as advertised into BGPvN by `advertiser` (found
  /// by the endhost through anycast). Re-registering replaces the entry.
  void register_endhost_route(net::IpvNAddr self_addr, net::NodeId advertiser);
  void unregister_endhost_route(net::IpvNAddr self_addr);
  /// The advertiser currently serving `self_addr`'s route, if any — the
  /// route fate-shares with it: a dead/undeployed advertiser means no
  /// route until the endhost re-registers.
  std::optional<net::NodeId> endhost_route(net::IpvNAddr self_addr) const;
  std::size_t endhost_route_count() const { return endhost_routes_.size(); }

  /// Modeled BGPvN RIB size at a deployed router: one entry per deployed
  /// domain (native prefixes) plus, under proxy advertising, one entry per
  /// (advertising domain, legacy domain) pair.
  std::size_t vn_rib_size(net::NodeId router) const;

 private:
  void ensure_group(net::DomainId first_domain);
  igp::Igp* igp_for_node(net::NodeId node) const;

  /// A router participates in the vN-Bone only while deployed AND up: a
  /// crashed member drops out of the virtual topology (and of egress
  /// selection) until it recovers. Deployment itself is configuration and
  /// survives the crash.
  bool active(net::NodeId router) const;
  bool domain_active(net::DomainId domain) const;
  std::vector<net::NodeId> active_routers() const;
  std::vector<net::NodeId> active_routers_in(net::DomainId domain) const;

  net::Network& network_;
  bgp::BgpSystem* bgp_;
  std::function<igp::Igp*(net::DomainId)> igp_of_;
  anycast::AnycastService& anycast_;
  obs::Recorder* recorder_ = nullptr;
  VnBoneConfig config_;

  net::GroupId group_ = net::GroupId::invalid();
  net::DomainId default_domain_ = net::DomainId::invalid();
  std::set<net::NodeId> deployed_;
  std::set<std::pair<net::NodeId, net::NodeId>> manual_tunnels_;  // (low, high)
  std::map<net::IpvNAddr, net::NodeId> endhost_routes_;
  std::vector<VirtualLink> links_;
  std::size_t partition_repairs_ = 0;
  std::size_t bootstrap_tunnels_ = 0;
};

}  // namespace evo::vnbone
