// BGPvN — the vN-Bone's inter-domain routing protocol, run for real.
//
// "In the discussion that follows, we assume the existence of separate
// intra and inter-domain IPvN routing protocols ... we use the notation
// BGPvN to denote the IPvN inter-domain routing protocol even though
// BGPvN need not strictly resemble today's BGP" (§3.3.2).
//
// This implementation is an event-driven path-vector protocol at domain
// granularity whose sessions are the vN-Bone's inter-domain tunnels
// (message latency = the tunnel's measured underlay latency). It carries
// two route families:
//   * native routes — one per deployed domain's IPvN prefix;
//   * proxy routes — per legacy IPv(N-1) domain, the advertised
//     BGPv(N-1) distance of each deployed domain (advertising-by-proxy,
//     Figure 4), so vN-RIB state can be counted rather than modeled.
//
// VnBone::route() remains the converged-state oracle; BgpVn exists to
// measure what the oracle abstracts: message counts, convergence time,
// and per-domain RIB sizes. A cross-check test asserts both agree.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "vnbone/vnbone.h"

namespace evo::vnbone {

struct BgpVnConfig {
  /// Originate proxy routes for reachable legacy domains (Figure 4).
  bool proxy_advertising = true;
  /// Debounce between a vN-RIB change and the UPDATEs it triggers.
  sim::Duration update_delay = sim::Duration::millis(5);
};

/// One vN-RIB entry at a domain, for either a native or a proxy target.
struct VnRoute {
  net::DomainId target;
  /// Domain-level path over the vN-Bone, nearest first, origin last.
  std::vector<net::DomainId> vn_path;
  /// For proxy routes: the origin's advertised BGPv(N-1) AS distance to
  /// the legacy target. 0 for native routes.
  net::Cost legacy_distance = 0;
  bool native = true;
};

class BgpVn {
 public:
  /// References must outlive this object. `bone` provides the session
  /// graph (its inter-domain virtual links) and the legacy-distance
  /// inputs; `network` provides tunnel latencies.
  BgpVn(sim::Simulator& simulator, const net::Network& network, const VnBone& bone,
        BgpVnConfig config = {});

  /// Rebuild sessions from the bone's current inter-domain tunnels,
  /// originate native (and proxy) routes, and start exchanging UPDATEs.
  /// Run the simulator to converge; safe to call again after deployment
  /// changes (state is rebuilt from scratch).
  void restart();

  /// Best vN route at `domain` for a native IPvN target; nullptr if
  /// unknown (unreachable or not yet converged).
  const VnRoute* best_native(net::DomainId domain, net::DomainId target) const;

  /// Best proxy route at `domain` toward legacy `target`: minimizes the
  /// advertised legacy distance, then the vN path length.
  const VnRoute* best_proxy(net::DomainId domain, net::DomainId target) const;

  /// Total vN-RIB entries at `domain` (native + proxy best routes).
  std::size_t rib_size(net::DomainId domain) const;

  std::uint64_t messages_sent() const { return messages_sent_; }

  /// Simulated time from the last restart() to quiescence; valid after
  /// the simulator has drained.
  sim::Duration convergence_time() const {
    return last_converged_ - restarted_at_;
  }

 private:
  struct Session {
    net::DomainId peer;
    sim::Duration latency;
  };

  /// Key: (target, native?) — proxy and native families are independent.
  using RouteKey = std::pair<net::DomainId, bool>;

  struct SpeakerState {
    std::vector<Session> sessions;
    /// Best known offer per (route key, advertising neighbor).
    std::map<std::pair<RouteKey, net::DomainId>, VnRoute> rib_in;
    /// Winning route per key.
    std::map<RouteKey, VnRoute> rib;
    std::map<RouteKey, VnRoute> originated;
    std::vector<RouteKey> dirty;
    bool send_pending = false;
  };

  static bool preferred(const VnRoute& a, const VnRoute& b);
  void decide(net::DomainId domain, RouteKey key);
  void schedule_send(net::DomainId domain);
  void flush(net::DomainId domain);
  void receive(net::DomainId local, net::DomainId from, VnRoute route);

  sim::Simulator& simulator_;
  const net::Network& network_;
  const VnBone& bone_;
  BgpVnConfig config_;
  std::map<net::DomainId, SpeakerState> speakers_;
  std::uint64_t messages_sent_ = 0;
  sim::TimePoint restarted_at_;
  sim::TimePoint last_converged_;
};

}  // namespace evo::vnbone
