#include "vnbone/bgpvn.h"

#include <algorithm>
#include <cassert>

namespace evo::vnbone {

using net::Cost;
using net::DomainId;
using net::NodeId;

BgpVn::BgpVn(sim::Simulator& simulator, const net::Network& network,
             const VnBone& bone, BgpVnConfig config)
    : simulator_(simulator), network_(network), bone_(bone), config_(config) {}

void BgpVn::restart() {
  speakers_.clear();
  restarted_at_ = simulator_.now();
  last_converged_ = restarted_at_;

  const auto& topo = network_.topology();
  const auto domains = bone_.deployed_domains();
  for (const DomainId d : domains) speakers_.emplace(d, SpeakerState{});

  // Sessions: one per pair of deployed domains joined by an inter-domain
  // virtual link; latency = the tunnel's measured underlay latency
  // (cheapest tunnel when several exist).
  std::map<std::pair<DomainId, DomainId>, sim::Duration> session_latency;
  for (const auto& link : bone_.virtual_links()) {
    if (!link.interdomain) continue;
    const DomainId da = topo.router(link.a).domain;
    const DomainId db = topo.router(link.b).domain;
    if (da == db) continue;
    const auto trace = network_.trace(link.a, topo.router(link.b).loopback);
    const sim::Duration latency =
        trace.delivered() ? trace.latency : sim::Duration::millis(20);
    const auto key = std::minmax(da, db);
    const auto it = session_latency.find({key.first, key.second});
    if (it == session_latency.end() || latency < it->second) {
      session_latency[{key.first, key.second}] = latency;
    }
  }
  for (const auto& [pair, latency] : session_latency) {
    speakers_.at(pair.first).sessions.push_back(Session{pair.second, latency});
    speakers_.at(pair.second).sessions.push_back(Session{pair.first, latency});
  }

  // Originations.
  for (const DomainId d : domains) {
    auto& st = speakers_.at(d);
    VnRoute native;
    native.target = d;
    native.vn_path = {d};
    native.native = true;
    st.originated[{d, true}] = native;
    st.rib_in[{{d, true}, d}] = native;
    decide(d, {d, true});

    if (config_.proxy_advertising) {
      for (const auto& legacy : topo.domains()) {
        if (bone_.domain_deployed(legacy.id)) continue;
        const Cost dist = bone_.legacy_path_length(d, legacy.id);
        if (dist == net::kInfiniteCost) continue;
        VnRoute proxy;
        proxy.target = legacy.id;
        proxy.vn_path = {d};
        proxy.legacy_distance = dist;
        proxy.native = false;
        st.originated[{legacy.id, false}] = proxy;
        st.rib_in[{{legacy.id, false}, d}] = proxy;
        decide(d, {legacy.id, false});
      }
    }
  }
}

bool BgpVn::preferred(const VnRoute& a, const VnRoute& b) {
  if (!a.native) {
    // Proxy family: closest advertised legacy distance wins, then the
    // shorter vN path.
    if (a.legacy_distance != b.legacy_distance) {
      return a.legacy_distance < b.legacy_distance;
    }
  }
  if (a.vn_path.size() != b.vn_path.size()) {
    return a.vn_path.size() < b.vn_path.size();
  }
  // Deterministic tiebreak on the first hop.
  const DomainId an = a.vn_path.empty() ? DomainId::invalid() : a.vn_path.front();
  const DomainId bn = b.vn_path.empty() ? DomainId::invalid() : b.vn_path.front();
  return an < bn;
}

void BgpVn::decide(DomainId domain, RouteKey key) {
  auto& st = speakers_.at(domain);
  const VnRoute* best = nullptr;
  for (auto it = st.rib_in.lower_bound({key, DomainId{0}});
       it != st.rib_in.end() && it->first.first == key; ++it) {
    if (best == nullptr || preferred(it->second, *best)) best = &it->second;
  }
  const auto current = st.rib.find(key);
  const bool had = current != st.rib.end();
  if (best == nullptr) {
    if (!had) return;
    st.rib.erase(current);
  } else {
    if (had && current->second.vn_path == best->vn_path &&
        current->second.legacy_distance == best->legacy_distance) {
      return;
    }
    st.rib[key] = *best;
  }
  st.dirty.push_back(key);
  schedule_send(domain);
}

void BgpVn::schedule_send(DomainId domain) {
  auto& st = speakers_.at(domain);
  if (st.send_pending) return;
  st.send_pending = true;
  simulator_.schedule_after(config_.update_delay, [this, domain] {
    // The speaker set may have been rebuilt since; ignore stale timers.
    const auto it = speakers_.find(domain);
    if (it == speakers_.end()) return;
    it->second.send_pending = false;
    flush(domain);
  });
}

void BgpVn::flush(DomainId domain) {
  auto& st = speakers_.at(domain);
  const auto dirty = std::move(st.dirty);
  st.dirty.clear();
  for (const RouteKey& key : dirty) {
    const auto best = st.rib.find(key);
    if (best == st.rib.end()) continue;  // withdrawals elided: restart() rebuilds
    for (const Session& session : st.sessions) {
      // Path-vector split horizon: never advertise back along the path.
      if (std::find(best->second.vn_path.begin(), best->second.vn_path.end(),
                    session.peer) != best->second.vn_path.end()) {
        continue;
      }
      VnRoute advertised = best->second;
      // Prepend ourselves unless we are the origin (self routes already
      // carry {domain}).
      if (advertised.vn_path.empty() || advertised.vn_path.front() != domain) {
        advertised.vn_path.insert(advertised.vn_path.begin(), domain);
      }
      ++messages_sent_;
      simulator_.schedule_after(
          session.latency, [this, peer = session.peer, from = domain, advertised] {
            receive(peer, from, advertised);
          });
    }
  }
  last_converged_ = simulator_.now();
}

void BgpVn::receive(DomainId local, DomainId from, VnRoute route) {
  const auto it = speakers_.find(local);
  if (it == speakers_.end()) return;  // rebuilt mid-flight
  auto& st = it->second;
  // Loop prevention.
  if (std::find(route.vn_path.begin(), route.vn_path.end(), local) !=
      route.vn_path.end()) {
    return;
  }
  // The path as seen locally starts at `from`... it already does: flush
  // prepended the sender.
  const RouteKey key{route.target, route.native};
  st.rib_in[{key, from}] = route;
  decide(local, key);
  last_converged_ = simulator_.now();
}

const VnRoute* BgpVn::best_native(DomainId domain, DomainId target) const {
  const auto sp = speakers_.find(domain);
  if (sp == speakers_.end()) return nullptr;
  const auto it = sp->second.rib.find({target, true});
  return it == sp->second.rib.end() ? nullptr : &it->second;
}

const VnRoute* BgpVn::best_proxy(DomainId domain, DomainId target) const {
  const auto sp = speakers_.find(domain);
  if (sp == speakers_.end()) return nullptr;
  const auto it = sp->second.rib.find({target, false});
  return it == sp->second.rib.end() ? nullptr : &it->second;
}

std::size_t BgpVn::rib_size(DomainId domain) const {
  const auto sp = speakers_.find(domain);
  return sp == speakers_.end() ? 0 : sp->second.rib.size();
}

}  // namespace evo::vnbone
