#include "vnbone/vnbone.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace evo::vnbone {

using net::Cost;
using net::DomainId;
using net::Graph;
using net::GroupId;
using net::Ipv4Addr;
using net::IpvNAddr;
using net::NodeId;
using net::Prefix;

const char* to_string(EgressMode mode) {
  switch (mode) {
    case EgressMode::kExitAtIngress: return "exit-at-ingress";
    case EgressMode::kOwnPathKnowledge: return "own-path-knowledge";
    case EgressMode::kProxyAdvertising: return "proxy-advertising";
    case EgressMode::kEndhostAdvertised: return "endhost-advertised";
  }
  return "?";
}

const char* to_string(VirtualLink::Source source) {
  switch (source) {
    case VirtualLink::Source::kIntraK: return "intra-k";
    case VirtualLink::Source::kPartitionRepair: return "partition-repair";
    case VirtualLink::Source::kPeeringTunnel: return "peering-tunnel";
    case VirtualLink::Source::kAnycastBootstrap: return "anycast-bootstrap";
    case VirtualLink::Source::kManual: return "manual";
    case VirtualLink::Source::kCongruent: return "congruent";
  }
  return "?";
}

VnBone::VnBone(net::Network& network, bgp::BgpSystem* bgp,
               std::function<igp::Igp*(net::DomainId)> igp_of,
               anycast::AnycastService& anycast_service, VnBoneConfig config)
    : network_(network),
      bgp_(bgp),
      igp_of_(std::move(igp_of)),
      anycast_(anycast_service),
      config_(config) {}

Ipv4Addr VnBone::anycast_address() const {
  assert(group_.valid() && "no router deployed yet");
  return anycast_.group(group_).address;
}

igp::Igp* VnBone::igp_for_node(NodeId node) const {
  return igp_of_(network_.topology().router(node).domain);
}

void VnBone::ensure_group(DomainId first_domain) {
  if (group_.valid()) return;
  default_domain_ = first_domain;
  anycast::GroupConfig gc;
  gc.mode = config_.anycast_mode;
  gc.default_domain = first_domain;
  gc.ip_version = config_.version;
  group_ = anycast_.create_group(gc);
}

void VnBone::deploy_router(NodeId router) {
  if (!deployed_.insert(router).second) return;
  ensure_group(network_.topology().router(router).domain);
  anycast_.add_member(group_, router);
}

void VnBone::undeploy_router(NodeId router) {
  if (deployed_.erase(router) == 0) return;
  anycast_.remove_member(group_, router);
}

void VnBone::deploy_domain(DomainId domain) {
  for (const NodeId r : network_.topology().domain(domain).routers) {
    deploy_router(r);
  }
}

bool VnBone::domain_deployed(DomainId domain) const {
  for (const NodeId r : deployed_) {
    if (network_.topology().router(r).domain == domain) return true;
  }
  return false;
}

std::vector<NodeId> VnBone::deployed_routers_in(DomainId domain) const {
  std::vector<NodeId> out;
  for (const NodeId r : deployed_) {
    if (network_.topology().router(r).domain == domain) out.push_back(r);
  }
  return out;
}

bool VnBone::active(NodeId router) const {
  return deployed_.contains(router) && network_.topology().router(router).up;
}

bool VnBone::domain_active(DomainId domain) const {
  for (const NodeId r : deployed_) {
    if (network_.topology().router(r).domain == domain && active(r)) return true;
  }
  return false;
}

std::vector<NodeId> VnBone::active_routers() const {
  std::vector<NodeId> out;
  for (const NodeId r : deployed_) {
    if (active(r)) out.push_back(r);
  }
  return out;
}

std::vector<NodeId> VnBone::active_routers_in(DomainId domain) const {
  std::vector<NodeId> out;
  for (const NodeId r : deployed_) {
    if (network_.topology().router(r).domain == domain && active(r)) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<DomainId> VnBone::deployed_domains() const {
  std::vector<DomainId> out;
  for (const NodeId r : deployed_) {
    const DomainId d = network_.topology().router(r).domain;
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void VnBone::add_manual_tunnel(NodeId a, NodeId b) {
  assert(a != b);
  manual_tunnels_.insert({std::min(a, b), std::max(a, b)});
}

void VnBone::remove_manual_tunnel(NodeId a, NodeId b) {
  manual_tunnels_.erase({std::min(a, b), std::max(a, b)});
}

void VnBone::rebuild() {
  links_.clear();
  partition_repairs_ = 0;
  bootstrap_tunnels_ = 0;
  obs::SpanId span;
  if (recorder_ != nullptr) {
    span = recorder_->open_span(obs::Domain::kVnBone, "vnbone.rebuild",
                                deployed_.size());
  }
  // Every exit below must pass through the close at the end of this
  // function; the only other return is the empty-deployment one here.
  if (deployed_.empty()) {
    if (recorder_ != nullptr) recorder_->close_span(span);
    return;
  }

  const auto& topo = network_.topology();
  const auto domains = deployed_domains();

  // Dedup helper: canonical (low, high) pairs already linked.
  std::set<std::pair<std::uint32_t, std::uint32_t>> have;
  auto add_link = [&](NodeId a, NodeId b, Cost cost, bool interdomain,
                      VirtualLink::Source source) {
    const std::uint32_t lo = std::min(a.value(), b.value());
    const std::uint32_t hi = std::max(a.value(), b.value());
    if (!have.insert({lo, hi}).second) return;
    links_.push_back(VirtualLink{a, b, cost, interdomain, source});
  };

  // ---- operator-configured (manual) tunnels -----------------------------
  // Added first: explicit configuration takes precedence over (and is not
  // absorbed by) the automatic rules.
  for (const auto& [a, b] : manual_tunnels_) {
    if (!active(a) || !active(b)) continue;  // dormant until both deploy & up
    const auto paths = net::dijkstra(topo.physical_graph(), a);
    if (!paths.reachable(b)) continue;
    const bool interdomain = topo.router(a).domain != topo.router(b).domain;
    add_link(a, b, paths.distance_to(b), interdomain,
             VirtualLink::Source::kManual);
  }

  // ---- congruence evolution: adopt physical links between members ------
  if (config_.congruent_evolution) {
    for (const auto& link : topo.links()) {
      if (link.interdomain || !topo.link_usable(link.id)) continue;
      if (active(link.a) && active(link.b)) {
        add_link(link.a, link.b, link.cost, false,
                 VirtualLink::Source::kCongruent);
      }
    }
  }

  // ---- intra-domain: k closest neighbors, then partition repair --------
  for (const DomainId domain : domains) {
    const auto members = active_routers_in(domain);
    igp::Igp* igp = igp_of_(domain);
    if (members.size() < 2 || igp == nullptr) continue;

    auto dist = [&](NodeId a, NodeId b) { return igp->distance(a, b); };

    if (config_.respect_discovery_limits && !igp->supports_member_discovery()) {
      // Footnote-3 fallback: no member enumeration, so no k-closest rule.
      // Each member (in join order) anycasts to find its nearest existing
      // member and tunnels to it — a connected tree by construction.
      // (deployed_routers_in returns NodeId order == join-order model.)
      for (std::size_t i = 1; i < members.size(); ++i) {
        NodeId nearest = NodeId::invalid();
        Cost nearest_d = net::kInfiniteCost;
        for (std::size_t j = 0; j < i; ++j) {
          const Cost d = dist(members[i], members[j]);
          if (d < nearest_d || (d == nearest_d && members[j] < nearest)) {
            nearest = members[j];
            nearest_d = d;
          }
        }
        if (nearest.valid() && nearest_d != net::kInfiniteCost) {
          add_link(members[i], nearest, nearest_d, false,
                   VirtualLink::Source::kAnycastBootstrap);
          ++bootstrap_tunnels_;
        }
      }
      continue;
    }

    for (const NodeId r : members) {
      // Rank other members by (distance, id); take the k nearest.
      std::vector<std::pair<Cost, NodeId>> ranked;
      for (const NodeId m : members) {
        if (m == r) continue;
        const Cost d = dist(r, m);
        if (d == net::kInfiniteCost) continue;
        ranked.push_back({d, m});
      }
      std::sort(ranked.begin(), ranked.end());
      const std::size_t k = std::min<std::size_t>(config_.k_neighbors, ranked.size());
      for (std::size_t i = 0; i < k; ++i) {
        add_link(r, ranked[i].second, ranked[i].first, false,
                 VirtualLink::Source::kIntraK);
      }
    }

    // Partition detection & repair: "such [partitions] can be easily
    // detected and repaired because every router has complete knowledge of
    // all other IPvN routers" (§3.3.1). Greedily connect components with
    // the cheapest available member pair.
    while (true) {
      Graph g(topo.router_count());
      for (const auto& l : links_) {
        if (!l.interdomain && topo.router(l.a).domain == domain) {
          g.add_undirected_edge(l.a, l.b, l.underlay_cost);
        }
      }
      // Component labels restricted to this domain's members.
      const auto comps = net::connected_components(g);
      std::set<std::uint32_t> labels;
      for (const NodeId m : members) labels.insert(comps.label[m.value()]);
      if (labels.size() <= 1) break;

      Cost best_cost = net::kInfiniteCost;
      NodeId best_a = NodeId::invalid();
      NodeId best_b = NodeId::invalid();
      for (const NodeId a : members) {
        for (const NodeId b : members) {
          if (comps.label[a.value()] >= comps.label[b.value()]) continue;
          const Cost d = dist(a, b);
          if (d < best_cost || (d == best_cost && (a < best_a || (a == best_a && b < best_b)))) {
            best_cost = d;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (!best_a.valid() || best_cost == net::kInfiniteCost) break;  // physically split
      add_link(best_a, best_b, best_cost, false,
               VirtualLink::Source::kPartitionRepair);
      ++partition_repairs_;
    }
  }

  // ---- inter-domain: tunnels along peerings ------------------------------
  for (const DomainId da : domains) {
    for (const auto& peering : topo.domain(da).peerings) {
      const DomainId db = peering.neighbor;
      if (da >= db) continue;  // each pair once (peerings are symmetric)
      if (!domain_active(db)) continue;
      const auto& link = topo.link(peering.link);
      if (!topo.link_usable(peering.link)) continue;
      // Tunnel endpoints: each side's IPvN router closest (by IGP) to its
      // end of the physical peering link.
      const NodeId end_a =
          topo.router(link.a).domain == da ? link.a : link.b;
      const NodeId end_b = link.other_end(end_a);
      auto closest_member = [&](DomainId domain, NodeId to) {
        igp::Igp* igp = igp_of_(domain);
        NodeId best = NodeId::invalid();
        Cost best_d = net::kInfiniteCost;
        for (const NodeId m : active_routers_in(domain)) {
          const Cost d = (m == to) ? 0 : (igp ? igp->distance(m, to) : net::kInfiniteCost);
          if (d < best_d || (d == best_d && m < best)) {
            best = m;
            best_d = d;
          }
        }
        return std::make_pair(best, best_d);
      };
      const auto [ra, da_cost] = closest_member(da, end_a);
      const auto [rb, db_cost] = closest_member(db, end_b);
      if (!ra.valid() || !rb.valid()) continue;
      if (da_cost == net::kInfiniteCost || db_cost == net::kInfiniteCost) continue;
      add_link(ra, rb, da_cost + link.cost + db_cost, true,
               VirtualLink::Source::kPeeringTunnel);
    }
  }

  // ---- anycast bootstrap: connect stranded components to the default ----
  // "a newly joined ISP could reuse the anycast mechanism as the initial
  // bootstrap"; "every domain [should] ensure that it is connected ... to
  // the 'default' provider of the anycast address" (§3.3.1).
  const net::Graph physical = topo.physical_graph();
  // Routers proven physically unreachable from every other component stay
  // stranded; skipping their whole component keeps the loop repairing
  // everyone else.
  std::set<NodeId> hopeless;
  while (true) {
    Graph g = virtual_graph();
    const auto comps = net::connected_components(g);
    // The default component: the one holding the default domain's first
    // deployed router (default domain always has one: it deployed first).
    const auto default_members = active_routers_in(default_domain_);
    if (default_members.empty()) break;  // default fully dark: no anchor
    const std::uint32_t anchor = comps.label[default_members.front().value()];

    // Find a stranded active router (lowest id for determinism).
    NodeId stranded = NodeId::invalid();
    for (const NodeId r : deployed_) {
      if (active(r) && comps.label[r.value()] != anchor && !hopeless.contains(r)) {
        stranded = r;
        break;
      }
    }
    if (!stranded.valid()) break;

    // Bootstrap: the stranded router reaches the nearest *foreign-
    // component* IPvN router through the anycast mechanism (modeled as the
    // closest member by unicast distance — valid because the stranded ISP
    // is not yet advertising the anycast route itself, per the paper's
    // footnote).
    const auto paths = net::dijkstra(physical, stranded);
    NodeId target = NodeId::invalid();
    Cost target_d = net::kInfiniteCost;
    for (const NodeId m : deployed_) {
      if (!active(m)) continue;
      if (comps.label[m.value()] == comps.label[stranded.value()]) continue;
      const Cost d = paths.distance_to(m);
      if (d < target_d || (d == target_d && m < target)) {
        target = m;
        target_d = d;
      }
    }
    if (!target.valid() || target_d == net::kInfiniteCost) {
      // Physically cut off; no overlay can help. Mark the whole component
      // hopeless and keep repairing the rest.
      for (const NodeId r : deployed_) {
        if (comps.label[r.value()] == comps.label[stranded.value()]) {
          hopeless.insert(r);
        }
      }
      continue;
    }
    add_link(stranded, target, target_d, true,
             VirtualLink::Source::kAnycastBootstrap);
    ++bootstrap_tunnels_;
  }
  if (recorder_ != nullptr) {
    recorder_->close_span(span, links_.size(),
                          (std::uint64_t{partition_repairs_} << 32) |
                              static_cast<std::uint32_t>(bootstrap_tunnels_));
  }
}

void VnBone::register_endhost_route(IpvNAddr self_addr, NodeId advertiser) {
  assert(self_addr.is_self_address());
  endhost_routes_[self_addr] = advertiser;
}

void VnBone::unregister_endhost_route(IpvNAddr self_addr) {
  endhost_routes_.erase(self_addr);
}

std::optional<NodeId> VnBone::endhost_route(IpvNAddr self_addr) const {
  const auto it = endhost_routes_.find(self_addr);
  if (it == endhost_routes_.end()) return std::nullopt;
  return it->second;
}

Graph VnBone::virtual_graph() const {
  Graph g(network_.topology().router_count());
  for (const auto& l : links_) {
    g.add_undirected_edge(l.a, l.b, l.underlay_cost);
  }
  return g;
}

Cost VnBone::legacy_path_length(DomainId domain, DomainId target) const {
  if (domain == target) return 0;
  if (bgp_ == nullptr) return net::kInfiniteCost;
  const Prefix prefix = net::Topology::domain_prefix(target);
  Cost best = net::kInfiniteCost;
  for (const NodeId b : bgp_->speakers_of(domain)) {
    const bgp::Route* route = bgp_->best_route(b, prefix);
    if (route != nullptr) best = std::min<Cost>(best, route->as_path.size());
  }
  return best;
}

std::vector<DomainId> VnBone::legacy_path(DomainId domain, DomainId target) const {
  if (domain == target || bgp_ == nullptr) return {};
  const Prefix prefix = net::Topology::domain_prefix(target);
  const bgp::Route* best = nullptr;
  for (const NodeId b : bgp_->speakers_of(domain)) {
    const bgp::Route* route = bgp_->best_route(b, prefix);
    if (route != nullptr &&
        (best == nullptr || route->as_path.size() < best->as_path.size())) {
      best = route;
    }
  }
  return best == nullptr ? std::vector<DomainId>{} : best->as_path;
}

VnBone::VnRoute VnBone::route(NodeId ingress, IpvNAddr dst,
                              std::optional<EgressMode> mode_override) const {
  VnRoute result;
  if (!active(ingress)) return result;
  const auto& topo = network_.topology();
  const EgressMode mode = mode_override.value_or(config_.egress_mode);
  const Graph vgraph = virtual_graph();
  const auto paths = net::dijkstra(vgraph, ingress);

  auto finish_at = [&](NodeId egress, bool legacy) {
    if (egress != ingress && !paths.reachable(egress)) return;
    result.ok = true;
    result.egress = egress;
    result.exits_to_legacy = legacy;
    if (egress == ingress) {
      result.vn_hops = {ingress};
      result.vn_cost = 0;
    } else {
      result.vn_hops = paths.path_to(egress);
      result.vn_cost = paths.distance_to(egress);
    }
  };

  if (!dst.is_self_address()) {
    // Native destination: its home domain "advertises this address into
    // the IPvN-Bone routing topology". If the access router is itself
    // IPvN, it is the egress and delivery is fully native; under partial
    // intra-domain deployment (A1) the egress is the home domain's
    // IGP-closest IPvN router, and the final stretch rides IPv(N-1).
    const NodeId home{dst.native_node()};
    const DomainId home_domain{dst.native_domain()};
    if (home.value() >= topo.router_count() ||
        home_domain.value() >= topo.domain_count()) {
      return result;
    }
    if (active(home)) {
      finish_at(home, /*legacy=*/false);
      return result;
    }
    igp::Igp* igp = igp_of_(home_domain);
    NodeId egress = NodeId::invalid();
    Cost egress_d = net::kInfiniteCost;
    for (const NodeId r : active_routers_in(home_domain)) {
      const Cost d = igp ? igp->distance(r, home) : net::kInfiniteCost;
      if (d < egress_d || (d == egress_d && r < egress)) {
        egress = r;
        egress_d = d;
      }
    }
    if (egress.valid() && egress_d != net::kInfiniteCost) {
      finish_at(egress, /*legacy=*/true);
    }
    return result;
  }

  // Self-addressed destination in a (possibly) legacy domain.
  const Ipv4Addr legacy_dst = dst.embedded_v4();
  const auto target_domain = topo.domain_of_address(legacy_dst);
  if (!target_domain) return result;

  switch (mode) {
    case EgressMode::kExitAtIngress: {
      finish_at(ingress, /*legacy=*/true);
      return result;
    }
    case EgressMode::kOwnPathKnowledge: {
      // Walk my own BGPv(N-1) path to the target; ride the vN-Bone to the
      // deployed domain furthest along it (Figure 3).
      const DomainId my_domain = topo.router(ingress).domain;
      if (*target_domain == my_domain) {
        finish_at(ingress, /*legacy=*/true);
        return result;
      }
      const auto path = legacy_path(my_domain, *target_domain);
      DomainId chosen = DomainId::invalid();
      for (auto it = path.rbegin(); it != path.rend(); ++it) {  // nearest target first
        if (domain_active(*it)) {
          chosen = *it;
          break;
        }
      }
      if (!chosen.valid()) {
        finish_at(ingress, /*legacy=*/true);
        return result;
      }
      // Within the chosen domain, use the vN-closest deployed router.
      NodeId egress = NodeId::invalid();
      Cost egress_d = net::kInfiniteCost;
      for (const NodeId r : active_routers_in(chosen)) {
        const Cost d = (r == ingress) ? 0 : paths.distance_to(r);
        if (d < egress_d || (d == egress_d && r < egress)) {
          egress = r;
          egress_d = d;
        }
      }
      if (!egress.valid() || egress_d == net::kInfiniteCost) {
        finish_at(ingress, /*legacy=*/true);
      } else {
        finish_at(egress, /*legacy=*/true);
      }
      return result;
    }
    case EgressMode::kEndhostAdvertised: {
      // The destination must have registered; the route is only as alive
      // as its advertising router (fate-sharing).
      const auto advertiser = endhost_route(dst);
      if (!advertiser || !active(*advertiser)) return result;  // no route
      finish_at(*advertiser, /*legacy=*/true);
      return result;
    }
    case EgressMode::kProxyAdvertising: {
      // Every deployed domain advertises its BGPv(N-1) distance to the
      // target into BGPvN (Figure 4); pick the globally cheapest
      // (vN underlay + weighted AS hops) egress.
      NodeId egress = NodeId::invalid();
      Cost best_score = net::kInfiniteCost;
      for (const DomainId d : deployed_domains()) {
        const Cost legacy_len = legacy_path_length(d, *target_domain);
        if (legacy_len == net::kInfiniteCost) continue;
        for (const NodeId r : active_routers_in(d)) {
          const Cost vn_d = (r == ingress) ? 0 : paths.distance_to(r);
          if (vn_d == net::kInfiniteCost) continue;
          const Cost score = vn_d + config_.as_hop_weight * legacy_len;
          if (score < best_score || (score == best_score && r < egress)) {
            egress = r;
            best_score = score;
          }
        }
      }
      if (!egress.valid()) {
        finish_at(ingress, /*legacy=*/true);
      } else {
        finish_at(egress, /*legacy=*/true);
      }
      return result;
    }
  }
  return result;
}

std::size_t VnBone::vn_rib_size(NodeId router) const {
  if (!deployed(router)) return 0;
  const auto domains = deployed_domains();
  std::size_t size = domains.size();  // native vN prefixes
  if (config_.egress_mode == EgressMode::kProxyAdvertising && bgp_ != nullptr) {
    // One proxy entry per (deployed domain, reachable legacy domain).
    for (const DomainId d : domains) {
      for (const auto& target : network_.topology().domains()) {
        if (domain_deployed(target.id)) continue;
        if (legacy_path_length(d, target.id) != net::kInfiniteCost) ++size;
      }
    }
  }
  return size;
}

}  // namespace evo::vnbone
