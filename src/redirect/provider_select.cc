#include "redirect/provider_select.h"

#include <cassert>

namespace evo::redirect {

using net::DomainId;
using net::GroupId;
using net::HostId;
using net::NodeId;

ProviderSelect::ProviderSelect(core::EvolvableInternet& internet)
    : internet_(internet) {}

GroupId ProviderSelect::enable_provider(DomainId provider) {
  assert(!groups_.contains(provider) && "provider already enabled");
  assert(internet_.vnbone().domain_deployed(provider) &&
         "provider has no deployed routers to terminate its address");
  anycast::GroupConfig config;
  // A provider-rooted address: default routes naturally pull traffic to
  // the provider itself, and only its routers are members, so packets to
  // this address always land with the chosen provider.
  config.mode = anycast::InterDomainMode::kDefaultRoute;
  config.default_domain = provider;
  config.ip_version = internet_.vnbone().config().version;
  const GroupId group = internet_.anycast().create_group(config);
  groups_.emplace(provider, group);
  refresh_provider(provider);
  return group;
}

void ProviderSelect::refresh_provider(DomainId provider) {
  const auto it = groups_.find(provider);
  assert(it != groups_.end() && "provider not enabled");
  const GroupId group = it->second;
  // Enroll exactly the provider's currently deployed routers.
  const auto current = internet_.anycast().group(group).members;
  for (const NodeId member : current) {
    if (!internet_.vnbone().deployed(member)) {
      internet_.anycast().remove_member(group, member);
    }
  }
  for (const NodeId router : internet_.vnbone().deployed_routers_in(provider)) {
    internet_.anycast().add_member(group, router);
  }
}

std::optional<net::Ipv4Addr> ProviderSelect::provider_address(
    DomainId provider) const {
  const auto it = groups_.find(provider);
  if (it == groups_.end()) return std::nullopt;
  return internet_.anycast().group(it->second).address;
}

core::EndToEndTrace send_ipvn_via_provider(const core::EvolvableInternet& internet,
                                           const ProviderSelect& select,
                                           DomainId provider, HostId src,
                                           HostId dst,
                                           std::optional<vnbone::EgressMode> mode) {
  core::EndToEndTrace result;
  const auto address = select.provider_address(provider);
  if (!address) {
    result.failure = core::EndToEndTrace::Failure::kNoDeployment;
    return result;
  }
  const auto& network = internet.network();
  const auto& topo = network.topology();
  const auto& vnbone = internet.vnbone();

  const net::Packet packet = internet.hosts().make_datagram(src, dst);
  const net::IpvNHeader inner = packet.layers().front().vn;
  const NodeId src_access = topo.host(src).access_router;

  core::Segment ingress_seg;
  ingress_seg.kind = core::Segment::Kind::kAnycastIngress;
  ingress_seg.trace = network.trace(src_access, *address);
  result.segments.push_back(ingress_seg);
  const bool landed_with_provider =
      ingress_seg.trace.delivered() &&
      topo.router(ingress_seg.trace.delivered_at).domain == provider &&
      vnbone.deployed(ingress_seg.trace.delivered_at);
  if (!landed_with_provider) {
    result.failure = core::EndToEndTrace::Failure::kIngressFailed;
    return result;
  }
  result.ingress = ingress_seg.trace.delivered_at;

  core::complete_from_ingress(internet, inner, dst, mode, result);
  return result;
}

}  // namespace evo::redirect
