// User choice of IPvN provider (§2.1's noted variant):
//
// "A further tilt to this balance would be to offer users the choice of
// which IPvN service provider their IPvN packets are redirected to. We do
// not explore this option in detail but note that the technical framework
// we describe ... could, with few modifications, be adapted to such
// scenarios."
//
// The few modifications, made: each participating provider roots a
// *dedicated* anycast address in its own space and only its routers
// terminate it. A host that wants provider P encapsulates to P's address
// instead of the deployment-wide one; everything else (vN-Bone, egress
// selection) is unchanged. User choice and ISP control coexist: users
// pick the provider, providers still run the redirection.
#pragma once

#include <map>
#include <optional>

#include "core/evolvable_internet.h"
#include "core/trace.h"

namespace evo::redirect {

class ProviderSelect {
 public:
  /// `internet` must outlive this object.
  explicit ProviderSelect(core::EvolvableInternet& internet);

  /// Offer `provider` as a user-selectable IPvN entry point: allocates a
  /// provider-rooted anycast group and enrolls the provider's currently
  /// deployed routers. Requires the provider to have deployed routers.
  /// Returns the group id (also kept internally).
  net::GroupId enable_provider(net::DomainId provider);

  /// Re-sync the provider's group membership with its current deployment
  /// (call after deploy/undeploy churn).
  void refresh_provider(net::DomainId provider);

  /// The provider-specific anycast address a user's stack encapsulates
  /// to; nullopt if the provider is not enabled.
  std::optional<net::Ipv4Addr> provider_address(net::DomainId provider) const;

  std::size_t enabled_count() const { return groups_.size(); }

 private:
  core::EvolvableInternet& internet_;
  std::map<net::DomainId, net::GroupId> groups_;
};

/// Send an IPvN datagram entering the vN-Bone through the *chosen*
/// provider's anycast address. Fails at the ingress leg if the provider
/// has no reachable member.
core::EndToEndTrace send_ipvn_via_provider(
    const core::EvolvableInternet& internet, const ProviderSelect& select,
    net::DomainId provider, net::HostId src, net::HostId dst,
    std::optional<vnbone::EgressMode> mode = std::nullopt);

}  // namespace evo::redirect
