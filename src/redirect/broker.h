// Application-level redirection via third-party brokers — the §2.2
// alternative the paper argues against, built so the argument can be
// measured.
//
// "the lookup service could be run by third-party brokers who gather
// deployment information from each of the ISPs ... When queried by an
// endhost, the lookup service would return an IP address for a nearby
// IPvN router."
//
// The model captures the paper's two criticisms:
//   * partial participation (A2): ISPs must opt in to reporting their
//     deployment to the broker; non-participating ISPs' routers are
//     invisible, so clients get farther (or no) ingresses;
//   * staleness / loss of control: the broker's view is a snapshot taken
//     at refresh time — deployment changes after that produce redirects
//     to routers that no longer serve IPvN, which fail outright. The
//     network-level (anycast) mechanism self-manages and has neither
//     problem.
// A third structural difference needs no code: the broker is a new
// market entity between ISPs and users, which assumption A3 rules out.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/evolvable_internet.h"
#include "core/trace.h"

namespace evo::redirect {

class BrokerService {
 public:
  /// The broker serves lookups about `internet`'s IPvN deployment. The
  /// reference must outlive this object.
  explicit BrokerService(const core::EvolvableInternet& internet);

  /// ISP opt-in: only participating domains report their deployed
  /// routers. Defaults to nobody (the paper's point: why would they?).
  void set_participation(net::DomainId domain, bool participates);
  void set_all_participating();
  bool participates(net::DomainId domain) const;

  /// Snapshot the participating ISPs' deployment into the broker's
  /// database. Everything between refreshes is invisible; everything
  /// removed since is stale.
  void refresh();

  /// Answer a client query: the broker's best-known IPvN router for a
  /// client attached at `client_access`. The broker only knows public
  /// domain-level adjacency (not ISP interiors), so "nearby" means the
  /// fewest domain-level hops, tiebroken by router id. nullopt when the
  /// broker knows no routers at all.
  std::optional<net::NodeId> lookup(net::NodeId client_access) const;

  /// Number of routers in the broker's current database.
  std::size_t known_routers() const { return database_.size(); }

 private:
  const core::EvolvableInternet& internet_;
  std::set<net::DomainId> participating_;
  std::vector<net::NodeId> database_;  // snapshot of deployed routers
};

/// Send an IPvN datagram using broker-based redirection instead of
/// anycast: the host queries the broker and tunnels the encapsulated
/// packet to the returned router's unicast address. Stale or missing
/// answers fail exactly as they would in deployment.
core::EndToEndTrace send_ipvn_via_broker(
    const core::EvolvableInternet& internet, const BrokerService& broker,
    net::HostId src, net::HostId dst,
    std::optional<vnbone::EgressMode> mode = std::nullopt);

}  // namespace evo::redirect
