#include "redirect/broker.h"

#include <algorithm>

namespace evo::redirect {

using net::DomainId;
using net::HostId;
using net::NodeId;

BrokerService::BrokerService(const core::EvolvableInternet& internet)
    : internet_(internet) {}

void BrokerService::set_participation(DomainId domain, bool participates) {
  if (participates) {
    participating_.insert(domain);
  } else {
    participating_.erase(domain);
  }
}

void BrokerService::set_all_participating() {
  for (const auto& domain : internet_.topology().domains()) {
    participating_.insert(domain.id);
  }
}

bool BrokerService::participates(DomainId domain) const {
  return participating_.contains(domain);
}

void BrokerService::refresh() {
  database_.clear();
  for (const NodeId router : internet_.vnbone().deployed_routers()) {
    if (participating_.contains(internet_.topology().router(router).domain)) {
      database_.push_back(router);
    }
  }
}

std::optional<NodeId> BrokerService::lookup(NodeId client_access) const {
  if (database_.empty()) return std::nullopt;
  const auto& topo = internet_.topology();
  // The broker's proximity estimate: domain-level hops from the client's
  // domain (public AS-adjacency knowledge; no ISP-interior visibility).
  const auto domain_graph = topo.domain_level_graph();
  const auto hops = net::bfs_hops(
      domain_graph, NodeId{topo.router(client_access).domain.value()});
  NodeId best = NodeId::invalid();
  std::uint32_t best_hops = std::numeric_limits<std::uint32_t>::max();
  for (const NodeId candidate : database_) {
    const auto d = hops[topo.router(candidate).domain.value()];
    if (d < best_hops || (d == best_hops && candidate < best)) {
      best = candidate;
      best_hops = d;
    }
  }
  if (!best.valid() || best_hops == std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }
  return best;
}

core::EndToEndTrace send_ipvn_via_broker(const core::EvolvableInternet& internet,
                                         const BrokerService& broker, HostId src,
                                         HostId dst,
                                         std::optional<vnbone::EgressMode> mode) {
  core::EndToEndTrace result;
  const auto& network = internet.network();
  const auto& topo = network.topology();
  const auto& vnbone = internet.vnbone();

  if (!vnbone.anycast_group().valid()) {
    result.failure = core::EndToEndTrace::Failure::kNoDeployment;
    return result;
  }

  const NodeId src_access = topo.host(src).access_router;
  const auto target = broker.lookup(src_access);
  if (!target) {
    // The broker knows no IPvN router: the client is locked out even
    // though a deployment may exist (non-participating ISPs).
    result.failure = core::EndToEndTrace::Failure::kIngressFailed;
    return result;
  }

  // The client tunnels the encapsulated datagram to the broker-provided
  // *unicast* address (no anycast involved).
  const net::Packet packet = internet.hosts().make_datagram(src, dst);
  const net::IpvNHeader inner = packet.layers().front().vn;
  core::Segment ingress_seg;
  ingress_seg.kind = core::Segment::Kind::kAnycastIngress;  // the ingress leg
  ingress_seg.trace = network.trace(src_access, topo.router(*target).loopback);
  result.segments.push_back(ingress_seg);
  // Staleness bites here: the router must still be deployed to accept the
  // encapsulated packet.
  if (!ingress_seg.trace.delivered() ||
      ingress_seg.trace.delivered_at != *target || !vnbone.deployed(*target)) {
    result.failure = core::EndToEndTrace::Failure::kIngressFailed;
    return result;
  }
  result.ingress = *target;

  // From the ingress onward the path is identical to the anycast case.
  core::complete_from_ingress(internet, inner, dst, mode, result);
  return result;
}

}  // namespace evo::redirect
