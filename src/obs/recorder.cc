#include "obs/recorder.h"

#include <algorithm>

namespace evo::obs {

const char* to_string(Domain domain) {
  switch (domain) {
    case Domain::kSim: return "sim";
    case Domain::kNet: return "net";
    case Domain::kIgp: return "igp";
    case Domain::kBgp: return "bgp";
    case Domain::kVnBone: return "vnbone";
    case Domain::kAnycast: return "anycast";
    case Domain::kFailure: return "failure";
    case Domain::kCheck: return "check";
  }
  return "?";
}

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kSpanOpen: return "open";
    case Phase::kSpanClose: return "close";
    case Phase::kInstant: return "instant";
  }
  return "?";
}

std::vector<Event> Recorder::tail(std::size_t max) const {
  const std::size_t kept =
      recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_) : ring_.size();
  const std::size_t want = std::min(max, kept);
  std::vector<Event> out;
  out.reserve(want);
  // Oldest retained record sits at ring_head_ once the ring has wrapped.
  const std::size_t start =
      (ring_head_ + ring_.size() - want) % ring_.size();
  for (std::size_t i = 0; i < want; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Recorder::merge_from(const Recorder& other, std::uint32_t track) {
  log_.reserve(log_.size() + other.log_.size());
  for (Event event : other.log_) {
    event.track = track;
    log_.push_back(event);
  }
  recorded_ += other.recorded_;
}

void Recorder::clear() {
  ring_head_ = 0;
  recorded_ = 0;
  log_.clear();
  next_span_id_ = 1;
  open_spans_.clear();
}

}  // namespace evo::obs
