// Sim-time structured telemetry: spans, point events, and a flight ring.
//
// A Recorder collects fixed-size Event records stamped with simulated time:
//   - spans: open/close intervals for control-plane episodes (an IGP
//     reconvergence, a BGP re-advertisement wave, a vN-Bone rebuild), each
//     carrying message/churn counts on close;
//   - instants: point events (a packet hop, a FIB recompile, an event-queue
//     horizon rebase, an anycast origination flip).
//
// Two storage tiers:
//   - the flight ring: a bounded, preallocated circular buffer that is
//     always on. Recording into it never heap-allocates (InplaceFn-era
//     discipline) — the tail is what gets dumped when a fuzzer oracle
//     fires, the observability analogue of a crash reproducer;
//   - the full log: an unbounded append vector, enabled explicitly
//     (set_capture_all) for trace export and tests.
//
// Determinism: a Recorder consults no wall clock (time comes from an
// attached simulated-clock pointer), names are static strings, and span ids
// are a per-recorder monotonic counter — so identical runs produce
// byte-identical logs. Under ParallelSweep, give every cell its own
// Recorder and fold them with merge_from() in cell-index order (exactly the
// MetricRegistry::merge_from discipline); each cell becomes one track and
// the merged log is identical at any thread count.
//
// Instrumented modules hold an `obs::Recorder*` that is null by default;
// every site is a single pointer test, so the disabled cost on hot paths
// (schedule+fire, per-hop forwarding) is a predicted branch.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/time.h"

namespace evo::obs {

/// Which plane of the stack produced the record.
enum class Domain : std::uint8_t {
  kSim,
  kNet,
  kIgp,
  kBgp,
  kVnBone,
  kAnycast,
  kFailure,
  kCheck,
};

const char* to_string(Domain domain);

enum class Phase : std::uint8_t {
  kSpanOpen,
  kSpanClose,
  kInstant,
};

const char* to_string(Phase phase);

/// Handle to an open span; value 0 never names a live span, so a
/// default-constructed SpanId is a safe "no span open" sentinel.
struct SpanId {
  std::uint32_t value = 0;
  bool valid() const { return value != 0; }
};

/// One telemetry record. Fixed size, no owned heap state: `name` points at
/// a static string literal supplied by the instrumentation site.
struct Event {
  std::int64_t at_us = 0;       // simulated time
  const char* name = nullptr;   // static string; never owned
  std::uint64_t a = 0;          // subject (node/link/domain id, count)
  std::uint64_t b = 0;          // second subject / payload
  std::uint32_t span = 0;       // span id; 0 for instants
  std::uint32_t track = 0;      // sweep cell / merge track
  Domain domain = Domain::kSim;
  Phase phase = Phase::kInstant;
};

class Recorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  explicit Recorder(std::size_t ring_capacity = kDefaultRingCapacity)
      : ring_(ring_capacity > 0 ? ring_capacity : 1) {}

  /// Attach the simulated clock so records carry sim timestamps; pass
  /// nullptr to detach (records then carry t=0). The pointer must outlive
  /// the attachment.
  void attach_clock(const sim::TimePoint* now) { clock_ = now; }

  /// Open a span. `a`/`b` identify the subject (e.g. domain id, link id).
  SpanId open_span(Domain domain, const char* name, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
    const SpanId id{next_span_id_++};
    open_spans_.emplace(id.value, OpenSpan{name, domain});
    push(Event{now_us(), name, a, b, id.value, 0, domain, Phase::kSpanOpen});
    return id;
  }

  /// Close a span; `a`/`b` carry the episode's outcome counts (protocol
  /// messages, route churn). Closing an invalid/unknown id is a no-op, so
  /// callers can close unconditionally.
  void close_span(SpanId id, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!id.valid()) return;
    const auto it = open_spans_.find(id.value);
    if (it == open_spans_.end()) return;
    push(Event{now_us(), it->second.name, a, b, id.value, 0, it->second.domain,
               Phase::kSpanClose});
    open_spans_.erase(it);
  }

  /// Record a point event.
  void instant(Domain domain, const char* name, std::uint64_t a = 0,
               std::uint64_t b = 0) {
    push(Event{now_us(), name, a, b, 0, 0, domain, Phase::kInstant});
  }

  // --- full log (export tier) ----------------------------------------------
  /// Keep every record in an unbounded log (for export); off by default.
  void set_capture_all(bool on) { capture_all_ = on; }
  bool capture_all() const { return capture_all_; }
  const std::vector<Event>& log() const { return log_; }

  // --- flight ring (always-on tier) ----------------------------------------
  std::size_t ring_capacity() const { return ring_.size(); }
  /// Total records ever observed (ring overwrites included).
  std::uint64_t recorded() const { return recorded_; }
  /// Records that have been overwritten out of the ring.
  std::uint64_t overwritten() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  /// The retained tail in chronological order, newest last; at most `max`
  /// (counted from the newest backwards).
  std::vector<Event> tail(std::size_t max = static_cast<std::size_t>(-1)) const;

  /// Spans currently open (flight dumps list them: an un-closed episode at
  /// violation time is usually the interesting one).
  std::size_t open_span_count() const { return open_spans_.size(); }
  /// Visit open spans in id (= open) order.
  template <typename Fn>
  void for_each_open_span(Fn&& fn) const {
    for (const auto& [id, span] : open_spans_) fn(id, span.name, span.domain);
  }

  /// Append `other`'s full log to this one, stamping every copied record
  /// with `track`. Call in cell-index order to merge a parallel sweep's
  /// per-cell recorders deterministically.
  void merge_from(const Recorder& other, std::uint32_t track);

  void clear();

 private:
  struct OpenSpan {
    const char* name;
    Domain domain;
  };

  std::int64_t now_us() const { return clock_ ? clock_->count_micros() : 0; }

  void push(const Event& event) {
    ring_[ring_head_] = event;
    if (++ring_head_ == ring_.size()) ring_head_ = 0;
    ++recorded_;
    if (capture_all_) log_.push_back(event);
  }

  const sim::TimePoint* clock_ = nullptr;
  std::vector<Event> ring_;
  std::size_t ring_head_ = 0;
  std::uint64_t recorded_ = 0;
  bool capture_all_ = false;
  std::vector<Event> log_;
  std::uint32_t next_span_id_ = 1;
  std::map<std::uint32_t, OpenSpan> open_spans_;  // ordered for determinism
};

}  // namespace evo::obs
