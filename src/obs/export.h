// Trace exporters for obs::Recorder.
//
// perfetto_json() renders a recorder's full log as Chrome/Perfetto
// trace-event JSON (load it at https://ui.perfetto.dev or
// chrome://tracing). The output is strictly line-oriented — one event
// object per line — which is what tools/trace_inspect parses, and it is
// byte-deterministic: timestamps are integer simulated microseconds, names
// are static strings, and event order is log order (cell-major after a
// merge), so identical runs export identical bytes at any thread count.
//
// Mapping:
//   span open/close -> async "b"/"e" pairs, id = (track<<32)|span;
//   instant         -> "i" with thread scope;
//   pid = track (sweep cell), tid = domain index, cat = domain name.
//
// flight_text() renders the bounded flight-recorder tail (plus any spans
// still open) as a human-readable listing; the fuzzer writes it next to a
// .replay reproducer when an oracle fires.
#pragma once

#include <string>

#include "obs/recorder.h"

namespace evo::obs {

/// The full log as a Perfetto/Chrome trace JSON document. Requires the
/// recorder to have been in capture_all mode while recording.
std::string perfetto_json(const Recorder& recorder);

/// The flight ring's tail (newest `max_events` records) as readable text,
/// newest last, followed by the list of spans still open.
std::string flight_text(const Recorder& recorder,
                        std::size_t max_events = static_cast<std::size_t>(-1));

/// Write `content` to `path`. Returns an empty string on success, an error
/// message otherwise. (Shared by the CLI and the fuzzer dump path.)
std::string write_text_file(const std::string& path, const std::string& content);

}  // namespace evo::obs
