#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace evo::obs {

namespace {

void append_event_json(std::string& out, const Event& e) {
  char buf[384];
  const std::uint64_t async_id =
      (static_cast<std::uint64_t>(e.track) << 32) | e.span;
  switch (e.phase) {
    case Phase::kSpanOpen:
    case Phase::kSpanClose:
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                    "\"ts\":%" PRId64 ",\"pid\":%u,\"tid\":%u,"
                    "\"id\":\"0x%" PRIx64 "\","
                    "\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                    e.name, to_string(e.domain),
                    e.phase == Phase::kSpanOpen ? "b" : "e", e.at_us, e.track,
                    static_cast<unsigned>(e.domain), async_id, e.a, e.b);
      break;
    case Phase::kInstant:
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                    "\"ts\":%" PRId64 ",\"pid\":%u,\"tid\":%u,"
                    "\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                    e.name, to_string(e.domain), e.at_us, e.track,
                    static_cast<unsigned>(e.domain), e.a, e.b);
      break;
  }
  out += buf;
}

void append_time(std::string& out, std::int64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%10.3fms", static_cast<double>(us) / 1000.0);
  out += buf;
}

}  // namespace

std::string perfetto_json(const Recorder& recorder) {
  std::string out;
  out.reserve(128 + recorder.log().size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const Event& event : recorder.log()) {
    if (!first) out += ",\n";
    first = false;
    append_event_json(out, event);
  }
  out += "\n]}\n";
  return out;
}

std::string flight_text(const Recorder& recorder, std::size_t max_events) {
  std::string out;
  const auto events = recorder.tail(max_events);
  char head[160];
  std::snprintf(head, sizeof head,
                "# flight recorder: %zu of %" PRIu64
                " events retained (ring capacity %zu)\n",
                events.size(), recorder.recorded(), recorder.ring_capacity());
  out += head;
  for (const Event& e : events) {
    out += "[";
    append_time(out, e.at_us);
    out += "] ";
    char line[256];
    if (e.phase == Phase::kInstant) {
      std::snprintf(line, sizeof line, "%-8s %-10s %-28s a=%" PRIu64
                    " b=%" PRIu64 "\n",
                    to_string(e.domain), "instant", e.name, e.a, e.b);
    } else {
      std::snprintf(line, sizeof line,
                    "%-8s %-10s %-28s a=%" PRIu64 " b=%" PRIu64 " (span %u)\n",
                    to_string(e.domain), to_string(e.phase), e.name, e.a, e.b,
                    e.span);
    }
    out += line;
  }
  if (recorder.open_span_count() > 0) {
    out += "# spans still open at dump time (oldest first):\n";
    recorder.for_each_open_span(
        [&out](std::uint32_t id, const char* name, Domain domain) {
          char line[192];
          std::snprintf(line, sizeof line, "#   span %u %s %s\n", id,
                        to_string(domain), name);
          out += line;
        });
  }
  return out;
}

std::string write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "cannot open " + path + " for writing";
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) return "short write to " + path;
  return "";
}

}  // namespace evo::obs
