#include "check/oracles.h"

#include <algorithm>
#include <set>

#include "anycast/anycast.h"
#include "net/graph.h"
#include "net/network.h"
#include "sim/random.h"

namespace evo::check {

using core::EvolvableInternet;
using net::Cost;
using net::DomainId;
using net::Graph;
using net::Ipv4Addr;
using net::kInfiniteCost;
using net::NodeId;
using net::Relationship;

namespace {

using Outcome = net::Network::TraceResult::Outcome;

const char* to_cstr(Outcome outcome) { return net::to_string(outcome); }

bool full_health(const net::Topology& topo) {
  for (const auto& router : topo.routers()) {
    if (!router.up) return false;
  }
  for (const auto& link : topo.links()) {
    if (!link.up) return false;
  }
  return true;
}

std::string node_str(NodeId node) { return std::to_string(node.value()); }

/// Checks shared by every trace the oracles issue: loops and TTL
/// exhaustion are always bugs, and at a quiescent point no FIB may still
/// forward over a dead link (stale-route detection).
void note_trace(const net::Network::TraceResult& trace, NodeId from,
                const std::string& what, std::vector<Violation>& out) {
  if (trace.outcome == Outcome::kForwardingLoop ||
      trace.outcome == Outcome::kTtlExpired) {
    out.push_back({OracleKind::kLoopFreedom, 0,
                   what + " from " + node_str(from) + ": " + to_cstr(trace.outcome)});
  } else if (trace.outcome == Outcome::kLinkDown) {
    out.push_back({OracleKind::kNoBlackhole, 0,
                   what + " from " + node_str(from) +
                       ": forwarded into a dead link at quiescence"});
  }
}

/// ---- IGP ground truth + intra-domain data plane -------------------------

void check_igp_and_intradomain(const EvolvableInternet& internet,
                               std::vector<Violation>& out) {
  const auto& topo = internet.topology();
  const auto& network = internet.network();
  for (const auto& domain : topo.domains()) {
    const auto* igp = internet.igp(domain.id);
    if (igp == nullptr) continue;
    const Graph g = topo.domain_graph(domain.id);
    for (const NodeId u : domain.routers) {
      if (!topo.router(u).up) continue;
      const auto truth = net::dijkstra(g, u);
      for (const NodeId v : domain.routers) {
        if (u == v || !topo.router(v).up) continue;
        const Cost expect = truth.distance_to(v);
        const Cost got = igp->distance(u, v);
        if (got != expect) {
          out.push_back({OracleKind::kIgpGroundTruth, 0,
                         "domain " + std::to_string(domain.id.value()) + " " +
                             node_str(u) + "->" + node_str(v) + ": igp says " +
                             (got == kInfiniteCost ? "inf" : std::to_string(got)) +
                             ", dijkstra says " +
                             (expect == kInfiniteCost ? "inf"
                                                      : std::to_string(expect))});
          continue;
        }
        const auto trace = network.trace(u, topo.router(v).loopback);
        note_trace(trace, u, "intra-domain unicast", out);
        if (trace.delivered() && trace.delivered_at != v) {
          out.push_back({OracleKind::kNoBlackhole, 0,
                         "intra-domain unicast " + node_str(u) + "->" + node_str(v) +
                             " misdelivered at " + node_str(trace.delivered_at)});
        } else if (expect != kInfiniteCost && !trace.delivered()) {
          out.push_back({OracleKind::kNoBlackhole, 0,
                         "intra-domain unicast " + node_str(u) + "->" + node_str(v) +
                             " blackholed (" + to_cstr(trace.outcome) +
                             ") though dijkstra distance is " +
                             std::to_string(expect)});
        }
      }
    }
  }
}

/// ---- inter-domain unicast ------------------------------------------------

void check_interdomain_unicast(const EvolvableInternet& internet, bool healthy,
                               const OracleOptions& options,
                               std::vector<Violation>& out) {
  const auto& topo = internet.topology();
  const auto& network = internet.network();
  if (topo.domain_count() < 2 || topo.router_count() < 2) return;
  sim::Rng rng{sim::derive_seed(options.probe_seed, 0xA11)};
  const auto n = static_cast<std::int64_t>(topo.router_count());
  for (std::uint32_t i = 0; i < options.interdomain_pairs; ++i) {
    const NodeId u{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId v{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    if (u == v || topo.router(u).domain == topo.router(v).domain) continue;
    if (!topo.router(u).up || !topo.router(v).up) continue;
    const auto trace = network.trace(u, topo.router(v).loopback);
    note_trace(trace, u, "inter-domain unicast", out);
    if (trace.delivered() && trace.delivered_at != v) {
      out.push_back({OracleKind::kNoBlackhole, 0,
                     "inter-domain unicast " + node_str(u) + "->" + node_str(v) +
                         " misdelivered at " + node_str(trace.delivered_at)});
    }
    // Under full health the generator guarantees a valley-free path
    // between any two domains (complete transit core, stubs are
    // customers), so BGP must deliver. Under failures, policy may
    // legitimately blackhole even physically-connected pairs.
    if (healthy && !trace.delivered()) {
      out.push_back({OracleKind::kNoBlackhole, 0,
                     "inter-domain unicast " + node_str(u) + "->" + node_str(v) +
                         " blackholed (" + to_cstr(trace.outcome) +
                         ") at full health"});
    }
  }
}

/// ---- anycast delivery ----------------------------------------------------

void check_anycast(const EvolvableInternet& internet, bool healthy,
                   std::vector<Violation>& out) {
  const auto& vnbone = internet.vnbone();
  if (!vnbone.anycast_group().valid()) return;
  const auto& topo = internet.topology();
  const auto& network = internet.network();
  const auto& group = internet.anycast().group(vnbone.anycast_group());

  std::vector<NodeId> active;
  for (const NodeId m : group.members) {
    if (topo.router(m).up) active.push_back(m);
  }
  const bool default_has_member =
      std::any_of(active.begin(), active.end(), [&](NodeId m) {
        return topo.router(m).domain == group.config.default_domain;
      });
  const bool must_deliver =
      healthy && !active.empty() &&
      (group.config.mode == anycast::InterDomainMode::kGlobalRoutes
           ? true
           : default_has_member);

  // Exact closest-member distances over the usable physical topology.
  const Graph phys = topo.physical_graph();
  const auto oracle = active.empty()
                          ? net::ShortestPaths{}
                          : net::dijkstra(phys, std::span<const NodeId>(active));

  for (const auto& router : topo.routers()) {
    if (!router.up) continue;
    const NodeId s = router.id;
    const auto trace = network.trace(s, group.address);
    note_trace(trace, s, "anycast", out);
    if (trace.delivered()) {
      const NodeId at = trace.delivered_at;
      if (std::find(active.begin(), active.end(), at) == active.end()) {
        out.push_back({OracleKind::kMemberDelivery, 0,
                       "anycast from " + node_str(s) + " delivered at " +
                           node_str(at) + ", which is not a live member"});
      } else if (trace.cost < oracle.distance_to(s)) {
        out.push_back({OracleKind::kMemberDelivery, 0,
                       "anycast from " + node_str(s) + " delivered at cost " +
                           std::to_string(trace.cost) +
                           ", below the closest-member oracle " +
                           std::to_string(oracle.distance_to(s))});
      }
    } else if (must_deliver) {
      out.push_back({OracleKind::kNoBlackhole, 0,
                     "anycast from " + node_str(s) + " blackholed (" +
                         to_cstr(trace.outcome) + ") at full health under " +
                         to_string(group.config.mode)});
    }

    // §3.2 intra-domain capture: a live member of the source's own domain
    // that the source can reach intra-domain must win, at exact IGP cost.
    const auto& domain = topo.domain(router.domain);
    std::vector<NodeId> local_members;
    for (const NodeId m : active) {
      if (topo.router(m).domain == router.domain) local_members.push_back(m);
    }
    if (local_members.empty()) continue;
    const Graph dg = topo.domain_graph(domain.id);
    const auto intra = net::dijkstra(dg, s);
    Cost best = kInfiniteCost;
    for (const NodeId m : local_members) {
      best = std::min(best, intra.distance_to(m));
    }
    if (best == kInfiniteCost) continue;  // intra-partitioned from all members
    if (!trace.delivered()) {
      out.push_back({OracleKind::kIntraDomainClosest, 0,
                     "anycast from " + node_str(s) +
                         " blackholed though a member of its own domain is " +
                         std::to_string(best) + " away"});
    } else if (topo.router(trace.delivered_at).domain != router.domain) {
      out.push_back({OracleKind::kIntraDomainClosest, 0,
                     "anycast from " + node_str(s) + " escaped to " +
                         node_str(trace.delivered_at) +
                         " though its own domain has a reachable member"});
    } else if (trace.cost != best) {
      out.push_back({OracleKind::kIntraDomainClosest, 0,
                     "anycast from " + node_str(s) + " delivered at cost " +
                         std::to_string(trace.cost) +
                         ", closest in-domain member is " + std::to_string(best)});
    }
  }
}

/// ---- FIB vs CompiledFib differential ------------------------------------

void check_fib_equivalence(const EvolvableInternet& internet,
                           const OracleOptions& options,
                           std::vector<Violation>& out) {
  const auto& topo = internet.topology();
  const auto& network = internet.network();

  std::vector<Ipv4Addr> probes;
  probes.push_back(Ipv4Addr{0});
  probes.push_back(Ipv4Addr{0xFFFFFFFFu});
  for (const auto& router : topo.routers()) probes.push_back(router.loopback);
  for (const auto& domain : topo.domains()) {
    probes.push_back(domain.prefix.address());
    probes.push_back(Ipv4Addr{domain.prefix.address().bits() | 0xFFFFu});
  }
  if (internet.vnbone().anycast_group().valid()) {
    probes.push_back(
        internet.anycast().group(internet.vnbone().anycast_group()).address);
  }
  sim::Rng rng{sim::derive_seed(options.probe_seed, 0xF1B)};
  for (std::uint32_t i = 0; i < options.random_addresses; ++i) {
    probes.push_back(Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())});
  }

  for (const auto& router : topo.routers()) {
    const auto& fib = network.fib(router.id);
    const auto& compiled = network.compiled_fib(router.id);
    if (compiled.epoch() != fib.epoch()) {
      out.push_back({OracleKind::kFibEquivalence, 0,
                     "router " + node_str(router.id) +
                         ": compiled epoch lags the trie after refresh"});
      continue;
    }
    for (const Ipv4Addr addr : probes) {
      const auto* truth = fib.lookup(addr);
      const auto* fast = compiled.lookup(addr);
      const bool same = (truth == nullptr && fast == nullptr) ||
                        (truth != nullptr && fast != nullptr && *truth == *fast);
      if (!same) {
        out.push_back({OracleKind::kFibEquivalence, 0,
                       "router " + node_str(router.id) + " addr " +
                           std::to_string(addr.bits()) +
                           ": trie and compiled LPM disagree"});
        break;  // one differential failure per router is enough signal
      }
    }
  }
}

/// ---- Gao-Rexford policy compliance --------------------------------------

void check_gao_rexford(const EvolvableInternet& internet,
                       std::vector<Violation>& out) {
  const auto& topo = internet.topology();
  const auto& bgp = internet.bgp();
  for (const auto& domain : topo.domains()) {
    for (const NodeId speaker : bgp.speakers_of(domain.id)) {
      bgp.for_each_best_route(speaker, [&](const bgp::Route& route) {
        const auto fail = [&](const std::string& why) {
          out.push_back({OracleKind::kGaoRexford, 0,
                         "speaker " + node_str(speaker) + " route " +
                             route.describe() + ": " + why});
        };
        if (route.local_pref != bgp::local_pref_for(route.learned)) {
          fail("local-pref inconsistent with learned-from class");
          return;
        }
        if (route.learned == bgp::LearnedFrom::kSelf) return;
        // Full forwarding path: this domain, then the received AS path.
        std::vector<DomainId> path;
        path.push_back(domain.id);
        path.insert(path.end(), route.as_path.begin(), route.as_path.end());
        std::set<std::uint32_t> seen;
        for (const DomainId d : path) {
          if (!seen.insert(d.value()).second) {
            fail("AS path contains a loop");
            return;
          }
        }
        // Valley-free walk: climb provider links, cross at most one
        // peering, then only descend to customers.
        bool descending = false;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const auto rel = topo.relationship(path[i], path[i + 1]);
          if (!rel.has_value()) {
            fail("adjacent AS-path domains have no peering");
            return;
          }
          if (descending && *rel != Relationship::kCustomer) {
            fail("valley: path climbs or crosses after descending");
            return;
          }
          if (*rel != Relationship::kProvider) descending = true;
        }
        // The first hop's relationship must match the learned-from class.
        if (!route.as_path.empty()) {
          const auto rel = topo.relationship(domain.id, route.as_path.front());
          const auto expect = route.learned == bgp::LearnedFrom::kCustomer
                                  ? Relationship::kCustomer
                              : route.learned == bgp::LearnedFrom::kPeer
                                  ? Relationship::kPeer
                                  : Relationship::kProvider;
          if (rel.has_value() && *rel != expect) {
            fail("learned-from class contradicts the neighbor relationship");
          }
        }
      });
    }
  }
}

/// ---- vN-Bone connectivity ------------------------------------------------

void check_vnbone(const EvolvableInternet& internet, bool healthy,
                  std::vector<Violation>& out) {
  const auto& vnbone = internet.vnbone();
  if (!vnbone.anycast_group().valid()) return;
  const auto& topo = internet.topology();
  const auto active = vnbone.active_members();
  const std::set<NodeId> active_set(active.begin(), active.end());

  for (const auto& link : vnbone.virtual_links()) {
    if (!active_set.contains(link.a) || !active_set.contains(link.b)) {
      out.push_back({OracleKind::kVnBoneConnectivity, 0,
                     "virtual link " + node_str(link.a) + "-" + node_str(link.b) +
                         " has a dead or undeployed endpoint"});
    }
  }
  if (active.size() < 2) return;

  const auto virt = net::connected_components(vnbone.virtual_graph());
  std::vector<NodeId> default_members;
  for (const NodeId m : active) {
    if (topo.router(m).domain == vnbone.default_domain()) {
      default_members.push_back(m);
    }
  }

  if (healthy && !default_members.empty()) {
    // §3.3.1: every component must stay connected to the default
    // provider. At full health the underlay is connected and the anycast
    // bootstrap works, so the bone must form one component.
    const NodeId anchor = default_members.front();
    for (const NodeId m : active) {
      if (virt.label[m.value()] != virt.label[anchor.value()]) {
        out.push_back({OracleKind::kVnBoneConnectivity, 0,
                       "member " + node_str(m) +
                           " is virtually partitioned from the default domain "
                           "at full health"});
      }
    }
    return;
  }

  // Under failures: intra-domain partition repair must still hold where
  // member discovery works — two live members of one domain that the
  // usable intra-domain graph connects must share a bone component.
  for (const auto& domain : topo.domains()) {
    const auto* igp = internet.igp(domain.id);
    if (igp == nullptr || !igp->supports_member_discovery()) continue;
    std::vector<NodeId> members;
    for (const NodeId r : domain.routers) {
      if (active_set.contains(r)) members.push_back(r);
    }
    if (members.size() < 2) continue;
    const auto intra = net::connected_components(topo.domain_graph(domain.id));
    const NodeId anchor = members.front();
    for (std::size_t i = 1; i < members.size(); ++i) {
      const NodeId m = members[i];
      if (intra.label[m.value()] != intra.label[anchor.value()]) continue;
      if (virt.label[m.value()] != virt.label[anchor.value()]) {
        out.push_back({OracleKind::kVnBoneConnectivity, 0,
                       "members " + node_str(anchor) + " and " + node_str(m) +
                           " of domain " + std::to_string(domain.id.value()) +
                           " are intra-connected in the underlay but "
                           "partitioned in the bone"});
      }
    }
  }
}

/// ---- anycast state proportionality --------------------------------------

void check_state_bound(const EvolvableInternet& internet,
                       std::vector<Violation>& out) {
  const auto& topo = internet.topology();
  const auto groups = internet.anycast().group_count();
  for (const auto& domain : topo.domains()) {
    for (const NodeId speaker : internet.bgp().speakers_of(domain.id)) {
      const auto anycast_routes =
          internet.bgp().loc_rib_size(speaker, /*anycast_only=*/true);
      if (anycast_routes > groups) {
        out.push_back({OracleKind::kAnycastStateBound, 0,
                       "speaker " + node_str(speaker) + " holds " +
                           std::to_string(anycast_routes) +
                           " anycast routes for " + std::to_string(groups) +
                           " groups"});
      }
    }
  }
  for (const auto& router : topo.routers()) {
    const auto anycast_fib =
        internet.network().fib(router.id).size_with_origin(net::RouteOrigin::kAnycast);
    if (anycast_fib > groups) {
      out.push_back({OracleKind::kAnycastStateBound, 0,
                     "router " + node_str(router.id) + " carries " +
                         std::to_string(anycast_fib) +
                         " anycast FIB entries for " + std::to_string(groups) +
                         " groups"});
    }
  }
}

}  // namespace

const char* to_string(OracleKind oracle) {
  switch (oracle) {
    case OracleKind::kLoopFreedom: return "loop-freedom";
    case OracleKind::kNoBlackhole: return "no-blackhole";
    case OracleKind::kMemberDelivery: return "member-delivery";
    case OracleKind::kIntraDomainClosest: return "intra-domain-closest";
    case OracleKind::kIgpGroundTruth: return "igp-ground-truth";
    case OracleKind::kFibEquivalence: return "fib-equivalence";
    case OracleKind::kGaoRexford: return "gao-rexford";
    case OracleKind::kVnBoneConnectivity: return "vnbone-connectivity";
    case OracleKind::kAnycastStateBound: return "anycast-state-bound";
    case OracleKind::kConvergenceBudget: return "convergence-budget";
  }
  return "?";
}

std::string Violation::describe() const {
  return std::string(to_string(oracle)) + " @episode " + std::to_string(episode) +
         ": " + detail;
}

std::vector<Violation> check_invariants(const EvolvableInternet& internet,
                                        const OracleOptions& options) {
  std::vector<Violation> out;
  const bool healthy = full_health(internet.topology());
  check_igp_and_intradomain(internet, out);
  check_interdomain_unicast(internet, healthy, options, out);
  check_anycast(internet, healthy, out);
  check_fib_equivalence(internet, options, out);
  check_gao_rexford(internet, out);
  check_vnbone(internet, healthy, out);
  check_state_bound(internet, out);
  return out;
}

}  // namespace evo::check
