// Scenario fuzzing: derive a complete ScenarioPlan from one seed, run it
// deterministically, and check every invariant oracle at every quiescent
// point.
//
// Determinism contract: generate_plan(seed) and run_plan(plan) consult no
// wall clock and no global state — two invocations with the same seed
// produce the same plan, the same violations, and the same state digest,
// which is what makes shrunk reproducers and the committed corpus stable
// regression tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/plan.h"
#include "obs/recorder.h"

namespace evo::check {

/// Derive a full scenario (topology parameters, protocol configuration,
/// deployment, churn schedule) from one seed. Topology shape, IGP choice,
/// anycast option, vN-Bone knobs and the event mix all vary; the transit
/// core stays a full peering mesh so the full-health delivery oracles keep
/// their ground-truth precondition.
ScenarioPlan generate_plan(std::uint64_t seed);

struct RunReport {
  /// Violations found, stamped with the episode they surfaced in
  /// (0 = after initial deployment, i >= 1 = after churn event i-1). The
  /// run stops at the first violating episode.
  std::vector<Violation> violations;
  /// FNV-1a digest over the end state (FIBs, Loc-RIBs, virtual links,
  /// topology health, events processed): equal digests mean the runs were
  /// observationally identical.
  std::uint64_t digest = 0;
  /// Quiescent points that were checked (== episodes reached).
  std::size_t episodes = 0;
  /// Total simulator events processed.
  std::uint64_t events_processed = 0;
  /// Non-empty when the plan failed validation and never ran.
  std::string invalid;

  bool clean() const { return invalid.empty() && violations.empty(); }
};

/// Build the scenario and play it to completion (or first violation).
/// When `recorder` is non-null it is attached to every component for the
/// whole run: episodes become check.episode spans, oracle violations become
/// check.violation instants, and the recorder's always-on flight ring holds
/// the events leading up to a failure (dump with obs::flight_text).
RunReport run_plan(const ScenarioPlan& plan, const OracleOptions& options = {},
                   obs::Recorder* recorder = nullptr);

}  // namespace evo::check
