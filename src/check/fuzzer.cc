#include "check/fuzzer.h"

#include <algorithm>

#include "net/topology_gen.h"
#include "sim/random.h"

namespace evo::check {

using core::EvolvableInternet;
using core::FailureEvent;
using core::FailureKind;
using net::LinkId;
using net::NodeId;

namespace {

// Seed streams: one scenario seed fans out into independent substreams so
// shrinking one dimension never perturbs another.
constexpr std::uint64_t kTopologyStream = 0x7090;
constexpr std::uint64_t kPlanStream = 0x97A2;
constexpr std::uint64_t kDropRouteStream = 0xD809;

struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ULL;

  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
};

core::Options options_for(const ScenarioPlan& plan) {
  core::Options options;
  options.igp = plan.igp;
  if (plan.breakage == Breakage::kSplitHorizon) {
    // The fault only exists in distance-vector; force that family.
    if (options.igp == core::IgpKind::kLinkState) {
      options.igp = core::IgpKind::kDistanceVector;
    }
    options.distance_vector.split_horizon = false;
    // With a RIP-sized infinity the count terminates within a few thousand
    // events and quiesces in a *correct* state; a large infinity makes the
    // pathology what it is on real metrics — effectively unbounded churn —
    // which the convergence-budget oracle then flags.
    options.distance_vector.infinity = 1 << 20;
  }
  options.vnbone.k_neighbors = plan.k_neighbors;
  options.vnbone.egress_mode = plan.egress_mode;
  options.vnbone.anycast_mode = plan.anycast_mode;
  return options;
}

/// kDropRoute fault injection: delete one IGP route from one router's FIB
/// (deterministically chosen per episode) — a lost route-installation
/// write the no-blackhole oracle must notice.
void drop_one_route(EvolvableInternet& internet, std::uint64_t seed,
                    std::size_t episode) {
  auto& network = internet.network();
  const auto& topo = internet.topology();
  if (topo.router_count() == 0) return;
  sim::Rng rng{sim::derive_seed(seed, kDropRouteStream + episode)};
  const auto start = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(topo.router_count()) - 1));
  for (std::size_t i = 0; i < topo.router_count(); ++i) {
    const NodeId node{static_cast<std::uint32_t>((start + i) % topo.router_count())};
    auto& fib = network.fib(node);
    std::optional<net::Prefix> victim;
    fib.for_each([&](const net::FibEntry& entry) {
      if (!victim && entry.origin == net::RouteOrigin::kIgp) {
        victim = entry.prefix;
      }
    });
    if (victim) {
      fib.remove(*victim);
      return;
    }
  }
}

void apply_event(EvolvableInternet& internet, const FailureEvent& event,
                 Breakage breakage) {
  switch (event.kind) {
    case FailureKind::kLinkDown:
      if (breakage == Breakage::kSilentLinkDown) {
        // Poke the topology directly: no protocol is notified, so FIBs
        // keep forwarding into the dead link — the bug class the oracles
        // exist to catch.
        if (auto* recorder = internet.recorder()) {
          recorder->instant(obs::Domain::kCheck, "check.inject.silent_link_down",
                            event.subject);
        }
        internet.network().topology().set_link_up(LinkId{event.subject}, false);
      } else {
        internet.set_link_up(LinkId{event.subject}, false);
      }
      break;
    case FailureKind::kLinkUp:
      internet.set_link_up(LinkId{event.subject}, true);
      break;
    case FailureKind::kNodeDown:
      internet.set_node_up(NodeId{event.subject}, false);
      break;
    case FailureKind::kNodeUp:
      internet.set_node_up(NodeId{event.subject}, true);
      break;
    case FailureKind::kMemberLoss:
      internet.undeploy_router(NodeId{event.subject});
      break;
    case FailureKind::kMemberJoin:
      internet.deploy_router(NodeId{event.subject});
      break;
  }
}

std::uint64_t state_digest(EvolvableInternet& internet) {
  Fnv1a fnv;
  const auto& topo = internet.topology();
  fnv.mix(internet.simulator().events_processed());
  for (const auto& router : topo.routers()) fnv.mix(router.up ? 1 : 0);
  for (const auto& link : topo.links()) fnv.mix(link.up ? 1 : 0);
  for (const auto& router : topo.routers()) {
    internet.network().fib(router.id).for_each([&](const net::FibEntry& e) {
      fnv.mix(e.prefix.address().bits());
      fnv.mix(e.prefix.length());
      fnv.mix(e.next_hop.value());
      fnv.mix(e.out_link.value());
      fnv.mix(static_cast<std::uint64_t>(e.origin));
      fnv.mix(e.metric);
    });
  }
  for (const auto& domain : topo.domains()) {
    for (const NodeId speaker : internet.bgp().speakers_of(domain.id)) {
      internet.bgp().for_each_best_route(speaker, [&](const bgp::Route& r) {
        fnv.mix(r.prefix.address().bits());
        fnv.mix(r.prefix.length());
        fnv.mix(static_cast<std::uint64_t>(r.local_pref));
        for (const auto d : r.as_path) fnv.mix(d.value());
      });
    }
  }
  for (const auto& link : internet.vnbone().virtual_links()) {
    fnv.mix(link.a.value());
    fnv.mix(link.b.value());
    fnv.mix(link.underlay_cost);
    fnv.mix(static_cast<std::uint64_t>(link.source));
  }
  return fnv.hash;
}

}  // namespace

ScenarioPlan generate_plan(std::uint64_t seed) {
  ScenarioPlan plan;
  plan.seed = seed;
  sim::Rng rng{sim::derive_seed(seed, kPlanStream)};

  auto& topo = plan.topology;
  topo.transit_domains = static_cast<std::uint32_t>(rng.uniform_int(2, 3));
  topo.stubs_per_transit = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
  topo.transit_internal.routers = static_cast<std::uint32_t>(rng.uniform_int(2, 5));
  topo.transit_internal.chord_probability = rng.uniform(0.0, 0.5);
  topo.stub_internal.routers = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  topo.stub_internal.chord_probability = rng.uniform(0.0, 0.4);
  topo.waxman_interiors = rng.bernoulli(0.25);
  // Keep the full transit mesh: the full-health delivery oracles assume a
  // valley-free path exists between any two domains.
  topo.extra_transit_peering_probability = 1.0;
  topo.multihoming_probability = rng.uniform(0.0, 0.4);
  topo.seed = sim::derive_seed(seed, kTopologyStream);

  switch (rng.uniform_int(0, 2)) {
    case 0: plan.igp = core::IgpKind::kLinkState; break;
    case 1: plan.igp = core::IgpKind::kDistanceVector; break;
    default: plan.igp = core::IgpKind::kDistanceVectorTagged; break;
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: plan.anycast_mode = anycast::InterDomainMode::kGlobalRoutes; break;
    case 1: plan.anycast_mode = anycast::InterDomainMode::kDefaultRoute; break;
    default: plan.anycast_mode = anycast::InterDomainMode::kGia; break;
  }
  plan.k_neighbors = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
  switch (rng.uniform_int(0, 3)) {
    case 0: plan.egress_mode = vnbone::EgressMode::kExitAtIngress; break;
    case 1: plan.egress_mode = vnbone::EgressMode::kOwnPathKnowledge; break;
    case 2: plan.egress_mode = vnbone::EgressMode::kProxyAdvertising; break;
    default: plan.egress_mode = vnbone::EgressMode::kEndhostAdvertised; break;
  }

  // The plan must not depend on the generated topology beyond its counts
  // (the shrinker re-validates subjects after pruning parameters).
  const net::Topology topology = net::generate_transit_stub(topo);
  const auto routers = static_cast<std::int64_t>(topology.router_count());
  const auto links = static_cast<std::int64_t>(topology.link_count());

  const auto deploy_count = rng.uniform_int(1, std::min<std::int64_t>(8, routers));
  for (const std::size_t index : rng.sample_indices(
           topology.router_count(), static_cast<std::size_t>(deploy_count))) {
    plan.initial_deployment.push_back(NodeId{static_cast<std::uint32_t>(index)});
  }

  const auto event_count = rng.uniform_int(0, 12);
  std::vector<std::uint32_t> down_links, down_nodes;
  auto at = sim::TimePoint::origin() + sim::Duration::millis(10);
  for (std::int64_t i = 0; i < event_count; ++i) {
    at = at + sim::Duration::millis(rng.uniform_int(1, 50));
    // Bias toward repairing earlier damage half the time, so scenarios
    // exercise flaps and recoveries rather than monotonic decay.
    if (!down_links.empty() && rng.bernoulli(0.3)) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(down_links.size()) - 1));
      plan.events.push_back({at, FailureKind::kLinkUp, down_links[j]});
      down_links.erase(down_links.begin() + static_cast<std::ptrdiff_t>(j));
      continue;
    }
    if (!down_nodes.empty() && rng.bernoulli(0.3)) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(down_nodes.size()) - 1));
      plan.events.push_back({at, FailureKind::kNodeUp, down_nodes[j]});
      down_nodes.erase(down_nodes.begin() + static_cast<std::ptrdiff_t>(j));
      continue;
    }
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        const auto link = static_cast<std::uint32_t>(rng.uniform_int(0, links - 1));
        plan.events.push_back({at, FailureKind::kLinkDown, link});
        down_links.push_back(link);
        break;
      }
      case 1: {
        const auto node = static_cast<std::uint32_t>(rng.uniform_int(0, routers - 1));
        plan.events.push_back({at, FailureKind::kNodeDown, node});
        down_nodes.push_back(node);
        break;
      }
      case 2:
        plan.events.push_back(
            {at, FailureKind::kMemberLoss,
             static_cast<std::uint32_t>(rng.uniform_int(0, routers - 1))});
        break;
      default:
        plan.events.push_back(
            {at, FailureKind::kMemberJoin,
             static_cast<std::uint32_t>(rng.uniform_int(0, routers - 1))});
        break;
    }
  }
  return plan;
}

RunReport run_plan(const ScenarioPlan& plan, const OracleOptions& options,
                   obs::Recorder* recorder) {
  RunReport report;
  net::Topology topology = net::generate_transit_stub(plan.topology);
  report.invalid = validate(plan, topology);
  if (!report.invalid.empty()) return report;

  EvolvableInternet internet{std::move(topology), options_for(plan)};
  internet.set_recorder(recorder);
  internet.start();
  for (const NodeId router : plan.initial_deployment) {
    internet.deploy_router(router);
  }
  internet.converge();

  const auto check = [&](std::size_t episode) {
    if (plan.breakage == Breakage::kDropRoute) {
      drop_one_route(internet, plan.seed, episode);
    }
    auto violations = check_invariants(internet, options);
    for (auto& violation : violations) {
      violation.episode = episode;
      if (recorder != nullptr) {
        recorder->instant(obs::Domain::kCheck, "check.violation", episode,
                          static_cast<std::uint64_t>(violation.oracle));
      }
    }
    report.violations.insert(report.violations.end(), violations.begin(),
                             violations.end());
    ++report.episodes;
    return report.violations.empty();
  };

  if (check(0)) {
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      obs::SpanId episode_span;
      if (recorder != nullptr) {
        episode_span = recorder->open_span(
            obs::Domain::kCheck, "check.episode", i + 1,
            (std::uint64_t{static_cast<std::uint8_t>(plan.events[i].kind)} << 32) |
                plan.events[i].subject);
      }
      apply_event(internet, plan.events[i], plan.breakage);
      internet.simulator().run_events(plan.convergence_budget);
      if (!internet.simulator().idle()) {
        report.violations.push_back(
            {OracleKind::kConvergenceBudget, i + 1,
             "still " + std::to_string(internet.simulator().pending_events()) +
                 " events pending after a budget of " +
                 std::to_string(plan.convergence_budget)});
        if (recorder != nullptr) {
          recorder->instant(
              obs::Domain::kCheck, "check.violation", i + 1,
              static_cast<std::uint64_t>(OracleKind::kConvergenceBudget));
        }
        ++report.episodes;
        break;
      }
      internet.converge();
      const bool clean = check(i + 1);
      if (recorder != nullptr) {
        recorder->close_span(episode_span, report.violations.size());
      }
      if (!clean) break;
    }
  }

  report.events_processed = internet.simulator().events_processed();
  report.digest = state_digest(internet);
  return report;
}

}  // namespace evo::check
