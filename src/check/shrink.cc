#include "check/shrink.h"

#include <algorithm>
#include <functional>

#include "net/topology_gen.h"

namespace evo::check {

namespace {

class Shrinker {
 public:
  Shrinker(OracleKind target, const OracleOptions& options, std::size_t max_runs)
      : target_(target), options_(options), max_runs_(max_runs) {}

  std::size_t runs() const { return runs_; }
  const RunReport& best_report() const { return best_report_; }

  bool budget_left() const { return runs_ < max_runs_; }

  /// Run `candidate`; true when it still trips the target oracle (the
  /// candidate's report is cached as the new best).
  bool reproduces(const ScenarioPlan& candidate) {
    if (!budget_left()) return false;
    ++runs_;
    RunReport report = run_plan(candidate, options_);
    const bool hit = std::any_of(
        report.violations.begin(), report.violations.end(),
        [&](const Violation& v) { return v.oracle == target_; });
    if (hit) best_report_ = std::move(report);
    return hit;
  }

  /// Classic ddmin over one sequence field of the plan: repeatedly try
  /// removing contiguous chunks, halving the chunk size when stuck.
  template <typename T>
  void ddmin(ScenarioPlan& plan, std::vector<T> ScenarioPlan::* field) {
    auto& items = plan.*field;
    std::size_t chunk = items.empty() ? 0 : (items.size() + 1) / 2;
    while (chunk > 0 && !items.empty() && budget_left()) {
      bool removed_any = false;
      for (std::size_t begin = 0; begin < items.size() && budget_left();) {
        ScenarioPlan candidate = plan;
        auto& trimmed = candidate.*field;
        const std::size_t end = std::min(begin + chunk, trimmed.size());
        trimmed.erase(trimmed.begin() + static_cast<std::ptrdiff_t>(begin),
                      trimmed.begin() + static_cast<std::ptrdiff_t>(end));
        if (reproduces(candidate)) {
          plan = std::move(candidate);
          removed_any = true;
          // Do not advance: the next chunk slid into this position.
        } else {
          begin += chunk;
        }
      }
      if (!removed_any) chunk /= 2;
    }
  }

  /// Try one parameter mutation; keep it if the violation survives.
  bool try_mutation(ScenarioPlan& plan,
                    const std::function<void(ScenarioPlan&)>& mutate) {
    ScenarioPlan candidate = plan;
    mutate(candidate);
    const net::Topology topology = net::generate_transit_stub(candidate.topology);
    if (!validate(candidate, topology).empty()) return false;
    if (!reproduces(candidate)) return false;
    plan = std::move(candidate);
    return true;
  }

 private:
  OracleKind target_;
  OracleOptions options_;
  std::size_t max_runs_;
  std::size_t runs_ = 0;
  RunReport best_report_;
};

}  // namespace

ShrinkResult shrink(const ScenarioPlan& plan, const RunReport& report,
                    const OracleOptions& options, std::size_t max_runs) {
  ShrinkResult result;
  result.plan = plan;
  result.report = report;
  if (report.violations.empty()) return result;
  const OracleKind target = report.violations.front().oracle;

  // Events past the violating episode never executed; drop them outright.
  std::size_t last_episode = 0;
  for (const auto& violation : report.violations) {
    last_episode = std::max(last_episode, violation.episode);
  }
  if (last_episode < result.plan.events.size()) {
    result.plan.events.resize(last_episode);
  }

  Shrinker shrinker{target, options, max_runs};
  // Shrinking is only sound if the truncated plan still reproduces; if it
  // somehow does not (a flaky oracle would be a harness bug), bail out and
  // return the original untouched.
  if (!shrinker.reproduces(result.plan)) {
    result.plan = plan;
    result.runs = shrinker.runs();
    return result;
  }

  for (int round = 0; round < 4 && shrinker.budget_left(); ++round) {
    ScenarioPlan before = result.plan;

    shrinker.ddmin(result.plan, &ScenarioPlan::events);
    shrinker.ddmin(result.plan, &ScenarioPlan::initial_deployment);

    // Topology pruning, cheapest-first: each mutation is retried while it
    // keeps making the scenario smaller.
    const auto halve = [](std::uint32_t& value, std::uint32_t floor) {
      value = std::max(floor, value / 2);
    };
    const std::function<void(ScenarioPlan&)> mutations[] = {
        [](ScenarioPlan& p) { p.topology.multihoming_probability = 0.0; },
        [](ScenarioPlan& p) { p.topology.waxman_interiors = false; },
        [](ScenarioPlan& p) {
          p.topology.transit_internal.chord_probability = 0.0;
          p.topology.stub_internal.chord_probability = 0.0;
        },
        [&](ScenarioPlan& p) { halve(p.topology.stubs_per_transit, 0); },
        [&](ScenarioPlan& p) { halve(p.topology.stub_internal.routers, 1); },
        [&](ScenarioPlan& p) { halve(p.topology.transit_internal.routers, 1); },
        [&](ScenarioPlan& p) { halve(p.topology.transit_domains, 1); },
    };
    for (const auto& mutation : mutations) {
      ScenarioPlan probe = result.plan;
      mutation(probe);
      while (shrinker.budget_left() &&
             shrinker.try_mutation(result.plan, mutation)) {
        ScenarioPlan next = result.plan;
        mutation(next);
        // Stop once the mutation is a fixpoint (e.g. already at the floor).
        if (next.topology.transit_domains == result.plan.topology.transit_domains &&
            next.topology.stubs_per_transit == result.plan.topology.stubs_per_transit &&
            next.topology.transit_internal.routers ==
                result.plan.topology.transit_internal.routers &&
            next.topology.stub_internal.routers ==
                result.plan.topology.stub_internal.routers &&
            next.topology.waxman_interiors == result.plan.topology.waxman_interiors &&
            next.topology.multihoming_probability ==
                result.plan.topology.multihoming_probability &&
            next.topology.transit_internal.chord_probability ==
                result.plan.topology.transit_internal.chord_probability) {
          break;
        }
      }
    }

    const bool changed =
        before.events.size() != result.plan.events.size() ||
        before.initial_deployment.size() != result.plan.initial_deployment.size() ||
        before.topology.transit_domains != result.plan.topology.transit_domains ||
        before.topology.stubs_per_transit != result.plan.topology.stubs_per_transit ||
        before.topology.transit_internal.routers !=
            result.plan.topology.transit_internal.routers ||
        before.topology.stub_internal.routers !=
            result.plan.topology.stub_internal.routers;
    if (!changed) break;
  }

  result.report = shrinker.best_report();
  result.runs = shrinker.runs();
  return result;
}

}  // namespace evo::check
