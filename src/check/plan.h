// Scenario plans: the fully explicit description of one fuzz scenario —
// topology parameters, protocol configuration, initial IPvN deployment,
// and a churn schedule stamped with nominal times.
//
// A plan is what the fuzzer derives from a single seed, what the shrinker
// minimizes, and what replay files serialize. Running a plan is
// deterministic (the topology regenerates from its parameters, the
// simulator is integer-time, every random choice is already frozen into
// the plan), so a plan is a complete, byte-stable reproducer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/anycast.h"
#include "core/evolvable_internet.h"
#include "core/failure_plane.h"
#include "net/topology_gen.h"
#include "vnbone/vnbone.h"

namespace evo::check {

/// Intentional fault injections for harness self-tests: each models a
/// class of control-plane bug the oracles must catch. A healthy run uses
/// kNone; the others exist so `tools/fuzz_scenarios --break <fault>` can
/// demonstrate end-to-end that a real defect is found AND shrunk.
enum class Breakage : std::uint8_t {
  kNone,
  /// Apply link-down events by poking the topology directly, without the
  /// EvolvableInternet notification fan-out — models a forgotten
  /// protocol notification (the class of bug PR 2 fixed). Stale FIBs
  /// then blackhole traffic at quiescence.
  kSilentLinkDown,
  /// After each quiescent point, delete one IGP route from one router's
  /// FIB — models a lost route-installation write.
  kDropRoute,
  /// Disable split horizon entirely (forces the distance-vector IGP) and
  /// raise the DV infinity far beyond the RIP-sized bound: losing a prefix
  /// then counts to infinity without the small-infinity safety net, which
  /// the convergence-budget oracle flags as runaway churn.
  kSplitHorizon,
};

const char* to_string(Breakage breakage);
std::optional<Breakage> breakage_from_string(std::string_view name);

struct ScenarioPlan {
  /// Provenance only (printed in reports); the fields below are the
  /// authoritative description — a shrunk plan keeps its ancestor's seed.
  std::uint64_t seed = 0;

  net::TransitStubParams topology;
  core::IgpKind igp = core::IgpKind::kLinkState;
  anycast::InterDomainMode anycast_mode = anycast::InterDomainMode::kDefaultRoute;
  std::uint32_t k_neighbors = 2;
  vnbone::EgressMode egress_mode = vnbone::EgressMode::kProxyAdvertising;

  /// Routers deployed (in order) before the first quiescent check. The
  /// first router's domain becomes the deployment's default domain.
  std::vector<net::NodeId> initial_deployment;

  /// Churn events, applied one at a time; the invariant oracles run at
  /// the quiescent point after each.
  std::vector<core::FailureEvent> events;

  Breakage breakage = Breakage::kNone;

  /// Simulator events allowed per churn episode before the
  /// convergence-budget oracle fires (a runaway control plane — e.g.
  /// count-to-infinity — must not hang the harness).
  std::uint64_t convergence_budget = 250'000;
};

/// Well-formedness of `plan` against a topology generated from its
/// parameters: every deployment/event subject must reference an existing
/// router or link. Returns an error description, empty when valid.
std::string validate(const ScenarioPlan& plan, const net::Topology& topology);

}  // namespace evo::check
