// Reproducer minimization: given a violating ScenarioPlan, find a smaller
// plan that still trips the same oracle.
//
// Three passes run to a bounded fixpoint:
//   1. truncate — events after the violating episode never ran; drop them;
//   2. ddmin    — delta-debugging over the event schedule, then over the
//                 initial deployment (remove chunks of halving size while
//                 the violation reproduces);
//   3. prune    — shrink the topology parameters (fewer stubs, transits,
//                 routers; no chords / Waxman / multihoming), rejecting any
//                 candidate whose plan no longer validates against the
//                 smaller topology.
//
// "Reproduces" means: run_plan reports at least one violation of the same
// OracleKind as the original's first violation — the shrink never trades
// one bug for a different one.
#pragma once

#include <cstddef>

#include "check/fuzzer.h"

namespace evo::check {

struct ShrinkResult {
  /// The minimal plan found (== the input when nothing could be removed).
  ScenarioPlan plan;
  /// run_plan() of the minimal plan.
  RunReport report;
  /// Candidate executions spent.
  std::size_t runs = 0;
};

/// Minimize `plan`, whose run produced `report` (must have violations).
/// `max_runs` bounds the total candidate executions.
ShrinkResult shrink(const ScenarioPlan& plan, const RunReport& report,
                    const OracleOptions& options = {}, std::size_t max_runs = 400);

}  // namespace evo::check
