#include "check/plan.h"

namespace evo::check {

const char* to_string(Breakage breakage) {
  switch (breakage) {
    case Breakage::kNone: return "none";
    case Breakage::kSilentLinkDown: return "silent-link-down";
    case Breakage::kDropRoute: return "drop-route";
    case Breakage::kSplitHorizon: return "split-horizon";
  }
  return "?";
}

std::optional<Breakage> breakage_from_string(std::string_view name) {
  for (const auto b : {Breakage::kNone, Breakage::kSilentLinkDown,
                       Breakage::kDropRoute, Breakage::kSplitHorizon}) {
    if (name == to_string(b)) return b;
  }
  return std::nullopt;
}

std::string validate(const ScenarioPlan& plan, const net::Topology& topology) {
  for (const auto router : plan.initial_deployment) {
    if (router.value() >= topology.router_count()) {
      return "deployment references router " + std::to_string(router.value()) +
             " outside topology (" + std::to_string(topology.router_count()) +
             " routers)";
    }
  }
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const auto& event = plan.events[i];
    const bool link_event = event.kind == core::FailureKind::kLinkDown ||
                            event.kind == core::FailureKind::kLinkUp;
    const std::size_t limit =
        link_event ? topology.link_count() : topology.router_count();
    if (event.subject >= limit) {
      return "event " + std::to_string(i) + " (" + to_string(event.kind) +
             ") references subject " + std::to_string(event.subject) +
             " outside topology";
    }
  }
  return {};
}

}  // namespace evo::check
