// Invariant oracles: the paper's qualitative claims turned into checks
// that run against a converged EvolvableInternet at any quiescent point.
//
// Each oracle states a property with an explicit, sound precondition —
// asserted only when ground truth says it must hold, so the fuzzer's
// randomized topologies / deployments / failure schedules never produce
// false alarms:
//
//   kLoopFreedom        no trace ever loops or exhausts its TTL;
//   kNoBlackhole        traffic is delivered whenever the ground-truth
//                       graph (and, inter-domain, full health + policy)
//                       says a destination/member is reachable, and never
//                       over a dead link at quiescence;
//   kMemberDelivery     anycast packets terminate only at live members;
//   kIntraDomainClosest a domain with a live, intra-reachable member
//                       captures its own anycast traffic at the closest
//                       member with exact IGP cost (§3.2);
//   kIgpGroundTruth     LS/DV distances equal Dijkstra on the usable
//                       domain graph;
//   kFibEquivalence     CompiledFib lookups match the authoritative trie
//                       for every probe address;
//   kGaoRexford         every Loc-RIB AS path is loop-free, valley-free,
//                       and consistent with its learned-from class;
//   kVnBoneConnectivity the virtual topology connects active members
//                       whenever the underlay and the anycast bootstrap
//                       allow (§3.3.1 partition repair);
//   kAnycastStateBound  anycast routing state is bounded by the number of
//                       groups (§3.2 state-proportionality claim);
//   kConvergenceBudget  reconvergence completes within an event budget
//                       (emitted by the scenario runner, not here).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evolvable_internet.h"

namespace evo::check {

enum class OracleKind : std::uint8_t {
  kLoopFreedom,
  kNoBlackhole,
  kMemberDelivery,
  kIntraDomainClosest,
  kIgpGroundTruth,
  kFibEquivalence,
  kGaoRexford,
  kVnBoneConnectivity,
  kAnycastStateBound,
  kConvergenceBudget,
};

const char* to_string(OracleKind oracle);

struct Violation {
  OracleKind oracle = OracleKind::kLoopFreedom;
  /// Which quiescent point: 0 = after initial deployment converged,
  /// i >= 1 = after churn event i-1.
  std::size_t episode = 0;
  std::string detail;

  std::string describe() const;
};

struct OracleOptions {
  /// Seed for the deterministic random probe addresses / pair sampling.
  std::uint64_t probe_seed = 1;
  /// Random addresses added to the FIB-differential probe set.
  std::uint32_t random_addresses = 16;
  /// Cross-domain unicast (source, destination) pairs traced.
  std::uint32_t interdomain_pairs = 64;
};

/// Run every oracle against the (quiescent, synced) internet. Violations
/// carry episode 0; the caller stamps the real episode index.
std::vector<Violation> check_invariants(const core::EvolvableInternet& internet,
                                        const OracleOptions& options = {});

}  // namespace evo::check
