#include "check/replay.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace evo::check {

namespace {

std::string format_double(double value) {
  char buffer[64];
  // max_digits10 for double: round-trips exactly through parse.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::optional<core::IgpKind> igp_from_string(std::string_view name) {
  for (const auto kind :
       {core::IgpKind::kLinkState, core::IgpKind::kDistanceVector,
        core::IgpKind::kDistanceVectorTagged}) {
    if (name == core::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<anycast::InterDomainMode> anycast_from_string(std::string_view name) {
  for (const auto mode :
       {anycast::InterDomainMode::kGlobalRoutes,
        anycast::InterDomainMode::kDefaultRoute, anycast::InterDomainMode::kGia}) {
    if (name == anycast::to_string(mode)) return mode;
  }
  return std::nullopt;
}

std::optional<vnbone::EgressMode> egress_from_string(std::string_view name) {
  for (const auto mode :
       {vnbone::EgressMode::kExitAtIngress, vnbone::EgressMode::kOwnPathKnowledge,
        vnbone::EgressMode::kProxyAdvertising,
        vnbone::EgressMode::kEndhostAdvertised}) {
    if (name == vnbone::to_string(mode)) return mode;
  }
  return std::nullopt;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Split "key=value"; returns false when '=' is missing.
bool split_kv(std::string_view token, std::string_view& key,
              std::string_view& value) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  int base = 10;
  if (text.starts_with("0x") || text.starts_with("0X")) {
    text.remove_prefix(2);
    base = 16;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out, base);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64(text, wide) || wide > 0xFFFFFFFFULL) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
  // std::from_chars for double is unreliable across standard libraries;
  // strtod on a NUL-terminated copy is portable and exact.
  const std::string copy(text);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

}  // namespace

std::string format_replay(const ScenarioPlan& plan) {
  std::ostringstream out;
  char seed[32];
  std::snprintf(seed, sizeof(seed), "0x%" PRIx64, plan.seed);
  out << "# evo_check replay v1\n";
  out << "seed " << seed << "\n";
  out << "break " << to_string(plan.breakage) << "\n";
  out << "budget " << plan.convergence_budget << "\n";
  out << "igp " << core::to_string(plan.igp) << "\n";
  out << "anycast " << anycast::to_string(plan.anycast_mode) << "\n";
  out << "vnbone k=" << plan.k_neighbors
      << " egress=" << vnbone::to_string(plan.egress_mode) << "\n";
  char topo_seed[32];
  std::snprintf(topo_seed, sizeof(topo_seed), "0x%" PRIx64, plan.topology.seed);
  out << "topology transit=" << plan.topology.transit_domains
      << " stubs=" << plan.topology.stubs_per_transit
      << " transit_routers=" << plan.topology.transit_internal.routers
      << " transit_chord="
      << format_double(plan.topology.transit_internal.chord_probability)
      << " stub_routers=" << plan.topology.stub_internal.routers
      << " stub_chord="
      << format_double(plan.topology.stub_internal.chord_probability)
      << " peering="
      << format_double(plan.topology.extra_transit_peering_probability)
      << " multihoming=" << format_double(plan.topology.multihoming_probability)
      << " waxman=" << (plan.topology.waxman_interiors ? 1 : 0)
      << " topo_seed=" << topo_seed << "\n";
  for (const auto router : plan.initial_deployment) {
    out << "deploy " << router.value() << "\n";
  }
  for (const auto& event : plan.events) {
    out << "event " << event.at.count_micros() << " "
        << core::to_string(event.kind) << " " << event.subject << "\n";
  }
  return out.str();
}

ParsedReplay parse_replay(std::string_view text) {
  ParsedReplay parsed;
  ScenarioPlan& plan = parsed.plan;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& what) {
    parsed.error = "line " + std::to_string(line_number) + ": " + what;
  };

  std::size_t pos = 0;
  std::size_t directives = 0;
  while (pos <= text.size() && parsed.error.empty()) {
    const auto newline = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, newline == std::string_view::npos ? text.size() - pos : newline - pos);
    pos = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    ++directives;
    const std::string_view key = tokens.front();

    if (key == "seed" && tokens.size() == 2) {
      if (!parse_u64(tokens[1], plan.seed)) fail("bad seed");
    } else if (key == "break" && tokens.size() == 2) {
      if (const auto b = breakage_from_string(tokens[1])) {
        plan.breakage = *b;
      } else {
        fail("unknown breakage '" + std::string(tokens[1]) + "'");
      }
    } else if (key == "budget" && tokens.size() == 2) {
      if (!parse_u64(tokens[1], plan.convergence_budget)) fail("bad budget");
    } else if (key == "igp" && tokens.size() == 2) {
      if (const auto kind = igp_from_string(tokens[1])) {
        plan.igp = *kind;
      } else {
        fail("unknown igp '" + std::string(tokens[1]) + "'");
      }
    } else if (key == "anycast" && tokens.size() == 2) {
      if (const auto mode = anycast_from_string(tokens[1])) {
        plan.anycast_mode = *mode;
      } else {
        fail("unknown anycast mode '" + std::string(tokens[1]) + "'");
      }
    } else if (key == "vnbone") {
      for (std::size_t i = 1; i < tokens.size() && parsed.error.empty(); ++i) {
        std::string_view k, v;
        if (!split_kv(tokens[i], k, v)) {
          fail("vnbone expects key=value pairs");
        } else if (k == "k") {
          if (!parse_u32(v, plan.k_neighbors)) fail("bad k");
        } else if (k == "egress") {
          if (const auto mode = egress_from_string(v)) {
            plan.egress_mode = *mode;
          } else {
            fail("unknown egress mode '" + std::string(v) + "'");
          }
        } else {
          fail("unknown vnbone key '" + std::string(k) + "'");
        }
      }
    } else if (key == "topology") {
      auto& topo = plan.topology;
      for (std::size_t i = 1; i < tokens.size() && parsed.error.empty(); ++i) {
        std::string_view k, v;
        bool ok = split_kv(tokens[i], k, v);
        if (!ok) {
          fail("topology expects key=value pairs");
          break;
        }
        std::uint32_t waxman = 0;
        if (k == "transit") ok = parse_u32(v, topo.transit_domains);
        else if (k == "stubs") ok = parse_u32(v, topo.stubs_per_transit);
        else if (k == "transit_routers") ok = parse_u32(v, topo.transit_internal.routers);
        else if (k == "transit_chord") ok = parse_double(v, topo.transit_internal.chord_probability);
        else if (k == "stub_routers") ok = parse_u32(v, topo.stub_internal.routers);
        else if (k == "stub_chord") ok = parse_double(v, topo.stub_internal.chord_probability);
        else if (k == "peering") ok = parse_double(v, topo.extra_transit_peering_probability);
        else if (k == "multihoming") ok = parse_double(v, topo.multihoming_probability);
        else if (k == "topo_seed") ok = parse_u64(v, topo.seed);
        else if (k == "waxman") {
          ok = parse_u32(v, waxman);
          topo.waxman_interiors = waxman != 0;
        } else {
          fail("unknown topology key '" + std::string(k) + "'");
          break;
        }
        if (!ok) fail("bad topology value for '" + std::string(k) + "'");
      }
    } else if (key == "deploy" && tokens.size() == 2) {
      std::uint32_t router = 0;
      if (!parse_u32(tokens[1], router)) {
        fail("bad deploy router id");
      } else {
        plan.initial_deployment.push_back(net::NodeId{router});
      }
    } else if (key == "event" && tokens.size() == 4) {
      std::int64_t at_micros = 0;
      std::uint32_t subject = 0;
      const auto kind = core::failure_kind_from_string(tokens[2]);
      if (!parse_i64(tokens[1], at_micros)) {
        fail("bad event time");
      } else if (!kind) {
        fail("unknown event kind '" + std::string(tokens[2]) + "'");
      } else if (!parse_u32(tokens[3], subject)) {
        fail("bad event subject");
      } else {
        plan.events.push_back(
            {sim::TimePoint{at_micros}, *kind, subject});
      }
    } else {
      fail("unrecognized line starting with '" + std::string(key) + "'");
    }
  }
  if (parsed.error.empty() && directives == 0) {
    // A truncated or empty file must not silently become the default plan.
    parsed.error = "no directives found";
  }
  return parsed;
}

std::string write_replay_file(const std::string& path, const ScenarioPlan& plan) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "cannot open " + path + " for writing";
  out << format_replay(plan);
  out.close();
  return out ? std::string{} : "failed writing " + path;
}

ParsedReplay load_replay_file(const std::string& path) {
  std::ifstream in(path);
  ParsedReplay parsed;
  if (!in) {
    parsed.error = "cannot open " + path;
    return parsed;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_replay(buffer.str());
}

}  // namespace evo::check
