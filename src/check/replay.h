// Replay files: a human-readable, line-oriented serialization of
// ScenarioPlan. Shrunk reproducers are written in this format, the
// committed corpus/ is a directory of them, and `tools/fuzz_scenarios
// --replay file` runs one.
//
// Format (order fixed, '#' starts a comment):
//
//   # evo_check replay v1
//   seed 0x2a
//   break none
//   budget 250000
//   igp link-state
//   anycast default-route
//   vnbone k=2 egress=proxy-advertising
//   topology transit=2 stubs=1 transit_routers=3 transit_chord=0.25 ...
//            (one line: stub_routers, stub_chord, peering, multihoming,
//            waxman, topo_seed)
//   deploy 3
//   event 10 link-down 4
//
// Every `deploy` line is one initially deployed router; every `event` line
// is "<nominal-time-micros> <kind> <subject>". Doubles round-trip exactly
// (printed with max_digits10), so parse(format(plan)) == plan.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "check/plan.h"

namespace evo::check {

/// Serialize `plan` to replay text.
std::string format_replay(const ScenarioPlan& plan);

struct ParsedReplay {
  ScenarioPlan plan;
  /// Empty on success; otherwise "line N: what went wrong".
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Parse replay text (as produced by format_replay; unknown keys are
/// errors so corpus typos cannot silently change a scenario).
ParsedReplay parse_replay(std::string_view text);

/// Convenience file forms. load returns an error for unreadable files.
std::string write_replay_file(const std::string& path, const ScenarioPlan& plan);
ParsedReplay load_replay_file(const std::string& path);

}  // namespace evo::check
