#include "host/endhost.h"

#include <cassert>

namespace evo::host {

using net::HostId;
using net::Ipv4Addr;
using net::IpvNAddr;
using net::NodeId;
using net::Packet;

HostStack::HostStack(const net::Network& network, const vnbone::VnBone& vnbone)
    : network_(network), vnbone_(vnbone) {}

net::IpvNAddr HostStack::ipvn_address(HostId host) const {
  const auto& topo = network_.topology();
  const auto& h = topo.host(host);
  const auto& access = topo.router(h.access_router);
  if (vnbone_.domain_deployed(access.domain)) {
    // Provider-allocated native address. The host index within the access
    // router's subnet is recoverable from the low byte of its v4 address.
    const std::uint32_t host_index = (h.address.bits() & 0xFF) - 2;
    return IpvNAddr::native(vnbone_.config().version, access.domain.value(),
                            h.access_router.value(), host_index);
  }
  return IpvNAddr::self(vnbone_.config().version, h.address);
}

bool HostStack::has_native_address(HostId host) const {
  return !ipvn_address(host).is_self_address();
}

std::optional<HostId> HostStack::host_by_ipvn(IpvNAddr addr) const {
  const auto& topo = network_.topology();
  if (addr.is_self_address()) {
    return topo.host_by_address(addr.embedded_v4());
  }
  const NodeId access{addr.native_node()};
  if (access.value() >= topo.router_count()) return std::nullopt;
  const auto& router = topo.router(access);
  const Ipv4Addr v4{
      net::Topology::router_subnet(router.domain, router.index_in_domain)
          .address()
          .bits() |
      (addr.native_host() + 2)};
  return topo.host_by_address(v4);
}

Packet HostStack::make_datagram(HostId src, HostId dst,
                                std::uint64_t payload_id) const {
  const auto& dst_host = network_.topology().host(dst);
  return make_datagram_to(src, ipvn_address(dst), dst_host.address, payload_id);
}

Packet HostStack::make_datagram_to(HostId src, IpvNAddr dst, Ipv4Addr legacy_dst,
                                   std::uint64_t payload_id) const {
  const auto& src_host = network_.topology().host(src);
  net::IpvNHeader inner;
  inner.src = ipvn_address(src);
  inner.dst = dst;
  // "The destination's IPv(N-1) address could ... be carried in a separate
  // option field in the IPvN header" — always set it so egress routing
  // works for native destinations behind non-IPvN access routers too.
  inner.legacy_dst = legacy_dst;
  inner.has_legacy_dst = true;
  Packet packet =
      net::make_encapsulated(inner, src_host.address, vnbone_.anycast_address());
  packet.payload_id = payload_id;
  return packet;
}

}  // namespace evo::host
