// The endhost IPvN stack (paper §3.3.2 addressing + §3.1 encapsulation).
//
// A host's IPvN address is *native* when its access provider has deployed
// IPvN (allocated from the provider, embedding domain/access-router/host),
// and a temporary RFC3056-style *self-address* derived from its IPv(N-1)
// address otherwise ("have the endhost assign itself a unique IPvN
// address ... deriving the remaining IPvN address bits from the endhost's
// unique IPv(N-1) address"). Self-addresses are temporary: the same host
// re-labels to a native address once its provider deploys — the stack
// recomputes addresses on every query, so relabeling is automatic.
//
// Sending is uniform and requires zero host configuration: the IPvN
// datagram is encapsulated in an IPv(N-1) packet addressed to the
// deployment's anycast address; the network delivers it to the closest
// IPvN router (universal access).
#pragma once

#include <optional>

#include "net/network.h"
#include "net/packet.h"
#include "vnbone/vnbone.h"

namespace evo::host {

class HostStack {
 public:
  /// References must outlive this object.
  HostStack(const net::Network& network, const vnbone::VnBone& vnbone);

  /// The host's current IPvN address (native when its provider deployed,
  /// self-address otherwise).
  net::IpvNAddr ipvn_address(net::HostId host) const;

  /// True when `host` currently holds a provider-allocated native address.
  bool has_native_address(net::HostId host) const;

  /// Reverse lookup: the host owning `addr` under the current deployment,
  /// if any. Handles both native addresses and self-addresses.
  std::optional<net::HostId> host_by_ipvn(net::IpvNAddr addr) const;

  /// Build the canonical paper datagram from `src` to `dst`: IPvN inner
  /// header (with the legacy-destination option set) encapsulated toward
  /// the deployment's anycast address.
  net::Packet make_datagram(net::HostId src, net::HostId dst,
                            std::uint64_t payload_id = 0) const;

  /// Build a datagram to an explicit IPvN destination (for hosts
  /// addressing services rather than peer hosts).
  net::Packet make_datagram_to(net::HostId src, net::IpvNAddr dst,
                               net::Ipv4Addr legacy_dst,
                               std::uint64_t payload_id = 0) const;

 private:
  const net::Network& network_;
  const vnbone::VnBone& vnbone_;
};

}  // namespace evo::host
