#include "anycast/anycast.h"

#include <cassert>

namespace evo::anycast {

using net::DomainId;
using net::GroupId;
using net::Ipv4Addr;
using net::NodeId;
using net::Prefix;

const char* to_string(InterDomainMode mode) {
  switch (mode) {
    case InterDomainMode::kGlobalRoutes: return "global-routes";
    case InterDomainMode::kDefaultRoute: return "default-route";
    case InterDomainMode::kGia: return "gia";
  }
  return "?";
}

bool Group::has_member_in(const net::Topology& topo, DomainId domain) const {
  for (const NodeId m : members) {
    if (topo.router(m).domain == domain) return true;
  }
  return false;
}

std::vector<DomainId> Group::member_domains(const net::Topology& topo) const {
  std::vector<DomainId> out;
  for (const NodeId m : members) {
    const DomainId d = topo.router(m).domain;
    if (out.empty() || out.back() != d) {
      if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
    }
  }
  return out;
}

AnycastService::AnycastService(net::Network& network, bgp::BgpSystem* bgp,
                               std::function<igp::Igp*(net::DomainId)> igp_of)
    : network_(network), bgp_(bgp), igp_of_(std::move(igp_of)) {}

GroupId AnycastService::create_group(GroupConfig config) {
  const GroupId id{static_cast<std::uint32_t>(groups_.size())};
  Group group;
  group.id = id;
  group.config = config;

  if (config.mode == InterDomainMode::kGlobalRoutes) {
    // Dedicated non-aggregatable block: 0.0.x.y (domain slots start at 1,
    // so the 0/16 block can never collide with unicast allocations).
    assert(next_global_index_ < 0xFFFF && "global anycast block exhausted");
    group.address = Ipv4Addr{next_global_index_++};
  } else {
    // Options 2 and GIA both root the address in the default/home
    // domain's unicast space: carve a /32 out of its block, in the
    // reserved top subnet (router subnets use indices 0..254, so index
    // 255 is free).
    assert(config.default_domain.valid());
    auto& slot = next_default_slot_[config.default_domain];
    assert(slot < 254 && "default domain's anycast slots exhausted");
    const Prefix base = net::Topology::domain_prefix(config.default_domain);
    group.address = Ipv4Addr{base.address().bits() | (255u << 8) | (++slot)};
  }

  groups_.push_back(std::move(group));
  return id;
}

void AnycastService::add_member(GroupId group_id, NodeId router) {
  Group& group = mutable_group(group_id);
  if (!group.members.insert(router).second) return;

  network_.add_local_address(router, group.address);
  const DomainId domain = network_.topology().router(router).domain;
  if (igp::Igp* igp = igp_of_(domain)) {
    igp->add_anycast_member(router, group.address);
  }
  sync_bgp_origination(group, domain);
}

void AnycastService::remove_member(GroupId group_id, NodeId router) {
  Group& group = mutable_group(group_id);
  if (group.members.erase(router) == 0) return;

  network_.remove_local_address(router, group.address);
  const DomainId domain = network_.topology().router(router).domain;
  if (igp::Igp* igp = igp_of_(domain)) {
    igp->remove_anycast_member(router, group.address);
  }
  sync_bgp_origination(group, domain);
}

void AnycastService::advertise_via_peering(GroupId group_id, DomainId member_domain,
                                           DomainId neighbor) {
  Group& group = mutable_group(group_id);
  assert(group.config.mode == InterDomainMode::kDefaultRoute &&
         "peering advertisement applies to option 2 only");
  assert(network_.topology().relationship(member_domain, neighbor).has_value() &&
         "domains must be adjacent to peer-advertise");
  group.peer_advertisements[member_domain].insert(neighbor);
  sync_bgp_origination(group, member_domain);
}

void AnycastService::stop_peering_advertisement(GroupId group_id,
                                                DomainId member_domain,
                                                DomainId neighbor) {
  Group& group = mutable_group(group_id);
  auto it = group.peer_advertisements.find(member_domain);
  if (it == group.peer_advertisements.end()) return;
  it->second.erase(neighbor);
  if (it->second.empty()) group.peer_advertisements.erase(it);
  sync_bgp_origination(group, member_domain);
}

bool AnycastService::member_reachable(const Group& group, DomainId domain) const {
  const auto& topo = network_.topology();
  const auto speakers = bgp_ ? bgp_->speakers_of(domain) : std::vector<NodeId>{};
  const igp::Igp* igp = igp_of_(domain);
  for (const NodeId m : group.members) {
    const auto& router = topo.router(m);
    if (router.domain != domain || !router.up) continue;
    // A domain without borders never originates; membership alone counts.
    if (speakers.empty()) return true;
    for (const NodeId s : speakers) {
      if (!topo.router(s).up) continue;
      if (s == m || igp == nullptr || igp->distance(s, m) != net::kInfiniteCost) {
        return true;
      }
    }
  }
  return false;
}

bool AnycastService::sync_bgp_origination(const Group& group, DomainId domain,
                                          bool force) {
  if (bgp_ == nullptr) return false;
  const Prefix host_route = Prefix::host(group.address);
  bool should = member_reachable(group, domain);
  if (group.config.mode == InterDomainMode::kDefaultRoute) {
    // Option 2: no global origination — the default domain's aggregate
    // covers the address. Only member domains with peering arrangements
    // originate the /32, scoped to those neighbors and no-export.
    const auto peers = group.peer_advertisements.find(domain);
    should = should && peers != group.peer_advertisements.end() &&
             !peers->second.empty();
  }

  bool& current = originating_[{group.id.value(), domain.value()}];
  const bool flipped = current != should;
  if (!force && !flipped) return false;
  current = should;

  if (recorder_ != nullptr && flipped) {
    recorder_->instant(obs::Domain::kAnycast,
                       should ? "anycast.originate" : "anycast.withdraw",
                       group.id.value(), domain.value());
  }
  if (!should) {
    bgp_->withdraw(domain, host_route);
    return flipped;
  }
  bgp::OriginationPolicy policy;
  policy.anycast = true;
  switch (group.config.mode) {
    case InterDomainMode::kGlobalRoutes:
      // Every serving domain originates the /32 globally ("propagating
      // these routes in BGP would require a change in policy but not
      // mechanism").
      break;
    case InterDomainMode::kGia:
      // GIA: member routes propagate within the search radius; everyone
      // farther follows the home domain's aggregate.
      policy.propagation_ttl = group.config.gia_search_radius;
      break;
    case InterDomainMode::kDefaultRoute:
      policy.no_export = true;
      policy.export_scope = group.peer_advertisements.at(domain);
      break;
  }
  bgp_->originate(domain, host_route, policy);
  return flipped;
}

bool AnycastService::sync_reachability() {
  if (bgp_ == nullptr) return false;
  bool changed = false;
  for (const Group& group : groups_) {
    for (const auto& domain : network_.topology().domains()) {
      if (sync_bgp_origination(group, domain.id, /*force=*/false)) changed = true;
    }
  }
  return changed;
}

}  // namespace evo::anycast
