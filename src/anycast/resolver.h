// Anycast delivery measurement: probes and the closest-member oracle.
//
// A probe traces an actual packet (FIB walk) to the group address and
// compares the delivery against the exact closest member computed by
// multi-source Dijkstra on the physical graph — giving the stretch metric
// used by experiments E1/E2/E6.
#pragma once

#include <span>
#include <vector>

#include "anycast/anycast.h"
#include "net/graph.h"
#include "net/network.h"

namespace evo::anycast {

struct Probe {
  net::Network::TraceResult trace;
  /// The member that received the packet; invalid() when undelivered.
  net::NodeId member;
  /// Exact distance to the closest member (oracle); kInfiniteCost when the
  /// group has no reachable member.
  net::Cost optimal_cost = net::kInfiniteCost;
  net::NodeId optimal_member;
  /// trace cost / optimal cost; 1.0 when optimal; only meaningful when
  /// delivered. For optimal_cost == 0 (source is a member) stretch is 1.
  double stretch = 0.0;

  bool delivered() const { return trace.delivered(); }
};

/// The oracle for a group: multi-source shortest paths from all members
/// over the physical topology. Reusable across many probes.
class ClosestMemberOracle {
 public:
  ClosestMemberOracle(const net::Topology& topology, const Group& group);

  net::Cost distance_from(net::NodeId source) const {
    return paths_.distance_to(source);
  }
  net::NodeId member_for(net::NodeId source) const {
    return paths_.source_of[source.value()];
  }

 private:
  net::ShortestPaths paths_;
};

/// Trace a packet from `source` to the group address and grade it against
/// the oracle.
Probe probe(const net::Network& network, const Group& group, net::NodeId source,
            const ClosestMemberOracle& oracle);

/// Convenience: builds a fresh oracle (prefer the explicit-oracle overload
/// in loops).
Probe probe(const net::Network& network, const Group& group, net::NodeId source);

/// Probe the group from every source in one batch (Network::trace_batch
/// underneath, so compiled-FIB compilation is amortized across sources).
/// results[i] corresponds to sources[i] and is identical to what the
/// per-source probe() would return.
std::vector<Probe> probe_batch(const net::Network& network, const Group& group,
                               std::span<const net::NodeId> sources,
                               const ClosestMemberOracle& oracle);

/// Catchment analysis: which member serves each router in the network.
struct Catchment {
  /// member[node] = serving member (invalid if undelivered).
  std::vector<net::NodeId> member;
  /// Fraction of routers whose packet reached the oracle-closest member.
  double optimal_fraction = 0.0;
  /// Fraction of routers whose packets were delivered at all.
  double delivered_fraction = 0.0;
  /// Mean stretch across delivered probes.
  double mean_stretch = 0.0;
};

Catchment compute_catchment(const net::Network& network, const Group& group);

}  // namespace evo::anycast
