// The IP Anycast service (paper §3.1–3.2): group management, address
// allocation, membership, and the two inter-domain deployment options.
//
// A group's members are routers ("only configured hosts within the network
// infrastructure are members of an anycast group and ISPs explicitly
// control the allocation and advertisement of anycast addresses" — the
// paper's stripped-down service model). Intra-domain reachability uses the
// IGP anycast extensions; inter-domain reachability uses one of:
//
//   Option 1 (kGlobalRoutes): the group address comes from a dedicated,
//   non-aggregatable block, and every member domain originates the /32
//   into BGP. Routing state grows with the number of groups.
//
//   Option 2 (kDefaultRoute): the group address is carved from the
//   *default domain's* unicast block, so ordinary unicast routing toward
//   the default domain delivers the packet — and any member domain on the
//   way captures it via its longer-prefix internal anycast route. Member
//   domains may additionally advertise the /32 to chosen neighbors
//   ("peering", bilateral, no-export) to widen their catchment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "bgp/bgp.h"
#include "igp/igp.h"
#include "net/network.h"

namespace evo::anycast {

enum class InterDomainMode : std::uint8_t {
  kGlobalRoutes,  // option 1: non-aggregatable addresses, global routes
  kDefaultRoute,  // option 2: aggregatable addresses, default routes
  /// GIA (Katabi et al., discussed in §3.2): addresses rooted in a "home"
  /// domain; default routes toward it, plus a scoped search — member
  /// routes are visible within a bounded AS radius, trading a little
  /// routing state for proximity. "GIA requires that the home domain
  /// include at least one member of the anycast group."
  kGia,
};

const char* to_string(InterDomainMode mode);

struct GroupConfig {
  InterDomainMode mode = InterDomainMode::kDefaultRoute;
  /// For kDefaultRoute: the domain whose address space hosts the group
  /// address ("e.g., the first ISP to initiate deployment of IPvN").
  net::DomainId default_domain;
  /// The IP version this group serves (bookkeeping only).
  std::uint8_t ip_version = 0;
  /// For kGia: how many AS hops member advertisements travel before the
  /// home-domain default route takes over.
  std::uint8_t gia_search_radius = 2;
};

struct Group {
  net::GroupId id;
  GroupConfig config;
  net::Ipv4Addr address;
  std::set<net::NodeId> members;
  /// For option 2: per member-domain, the neighbor domains it advertises
  /// its anycast route to.
  std::map<net::DomainId, std::set<net::DomainId>> peer_advertisements;

  bool has_member_in(const net::Topology& topo, net::DomainId domain) const;
  std::vector<net::DomainId> member_domains(const net::Topology& topo) const;
};

class AnycastService {
 public:
  /// `network`, `bgp`, and the IGP accessor must outlive this object.
  /// `bgp` may be null for single-domain experiments.
  AnycastService(net::Network& network, bgp::BgpSystem* bgp,
                 std::function<igp::Igp*(net::DomainId)> igp_of);

  /// Create a group and allocate its address. For kDefaultRoute the
  /// address comes from the default domain's block; for kGlobalRoutes from
  /// the dedicated anycast block.
  net::GroupId create_group(GroupConfig config);

  /// Router starts terminating the group's address: IGP advertisement,
  /// local delivery, and (option 1, first member in the domain) BGP
  /// origination of the /32.
  void add_member(net::GroupId group, net::NodeId router);
  void remove_member(net::GroupId group, net::NodeId router);

  /// Option 2 widening: `member_domain` advertises its anycast route to
  /// `neighbor` ("Q can peer with Y to advertise its path for the anycast
  /// address"). The advertisement is bilateral: no-export at the receiver.
  void advertise_via_peering(net::GroupId group, net::DomainId member_domain,
                             net::DomainId neighbor);
  void stop_peering_advertisement(net::GroupId group, net::DomainId member_domain,
                                  net::DomainId neighbor);

  /// Conditional origination, the BGP "network statement" discipline: a
  /// member domain advertises a group's route only while some member is up
  /// AND IGP-reachable from one of the domain's BGP speakers. Otherwise the
  /// border would attract anycast traffic it can only default-route back
  /// out — a persistent inter-domain forwarding loop. Call after each IGP
  /// reconvergence; returns true when any origination changed (new BGP
  /// UPDATEs are then in flight, so reconverge again).
  bool sync_reachability();

  const Group& group(net::GroupId id) const { return groups_.at(id.value()); }
  std::size_t group_count() const { return groups_.size(); }

  /// The dedicated option-1 address block.
  static net::Prefix global_anycast_block() {
    return net::Prefix{net::Ipv4Addr{0}, 16};
  }

  /// Telemetry sink for origination transitions. Null by default.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  Group& mutable_group(net::GroupId id) { return groups_.at(id.value()); }

  /// (Re-)originate or withdraw the group's BGP routes for `domain`
  /// according to mode, membership, speaker reachability, and peering
  /// advertisements. With `force` false, BGP is touched only when the
  /// originate/withdraw state flips (originate() always re-advertises, so
  /// an unconditional resweep would never quiesce); membership and peering
  /// mutations pass true to push policy changes out. Returns whether the
  /// origination state flipped.
  bool sync_bgp_origination(const Group& group, net::DomainId domain,
                            bool force = true);

  /// True when `domain` can actually serve the group: some member in it is
  /// up and reachable from an up BGP speaker through the domain's IGP.
  bool member_reachable(const Group& group, net::DomainId domain) const;

  net::Network& network_;
  bgp::BgpSystem* bgp_;
  std::function<igp::Igp*(net::DomainId)> igp_of_;
  obs::Recorder* recorder_ = nullptr;
  std::vector<Group> groups_;
  /// Current origination state per (group, domain), so the reachability
  /// sweep only calls into BGP on transitions.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> originating_;
  /// Next free option-1 address and per-domain option-2 slot counters.
  std::uint32_t next_global_index_ = 1;
  std::map<net::DomainId, std::uint32_t> next_default_slot_;
};

}  // namespace evo::anycast
