#include "anycast/resolver.h"

namespace evo::anycast {

using net::Cost;
using net::NodeId;

ClosestMemberOracle::ClosestMemberOracle(const net::Topology& topology,
                                         const Group& group) {
  const net::Graph graph = topology.physical_graph();
  std::vector<NodeId> members(group.members.begin(), group.members.end());
  paths_ = net::dijkstra(graph, members);
}

Probe probe(const net::Network& network, const Group& group, NodeId source,
            const ClosestMemberOracle& oracle) {
  Probe result;
  result.trace = network.trace(source, group.address);
  if (result.trace.delivered()) {
    result.member = result.trace.delivered_at;
  }
  result.optimal_cost = oracle.distance_from(source);
  result.optimal_member = oracle.member_for(source);
  if (result.trace.delivered()) {
    if (result.optimal_cost == 0) {
      // Source is itself a member; any nonzero trace cost would be a
      // mechanism bug, flagged loudly as stretch 0 in aggregates.
      result.stretch = result.trace.cost == 0 ? 1.0 : 0.0;
    } else if (result.optimal_cost != net::kInfiniteCost) {
      result.stretch = static_cast<double>(result.trace.cost) /
                       static_cast<double>(result.optimal_cost);
    }
  }
  return result;
}

Probe probe(const net::Network& network, const Group& group, NodeId source) {
  const ClosestMemberOracle oracle(network.topology(), group);
  return probe(network, group, source, oracle);
}

Catchment compute_catchment(const net::Network& network, const Group& group) {
  Catchment catchment;
  const auto& topo = network.topology();
  catchment.member.assign(topo.router_count(), NodeId::invalid());
  if (group.members.empty()) return catchment;

  const ClosestMemberOracle oracle(topo, group);
  std::size_t delivered = 0;
  std::size_t optimal = 0;
  double stretch_sum = 0.0;
  for (const auto& router : topo.routers()) {
    const Probe p = probe(network, group, router.id, oracle);
    if (!p.delivered()) continue;
    ++delivered;
    catchment.member[router.id.value()] = p.member;
    if (p.member == p.optimal_member ||
        p.trace.cost == p.optimal_cost) {
      ++optimal;
    }
    stretch_sum += p.stretch;
  }
  const double n = static_cast<double>(topo.router_count());
  catchment.delivered_fraction = n == 0 ? 0.0 : static_cast<double>(delivered) / n;
  catchment.optimal_fraction =
      delivered == 0 ? 0.0 : static_cast<double>(optimal) / static_cast<double>(delivered);
  catchment.mean_stretch =
      delivered == 0 ? 0.0 : stretch_sum / static_cast<double>(delivered);
  return catchment;
}

}  // namespace evo::anycast
