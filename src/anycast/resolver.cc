#include "anycast/resolver.h"

namespace evo::anycast {

using net::Cost;
using net::NodeId;

ClosestMemberOracle::ClosestMemberOracle(const net::Topology& topology,
                                         const Group& group) {
  const net::Graph graph = topology.physical_graph();
  std::vector<NodeId> members(group.members.begin(), group.members.end());
  paths_ = net::dijkstra(graph, members);
}

namespace {

/// Fill in member/optimal/stretch for a probe whose trace is already set.
void grade(Probe& result, const ClosestMemberOracle& oracle, NodeId source) {
  if (result.trace.delivered()) {
    result.member = result.trace.delivered_at;
  }
  result.optimal_cost = oracle.distance_from(source);
  result.optimal_member = oracle.member_for(source);
  if (result.trace.delivered()) {
    if (result.optimal_cost == 0) {
      // Source is itself a member; any nonzero trace cost would be a
      // mechanism bug, flagged loudly as stretch 0 in aggregates.
      result.stretch = result.trace.cost == 0 ? 1.0 : 0.0;
    } else if (result.optimal_cost != net::kInfiniteCost) {
      result.stretch = static_cast<double>(result.trace.cost) /
                       static_cast<double>(result.optimal_cost);
    }
  }
}

}  // namespace

Probe probe(const net::Network& network, const Group& group, NodeId source,
            const ClosestMemberOracle& oracle) {
  Probe result;
  result.trace = network.trace(source, group.address);
  grade(result, oracle, source);
  return result;
}

std::vector<Probe> probe_batch(const net::Network& network, const Group& group,
                               std::span<const NodeId> sources,
                               const ClosestMemberOracle& oracle) {
  std::vector<net::Network::ProbeSpec> specs;
  specs.reserve(sources.size());
  for (const NodeId source : sources) {
    specs.push_back({.from = source, .dst = group.address});
  }
  auto traces = network.trace_batch(specs);
  std::vector<Probe> results(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    results[i].trace = std::move(traces[i]);
    grade(results[i], oracle, sources[i]);
  }
  return results;
}

Probe probe(const net::Network& network, const Group& group, NodeId source) {
  const ClosestMemberOracle oracle(network.topology(), group);
  return probe(network, group, source, oracle);
}

Catchment compute_catchment(const net::Network& network, const Group& group) {
  Catchment catchment;
  const auto& topo = network.topology();
  catchment.member.assign(topo.router_count(), NodeId::invalid());
  if (group.members.empty()) return catchment;

  const ClosestMemberOracle oracle(topo, group);
  std::vector<net::NodeId> sources;
  sources.reserve(topo.router_count());
  for (const auto& router : topo.routers()) sources.push_back(router.id);

  std::size_t delivered = 0;
  std::size_t optimal = 0;
  double stretch_sum = 0.0;
  const auto probes = probe_batch(network, group, sources, oracle);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Probe& p = probes[i];
    if (!p.delivered()) continue;
    ++delivered;
    catchment.member[sources[i].value()] = p.member;
    if (p.member == p.optimal_member ||
        p.trace.cost == p.optimal_cost) {
      ++optimal;
    }
    stretch_sum += p.stretch;
  }
  const double n = static_cast<double>(topo.router_count());
  catchment.delivered_fraction = n == 0 ? 0.0 : static_cast<double>(delivered) / n;
  catchment.optimal_fraction =
      delivered == 0 ? 0.0 : static_cast<double>(optimal) / static_cast<double>(delivered);
  catchment.mean_stretch =
      delivered == 0 ? 0.0 : stretch_sum / static_cast<double>(delivered);
  return catchment;
}

}  // namespace evo::anycast
