#include "igp/link_state.h"

#include <algorithm>
#include <cassert>

#include "sim/logging.h"

namespace evo::igp {

using net::Cost;
using net::DomainId;
using net::FibEntry;
using net::Ipv4Addr;
using net::LinkId;
using net::NodeId;
using net::Prefix;
using net::RouteOrigin;

LinkStateIgp::LinkStateIgp(sim::Simulator& simulator, net::Network& network,
                           DomainId domain, LinkStateConfig config)
    : simulator_(simulator), network_(network), domain_(domain), config_(config) {
  for (const NodeId node : network_.topology().domain(domain_).routers) {
    states_.emplace(node.value(), RouterState{});
  }
}

bool LinkStateIgp::in_domain(NodeId node) const {
  return network_.topology().router(node).domain == domain_;
}

LinkStateIgp::RouterState& LinkStateIgp::state(NodeId node) {
  auto it = states_.find(node.value());
  assert(it != states_.end() && "router not in this IGP's domain");
  return it->second;
}

const LinkStateIgp::RouterState& LinkStateIgp::state(NodeId node) const {
  auto it = states_.find(node.value());
  assert(it != states_.end() && "router not in this IGP's domain");
  return it->second;
}

void LinkStateIgp::start() {
  started_ = true;
  for (const NodeId node : network_.topology().domain(domain_).routers) {
    originate(node);
  }
}

void LinkStateIgp::add_anycast_member(NodeId router, Ipv4Addr anycast) {
  assert(in_domain(router));
  auto& st = state(router);
  if (!st.memberships.insert(anycast).second) return;
  if (started_) originate(router);
}

void LinkStateIgp::remove_anycast_member(NodeId router, Ipv4Addr anycast) {
  assert(in_domain(router));
  auto& st = state(router);
  if (st.memberships.erase(anycast) == 0) return;
  if (started_) originate(router);
}

std::vector<NodeId> LinkStateIgp::discovered_members(NodeId viewpoint,
                                                     Ipv4Addr anycast) const {
  const auto& st = state(viewpoint);
  std::vector<NodeId> members;
  for (const auto& [origin, lsa] : st.lsdb) {
    if (std::find(lsa.anycast_addresses.begin(), lsa.anycast_addresses.end(),
                  anycast) != lsa.anycast_addresses.end()) {
      members.push_back(origin);
    }
  }
  return members;  // lsdb is an ordered map => sorted by NodeId
}

Cost LinkStateIgp::distance(NodeId from, NodeId to) const {
  const auto& st = state(from);
  if (!st.spf_valid || to.value() >= st.spf.distance.size()) return net::kInfiniteCost;
  return st.spf.distance_to(to);
}

NodeId LinkStateIgp::next_hop(NodeId from, NodeId to) const {
  const auto& st = state(from);
  if (!st.spf_valid || to.value() >= st.spf.distance.size() || !st.spf.reachable(to)) {
    return NodeId::invalid();
  }
  const auto path = st.spf.path_to(to);
  return path.size() >= 2 ? path[1] : from;
}

void LinkStateIgp::on_link_change(LinkId link) {
  const auto& l = network_.topology().link(link);
  if (l.interdomain) return;
  if (network_.topology().router(l.a).domain != domain_) return;
  if (started_) {
    originate(l.a);
    originate(l.b);
    if (network_.topology().link_usable(link)) {
      // Adjacency came up: exchange full databases across it (OSPF DB
      // exchange). Without this, third-party LSAs that changed on the far
      // side of a partition are never re-flooded — both sides already hold
      // a (stale) copy whose sequence number blocks normal flooding.
      sync_database(l.a, l.b, link);
      sync_database(l.b, l.a, link);
    }
  }
}

void LinkStateIgp::sync_database(NodeId from, NodeId to, LinkId via) {
  const auto& st = state(from);
  const auto& topo = network_.topology();
  const auto latency = topo.link(via).latency;
  for (const auto& [origin, lsa] : st.lsdb) {
    ++messages_sent_;
    simulator_.schedule_after(latency, [this, to, lsa = lsa, via] {
      if (network_.topology().link_usable(via)) {
        receive(to, lsa, via);
      }
    });
  }
}

void LinkStateIgp::originate(NodeId router) {
  auto& st = state(router);
  Lsa lsa;
  lsa.origin = router;
  lsa.sequence = ++st.own_sequence;
  const auto& topo = network_.topology();
  for (const LinkId link_id : topo.router(router).links) {
    const auto& link = topo.link(link_id);
    if (link.interdomain || !topo.link_usable(link_id)) continue;
    lsa.adjacencies.push_back(
        LsaAdjacency{link.other_end(router), link.cost, link_id});
  }
  lsa.anycast_addresses.assign(st.memberships.begin(), st.memberships.end());

  // Self-install and flood everywhere.
  st.lsdb[router] = lsa;
  schedule_spf(router);
  flood(router, lsa, LinkId::invalid());
}

void LinkStateIgp::receive(NodeId router, Lsa lsa, LinkId via_link) {
  auto& st = state(router);
  auto it = st.lsdb.find(lsa.origin);
  if (it != st.lsdb.end() && it->second.sequence >= lsa.sequence) {
    return;  // stale or duplicate
  }
  st.lsdb[lsa.origin] = lsa;
  schedule_spf(router);
  flood(router, lsa, via_link);
}

void LinkStateIgp::flood(NodeId router, const Lsa& lsa, LinkId except) {
  const auto& topo = network_.topology();
  for (const LinkId link_id : topo.router(router).links) {
    if (link_id == except) continue;
    const auto& link = topo.link(link_id);
    if (link.interdomain || !topo.link_usable(link_id)) continue;
    const NodeId neighbor = link.other_end(router);
    ++messages_sent_;
    simulator_.schedule_after(link.latency, [this, neighbor, lsa, link_id] {
      // Re-check at delivery: the link (or an endpoint) may have failed
      // in flight.
      if (network_.topology().link_usable(link_id)) {
        receive(neighbor, lsa, link_id);
      }
    });
  }
}

void LinkStateIgp::schedule_spf(NodeId router) {
  auto& st = state(router);
  if (st.spf_pending) return;
  st.spf_pending = true;
  simulator_.schedule_after(config_.spf_delay, [this, router] { run_spf(router); });
}

net::Graph LinkStateIgp::lsdb_graph(const RouterState& st) const {
  net::Graph graph(network_.topology().router_count());
  // A directed edge is used only when both endpoints report it (two-way
  // connectivity check), matching OSPF behavior on half-broken links.
  for (const auto& [origin, lsa] : st.lsdb) {
    for (const auto& adj : lsa.adjacencies) {
      const auto other = st.lsdb.find(adj.neighbor);
      if (other == st.lsdb.end()) continue;
      const bool reciprocal =
          std::any_of(other->second.adjacencies.begin(),
                      other->second.adjacencies.end(),
                      [&](const LsaAdjacency& back) { return back.neighbor == origin; });
      if (reciprocal) graph.add_edge(origin, adj.neighbor, adj.cost, adj.link);
    }
  }
  return graph;
}

void LinkStateIgp::run_spf(NodeId router) {
  auto& st = state(router);
  st.spf_pending = false;
  ++spf_runs_;
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kIgp, "igp.ls.spf", domain_.value(),
                       router.value());
  }

  const net::Graph graph = lsdb_graph(st);
  st.spf = net::dijkstra(graph, router);
  st.spf_valid = true;

  // Accumulate the full IGP+anycast table, then swap it in with one
  // replace_origins call: the Fib bumps its route epoch (invalidating the
  // router's compiled forwarding table) only when this SPF run actually
  // changed something.
  std::vector<FibEntry> routes;
  const auto& topo = network_.topology();

  // Unicast routes to every other router in the LSDB.
  for (const auto& [origin, lsa] : st.lsdb) {
    if (origin == router || !st.spf.reachable(origin)) continue;
    const auto path = st.spf.path_to(origin);
    assert(path.size() >= 2);
    const NodeId hop = path[1];
    const LinkId out = [&] {
      for (const net::Graph::Edge& e : graph.neighbors(router)) {
        if (e.to == hop) return e.link;
      }
      return LinkId::invalid();
    }();
    const auto& r = topo.router(origin);
    const Cost metric = st.spf.distance_to(origin);
    routes.push_back(
        FibEntry{Prefix::host(r.loopback), hop, out, RouteOrigin::kIgp, metric});
    routes.push_back(FibEntry{net::Topology::router_subnet(r.domain, r.index_in_domain),
                              hop, out, RouteOrigin::kIgp, metric});
  }

  // Anycast routes: pick the closest member (deterministic tiebreak on
  // NodeId). The member's high-cost stub link contributes equally for all
  // members, so it is added for fidelity but cannot change the winner.
  std::map<Ipv4Addr, std::pair<Cost, NodeId>> best;
  for (const auto& [origin, lsa] : st.lsdb) {
    if (!st.spf.reachable(origin)) continue;
    for (const Ipv4Addr addr : lsa.anycast_addresses) {
      const Cost total = st.spf.distance_to(origin) + config_.anycast_stub_cost;
      auto [it, inserted] = best.emplace(addr, std::make_pair(total, origin));
      if (!inserted && (total < it->second.first ||
                        (total == it->second.first && origin < it->second.second))) {
        it->second = {total, origin};
      }
    }
  }
  for (const auto& [addr, winner] : best) {
    const auto& [metric, member] = winner;
    if (member == router) continue;  // delivered locally; no route needed
    const auto path = st.spf.path_to(member);
    assert(path.size() >= 2);
    const NodeId hop = path[1];
    const LinkId out = [&] {
      for (const net::Graph::Edge& e : graph.neighbors(router)) {
        if (e.to == hop) return e.link;
      }
      return LinkId::invalid();
    }();
    routes.push_back(
        FibEntry{Prefix::host(addr), hop, out, RouteOrigin::kAnycast, metric});
  }

  network_.fib(router).replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast},
                                       routes);
}

}  // namespace evo::igp
