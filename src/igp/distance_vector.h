// Distance-vector IGP (RIP-shaped) with the paper's anycast extension.
//
// Members advertise their anycast address at distance zero (§3.2);
// standard Bellman-Ford dynamics then give every router a next hop to its
// closest member. Plain distance-vector cannot enumerate members ("unlike
// link-state routing, an IPvN router cannot easily identify other IPvN
// routers"); the optional tagged mode implements the paper's alternative
// of listing anycast addresses on the router's own unicast advertisement,
// restoring discovery.
//
// Updates are triggered (debounced); on route loss a router issues a
// RIP-style full-table request to its neighbors so triggered-only
// operation still converges. Periodic refreshes are optional.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "igp/igp.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace evo::igp {

struct DistanceVectorConfig {
  /// Metric treated as unreachable (count-to-infinity bound).
  net::Cost infinity = 256;
  /// Debounce between a table change and the triggered update it sends.
  sim::Duration triggered_delay = sim::Duration::millis(10);
  /// Period for full-table refreshes; zero disables them (triggered-only).
  sim::Duration periodic_interval = sim::Duration::zero();
  /// Split horizon with poisoned reverse.
  bool poisoned_reverse = true;
  /// Fault-injection backdoor: when false, routes are advertised back to
  /// the neighbor they were learned from at their real metric (no split
  /// horizon at all, overriding poisoned_reverse), which re-enables the
  /// classic count-to-infinity pathology on route loss. Exists so the fuzz
  /// harness can prove its convergence-budget oracle catches exactly that.
  bool split_horizon = true;
  /// The paper's "explicitly listing its anycast address" variant: the
  /// router's own loopback advertisement carries its anycast memberships,
  /// making member discovery possible over distance-vector.
  bool tagged_advertisements = false;
};

class DistanceVectorIgp final : public Igp {
 public:
  DistanceVectorIgp(sim::Simulator& simulator, net::Network& network,
                    net::DomainId domain, DistanceVectorConfig config = {});

  net::DomainId domain() const override { return domain_; }
  void start() override;
  void add_anycast_member(net::NodeId router, net::Ipv4Addr anycast) override;
  void remove_anycast_member(net::NodeId router, net::Ipv4Addr anycast) override;
  bool supports_member_discovery() const override {
    return config_.tagged_advertisements;
  }
  std::vector<net::NodeId> discovered_members(net::NodeId viewpoint,
                                              net::Ipv4Addr anycast) const override;
  net::Cost distance(net::NodeId from, net::NodeId to) const override;
  net::NodeId next_hop(net::NodeId from, net::NodeId to) const override;
  void on_link_change(net::LinkId link) override;
  std::uint64_t messages_sent() const override { return messages_sent_; }

 private:
  struct Route {
    net::Cost metric = 0;
    net::NodeId next_hop;        // invalid() => self-originated
    net::LinkId out_link;
    bool anycast = false;
    std::set<net::Ipv4Addr> tags;  // anycast memberships of the origin
    bool changed = false;          // pending inclusion in a triggered update
  };

  struct AdvertisedRoute {
    net::Prefix prefix;
    net::Cost metric;
    bool anycast;
    std::set<net::Ipv4Addr> tags;
  };

  struct RouterState {
    std::map<net::Prefix, Route> table;
    std::set<net::Ipv4Addr> memberships;
    bool update_pending = false;
  };

  RouterState& state(net::NodeId node);
  const RouterState& state(net::NodeId node) const;

  /// Install self-originated routes (loopback, subnet, memberships).
  void originate_local(net::NodeId router);

  /// Send (changed-only or full) routes to every up neighbor, honoring
  /// split horizon / poisoned reverse; clears changed flags.
  void send_update(net::NodeId router, bool full);

  /// Send a full-table update to one neighbor (response to a request or a
  /// link-up event).
  void send_full_to(net::NodeId router, net::NodeId neighbor, net::LinkId link);

  /// Process an update arriving at `router` from `from` via `link`.
  void receive_update(net::NodeId router, net::NodeId from, net::LinkId link,
                      std::vector<AdvertisedRoute> routes);

  /// RIP-style request: ask all neighbors for their full tables.
  void request_full_tables(net::NodeId router);

  void schedule_triggered(net::NodeId router);
  void schedule_periodic(net::NodeId router);

  /// Re-sync `router`'s FIB from its DV table.
  void install_fib(net::NodeId router);

  /// Routes to advertise from `router` toward `neighbor`.
  std::vector<AdvertisedRoute> routes_for(const RouterState& st, net::NodeId neighbor,
                                          bool full) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  net::DomainId domain_;
  DistanceVectorConfig config_;
  std::unordered_map<std::uint32_t, RouterState> states_;
  std::uint64_t messages_sent_ = 0;
  bool started_ = false;
};

}  // namespace evo::igp
