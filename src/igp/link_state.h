// Link-state IGP (OSPF-shaped) with the paper's anycast extension.
//
// Every router originates an LSA describing its intra-domain adjacencies,
// its own addresses, and — when it is an anycast member — a high-cost stub
// "link" to each anycast address it terminates. LSAs flood hop-by-hop with
// link latency; each router runs SPF over its link-state database
// (debounced) and installs routes into its FIB.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "igp/igp.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace evo::igp {

struct LinkStateConfig {
  /// Cost of the virtual stub link to an anycast address. "This high cost
  /// is necessary to prevent routers from attempting to route through an
  /// anycast address" (§3.2). It is added symmetrically to every member,
  /// so it never changes which member is closest.
  net::Cost anycast_stub_cost = 1000;
  /// Debounce between an LSDB change and the SPF run it triggers.
  sim::Duration spf_delay = sim::Duration::millis(10);
};

class LinkStateIgp final : public Igp {
 public:
  /// `network` and `simulator` must outlive this object.
  LinkStateIgp(sim::Simulator& simulator, net::Network& network,
               net::DomainId domain, LinkStateConfig config = {});

  net::DomainId domain() const override { return domain_; }
  void start() override;
  void add_anycast_member(net::NodeId router, net::Ipv4Addr anycast) override;
  void remove_anycast_member(net::NodeId router, net::Ipv4Addr anycast) override;
  bool supports_member_discovery() const override { return true; }
  std::vector<net::NodeId> discovered_members(net::NodeId viewpoint,
                                              net::Ipv4Addr anycast) const override;
  net::Cost distance(net::NodeId from, net::NodeId to) const override;
  net::NodeId next_hop(net::NodeId from, net::NodeId to) const override;
  void on_link_change(net::LinkId link) override;
  std::uint64_t messages_sent() const override { return messages_sent_; }

  /// Number of SPF runs executed (for overhead experiments).
  std::uint64_t spf_runs() const { return spf_runs_; }

 private:
  struct LsaAdjacency {
    net::NodeId neighbor;
    net::Cost cost;
    net::LinkId link;
  };

  struct Lsa {
    net::NodeId origin;
    std::uint64_t sequence = 0;
    std::vector<LsaAdjacency> adjacencies;
    std::vector<net::Ipv4Addr> anycast_addresses;  // the high-cost stubs
  };

  struct RouterState {
    std::map<net::NodeId, Lsa> lsdb;
    std::set<net::Ipv4Addr> memberships;  // anycast addresses terminated here
    std::uint64_t own_sequence = 0;
    bool spf_pending = false;
    // Converged SPF snapshot for distance()/next_hop() queries.
    net::ShortestPaths spf;
    bool spf_valid = false;
  };

  bool in_domain(net::NodeId node) const;
  RouterState& state(net::NodeId node);
  const RouterState& state(net::NodeId node) const;

  /// Build and flood a fresh LSA for `router`.
  void originate(net::NodeId router);

  /// Process an LSA arriving at `router` via `via_link`.
  void receive(net::NodeId router, Lsa lsa, net::LinkId via_link);

  /// Flood `lsa` from `router` on all usable intra-domain links except
  /// `except` (the link it arrived on).
  void flood(net::NodeId router, const Lsa& lsa, net::LinkId except);

  /// Send `from`'s entire LSDB to `to` over `via` (OSPF-style database
  /// exchange when an adjacency comes up); re-floods whatever is newer.
  void sync_database(net::NodeId from, net::NodeId to, net::LinkId via);

  void schedule_spf(net::NodeId router);
  void run_spf(net::NodeId router);

  /// Graph as seen in `router`'s LSDB.
  net::Graph lsdb_graph(const RouterState& st) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  net::DomainId domain_;
  LinkStateConfig config_;
  std::unordered_map<std::uint32_t, RouterState> states_;  // by NodeId value
  std::uint64_t messages_sent_ = 0;
  std::uint64_t spf_runs_ = 0;
  bool started_ = false;
};

}  // namespace evo::igp
