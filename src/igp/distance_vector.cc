#include "igp/distance_vector.h"

#include <algorithm>
#include <cassert>

namespace evo::igp {

using net::Cost;
using net::DomainId;
using net::FibEntry;
using net::Ipv4Addr;
using net::LinkId;
using net::NodeId;
using net::Prefix;
using net::RouteOrigin;

DistanceVectorIgp::DistanceVectorIgp(sim::Simulator& simulator, net::Network& network,
                                     DomainId domain, DistanceVectorConfig config)
    : simulator_(simulator), network_(network), domain_(domain), config_(config) {
  for (const NodeId node : network_.topology().domain(domain_).routers) {
    states_.emplace(node.value(), RouterState{});
  }
}

DistanceVectorIgp::RouterState& DistanceVectorIgp::state(NodeId node) {
  auto it = states_.find(node.value());
  assert(it != states_.end() && "router not in this IGP's domain");
  return it->second;
}

const DistanceVectorIgp::RouterState& DistanceVectorIgp::state(NodeId node) const {
  auto it = states_.find(node.value());
  assert(it != states_.end() && "router not in this IGP's domain");
  return it->second;
}

void DistanceVectorIgp::start() {
  started_ = true;
  for (const NodeId node : network_.topology().domain(domain_).routers) {
    originate_local(node);
    schedule_triggered(node);
    if (config_.periodic_interval > sim::Duration::zero()) schedule_periodic(node);
  }
}

void DistanceVectorIgp::originate_local(NodeId router) {
  auto& st = state(router);
  const auto& r = network_.topology().router(router);
  auto self_route = [&](Prefix p, bool anycast) {
    Route route;
    route.metric = 0;
    route.next_hop = NodeId::invalid();
    route.out_link = LinkId::invalid();
    route.anycast = anycast;
    route.changed = true;
    if (config_.tagged_advertisements && p == Prefix::host(r.loopback)) {
      route.tags = st.memberships;
    }
    st.table[p] = route;
  };
  self_route(Prefix::host(r.loopback), false);
  self_route(net::Topology::router_subnet(r.domain, r.index_in_domain), false);
  for (const Ipv4Addr addr : st.memberships) {
    self_route(Prefix::host(addr), true);
  }
  install_fib(router);
}

void DistanceVectorIgp::add_anycast_member(NodeId router, Ipv4Addr anycast) {
  auto& st = state(router);
  if (!st.memberships.insert(anycast).second) return;
  if (started_) {
    originate_local(router);
    schedule_triggered(router);
  }
}

void DistanceVectorIgp::remove_anycast_member(NodeId router, Ipv4Addr anycast) {
  auto& st = state(router);
  if (st.memberships.erase(anycast) == 0) return;
  if (!started_) return;
  // Poison our own zero-distance advertisement; an alternative member (if
  // any) will be re-learned from neighbors after the request below.
  auto it = st.table.find(Prefix::host(anycast));
  if (it != st.table.end() && !it->second.next_hop.valid()) {
    it->second.metric = config_.infinity;
    it->second.changed = true;
  }
  // Refresh self-originated routes (drops the membership from the loopback
  // tags); the poisoned anycast entry above is left in place.
  originate_local(router);
  schedule_triggered(router);
  request_full_tables(router);
}

std::vector<NodeId> DistanceVectorIgp::discovered_members(NodeId viewpoint,
                                                          Ipv4Addr anycast) const {
  if (!config_.tagged_advertisements) return {};
  const auto& st = state(viewpoint);
  std::vector<NodeId> members;
  for (const auto& [prefix, route] : st.table) {
    if (route.metric >= config_.infinity) continue;
    if (!route.tags.contains(anycast)) continue;
    if (prefix.length() != 32) continue;
    const auto node = network_.topology().router_by_loopback(prefix.address());
    if (node) members.push_back(*node);
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  return members;
}

Cost DistanceVectorIgp::distance(NodeId from, NodeId to) const {
  if (from == to) return 0;
  const auto& st = state(from);
  const auto it = st.table.find(Prefix::host(network_.topology().router(to).loopback));
  if (it == st.table.end() || it->second.metric >= config_.infinity) {
    return net::kInfiniteCost;
  }
  return it->second.metric;
}

NodeId DistanceVectorIgp::next_hop(NodeId from, NodeId to) const {
  if (from == to) return from;
  const auto& st = state(from);
  const auto it = st.table.find(Prefix::host(network_.topology().router(to).loopback));
  if (it == st.table.end() || it->second.metric >= config_.infinity) {
    return NodeId::invalid();
  }
  return it->second.next_hop;
}

void DistanceVectorIgp::on_link_change(LinkId link_id) {
  const auto& link = network_.topology().link(link_id);
  if (link.interdomain) return;
  if (network_.topology().router(link.a).domain != domain_) return;
  if (!started_) return;

  if (!network_.topology().link_usable(link_id)) {
    // Poison every route that used the dead link, then ask the remaining
    // neighbors for their tables so alternatives are relearned promptly.
    for (const NodeId end : {link.a, link.b}) {
      auto& st = state(end);
      bool lost_any = false;
      for (auto& [prefix, route] : st.table) {
        if (route.out_link == link_id && route.metric < config_.infinity) {
          route.metric = config_.infinity;
          route.changed = true;
          lost_any = true;
        }
      }
      if (lost_any) {
        install_fib(end);
        schedule_triggered(end);
        request_full_tables(end);
      }
    }
  } else {
    // New adjacency: exchange full tables across it.
    send_full_to(link.a, link.b, link_id);
    send_full_to(link.b, link.a, link_id);
  }
}

std::vector<DistanceVectorIgp::AdvertisedRoute> DistanceVectorIgp::routes_for(
    const RouterState& st, NodeId neighbor, bool full) const {
  std::vector<AdvertisedRoute> out;
  for (const auto& [prefix, route] : st.table) {
    if (!full && !route.changed) continue;
    Cost metric = route.metric;
    if (route.next_hop == neighbor && config_.split_horizon) {
      if (!config_.poisoned_reverse) continue;  // plain split horizon
      metric = config_.infinity;                // poisoned reverse
    }
    out.push_back(AdvertisedRoute{prefix, metric, route.anycast, route.tags});
  }
  return out;
}

void DistanceVectorIgp::send_update(NodeId router, bool full) {
  auto& st = state(router);
  const auto& topo = network_.topology();
  if (recorder_ != nullptr) {
    recorder_->instant(obs::Domain::kIgp,
                       full ? "igp.dv.full_update" : "igp.dv.update",
                       domain_.value(), router.value());
  }
  for (const LinkId link_id : topo.router(router).links) {
    const auto& link = topo.link(link_id);
    if (link.interdomain || !topo.link_usable(link_id)) continue;
    const NodeId neighbor = link.other_end(router);
    auto routes = routes_for(st, neighbor, full);
    if (routes.empty()) continue;
    ++messages_sent_;
    simulator_.schedule_after(
        link.latency, [this, neighbor, router, link_id, routes = std::move(routes)] {
          if (network_.topology().link_usable(link_id)) {
            receive_update(neighbor, router, link_id, routes);
          }
        });
  }
  for (auto& [prefix, route] : st.table) route.changed = false;
}

void DistanceVectorIgp::send_full_to(NodeId router, NodeId neighbor, LinkId link_id) {
  auto routes = routes_for(state(router), neighbor, /*full=*/true);
  if (routes.empty()) return;
  ++messages_sent_;
  const auto& link = network_.topology().link(link_id);
  simulator_.schedule_after(
      link.latency, [this, neighbor, router, link_id, routes = std::move(routes)] {
        if (network_.topology().link_usable(link_id)) {
          receive_update(neighbor, router, link_id, routes);
        }
      });
}

void DistanceVectorIgp::receive_update(NodeId router, NodeId from, LinkId link_id,
                                       std::vector<AdvertisedRoute> routes) {
  auto& st = state(router);
  const auto& link = network_.topology().link(link_id);
  bool changed_any = false;

  for (const auto& adv : routes) {
    const Cost offered = adv.metric >= config_.infinity
                             ? config_.infinity
                             : std::min<Cost>(adv.metric + link.cost, config_.infinity);
    auto it = st.table.find(adv.prefix);

    if (it == st.table.end()) {
      if (offered >= config_.infinity) continue;
      Route route;
      route.metric = offered;
      route.next_hop = from;
      route.out_link = link_id;
      route.anycast = adv.anycast;
      route.tags = adv.tags;
      route.changed = true;
      st.table.emplace(adv.prefix, route);
      changed_any = true;
      continue;
    }

    Route& current = it->second;
    if (!current.next_hop.valid() && current.metric == 0) {
      continue;  // never displace a live self-originated route
    }
    const bool via_sender = current.next_hop == from;
    const bool better = offered < current.metric ||
                        (offered == current.metric && current.metric < config_.infinity &&
                         !via_sender && from < current.next_hop);
    if (via_sender) {
      // Must accept whatever the current next hop now says (incl. poison).
      if (current.metric != offered || current.tags != adv.tags) {
        const bool worsened = offered > current.metric;
        current.metric = offered;
        current.tags = adv.tags;
        current.changed = true;
        changed_any = true;
        if (offered >= config_.infinity || worsened) {
          // Lost our path — or it got worse: an undisturbed neighbor may
          // hold a better route it will never re-advertise unprompted
          // (triggered-only operation), so solicit full tables. Metrics
          // strictly increase along worsening chains, so the re-request
          // cascade terminates.
          request_full_tables(router);
        }
      }
    } else if (better) {
      current.metric = offered;
      current.next_hop = from;
      current.out_link = link_id;
      current.tags = adv.tags;
      current.changed = true;
      changed_any = true;
    }
  }

  if (changed_any) {
    install_fib(router);
    schedule_triggered(router);
  }
}

void DistanceVectorIgp::request_full_tables(NodeId router) {
  const auto& topo = network_.topology();
  for (const LinkId link_id : topo.router(router).links) {
    const auto& link = topo.link(link_id);
    if (link.interdomain || !topo.link_usable(link_id)) continue;
    const NodeId neighbor = link.other_end(router);
    ++messages_sent_;
    // Round trip: the request travels one latency, the response another.
    simulator_.schedule_after(link.latency, [this, neighbor, router, link_id] {
      if (network_.topology().link_usable(link_id)) {
        send_full_to(neighbor, router, link_id);
      }
    });
  }
}

void DistanceVectorIgp::schedule_triggered(NodeId router) {
  auto& st = state(router);
  if (st.update_pending) return;
  st.update_pending = true;
  simulator_.schedule_after(config_.triggered_delay, [this, router] {
    state(router).update_pending = false;
    send_update(router, /*full=*/false);
  });
}

void DistanceVectorIgp::schedule_periodic(NodeId router) {
  simulator_.schedule_after(config_.periodic_interval, [this, router] {
    send_update(router, /*full=*/true);
    schedule_periodic(router);
  });
}

void DistanceVectorIgp::install_fib(NodeId router) {
  // Swap the whole DV-derived table in atomically; the Fib bumps its route
  // epoch (invalidating the router's compiled forwarding table) only when
  // this update actually changed a route.
  std::vector<FibEntry> routes;
  const auto& st = state(router);
  for (const auto& [prefix, route] : st.table) {
    if (route.metric >= config_.infinity) continue;
    if (!route.next_hop.valid()) continue;  // connected routes already present
    routes.push_back(
        FibEntry{prefix, route.next_hop, route.out_link,
                 route.anycast ? RouteOrigin::kAnycast : RouteOrigin::kIgp,
                 route.metric});
  }
  network_.fib(router).replace_origins({RouteOrigin::kIgp, RouteOrigin::kAnycast},
                                       routes);
}

}  // namespace evo::igp
