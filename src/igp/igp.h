// Intra-domain routing protocol interface.
//
// One Igp instance runs per ISP domain. Both implementations (link-state,
// distance-vector) support the paper's anycast extensions (§3.2):
//   - link-state: members "advertise a high-cost 'link' to the
//     corresponding anycast address";
//   - distance-vector: members "advertise a distance of zero to [their]
//     anycast address";
//   - the tagged-unicast-advertisement variant ("explicitly listing its
//     anycast address" on the router's own route), which makes member
//     discovery trivial and enables simple vN-Bone construction (§3.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "net/address.h"
#include "net/graph.h"
#include "net/ids.h"
#include "obs/recorder.h"

namespace evo::igp {

class Igp {
 public:
  virtual ~Igp() = default;

  /// Which domain this instance routes for.
  virtual net::DomainId domain() const = 0;

  /// Begin protocol operation: schedule initial advertisements. Routes
  /// appear in the routers' FIBs as the simulation runs.
  virtual void start() = 0;

  /// Anycast membership: `router` (must be in this domain) starts/stops
  /// terminating `anycast`. Takes effect through normal protocol dynamics.
  virtual void add_anycast_member(net::NodeId router, net::Ipv4Addr anycast) = 0;
  virtual void remove_anycast_member(net::NodeId router, net::Ipv4Addr anycast) = 0;

  /// Whether this protocol variant lets routers enumerate the members of
  /// an anycast group (true for link-state and for tagged distance-vector;
  /// false for plain distance-vector — exactly the paper's distinction).
  virtual bool supports_member_discovery() const = 0;

  /// Members of `anycast` as known at `viewpoint` (empty when discovery is
  /// unsupported). Sorted by NodeId for determinism.
  virtual std::vector<net::NodeId> discovered_members(net::NodeId viewpoint,
                                                      net::Ipv4Addr anycast) const = 0;

  /// Converged IGP distance between two routers of this domain;
  /// kInfiniteCost when unknown/unreachable. Used by BGP hot-potato
  /// egress selection and by vN-Bone neighbor selection.
  virtual net::Cost distance(net::NodeId from, net::NodeId to) const = 0;

  /// First hop from `from` toward `to`; invalid() when unreachable.
  virtual net::NodeId next_hop(net::NodeId from, net::NodeId to) const = 0;

  /// Notify the protocol that a link's up/down state changed.
  virtual void on_link_change(net::LinkId link) = 0;

  /// Total protocol messages sent so far (for overhead experiments).
  virtual std::uint64_t messages_sent() const = 0;

  /// Telemetry sink for protocol point events (SPF runs, update waves).
  /// Null by default; implementations record nothing when unset.
  virtual void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 protected:
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace evo::igp
