// A guided tour through the paper's four figures, each replayed live.
//
// Run this to see the architecture's whole argument in one sitting:
//   Figure 1 — anycast redirection follows deployment, clients untouched;
//   Figure 2 — default-ISP addressing + optional peering advertisement;
//   Figure 3 — BGPv(N-1) import moves the vN-Bone exit closer to the
//              destination;
//   Figure 4 — advertising-by-proxy finds egresses the ingress's own
//              routing table cannot see.
#include <cstdio>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/scenario.h"
#include "core/trace.h"

using namespace evo;

namespace {

std::string serving_isp(core::EvolvableInternet& net, net::NodeId from) {
  const auto probe = anycast::probe(
      net.network(), net.anycast().group(net.vnbone().anycast_group()), from);
  if (!probe.delivered()) return "<none>";
  return net.topology().domain(net.topology().router(probe.member).domain).name;
}

void figure1() {
  std::printf("— Figure 1: seamless spread of deployment —\n");
  auto fig = core::make_figure1();
  core::Options options;
  options.vnbone.anycast_mode = anycast::InterDomainMode::kGlobalRoutes;
  core::EvolvableInternet net(std::move(fig.topology), options);
  net.start();
  const auto client = net.topology().host(fig.client).access_router;
  for (const auto d : {fig.x, fig.y, fig.z}) {
    net.deploy_domain(d);
    net.converge();
    std::printf("  %s deploys IPv8  ->  client C is served by %s\n",
                net.topology().domain(d).name.c_str(),
                serving_isp(net, client).c_str());
  }
  std::printf("  (C never changed a thing)\n\n");
}

void figure2() {
  std::printf("— Figure 2: default routes + optional peering —\n");
  auto fig = core::make_figure2();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.d);
  net.deploy_domain(fig.q);
  net.converge();
  const auto& topo = net.topology();
  std::printf("  D (default) and Q deploy. X->%s  Y->%s  Z->%s\n",
              serving_isp(net, topo.host(fig.host_x).access_router).c_str(),
              serving_isp(net, topo.host(fig.host_y).access_router).c_str(),
              serving_isp(net, topo.host(fig.host_z).access_router).c_str());
  net.anycast().advertise_via_peering(net.vnbone().anycast_group(), fig.q, fig.y);
  net.converge();
  std::printf("  Q peer-advertises to Y.    X->%s  Y->%s  Z->%s\n\n",
              serving_isp(net, topo.host(fig.host_x).access_router).c_str(),
              serving_isp(net, topo.host(fig.host_y).access_router).c_str(),
              serving_isp(net, topo.host(fig.host_z).access_router).c_str());
}

void figure3() {
  std::printf("— Figure 3: egress selection with BGPv(N-1) import —\n");
  auto fig = core::make_figure3();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.m);
  net.deploy_domain(fig.o);
  net.converge();
  for (const auto mode : {vnbone::EgressMode::kExitAtIngress,
                          vnbone::EgressMode::kOwnPathKnowledge}) {
    const auto trace = core::send_ipvn(net, fig.a, fig.c, mode);
    std::printf("  %-20s exit in %-6s legacy tail %llu\n", to_string(mode),
                net.topology()
                    .domain(net.topology().router(trace.egress).domain)
                    .name.c_str(),
                static_cast<unsigned long long>(trace.legacy_tail_cost()));
  }
  std::printf("\n");
}

void figure4() {
  std::printf("— Figure 4: advertising-by-proxy —\n");
  auto fig = core::make_figure4();
  core::EvolvableInternet net(std::move(fig.topology));
  net.start();
  net.deploy_domain(fig.a);
  net.deploy_domain(fig.b);
  net.deploy_domain(fig.c);
  net.converge();
  for (const auto mode : {vnbone::EgressMode::kOwnPathKnowledge,
                          vnbone::EgressMode::kProxyAdvertising}) {
    const auto trace = core::send_ipvn(net, fig.src, fig.dst, mode);
    std::printf("  %-20s exit in %-6s total cost %llu (%zu vn hops)\n",
                to_string(mode),
                net.topology()
                    .domain(net.topology().router(trace.egress).domain)
                    .name.c_str(),
                static_cast<unsigned long long>(trace.total_cost()),
                trace.vn_route.vn_hop_count());
  }
}

}  // namespace

int main() {
  figure1();
  figure2();
  figure3();
  figure4();
  return 0;
}
