// IPv8 rollout planner: the paper's evolution story as an operator tool.
//
// Simulates a staged IPv8 rollout across a transit-stub Internet in three
// adoption waves (early adopter -> competitive followers -> laggards),
// reporting after every wave the numbers an operator would actually watch:
// universal access, user-visible stretch, how much traffic each deployed
// ISP attracts (the revenue signal of assumption A4), and routing state.
#include <cstdio>

#include "anycast/resolver.h"
#include "core/evolvable_internet.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

using namespace evo;

namespace {

void report_wave(const char* wave, core::EvolvableInternet& net) {
  const auto ua = core::verify_universal_access(net, /*max_pairs=*/400);
  std::printf("\n[%s] deployed domains: %zu / %zu\n", wave,
              net.vnbone().deployed_domains().size(),
              net.topology().domain_count());
  std::printf("  universal access: %s (%zu/%zu pairs)\n",
              ua.universal() ? "YES" : "NO", ua.pairs_delivered, ua.pairs_checked);
  std::printf("  mean end-to-end stretch vs physical optimum: %.3f\n",
              ua.mean_stretch);

  // Traffic attraction: which ISPs capture ingress traffic (A4: "an ISP
  // that attracts new traffic, by offering IPvN, will also gain revenue").
  const auto& group = net.anycast().group(net.vnbone().anycast_group());
  const auto catchment = anycast::compute_catchment(net.network(), group);
  std::vector<std::size_t> share(net.topology().domain_count(), 0);
  for (const auto& router : net.topology().routers()) {
    const auto member = catchment.member[router.id.value()];
    if (member.valid()) ++share[net.topology().router(member).domain.value()];
  }
  std::printf("  top traffic-attracting ISPs:");
  for (int shown = 0; shown < 3; ++shown) {
    std::size_t best = 0;
    for (std::size_t d = 1; d < share.size(); ++d) {
      if (share[d] > share[best]) best = d;
    }
    if (share[best] == 0) break;
    std::printf(" %s(%zu)", net.topology().domain(net::DomainId{
                               static_cast<std::uint32_t>(best)}).name.c_str(),
                share[best]);
    share[best] = 0;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto topo = net::generate_transit_stub({.transit_domains = 4,
                                          .stubs_per_transit = 4,
                                          .seed = 20260706});
  sim::Rng rng{20260706};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet net(std::move(topo));
  net.start();
  std::printf("base Internet: %zu domains, %zu routers, %zu links, %zu hosts\n",
              net.topology().domain_count(), net.topology().router_count(),
              net.topology().link_count(), net.topology().host_count());

  const auto& domains = net.topology().domains();

  // Wave 1: a single early-adopter transit deploys, betting on attracting
  // encapsulated IPv8 traffic from everywhere.
  net.deploy_domain(domains[0].id);
  net.converge();
  report_wave("wave 1: early adopter", net);

  // Wave 2: competing transits follow (they are losing settlement traffic
  // to the early adopter).
  for (const auto& d : domains) {
    if (!d.stub) net.deploy_domain(d.id);
  }
  net.converge();
  report_wave("wave 2: transit competition", net);

  // Wave 3: stubs adopt as IPv8-aware applications appear; their hosts
  // flip from self-addresses to provider-allocated native addresses.
  for (const auto& d : domains) net.deploy_domain(d.id);
  net.converge();
  report_wave("wave 3: full adoption", net);

  std::size_t native = 0;
  for (const auto& host : net.topology().hosts()) {
    if (net.hosts().has_native_address(host.id)) ++native;
  }
  std::printf("\nnative IPv8 addresses: %zu / %zu hosts\n", native,
              net.topology().host_count());
  std::printf("vN-Bone: %zu virtual links over %zu deployed routers\n",
              net.vnbone().virtual_links().size(),
              net.vnbone().deployed_routers().size());
  return 0;
}
