// Latency observatory: event-driven IPv8 datagrams with real simulated
// latency, watched across deployment stages.
//
// Uses the IpvnTransport (socket-style API): hosts register receive
// callbacks, senders fire datagrams, and the simulator clock accrues link
// latencies hop by hop — including the detour through a remote IPv8
// ingress when the local ISP has not deployed yet. As deployment spreads,
// the detour (and the latency) shrinks; clients change nothing.
#include <cstdio>

#include "core/transport.h"
#include "net/topology_gen.h"
#include "sim/metrics.h"

using namespace evo;

int main() {
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 3,
                                          .seed = 31337});
  sim::Rng rng{31337};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet internet(std::move(topo));
  internet.start();
  core::IpvnTransport transport(internet);

  const auto& hosts = internet.topology().hosts();
  sim::Summary* sink = nullptr;
  for (const auto& host : hosts) {
    transport.listen(host.id, [&sink](net::HostId, net::HostId, std::uint64_t,
                                      sim::Duration latency) {
      if (sink != nullptr) sink->add(latency.count_millis());
    });
  }

  std::printf("%-28s %-10s %-12s %-12s %-12s\n", "deployment stage", "sent",
              "mean-ms", "p95-ms", "failed");
  const char* stages[] = {"one transit", "all transits", "everything"};
  int stage_index = 0;
  auto run_stage = [&](const char* label) {
    sim::Summary latencies;
    sink = &latencies;
    std::uint64_t payload = 0;
    const auto failed_before = transport.datagrams_failed();
    for (const auto& src : hosts) {
      for (const auto& dst : hosts) {
        if (src.id == dst.id) continue;
        transport.send(src.id, dst.id, ++payload);
      }
    }
    internet.simulator().run();
    sink = nullptr;
    std::printf("%-28s %-10llu %-12.2f %-12.2f %llu\n", label,
                static_cast<unsigned long long>(payload), latencies.mean(),
                latencies.percentile(95),
                static_cast<unsigned long long>(transport.datagrams_failed() -
                                                failed_before));
  };

  const auto& domains = internet.topology().domains();
  internet.deploy_domain(domains[0].id);
  internet.converge();
  run_stage(stages[stage_index++]);

  for (const auto& d : domains) {
    if (!d.stub) internet.deploy_domain(d.id);
  }
  internet.converge();
  run_stage(stages[stage_index++]);

  for (const auto& d : domains) internet.deploy_domain(d.id);
  internet.converge();
  run_stage(stages[stage_index++]);

  std::printf(
      "\nLatency falls as the anycast ingress moves closer — with zero\n"
      "changes at any host. %llu datagrams delivered event-by-event.\n",
      static_cast<unsigned long long>(transport.datagrams_received()));
  return 0;
}
