// The IP Multicast chicken-and-egg, quantified (paper §2.1).
//
// "Even had a major ISP (say Sprint) deployed multicast, this new
// functionality would only have been available to Sprint's customers.
// ... If instead, any endhost had been able to access Sprint's multicast
// services, then application developers might have been more willing to
// experiment with the service."
//
// We compare the addressable market of a new IP service under two access
// regimes as adoption spreads:
//   walled-garden: only hosts whose OWN ISP deployed can use the service
//                  (historical multicast);
//   universal:     any host can use it through anycast redirection
//                  (this paper).
// The market size is the fraction of host pairs that can communicate over
// the new service — what a CNN-style application developer cares about.
#include <cstdio>

#include "core/evolvable_internet.h"
#include "core/trace.h"
#include "net/topology_gen.h"

using namespace evo;

int main() {
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 4,
                                          .seed = 777});
  sim::Rng rng{777};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet net(std::move(topo));
  net.start();
  const auto& hosts = net.topology().hosts();
  const double all_pairs =
      static_cast<double>(hosts.size() * (hosts.size() - 1));

  std::printf("addressable market for a new IP service vs adoption\n");
  std::printf("%-10s %-18s %-18s %-10s\n", "deployed", "walled-garden",
              "universal-access", "ratio");

  for (const auto& domain : net.topology().domains()) {
    net.deploy_domain(domain.id);
    net.converge();

    // Walled garden: both endpoints' ISPs must have deployed.
    std::size_t walled = 0;
    std::size_t universal = 0;
    for (const auto& src : hosts) {
      for (const auto& dst : hosts) {
        if (src.id == dst.id) continue;
        const auto src_domain =
            net.topology().router(src.access_router).domain;
        const auto dst_domain =
            net.topology().router(dst.access_router).domain;
        if (net.vnbone().domain_deployed(src_domain) &&
            net.vnbone().domain_deployed(dst_domain)) {
          ++walled;
        }
        // Universal access: the actual mechanism delivers it.
        if (core::send_ipvn(net, src.id, dst.id).delivered) ++universal;
      }
    }
    const double w = static_cast<double>(walled) / all_pairs;
    const double u = static_cast<double>(universal) / all_pairs;
    std::printf("%-10zu %-18.3f %-18.3f %-10.1f\n",
                net.vnbone().deployed_domains().size(), w, u,
                w > 0 ? u / w : std::numeric_limits<double>::infinity());
  }

  std::printf(
      "\nWith universal access the addressable market is 100%% from the\n"
      "first adopter onward; the walled garden grows only quadratically\n"
      "in adoption — the chicken-and-egg that killed IP Multicast.\n");
  return 0;
}
