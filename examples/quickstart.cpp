// Quickstart: the paper's core mechanism in ~60 lines.
//
// Build a tiny three-ISP Internet, deploy "IPv8" in ONE of them, and send
// an IPv8 datagram between two hosts whose own ISPs know nothing about
// IPv8 — universal access via anycast redirection.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples-objects/quickstart        (or the examples output dir)
#include <cstdio>

#include "core/evolvable_internet.h"
#include "core/trace.h"

using namespace evo;

int main() {
  // Three ISPs: "adopter" deploys IPv8; "left" and "right" are legacy
  // stubs that just buy transit from it.
  net::Topology topo;
  const auto adopter = topo.add_domain("adopter");
  const auto left = topo.add_domain("left", /*stub=*/true);
  const auto right = topo.add_domain("right", /*stub=*/true);
  const auto a0 = topo.add_router(adopter);
  const auto a1 = topo.add_router(adopter);
  topo.add_link(a0, a1, /*cost=*/2);
  const auto l0 = topo.add_router(left);
  const auto r0 = topo.add_router(right);
  topo.add_interdomain_link(a0, l0, net::Relationship::kCustomer);
  topo.add_interdomain_link(a1, r0, net::Relationship::kCustomer);
  const auto alice = topo.add_host(l0);
  const auto bob = topo.add_host(r0);

  // Bring up the base (IPv4-style) Internet: IGPs + BGP converge.
  core::EvolvableInternet internet(std::move(topo));
  internet.start();

  // Without any deployment, IPv8 datagrams have nowhere to go.
  auto before = core::send_ipvn(internet, alice, bob);
  std::printf("before deployment: %s\n", before.describe().c_str());

  // One ISP deploys IPv8. Its routers join the deployment's anycast
  // group; the vN-Bone forms; hosts need zero configuration.
  internet.deploy_domain(adopter);
  internet.converge();

  std::printf("anycast address for the IPv8 deployment: %s\n",
              internet.vnbone().anycast_address().to_string().c_str());
  std::printf("alice's IPv8 address (self-assigned): %s\n",
              internet.hosts().ipvn_address(alice).to_string().c_str());

  // Alice sends Bob an IPv8 datagram: encapsulated toward the anycast
  // address, captured by the nearest IPv8 router, carried over the
  // vN-Bone, and delivered natively over IPv4 at the far end.
  auto after = core::send_ipvn(internet, alice, bob);
  std::printf("after deployment:  %s\n", after.describe().c_str());
  for (const auto& segment : after.segments) {
    std::printf("  %-16s %s\n", core::to_string(segment.kind),
                internet.network().describe(segment.trace).c_str());
  }
  return after.delivered ? 0 : 1;
}
