// vN-Bone resilience drill: keep the virtual IPvN network alive while the
// substrate misbehaves — routers undeploy, links die, whole domains leave.
//
// Demonstrates the §3.3.1 maintenance machinery: partition detection and
// repair, anycast bootstrap for stranded members, and the
// connected-to-default invariant, with end-to-end delivery checked after
// every event.
#include <cstdio>

#include "core/evolvable_internet.h"
#include "core/universal_access.h"
#include "net/topology_gen.h"

using namespace evo;

namespace {

void check(const char* event, core::EvolvableInternet& net) {
  const auto deployed = net.vnbone().deployed_routers();
  const auto vcomps = net::connected_components(net.vnbone().virtual_graph());
  const auto pcomps =
      net::connected_components(net.topology().physical_graph());
  // A deployed router counts as stranded only if the bone could have
  // reached it: partitions forced by physical cuts are beyond any overlay.
  std::size_t stranded = 0;
  std::size_t physically_cut = 0;
  for (const auto r : deployed) {
    if (vcomps.label[r.value()] == vcomps.label[deployed.front().value()]) {
      continue;
    }
    if (pcomps.label[r.value()] != pcomps.label[deployed.front().value()]) {
      ++physically_cut;
    } else {
      ++stranded;
    }
  }
  const auto ua = core::verify_universal_access(net, /*max_pairs=*/100);
  std::printf(
      "%-34s routers=%2zu links=%2zu repairs=%zu boots=%zu bone=%s ua=%s\n",
      event, deployed.size(), net.vnbone().virtual_links().size(),
      net.vnbone().partition_repairs(), net.vnbone().bootstrap_tunnels(),
      stranded > 0          ? "PARTITIONED"
      : physically_cut > 0  ? "connected*"  // * = minus physically cut routers
                            : "connected",
      ua.universal() ? "ok" : "BROKEN");
}

}  // namespace

int main() {
  auto topo = net::generate_transit_stub({.transit_domains = 3,
                                          .stubs_per_transit = 2,
                                          .seed = 99});
  sim::Rng rng{99};
  net::attach_hosts(topo, 2, rng);
  core::EvolvableInternet net(std::move(topo));
  net.start();

  const auto& domains = net.topology().domains();
  // Deploy the transits and one stub.
  for (const auto& d : domains) {
    if (!d.stub) net.deploy_domain(d.id);
  }
  net.deploy_domain(domains.back().id);
  net.converge();
  check("initial deployment", net);

  // Event 1: half of transit-0's routers undeploy (maintenance window).
  const auto& t0 = net.topology().domain(domains[0].id).routers;
  for (std::size_t i = 0; i < t0.size() / 2; ++i) net.undeploy_router(t0[i]);
  net.converge();
  check("transit-0 half undeployed", net);

  // Event 2: random intra-domain link failures.
  std::size_t killed = 0;
  for (const auto& link : net.topology().links()) {
    if (!link.interdomain && rng.bernoulli(0.15)) {
      net.set_link_up(link.id, false);
      ++killed;
    }
  }
  net.converge();
  char label[64];
  std::snprintf(label, sizeof label, "%zu intra-domain links down", killed);
  check(label, net);

  // Event 3: an entire deployed domain leaves the experiment.
  for (const auto r : net.topology().domain(domains[1].id).routers) {
    net.undeploy_router(r);
  }
  net.converge();
  check("transit-1 fully undeployed", net);

  // Event 4: links restored.
  for (const auto& link : net.topology().links()) {
    if (!link.up) net.set_link_up(link.id, true);
  }
  net.converge();
  check("links restored", net);

  // Event 5: everyone comes back and more stubs adopt.
  for (const auto& d : domains) net.deploy_domain(d.id);
  net.converge();
  check("full adoption", net);
  return 0;
}
